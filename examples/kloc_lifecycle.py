#!/usr/bin/env python3
"""Drive the KLOC lifecycle by hand, syscall by syscall.

Walks Figure 3(b)'s flow — create, write, fsync, close, reopen, unlink —
on a single file and one socket, printing the knode's state and its
objects' placement at each step. This is the clearest way to see the
abstraction: kernel objects appear in the knode's two red-black trees as
syscalls create them, turn cold at close, migrate en masse, and vanish
(not migrate!) at unlink.

Run:  python examples/kloc_lifecycle.py
"""

from collections import Counter

from repro.core.units import KB
from repro.kernel.syscalls import SyscallInterface
from repro.platforms.twotier import build_two_tier_kernel


def describe(kernel, inode, label):
    manager = kernel.kloc_manager
    knode = manager.knode_for_inode(inode) if inode.knode_id else None
    if knode is None:
        print(f"[{label}] no knode (deleted)")
        return
    tiers = Counter(f.tier_name for f in knode.frames())
    print(
        f"[{label}] knode #{knode.knode_id}: "
        f"{len(knode.rbtree_cache)} cache-tree objs, "
        f"{len(knode.rbtree_slab)} slab-tree objs, "
        f"inuse={knode.inuse}, frames by tier={dict(tiers)}"
    )


def main() -> None:
    kernel, _policy = build_two_tier_kernel("klocs", scale_factor=2048)
    # Keep the daemon eager so the demo shows migration immediately.
    kernel.kloc_daemon.free_target_frac = 1.0
    sys = SyscallInterface(kernel)

    print("== create + write: objects accumulate in the knode, fast-first ==")
    fh = sys.creat("/demo/data")
    describe(kernel, fh.inode, "after create")
    sys.write(fh, 0, 64 * KB)
    sys.fsync(fh)
    describe(kernel, fh.inode, "after 64KB write + fsync")

    print("\n== close: definitely cold → marked, daemon downgrades en masse ==")
    inode = fh.inode
    sys.close(fh)
    describe(kernel, inode, "after close (pre-daemon)")
    kernel.kloc_daemon.run()
    describe(kernel, inode, "after daemon pass")

    print("\n== reopen + read: hot again, objects pulled back on demand ==")
    fh = sys.open("/demo/data")
    sys.read(fh, 0, 16 * KB)
    kernel.kloc_daemon.run()
    describe(kernel, fh.inode, "after reopen + read")

    print("\n== unlink: objects are FREED, never migrated (§3.2) ==")
    down_before = kernel.kloc_daemon.downgraded_pages
    sys.close(fh)
    sys.unlink("/demo/data")
    print(f"knode deleted; extra downgrades during unlink: "
          f"{kernel.kloc_daemon.downgraded_pages - down_before}")

    print("\n== sockets are files too: a socket gets the same treatment ==")
    sock = sys.socket(6379)
    kernel.net.deliver(6379, 6000)
    sys.recv(sock)
    sys.send(sock, 2000)
    describe(kernel, sock.inode, "active socket")
    sys.close_socket(sock)
    print("socket closed: its knode was deleted with its inode")

    kernel.topology.check_invariants()
    print("\ntopology invariants hold — no leaked pages.")


if __name__ == "__main__":
    main()
