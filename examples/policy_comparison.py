#!/usr/bin/env python3
"""Compare Table 5's tiering strategies on one workload (a mini Fig 4).

Runs the chosen workload under every two-tier strategy and prints
speedups over the All-Slow bound, plus the placement quality (fraction of
references served from fast memory) that explains them.

Run:  python examples/policy_comparison.py [workload] [ops]
      python examples/policy_comparison.py redis 12000
"""

import sys

from repro.experiments.runner import run_two_tier
from repro.metrics.report import format_table
from repro.policies import TWO_TIER_POLICIES

ORDER = ["all_slow", "naive", "nimble", "nimble++",
         "klocs_nomigration", "klocs", "all_fast"]


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "rocksdb"
    ops = int(sys.argv[2]) if len(sys.argv) > 2 else 25_000
    if ops < 10_000:
        print(
            f"note: {ops} ops is below steady state — the scan/migration "
            "policies need ~10K+ ops to converge (short runs flatter "
            "Naive, which has no migration machinery to warm up)."
        )

    runs = {}
    for policy in ORDER:
        assert policy in TWO_TIER_POLICIES
        print(f"running {workload} under {policy} ...")
        runs[policy] = run_two_tier(workload, policy, ops=ops)

    base = runs["all_slow"].throughput
    print()
    print(format_table(
        ["policy", "speedup vs all-slow", "fast-ref fraction",
         "migr down", "migr up"],
        [
            [
                policy,
                run.throughput / base,
                run.fast_ref_fraction,
                run.migrations_down,
                run.migrations_up,
            ]
            for policy, run in runs.items()
        ],
        title=f"Fig 4-style comparison — {workload}, {ops} ops",
    ))
    print(
        "\nExpected shape (paper Fig 4): naive < nimble <= nimble++ < klocs,"
        "\nwith all_fast as the ceiling. KLOCs wins by allocating active"
        "\nknodes' objects hot and evicting cold knodes' objects en masse."
    )


if __name__ == "__main__":
    main()
