#!/usr/bin/env python3
"""Trace a run, then analyze it: lifetimes, migrations, and charts.

Attaches the tracing facility to a KLOCs kernel, runs a Redis-style
burst, and mines the event log: allocation mix, measured object
lifetimes (Fig 2d's claim, from raw events this time), and a terminal
bar chart of where references landed.

Run:  python examples/trace_analysis.py
"""

from collections import defaultdict

from repro.core.trace import Tracer
from repro.experiments.runner import make_workload
from repro.metrics.chart import bar_chart, sparkline
from repro.metrics.report import format_table
from repro.platforms.twotier import build_two_tier_kernel


def main() -> None:
    kernel, _ = build_two_tier_kernel("klocs", scale_factor=2048)
    tracer = Tracer(capacity=200_000)
    tracer.enable("alloc", "free", "knode", "reclaim")
    kernel.tracer = tracer

    workload = make_workload(kernel, "redis", scale_factor=2048)
    workload.setup()
    tracer.clear()
    result = workload.run(4000)
    print(f"{result.ops} ops, {tracer.emitted} events traced\n")

    # 1. Allocation mix straight from the event log.
    print(bar_chart(
        dict(sorted(tracer.counts_by_name("alloc").items(),
                    key=lambda kv: -kv[1])),
        title="allocations by kernel object type",
        width=34,
    ))

    # 2. Lifetimes mined from free events (Fig 2d, bottom-up).
    lifetimes = defaultdict(list)
    for event in tracer.query(category="free"):
        lifetimes[event.name].append(event.get("lifetime_ns", 0))
    rows = [
        [name, len(vals), sum(vals) / len(vals) / 1e3]
        for name, vals in sorted(lifetimes.items(), key=lambda kv: -len(kv[1]))
        if vals
    ]
    print()
    print(format_table(
        ["object type", "freed", "mean lifetime (us)"],
        rows,
        title="object lifetimes from trace events",
    ))

    # 3. Placement quality as the run progressed (sparkline of the
    #    fast-tier share of alloc events, in 20 buckets).
    events = list(tracer.query(category="alloc"))
    buckets = max(1, len(events) // 20)
    series = []
    for i in range(0, len(events), buckets):
        window = events[i : i + buckets]
        fast = sum(1 for e in window if e.get("tier") == "fast")
        series.append(fast / len(window))
    print(f"\nfast-tier allocation share over time: {sparkline(series)} "
          f"(left=start, right=end)")

    workload.teardown()


if __name__ == "__main__":
    main()
