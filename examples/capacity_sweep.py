#!/usr/bin/env python3
"""Custom sensitivity study with the sweep API (a DIY Figure 6).

Sweeps fast-memory capacity for KLOCs vs Nimble++ on RocksDB, prints the
table, renders a terminal chart of the speedups, and writes a CSV for
offline plotting — the workflow a downstream study would use for
questions the paper's own sweep doesn't answer.

The sweep goes through the parallel experiment engine: grid cells run on
REPRO_JOBS worker processes (default: all cores) and completed cells are
cached under .repro_cache/, so re-running after a tweak only recomputes
what changed. Set REPRO_NO_CACHE=1 to force recomputation, REPRO_JOBS=1
to debug serially.

Run:  python examples/capacity_sweep.py [ops]
"""

import sys

from repro.analysis.sweep import run_sweep
from repro.core.units import GB
from repro.metrics.chart import grouped_bar_chart

CAPACITIES_GB = (2, 8, 16)
POLICIES = ("all_slow", "nimble++", "klocs")


def main() -> None:
    ops = int(sys.argv[1]) if len(sys.argv) > 1 else 12_000
    print(f"sweeping fast capacity {CAPACITIES_GB} GB x {POLICIES} "
          f"({ops} ops per run) ...\n")
    sweep = run_sweep(
        workloads=["rocksdb"],
        policies=list(POLICIES),
        grid={"fast_bytes_paper": [c * GB for c in CAPACITIES_GB]},
        ops=ops,
    )
    print(sweep.format_report())

    groups = {}
    for capacity in CAPACITIES_GB:
        series = {}
        for policy in POLICIES[1:]:
            row = next(
                r
                for r in sweep.filter(policy=policy)
                if r.params["fast_bytes_paper"] == capacity * GB
            )
            series[policy] = sweep.speedup(row, "all_slow")
        groups[f"{capacity}GB fast"] = series
    print()
    print(grouped_bar_chart(
        groups, title="speedup vs all-slow, by fast capacity", unit="x"
    ))

    path = sweep.to_csv("results/capacity_sweep.csv")
    print(f"\nwrote {path} ({len(sweep.rows)} rows)")


if __name__ == "__main__":
    main()
