#!/usr/bin/env python3
"""The Fig 5a experiment as a story: interference on an Optane system.

A Redis-style workload runs on socket 0 of a two-socket Optane Memory
Mode machine. A streaming co-runner then hammers socket 0's memory
bandwidth and the scheduler moves the task to socket 1. Watch what each
policy does with the data left behind — AutoNUMA rescues application
pages only; KLOCs also brings the kernel objects (socket buffers, page
cache, inodes) home.

Run:  python examples/optane_interference.py
"""

from repro.experiments.runner import make_workload
from repro.metrics.report import format_table
from repro.platforms.optane import build_optane_kernel
from repro.workloads.interference import StreamingInterferer

WARMUP_OPS = 4000
MEASURED_OPS = 8000


def run_policy(policy: str) -> dict:
    kernel, pol = build_optane_kernel(policy, scale_factor=1024)
    workload = make_workload(kernel, "redis")
    workload.setup()
    workload.run(WARMUP_OPS)

    interferer = StreamingInterferer(kernel, "node0", streams=3)
    interferer.start()
    kernel.set_task_node(1)

    result = workload.run(MEASURED_OPS)
    node1 = kernel.topology.tier("node1")
    stats = {
        "throughput": result.throughput_ops_per_sec,
        "app_moved": getattr(pol, "migrated_app", 0),
        "kernel_moved": getattr(pol, "migrated_kernel", 0),
        "resident_on_home_node": node1.used_pages,
    }
    interferer.stop()
    workload.teardown()
    return stats


def main() -> None:
    policies = ["all_remote", "autonuma", "nimble", "klocs", "all_local"]
    results = {}
    for policy in policies:
        print(f"running {policy} ...")
        results[policy] = run_policy(policy)

    base = results["all_remote"]["throughput"]
    print()
    print(format_table(
        ["policy", "speedup vs all-remote", "app pages moved",
         "kernel pages moved", "pages on home node"],
        [
            [
                p,
                s["throughput"] / base,
                s["app_moved"],
                s["kernel_moved"],
                s["resident_on_home_node"],
            ]
            for p, s in results.items()
        ],
        title="Optane Memory Mode under interference (Fig 5a)",
    ))
    print(
        "\nThe paper's reading: AutoNUMA strands kernel objects on the"
        "\ncontended socket; KLOCs migrates them too and approaches the"
        "\nall-local ideal (their 1.6x)."
    )


if __name__ == "__main__":
    main()
