#!/usr/bin/env python3
"""Quickstart: stand up a simulated kernel with KLOCs and watch the
abstraction work.

Builds the paper's two-tier platform (scaled down 1024x), runs a few
thousand RocksDB-style operations under the KLOCs policy, and prints
what the KLOC machinery did: knodes created, objects tracked, per-CPU
fast-path hit rate, migrations, and where memory references landed.

Run:  python examples/quickstart.py
"""

from repro.experiments.runner import make_workload
from repro.kloc.api import KlocAPI
from repro.metrics.report import format_table
from repro.platforms.twotier import build_two_tier_kernel


def main() -> None:
    # 1. A kernel on the two-tier platform, tiered by the KLOCs policy.
    kernel, policy = build_two_tier_kernel("klocs", scale_factor=1024)
    api = KlocAPI(kernel.kloc_manager)
    api.sys_enable_kloc("rocksdb")  # the admin-facing switch (§4.2.1)

    # 2. An LSM key-value workload issuing real open/write/fsync/close
    #    and socket traffic against the simulated kernel.
    workload = make_workload(kernel, "rocksdb")
    workload.setup()
    kernel.reset_reference_counters()
    result = workload.run(8000)

    # 3. What happened.
    manager = kernel.kloc_manager
    daemon = kernel.kloc_daemon
    print(f"ran {result.ops} ops in {result.elapsed_ns / 1e6:.1f} simulated ms "
          f"({result.throughput_ops_per_sec:,.0f} ops/s)\n")

    print(format_table(
        ["metric", "value"],
        [
            ["knodes created (files+sockets)", manager.knodes_created],
            ["knodes deleted (unlinks)", manager.knodes_deleted],
            ["live knodes in kmap", len(manager.kmap)],
            ["per-CPU fast-path hit rate", f"{manager.percpu.rbtree_access_reduction():.0%}"],
            ["KLOC metadata bytes", manager.metadata_bytes()],
            ["pages downgraded (fast→slow)", daemon.downgraded_pages],
            ["pages upgraded (slow→fast)", daemon.upgraded_pages],
            ["references served from fast memory", f"{kernel.fast_ref_fraction():.0%}"],
            ["kernel-object share of references", f"{kernel.kernel_ref_fraction():.0%}"],
        ],
        title="KLOC machinery after the run",
    ))

    # 4. Peek inside one KLOC with the Table 2 API.
    knode = next(iter(api.get_lru_knodes(limit=1)), None)
    if knode is not None:
        cache_objs = sum(1 for _ in api.itr_knode_cache(knode))
        slab_objs = sum(1 for _ in api.itr_knode_slab(knode))
        print(f"\ncoldest knode #{knode.knode_id} (inode {knode.ino}): "
              f"{cache_objs} page-backed + {slab_objs} slab objects, "
              f"inuse={knode.inuse}, age={knode.age}, "
              f"last CPU={api.find_cpu(knode)}")

    workload.teardown()


if __name__ == "__main__":
    main()
