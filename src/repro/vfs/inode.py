"""Inodes — the anchor of the KLOC abstraction.

"In Unix-based 'everything is a file' OSes, there is one KLOC of kernel
objects associated with each inode" (§1). The inode therefore carries the
``knode_id`` pointer (Figure 1) plus the usual VFS state; sockets get
inodes too, which is how the network stack joins the same machinery.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.alloc.base import KernelObject
from repro.core.errors import VFSError


class Inode:
    """One file or socket inode."""

    def __init__(
        self,
        ino: int,
        *,
        is_socket: bool = False,
        backing: Optional[KernelObject] = None,
        created_at: int = 0,
    ) -> None:
        self.ino = ino
        self.is_socket = is_socket
        #: The slab/KLOC object physically holding this inode structure.
        self.backing = backing
        self.size_bytes = 0
        self.nlink = 1
        self.open_count = 0
        #: Figure 1: "The inode of each active file or socket maintains a
        #: pointer to a knode data structure."
        self.knode_id: Optional[int] = None
        self.created_at = created_at
        self.atime = created_at
        self.mtime = created_at
        self.deleted = False

    @property
    def is_open(self) -> bool:
        return self.open_count > 0

    def open(self) -> None:
        if self.deleted:
            raise VFSError(f"inode {self.ino} was unlinked")
        self.open_count += 1

    def close(self) -> None:
        if self.open_count <= 0:
            raise VFSError(f"inode {self.ino} is not open")
        self.open_count -= 1

    def __repr__(self) -> str:
        kind = "sock" if self.is_socket else "file"
        return f"Inode({kind} #{self.ino}, size={self.size_bytes}, knode={self.knode_id})"


class InodeTable:
    """Global inode registry (the VFS inode hash, simplified)."""

    def __init__(self) -> None:
        self._next_ino = 1
        self._inodes: Dict[int, Inode] = {}

    def create(
        self,
        *,
        is_socket: bool = False,
        backing: Optional[KernelObject] = None,
        now_ns: int = 0,
    ) -> Inode:
        inode = Inode(
            self._next_ino, is_socket=is_socket, backing=backing, created_at=now_ns
        )
        self._next_ino += 1
        self._inodes[inode.ino] = inode
        return inode

    def get(self, ino: int) -> Inode:
        inode = self._inodes.get(ino)
        if inode is None:
            raise VFSError(f"no such inode: {ino}")
        return inode

    def drop(self, ino: int) -> None:
        if ino not in self._inodes:
            raise VFSError(f"no such inode: {ino}")
        del self._inodes[ino]

    def live_inodes(self) -> List[Inode]:
        return list(self._inodes.values())

    def __len__(self) -> int:
        return len(self._inodes)
