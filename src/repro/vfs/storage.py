"""NVMe block device model (Table 4's 512GB NVMe).

Transfers cost ``latency + bytes/bandwidth`` with separate sequential and
random bandwidths (1.2 GB/s vs 412 MB/s in the paper's testbed).
"""

from __future__ import annotations

from repro.core.config import StorageSpec


class NVMeDevice:
    """Cost model + counters for the backing block device."""

    def __init__(self, spec: StorageSpec = StorageSpec()) -> None:
        self.spec = spec
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0

    def io_cost_ns(self, nbytes: int, *, write: bool, sequential: bool) -> int:
        """Cost of one transfer of ``nbytes``."""
        if nbytes < 0:
            raise ValueError(f"negative I/O size: {nbytes}")
        bw = self.spec.seq_bw_bytes_per_ns if sequential else self.spec.rand_bw_bytes_per_ns
        if write:
            self.writes += 1
            self.bytes_written += nbytes
        else:
            self.reads += 1
            self.bytes_read += nbytes
        return self.spec.latency_ns + int(nbytes / bw)

    def __repr__(self) -> str:
        return (
            f"NVMeDevice(reads={self.reads}, writes={self.writes}, "
            f"rd={self.bytes_read}B, wr={self.bytes_written}B)"
        )
