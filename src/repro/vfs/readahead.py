"""Adaptive readahead, after Linux's on-demand readahead (§4.4).

Sequential streams grow a prefetch window (doubling up to a cap); random
access collapses it. §4.4/§7.3: KLOCs plug into this mechanism — the
prefetcher is given the inode's kernel objects so useful ones are pulled
up quickly and useless ones identified as cold sooner. The KLOC hook here
is a flag the filesystem consults to promote the knode alongside data
prefetch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

#: Initial and maximum readahead windows, in pages (Linux: 128KB max by
#: default = 32 pages).
INITIAL_WINDOW = 4
MAX_WINDOW = 32


@dataclass
class ReadaheadState:
    """Per-open-file readahead tracking."""

    last_index: int = -2  # "nothing read yet"
    window: int = INITIAL_WINDOW
    streak: int = 0
    prefetched: int = 0
    hits_on_prefetched: int = 0
    _outstanding: set = field(default_factory=set)

    def update(self, index: int) -> List[int]:
        """Record a read at ``index``; return page indexes to prefetch."""
        if index in self._outstanding:
            self._outstanding.discard(index)
            self.hits_on_prefetched += 1

        if index == self.last_index + 1:
            self.streak += 1
        else:
            self.streak = 0
            self.window = INITIAL_WINDOW
        self.last_index = index

        if self.streak < 2:
            return []
        # Established sequential stream: prefetch ahead and grow.
        start = index + 1
        pages = [i for i in range(start, start + self.window) if i not in self._outstanding]
        self._outstanding.update(pages)
        self.prefetched += len(pages)
        self.window = min(self.window * 2, MAX_WINDOW)
        return pages

    def useful_fraction(self) -> float:
        """How much of the prefetched data was actually consumed."""
        return self.hits_on_prefetched / self.prefetched if self.prefetched else 0.0
