"""The ext4-like filesystem facade: create/open/read/write/fsync/close/unlink.

Every operation performs the kernel-object work Figure 3(b) walks
through: a write allocates page-cache pages, radix-tree nodes, extents,
and journal records; a cache-miss read raises bios through blk-mq; close
and unlink drive the knode lifecycle via the kernel-context hooks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict

from repro.core.errors import VFSError
from repro.core.objtypes import KernelObjectType
from repro.core.units import PAGE_SIZE
from repro.vfs.blkmq import BlockMQ
from repro.vfs.dentry import Dentry, DentryCache
from repro.vfs.extent import ExtentTree
from repro.vfs.inode import Inode, InodeTable
from repro.vfs.journal import Journal
from repro.vfs.pagecache import CachePage, PageCache, PageCacheManager
from repro.vfs.readahead import ReadaheadState

if TYPE_CHECKING:
    from repro.core.context import KernelContext

#: Size of the inode field updates journalled per data-extending write.
INODE_UPDATE_RECORDS = 1


class _RadixNodeOps:
    """Alloc/free callbacks for one page cache's radix-tree nodes.

    A named class rather than closures so the whole filesystem graph
    stays snapshot-serializable (``repro.snapshot`` pickles bound
    methods by reference; it cannot pickle ``<locals>.<lambda>``).
    The creating CPU is captured so node churn stays attributed to the
    CPU that built the cache, exactly as the old closures did.
    """

    __slots__ = ("ctx", "inode", "cpu")

    def __init__(self, ctx: "KernelContext", inode: Inode, cpu: int) -> None:
        self.ctx = ctx
        self.inode = inode
        self.cpu = cpu

    def alloc(self) -> object:
        return self.ctx.alloc_object(
            KernelObjectType.RADIX_NODE, self.inode, cpu=self.cpu
        )

    def free(self, node: object) -> None:
        self.ctx.free_object(node, cpu=self.cpu)


@dataclass
class FileHandle:
    """An open file descriptor."""

    fd: int
    path: str
    inode: Inode
    readahead: ReadaheadState = field(default_factory=ReadaheadState)
    closed: bool = False


class Filesystem:
    """Everything-is-a-file VFS over one journal, one device, one cache."""

    def __init__(
        self,
        ctx: "KernelContext",
        *,
        page_cache_max_pages: int = 1 << 20,
        readahead_enabled: bool = True,
        dentry_cache_entries: int = 100_000,
    ) -> None:
        self.ctx = ctx
        self.inodes = InodeTable()
        self.dcache = DentryCache(max_entries=dentry_cache_entries)
        self.cache_mgr = PageCacheManager(max_pages=page_cache_max_pages)
        self.journal = Journal(ctx)
        self.blk = BlockMQ(ctx)
        self.readahead_enabled = readahead_enabled
        self._next_fd = 3
        self._handles: Dict[int, FileHandle] = {}
        self._extents: Dict[int, ExtentTree] = {}
        # op counters
        self.ops: Dict[str, int] = {
            "create": 0,
            "open": 0,
            "read": 0,
            "write": 0,
            "fsync": 0,
            "close": 0,
            "unlink": 0,
        }
        self.cache_hits = 0
        self.cache_misses = 0

    # ------------------------------------------------------------------
    # namespace operations
    # ------------------------------------------------------------------

    def create(self, path: str, *, cpu: int = 0) -> FileHandle:
        """Create and open a new file (Figure 3(b)'s open/create path)."""
        if self.dcache.lookup(path) is not None:
            raise VFSError(f"file exists: {path}")
        self.ops["create"] += 1

        inode_obj = self.ctx.alloc_object(KernelObjectType.INODE, None, cpu=cpu)
        inode = self.inodes.create(backing=inode_obj, now_ns=self.ctx.clock.now())
        self.ctx.on_inode_create(inode, cpu=cpu)
        self._adopt_object(inode_obj, inode)

        dentry_obj = self.ctx.alloc_object(KernelObjectType.DENTRY, inode, cpu=cpu)
        self.ctx.access_object(dentry_obj, write=True, cpu=cpu)
        for evicted in self.dcache.insert(Dentry(path, inode, dentry_obj)):
            self.ctx.free_object(evicted.backing, cpu=cpu)

        node_ops = _RadixNodeOps(self.ctx, inode, cpu)
        cache = PageCache(
            inode.ino, alloc_node=node_ops.alloc, free_node=node_ops.free
        )
        self.cache_mgr.register(cache)
        self._extents[inode.ino] = ExtentTree()

        # Directory + inode metadata hit the journal.
        self.journal.log_metadata(inode, 2, cpu=cpu)
        return self._open_inode(path, inode, cpu=cpu)

    def open(self, path: str, *, cpu: int = 0) -> FileHandle:
        """Open an existing file."""
        dentry = self.dcache.lookup(path)
        if dentry is None:
            raise VFSError(f"no such file: {path}")
        self.ops["open"] += 1
        # Name resolution touches the dentry and the inode structure.
        self.ctx.access_object(dentry.backing, cpu=cpu)
        if dentry.inode.backing is not None:
            self.ctx.access_object(dentry.inode.backing, cpu=cpu)
        return self._open_inode(path, dentry.inode, cpu=cpu)

    def _open_inode(self, path: str, inode: Inode, *, cpu: int) -> FileHandle:
        inode.open()
        self.ctx.on_inode_open(inode, cpu=cpu)
        handle = FileHandle(self._next_fd, path, inode)
        self._next_fd += 1
        self._handles[handle.fd] = handle
        return handle

    def close(self, handle: FileHandle, *, cpu: int = 0) -> None:
        if handle.closed:
            raise VFSError(f"fd {handle.fd} already closed")
        self.ops["close"] += 1
        handle.closed = True
        del self._handles[handle.fd]
        handle.inode.close()
        if handle.inode.backing is not None:
            self.ctx.access_object(handle.inode.backing, write=True, cpu=cpu)
        self.ctx.on_inode_close(handle.inode, cpu=cpu)

    def unlink(self, path: str, *, cpu: int = 0) -> None:
        """Delete a file: its kernel objects are *deallocated*, not
        migrated (§3.2 implication two)."""
        dentry = self.dcache.lookup(path)
        if dentry is None:
            raise VFSError(f"no such file: {path}")
        inode = dentry.inode
        if inode.is_open:
            # Reject before mutating anything: a failed unlink must leave
            # the namespace untouched.
            raise VFSError(f"cannot unlink open file: {path}")
        self.dcache.remove(path)
        self.ops["unlink"] += 1
        inode.deleted = True

        cache = self.cache_mgr.cache_for(inode.ino)
        if cache is not None:
            for page in cache.pages():
                self.cache_mgr.note_remove(page)
                cache.remove(page.index)
                self.ctx.free_object(page.obj, cpu=cpu)
            self.cache_mgr.unregister(inode.ino)
        extents = self._extents.pop(inode.ino, None)
        if extents is not None:
            for extent in extents.remove_all():
                self.ctx.free_object(extent, cpu=cpu)

        self.ctx.free_object(dentry.backing, cpu=cpu)
        self.journal.log_metadata(inode, 2, cpu=cpu)
        self.ctx.on_inode_unlink(inode, cpu=cpu)
        if inode.backing is not None:
            self.ctx.free_object(inode.backing, cpu=cpu)
        self.inodes.drop(inode.ino)

    def exists(self, path: str) -> bool:
        return path in self.dcache

    # ------------------------------------------------------------------
    # data operations
    # ------------------------------------------------------------------

    def write(self, handle: FileHandle, offset: int, nbytes: int, *, cpu: int = 0) -> int:
        """Buffered write: page cache population + metadata journalling."""
        self._check_open(handle)
        if nbytes <= 0:
            raise ValueError(f"write needs bytes: {nbytes}")
        self.ops["write"] += 1
        inode = handle.inode
        cache = self._cache(inode)
        extents = self._extents[inode.ino]

        first = offset // PAGE_SIZE
        last = (offset + nbytes - 1) // PAGE_SIZE
        for index in range(first, last + 1):
            page = cache.lookup(index)
            if page is None:
                page = self._fill_page(cache, inode, index, cpu=cpu, from_disk=False)
                # New data may need a new extent, which is journalled.
                if extents.lookup(index) is None:
                    extent = self.ctx.alloc_object(
                        KernelObjectType.EXTENT, inode, cpu=cpu
                    )
                    extents.insert(index, extent)
                    self.ctx.access_object(extent, write=True, cpu=cpu)
                    self.journal.log_metadata(inode, 1, cpu=cpu)
            else:
                self.cache_mgr.note_access(page)
                self._charge_index_walk(cache, cpu=cpu)
            chunk = self._chunk_bytes(offset, nbytes, index)
            self.ctx.access_object(page.obj, chunk, write=True, cpu=cpu)

        inode.size_bytes = max(inode.size_bytes, offset + nbytes)
        inode.mtime = self.ctx.clock.now()
        if inode.backing is not None:
            self.ctx.access_object(inode.backing, write=True, cpu=cpu)
        self.journal.log_metadata(inode, INODE_UPDATE_RECORDS, cpu=cpu)
        return nbytes

    def read(self, handle: FileHandle, offset: int, nbytes: int, *, cpu: int = 0) -> int:
        """Buffered read with cache-miss block I/O and adaptive readahead."""
        self._check_open(handle)
        if nbytes <= 0:
            raise ValueError(f"read needs bytes: {nbytes}")
        self.ops["read"] += 1
        inode = handle.inode
        cache = self._cache(inode)
        limit = min(offset + nbytes, inode.size_bytes)
        if offset >= limit:
            return 0

        first = offset // PAGE_SIZE
        last = (limit - 1) // PAGE_SIZE
        # Cache hits are charged through a deferred-advance window (when
        # the kernel offers one): the index-walk token and page charges of
        # a run of hits coalesce into one Clock.advance. Misses and
        # readahead fetches do real clock work, so the window is synced
        # before them.
        begin = getattr(self.ctx, "begin_access_batch", None)
        batch = begin() if begin is not None else None
        for index in range(first, last + 1):
            page = cache.lookup(index)
            if page is None:
                if batch is not None:
                    batch.sync()
                self.cache_misses += 1
                self._extent_lookup(inode, index, cpu=cpu)
                self.blk.submit_pages(
                    1, write=False, sequential=False, inode=inode, cpu=cpu
                )
                page = self._fill_page(cache, inode, index, cpu=cpu, from_disk=True)
            else:
                self.cache_hits += 1
                self.cache_mgr.note_access(page)
                self._charge_index_walk(cache, cpu=cpu, batch=batch)
            chunk = self._chunk_bytes(offset, limit - offset, index)
            if batch is not None:
                batch.access_object(page.obj, chunk, cpu=cpu)
            else:
                self.ctx.access_object(page.obj, chunk, cpu=cpu)

            if self.readahead_enabled:
                self._readahead(handle, cache, inode, index, cpu=cpu, batch=batch)

        if batch is not None:
            batch.close()
        inode.atime = self.ctx.clock.now()
        return limit - offset

    def fsync(self, handle: FileHandle, *, cpu: int = 0, background: bool = False) -> int:
        """Flush this inode's dirty pages and force a journal commit.

        ``background=True`` models fsyncs issued from an application's own
        background threads (LSM flush/compaction workers, fork-based
        checkpointers): the device work overlaps foreground progress.
        """
        self._check_open(handle)
        self.ops["fsync"] += 1
        inode = handle.inode
        cache = self._cache(inode)
        dirty = cache.dirty_pages()
        if dirty:
            self.blk.submit_pages(
                len(dirty),
                write=True,
                sequential=True,
                inode=inode,
                cpu=cpu,
                background=background,
            )
            for page in dirty:
                page.clean()
        self.journal.commit(cpu=cpu, background=background)
        return len(dirty)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _check_open(self, handle: FileHandle) -> None:
        if handle.closed:
            raise VFSError(f"fd {handle.fd} is closed")

    def _cache(self, inode: Inode) -> PageCache:
        cache = self.cache_mgr.cache_for(inode.ino)
        if cache is None:
            raise VFSError(f"inode {inode.ino} has no page cache")
        return cache

    @staticmethod
    def _chunk_bytes(offset: int, nbytes: int, index: int) -> int:
        """Bytes of this request that land on page ``index``."""
        page_start = index * PAGE_SIZE
        page_end = page_start + PAGE_SIZE
        start = max(offset, page_start)
        end = min(offset + nbytes, page_end)
        return max(0, end - start)

    def _fill_page(
        self, cache: PageCache, inode: Inode, index: int, *, cpu: int, from_disk: bool
    ) -> CachePage:
        """Allocate a page-cache page, evicting under global pressure."""
        self._reclaim_if_needed(cpu=cpu)
        obj = self.ctx.alloc_object(KernelObjectType.PAGE_CACHE, inode, cpu=cpu)
        page = CachePage(obj, inode.ino, index)
        if from_disk:
            # Device data lands in the page: one full-page write.
            self.ctx.access_object(obj, PAGE_SIZE, write=True, cpu=cpu)
            page.clean()  # disk contents are clean until modified
        cache.insert(page)
        self.cache_mgr.note_insert(page)
        return page

    def _charge_index_walk(self, cache: PageCache, *, cpu: int, batch=None) -> None:
        """One page-cache radix traversal hits the index's node objects."""
        token = cache.root_node_token()
        if token is not None and token.live:
            if batch is not None:
                batch.access_object(token, 64, cpu=cpu)
            else:
                self.ctx.access_object(token, 64, cpu=cpu)

    def _extent_lookup(self, inode: Inode, index: int, *, cpu: int) -> None:
        extent = self._extents[inode.ino].lookup(index)
        if extent is not None:
            self.ctx.access_object(extent, cpu=cpu)

    def _reclaim_if_needed(self, *, cpu: int) -> None:
        """Shrink the page cache when the global cap is exceeded."""
        need = self.cache_mgr.over_pressure()
        if not need:
            return
        for cache, page in self.cache_mgr.eviction_victims(need):
            if page.dirty:
                self.blk.submit_pages(
                    1, write=True, sequential=False, cpu=cpu, background=True
                )
                page.clean()
            self.cache_mgr.note_remove(page)
            cache.remove(page.index)
            self.ctx.free_object(page.obj, cpu=cpu)
            self.cache_mgr.evicted += 1

    def _readahead(
        self,
        handle: FileHandle,
        cache: PageCache,
        inode: Inode,
        index: int,
        *,
        cpu: int,
        batch=None,
    ) -> None:
        max_index = (inode.size_bytes - 1) // PAGE_SIZE if inode.size_bytes else -1
        to_fetch = [
            i
            for i in handle.readahead.update(index)
            if i <= max_index and cache.lookup(i) is None
        ]
        if not to_fetch:
            return
        if batch is not None:
            # The fetch does real clock work (bios, page fills): flush the
            # deferred window so it starts at the legacy virtual time.
            batch.sync()
        # One sequential bio brings the whole window in asynchronously.
        self.blk.submit_pages(
            len(to_fetch),
            write=False,
            sequential=True,
            inode=inode,
            cpu=cpu,
            background=True,
        )
        for i in to_fetch:
            self._fill_page(cache, inode, i, cpu=cpu, from_disk=True)
        notify = getattr(self.ctx, "notify_prefetch", None)
        if notify is not None:
            notify(inode, len(to_fetch))

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def check_consistency(self) -> None:
        """fsck-style invariant sweep; raises VFSError on corruption.

        Verifies: every dentry's inode is registered and undeleted; every
        registered page cache belongs to a live inode; cached pages map
        within their file's size; open handles reference open inodes; and
        the global LRU count matches the per-inode caches.
        """
        live_inos = {inode.ino for inode in self.inodes.live_inodes()}
        for path in list(self.dcache._entries):  # noqa: SLF001 - audit walk
            dentry = self.dcache._entries[path]  # noqa: SLF001
            if dentry.inode.ino not in live_inos:
                raise VFSError(f"dentry {path} points at dropped inode")
            if dentry.inode.deleted:
                raise VFSError(f"dentry {path} points at deleted inode")
        total_cached = 0
        for ino in list(self.cache_mgr._caches):  # noqa: SLF001 - audit walk
            if ino not in live_inos:
                raise VFSError(f"page cache registered for dropped inode {ino}")
            inode = self.inodes.get(ino)
            cache = self.cache_mgr.cache_for(ino)
            max_index = (
                (inode.size_bytes - 1) // PAGE_SIZE if inode.size_bytes else -1
            )
            for page in cache.pages():
                total_cached += 1
                if not page.obj.live:
                    raise VFSError(f"inode {ino} caches a freed page object")
                if page.index > max_index:
                    raise VFSError(
                        f"inode {ino} caches page {page.index} beyond EOF "
                        f"({inode.size_bytes} bytes)"
                    )
        if total_cached != self.cache_mgr.total_pages:
            raise VFSError(
                f"page cache LRU holds {self.cache_mgr.total_pages} pages, "
                f"caches hold {total_cached}"
            )
        for handle in self._handles.values():
            if handle.closed or not handle.inode.is_open:
                raise VFSError(f"stale handle fd={handle.fd}")

    def dirty_page_count(self) -> int:
        return sum(1 for p in self.cache_mgr.all_pages() if p.dirty)

    def file_count(self) -> int:
        return len(self.dcache)

    def __repr__(self) -> str:
        return (
            f"Filesystem(files={self.file_count()}, "
            f"cached_pages={self.cache_mgr.total_pages})"
        )

    def _adopt_object(self, obj, inode: Inode) -> None:
        """Attach a pre-knode allocation (the inode structure itself) to
        the knode created for this inode."""
        adopt = getattr(self.ctx, "adopt_object", None)
        if adopt is not None:
            adopt(obj, inode)
