"""Page cache: per-inode radix-tree indexes plus a global LRU manager.

Page-cache pages are the dominant kernel objects for the paper's
filesystem-heavy workloads (Fig 2a: "page cache pages dominate RocksDB
allocation"; §4.4: 79% of downgrade migrations are page cache pages).
Each inode owns a radix tree of cached pages; a global manager enforces a
capacity cap with Linux's two-list LRU, producing the eviction churn that
gives cache pages their ~160ms lifetimes (Fig 2d).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.alloc.base import KernelObject
from repro.core.errors import SimulationError
from repro.ds.lru import ActiveInactiveLRU
from repro.ds.radix import RadixTree


@dataclass
class CachePage:
    """One cached file page: the PAGE_CACHE object plus its identity."""

    obj: KernelObject
    ino: int
    index: int

    @property
    def dirty(self) -> bool:
        return self.obj.frame.dirty

    def clean(self) -> None:
        self.obj.frame.dirty = False

    def __hash__(self) -> int:
        return hash((self.ino, self.index))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, CachePage)
            and other.ino == self.ino
            and other.index == self.index
        )


class PageCache:
    """Per-inode page index, backed by a kernel radix tree.

    ``alloc_node``/``free_node`` create and destroy the RADIX_NODE slab
    objects for interior nodes, so index metadata shows up in the
    footprint breakdowns exactly as §3.3 describes.
    """

    def __init__(
        self,
        ino: int,
        alloc_node: Callable[[], KernelObject],
        free_node: Callable[[KernelObject], None],
    ) -> None:
        self.ino = ino
        self._alloc_node = alloc_node
        self._free_node = free_node
        self.tree = RadixTree(
            on_node_alloc=self._node_alloc, on_node_free=self._node_free
        )

    def _node_alloc(self, node) -> None:
        node.token = self._alloc_node()

    def _node_free(self, node) -> None:
        if node.token is not None:
            self._free_node(node.token)

    def lookup(self, index: int) -> Optional[CachePage]:
        return self.tree.lookup(index)

    def root_node_token(self) -> Optional[KernelObject]:
        """The RADIX_NODE object backing the root — the filesystem charges
        one index-structure reference per lookup against it (§3.1: page
        cache radix walks are themselves memory-intensive)."""
        root = self.tree._root  # noqa: SLF001 - modeled pointer chase
        return root.token if root is not None else None

    def insert(self, page: CachePage) -> None:
        if not self.tree.insert(page.index, page):
            raise SimulationError(
                f"page {page.index} of inode {self.ino} already cached"
            )

    def remove(self, index: int) -> Optional[CachePage]:
        return self.tree.delete(index)

    def pages(self) -> List[CachePage]:
        return [page for _idx, page in self.tree.items()]

    def dirty_pages(self) -> List[CachePage]:
        return [p for p in self.pages() if p.dirty]

    def __len__(self) -> int:
        return len(self.tree)


class PageCacheManager:
    """Global page-cache accounting, LRU ordering, and pressure handling."""

    def __init__(self, max_pages: int) -> None:
        if max_pages <= 0:
            raise ValueError(f"page cache cap must be positive: {max_pages}")
        self.max_pages = max_pages
        self.lru: ActiveInactiveLRU[CachePage] = ActiveInactiveLRU()
        self._caches: Dict[int, PageCache] = {}
        self.inserted = 0
        self.evicted = 0

    def register(self, cache: PageCache) -> None:
        if cache.ino in self._caches:
            raise SimulationError(f"page cache for inode {cache.ino} exists")
        self._caches[cache.ino] = cache

    def unregister(self, ino: int) -> None:
        self._caches.pop(ino, None)

    def cache_for(self, ino: int) -> Optional[PageCache]:
        return self._caches.get(ino)

    @property
    def total_pages(self) -> int:
        return len(self.lru)

    def note_insert(self, page: CachePage) -> None:
        self.lru.insert(page)
        self.inserted += 1

    def note_access(self, page: CachePage) -> None:
        self.lru.touch(page)

    def note_remove(self, page: CachePage) -> None:
        self.lru.remove(page)

    def over_pressure(self, incoming: int = 1) -> int:
        """How many pages must be evicted to admit ``incoming`` more."""
        excess = self.total_pages + incoming - self.max_pages
        return max(0, excess)

    def eviction_victims(self, n: int) -> List[Tuple[PageCache, CachePage]]:
        """Pick the ``n`` coldest pages with their owning caches.

        The caller (filesystem) writes back dirty victims, frees the
        backing objects, and calls :meth:`note_remove`; pages whose cache
        vanished already are skipped defensively.
        """
        victims: List[Tuple[PageCache, CachePage]] = []
        for page in self.lru.eviction_candidates(n):
            cache = self._caches.get(page.ino)
            if cache is not None:
                victims.append((cache, page))
        return victims

    def all_pages(self) -> List[CachePage]:
        return [p for cache in self._caches.values() for p in cache.pages()]

    def __repr__(self) -> str:
        return f"PageCacheManager({self.total_pages}/{self.max_pages} pages)"
