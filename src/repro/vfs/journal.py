"""jbd2-style filesystem journal.

Metadata updates (inode changes, extent allocations, directory edits)
append records into the running transaction's journal buffer pages —
Table 1's JOURNAL objects. Transactions commit when full, on fsync, or
when the periodic commit timer fires; committed buffers are written to
the log sequentially and then released, which is why journal pages are
short-lived kernel objects (§3.3's "in-memory journals").
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.core.objtypes import KernelObjectType
from repro.core.units import PAGE_SIZE

if TYPE_CHECKING:
    from repro.core.context import KernelContext
    from repro.vfs.inode import Inode

#: One metadata record (journal descriptor entry) is 64 bytes.
RECORD_BYTES = 64
RECORDS_PER_PAGE = PAGE_SIZE // RECORD_BYTES


class Journal:
    """One running transaction at a time, jbd2-fashion."""

    def __init__(self, ctx: "KernelContext", *, max_txn_pages: int = 64) -> None:
        if max_txn_pages <= 0:
            raise ValueError(f"transaction must hold pages: {max_txn_pages}")
        self.ctx = ctx
        self.max_txn_pages = max_txn_pages
        self._txn_pages: List = []  # KernelObject (JOURNAL)
        self._records_in_last = RECORDS_PER_PAGE  # force a page on first record
        self.commits = 0
        self.records = 0
        self.pages_written = 0

    @property
    def txn_pages(self) -> int:
        return len(self._txn_pages)

    def log_metadata(
        self, inode: Optional["Inode"], nrecords: int = 1, *, cpu: int = 0
    ) -> None:
        """Append metadata records for ``inode`` to the running txn."""
        if nrecords <= 0:
            raise ValueError(f"need at least one record: {nrecords}")
        self.records += nrecords
        for _ in range(nrecords):
            if self._records_in_last >= RECORDS_PER_PAGE:
                page = self.ctx.alloc_object(
                    KernelObjectType.JOURNAL, inode, cpu=cpu
                )
                self._txn_pages.append(page)
                self._records_in_last = 0
            self._records_in_last += 1
            # Writing the record touches the journal buffer page.
            self.ctx.access_object(
                self._txn_pages[-1], RECORD_BYTES, write=True, cpu=cpu
            )
        if len(self._txn_pages) >= self.max_txn_pages:
            self.commit(cpu=cpu, background=True)

    def commit(self, *, cpu: int = 0, background: bool = False) -> int:
        """Write the running transaction to the log and release buffers.

        Returns the number of pages committed. ``background=True`` models
        the periodic jbd2 commit thread; fsync passes False and stalls the
        caller.
        """
        if not self._txn_pages:
            return 0
        # Detach the transaction first: freeing buffers advances the clock,
        # which may fire the periodic commit daemon re-entrantly.
        pages = self._txn_pages
        self._txn_pages = []
        self._records_in_last = RECORDS_PER_PAGE
        npages = len(pages)
        self.ctx.storage_io(
            npages * PAGE_SIZE, write=True, sequential=True, background=background
        )
        for page in pages:
            self.ctx.free_object(page, cpu=cpu)
        self.commits += 1
        self.pages_written += npages
        return npages

    def __repr__(self) -> str:
        return (
            f"Journal(txn_pages={self.txn_pages}, commits={self.commits}, "
            f"records={self.records})"
        )
