"""Filesystem substrate: an ext4-like stack built from the kernel objects
in Table 1 — inodes, dentries, page cache, extents, a jbd2-style journal,
bio/blk-mq block layer, NVMe device, adaptive readahead, and writeback."""

from repro.vfs.blkmq import BlockMQ
from repro.vfs.dentry import Dentry, DentryCache
from repro.vfs.extent import ExtentTree
from repro.vfs.filesystem import FileHandle, Filesystem
from repro.vfs.inode import Inode, InodeTable
from repro.vfs.journal import Journal
from repro.vfs.pagecache import PageCache, PageCacheManager
from repro.vfs.readahead import ReadaheadState
from repro.vfs.storage import NVMeDevice
from repro.vfs.writeback import WritebackDaemon

__all__ = [
    "Inode",
    "InodeTable",
    "Dentry",
    "DentryCache",
    "PageCache",
    "PageCacheManager",
    "ExtentTree",
    "Journal",
    "BlockMQ",
    "NVMeDevice",
    "ReadaheadState",
    "WritebackDaemon",
    "Filesystem",
    "FileHandle",
]
