"""Block layer: bio submission through multi-queue dispatch.

Every block I/O allocates a bio (Table 1's *block* object) and a blk-mq
request on the submitting CPU's hardware queue (Table 1's *blk_mq*), pays
the device transfer cost, and frees both at completion — the block-layer
object churn visible in Fig 2a's BLOCK_IO slice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from repro.core.objtypes import KernelObjectType
from repro.core.units import PAGE_SIZE

if TYPE_CHECKING:
    from repro.core.context import KernelContext
    from repro.vfs.inode import Inode


@dataclass
class BioResult:
    """Completion record for one submitted bio."""

    nbytes: int
    write: bool
    cost_ns: int


class BlockMQ:
    """Multi-queue block layer front end."""

    def __init__(self, ctx: "KernelContext") -> None:
        self.ctx = ctx
        self.submitted = 0
        self.bytes_moved = 0
        #: Per-CPU dispatch counters (the "parallel dispatch" of Table 1).
        self.per_cpu_dispatch: List[int] = [0] * ctx.num_cpus

    def submit(
        self,
        nbytes: int,
        *,
        write: bool,
        sequential: bool,
        inode: Optional["Inode"] = None,
        cpu: int = 0,
        background: bool = False,
    ) -> BioResult:
        """One block I/O: allocate bio + request, transfer, complete."""
        if nbytes <= 0:
            raise ValueError(f"bio must move data: {nbytes}")
        bio = self.ctx.alloc_object(KernelObjectType.BLOCK, inode, cpu=cpu)
        req = self.ctx.alloc_object(KernelObjectType.BLK_MQ, inode, cpu=cpu)
        # Building the request touches both structures.
        self.ctx.access_object(bio, write=True, cpu=cpu)
        self.ctx.access_object(req, write=True, cpu=cpu)
        cost = self.ctx.storage_io(
            nbytes, write=write, sequential=sequential, background=background
        )
        self.ctx.free_object(req, cpu=cpu)
        self.ctx.free_object(bio, cpu=cpu)
        self.submitted += 1
        self.bytes_moved += nbytes
        self.per_cpu_dispatch[cpu % len(self.per_cpu_dispatch)] += 1
        return BioResult(nbytes=nbytes, write=write, cost_ns=cost)

    def submit_pages(
        self,
        npages: int,
        *,
        write: bool,
        sequential: bool,
        inode: Optional["Inode"] = None,
        cpu: int = 0,
        background: bool = False,
    ) -> BioResult:
        return self.submit(
            npages * PAGE_SIZE,
            write=write,
            sequential=sequential,
            inode=inode,
            cpu=cpu,
            background=background,
        )

    def __repr__(self) -> str:
        return f"BlockMQ(submitted={self.submitted}, bytes={self.bytes_moved})"
