"""Dentry cache: path → inode name resolution.

Dentries are Table 1 slab objects ("dentry — name resolution for each
file"); §3.3 lists them among the short-lived structures "frequently
queried, allocated, and deleted". The cache keeps one dentry per path and
shrinks from the LRU tail under pressure, which is where dentry churn
comes from.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional

from repro.alloc.base import KernelObject
from repro.core.errors import VFSError
from repro.vfs.inode import Inode


class Dentry:
    """One name-resolution entry."""

    __slots__ = ("path", "inode", "backing")

    def __init__(self, path: str, inode: Inode, backing: KernelObject) -> None:
        self.path = path
        self.inode = inode
        #: The DENTRY kernel object holding this entry.
        self.backing = backing

    def __repr__(self) -> str:
        return f"Dentry({self.path!r} -> ino {self.inode.ino})"


class DentryCache:
    """LRU-ordered path → dentry map with a configurable capacity."""

    def __init__(self, max_entries: int = 100_000) -> None:
        if max_entries <= 0:
            raise ValueError(f"dentry cache needs capacity: {max_entries}")
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, Dentry]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def lookup(self, path: str) -> Optional[Dentry]:
        dentry = self._entries.get(path)
        if dentry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(path)
        self.hits += 1
        return dentry

    def insert(self, dentry: Dentry) -> List[Dentry]:
        """Add a dentry; returns any entries shrunk off the LRU tail (the
        caller must free their backing slab objects)."""
        if dentry.path in self._entries:
            raise VFSError(f"dentry exists: {dentry.path}")
        self._entries[dentry.path] = dentry
        evicted: List[Dentry] = []
        while len(self._entries) > self.max_entries:
            _, old = self._entries.popitem(last=False)
            evicted.append(old)
        return evicted

    def remove(self, path: str) -> Optional[Dentry]:
        return self._entries.pop(path, None)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, path: str) -> bool:
        return path in self._entries

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:
        return f"DentryCache({len(self)}/{self.max_entries})"
