"""Writeback daemon: periodic dirty-page flushing and journal commits.

Models the kernel's flusher threads plus jbd2's periodic commit. Work is
submitted as *background* I/O — it consumes device bandwidth and CPU but
does not stall the foreground operation that happened to advance the
clock past the timer.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.hotpath import hotpath_enabled
from repro.core.units import MS

if TYPE_CHECKING:
    from repro.vfs.filesystem import Filesystem

#: Flusher wakeup period. Linux uses 5s dirty_writeback_centisecs; the
#: simulator compresses time, so 50ms keeps the same "many ops between
#: flushes" relationship.
WRITEBACK_PERIOD_NS = 50 * MS
#: Max pages flushed per wakeup (like MAX_WRITEBACK_PAGES batching).
WRITEBACK_BATCH = 256


class WritebackDaemon:
    """Flush dirty page-cache pages and commit the journal periodically."""

    def __init__(
        self,
        fs: "Filesystem",
        *,
        period_ns: int = WRITEBACK_PERIOD_NS,
        batch_pages: int = WRITEBACK_BATCH,
    ) -> None:
        if period_ns <= 0:
            raise ValueError(f"period must be positive: {period_ns}")
        if batch_pages <= 0:
            raise ValueError(f"batch must be positive: {batch_pages}")
        self.fs = fs
        self.period_ns = period_ns
        self.batch_pages = batch_pages
        self.wakeups = 0
        self.pages_flushed = 0
        self._started = False
        self._hot = hotpath_enabled()

    def start(self) -> None:
        """Register with the clock; safe to call once."""
        if self._started:
            return
        self.fs.ctx.clock.schedule_periodic(self.period_ns, self._wake)
        self._started = True

    def _wake(self, now_ns: int) -> None:
        self.wakeups += 1
        self.flush(self.batch_pages)
        self.fs.journal.commit(background=True)

    def flush(self, max_pages: int) -> int:
        """Write back up to ``max_pages`` dirty pages (oldest inodes first)."""
        flushed = 0
        submit = self.fs.blk.submit_pages
        if self._hot:
            # Walk the per-inode trees directly, in all_pages() order
            # (cache registration order, then page index), without
            # materializing the full page list each wakeup, and stop as
            # soon as the batch quota is met. Same pages flushed in the
            # same order; ``REPRO_NO_HOTPATH=1`` keeps the full-list scan.
            for cache in self.fs.cache_mgr._caches.values():  # noqa: SLF001
                if flushed >= max_pages:
                    break
                for _idx, page in cache.tree.items():
                    if flushed >= max_pages:
                        break
                    frame = page.obj.frame
                    if not frame.dirty:
                        continue
                    submit(1, write=True, sequential=True, background=True)
                    frame.dirty = False
                    flushed += 1
            self.pages_flushed += flushed
            return flushed
        for page in self.fs.cache_mgr.all_pages():
            if flushed >= max_pages:
                break
            if not page.dirty:
                continue
            submit(1, write=True, sequential=True, background=True)
            page.clean()
            flushed += 1
        self.pages_flushed += flushed
        return flushed

    def __repr__(self) -> str:
        return f"WritebackDaemon(wakeups={self.wakeups}, flushed={self.pages_flushed})"
