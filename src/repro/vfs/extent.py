"""Extent trees: grouping contiguous disk blocks (Table 1's *extent*).

ext4 maps logical file ranges to contiguous disk block runs; each run is
an extent_status slab object. The simulator allocates one extent per
fixed-size logical span on first write, looks extents up on every I/O,
and frees them all at truncate/unlink.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.alloc.base import KernelObject
from repro.core.units import KB, PAGE_SIZE

#: One extent covers 256KB of logical file space (64 pages) — a typical
#: ext4 allocation run under streaming writes.
EXTENT_SPAN_BYTES = 256 * KB
EXTENT_SPAN_PAGES = EXTENT_SPAN_BYTES // PAGE_SIZE


class ExtentTree:
    """Per-inode map: logical span index → extent object."""

    def __init__(self) -> None:
        self._extents: Dict[int, KernelObject] = {}
        self.lookups = 0

    @staticmethod
    def span_for_page(page_index: int) -> int:
        return page_index // EXTENT_SPAN_PAGES

    def lookup(self, page_index: int) -> Optional[KernelObject]:
        """Find the extent covering a page (None → hole, needs allocation)."""
        self.lookups += 1
        return self._extents.get(self.span_for_page(page_index))

    def insert(self, page_index: int, extent: KernelObject) -> None:
        self._extents[self.span_for_page(page_index)] = extent

    def remove_all(self) -> List[KernelObject]:
        """Detach every extent (truncate/unlink); caller frees them."""
        extents = list(self._extents.values())
        self._extents.clear()
        return extents

    def __len__(self) -> int:
        return len(self._extents)

    def __repr__(self) -> str:
        return f"ExtentTree(extents={len(self)})"
