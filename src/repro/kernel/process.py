"""Process model: application-side memory for workload drivers.

Workloads own memtables, value buffers, application caches, and JVM-ish
heaps; this class models them as named regions of anonymous pages that
can be allocated, touched (read/written with a chosen locality), and
freed — producing the application-page footprint and references the
Figure 2 breakdowns compare kernel objects against.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from repro.core.errors import SimulationError
from repro.core.units import PAGE_SIZE, pages_for
from repro.mem.frame import PageFrame, PageOwner

if TYPE_CHECKING:
    from repro.kernel.kernel import Kernel

#: Identity-compared on the inlined charge path (see Kernel.access_frame).
_OWNER_APP = PageOwner.APP


class Process:
    """One application process and its anonymous memory regions."""

    def __init__(self, kernel: "Kernel", name: str) -> None:
        self.kernel = kernel
        self.name = name
        self._regions: Dict[str, List[PageFrame]] = {}
        # Bound once: contexts without the batched API (test fakes) get
        # the legacy per-frame loop in touch().
        self._access_frames = getattr(kernel, "access_frames", None)
        self._access_frame = getattr(kernel, "access_frame", None)
        #: Mirrors Kernel._flat: when set, single-page touches charge
        #: inline instead of calling access_frame (same body, no call).
        self._flat = getattr(kernel, "_flat", False)
        if self._flat:
            # Stable containers bound once for the inlined charge body
            # (none are ever reassigned by the kernel).
            self._tiers = kernel._tiers  # noqa: SLF001
            self._refs_by_tier_n = kernel._refs_by_tier_n  # noqa: SLF001
            self._access_ns_n = kernel._access_ns_n  # noqa: SLF001
            self._refs_by_owner = kernel.refs_by_owner
            self._clock = kernel.clock

    def alloc_region(
        self, name: str, nbytes: int, *, cpu: int = 0, huge: bool = False
    ) -> int:
        """mmap-style anonymous region; returns pages allocated.

        ``huge=True`` requests THP backing (2MB compound groups, §5)."""
        if name in self._regions:
            raise SimulationError(f"region {name!r} exists in {self.name}")
        npages = pages_for(nbytes)
        self._regions[name] = self.kernel.alloc_app_pages(
            npages, cpu=cpu, huge=huge
        )
        return npages

    def extend_region(self, name: str, nbytes: int, *, cpu: int = 0) -> int:
        """Grow a region (apps malloc incrementally, interleaved with I/O,
        rather than reserving everything up front)."""
        frames = self._regions.get(name)
        if frames is None:
            raise SimulationError(f"no region {name!r} in {self.name}")
        npages = pages_for(nbytes)
        frames.extend(self.kernel.alloc_app_pages(npages, cpu=cpu))
        return npages

    def free_region(self, name: str) -> int:
        frames = self._regions.pop(name, None)
        if frames is None:
            raise SimulationError(f"no region {name!r} in {self.name}")
        self.kernel.free_app_pages(frames)
        return len(frames)

    def has_region(self, name: str) -> bool:
        return name in self._regions

    def region_pages(self, name: str) -> int:
        return len(self._regions.get(name, ()))

    def touch(
        self,
        name: str,
        nbytes: int,
        *,
        write: bool = False,
        page_hint: int = 0,
        cpu: int = 0,
    ) -> int:
        """Reference ``nbytes`` of a region starting at ``page_hint``
        (wrapping), returning the charged cost. Models the app-side work
        of an operation (hashing a key, serializing a value, ...)."""
        frames = self._regions.get(name)
        if not frames:
            raise SimulationError(f"no region {name!r} in {self.name}")
        n = len(frames)
        index = page_hint % n
        access_frames = self._access_frames
        if access_frames is None:
            # Context without the batched API (test fakes): legacy loop.
            cost = 0
            remaining = nbytes
            while remaining > 0:
                chunk = min(remaining, PAGE_SIZE)
                frame = frames[index]
                if frame.live:
                    cost += self.kernel.access_frame(
                        frame, chunk, write=write, cpu=cpu
                    )
                remaining -= chunk
                index = (index + 1) % n
            return cost
        if nbytes <= PAGE_SIZE:
            # Single-page touch (the common case for point operations):
            # one direct charge, no run list.
            frame = frames[index]
            if frame.freed_at is not None:
                return 0
            if not self._flat:
                return self._access_frame(frame, nbytes, write=write, cpu=cpu)
            # Kernel.access_frame's flat body, inlined — this is the
            # single hottest call site in the operation loop (one charge
            # per app-side region touch). Keep in lockstep with
            # Kernel.access_frame; the hotpath equivalence tests guard
            # bit-identity against the legacy path.
            k = self.kernel
            tier_name = frame.tier_name
            owner = frame.owner
            tier = self._tiers[tier_name]
            if write:
                tier.bytes_written += nbytes
                cost = tier.write_latency_ns + int(
                    nbytes * tier.slowdown / tier.write_bw
                )
            else:
                tier.bytes_read += nbytes
                cost = tier.read_latency_ns + int(
                    nbytes * tier.slowdown / tier.read_bw
                )
            self._refs_by_tier_n[tier_name][owner is not _OWNER_APP] += 1
            cell = self._access_ns_n[owner][tier_name]
            cell[0] += cost
            cell[1] += 1
            clock = self._clock
            frame.last_access = clock._now  # noqa: SLF001
            frame.lru_age = 0
            journal = frame.journal
            if journal is not None:
                journal[frame.fid] = frame
            if write:
                frame.writes += 1
                frame.dirty = True
            else:
                frame.reads += 1
            # clock.advance(cost), inlined (cost >= 0 by construction):
            clock._now = now = clock._now + cost  # noqa: SLF001
            if now >= clock._next_deadline:  # noqa: SLF001
                clock._fire_due()  # noqa: SLF001
            if owner is _OWNER_APP:
                k.app_refs += 1
                k.app_ref_bytes += nbytes
            else:
                k.kernel_refs += 1
                k.kernel_ref_bytes += nbytes
            self._refs_by_owner[owner] += 1
            return cost
        # Build the run of live frames in access order, then charge it in
        # one batched call. Only the final chunk can be partial, so the
        # batch's PAGE_SIZE-chunking reproduces this loop's chunks exactly;
        # skipped (dead) frames drop their chunk from the charged total,
        # as before. Prechecking liveness is safe: nothing that runs during
        # the charges (daemons) frees anonymous app frames.
        run: List[PageFrame] = []
        charge = 0
        remaining = nbytes
        while remaining > 0:
            chunk = PAGE_SIZE if remaining >= PAGE_SIZE else remaining
            frame = frames[index]
            if frame.freed_at is None:
                run.append(frame)
                charge += chunk
            remaining -= chunk
            index += 1
            if index == n:
                index = 0
        return access_frames(run, charge, write=write, cpu=cpu)

    def total_pages(self) -> int:
        return sum(len(frames) for frames in self._regions.values())

    def teardown(self) -> None:
        """Free every region (process exit)."""
        for name in list(self._regions):
            self.free_region(name)

    def __repr__(self) -> str:
        return f"Process({self.name}, regions={len(self._regions)}, pages={self.total_pages()})"
