"""Process model: application-side memory for workload drivers.

Workloads own memtables, value buffers, application caches, and JVM-ish
heaps; this class models them as named regions of anonymous pages that
can be allocated, touched (read/written with a chosen locality), and
freed — producing the application-page footprint and references the
Figure 2 breakdowns compare kernel objects against.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from repro.core.errors import SimulationError
from repro.core.units import PAGE_SIZE, pages_for
from repro.mem.frame import PageFrame

if TYPE_CHECKING:
    from repro.kernel.kernel import Kernel


class Process:
    """One application process and its anonymous memory regions."""

    def __init__(self, kernel: "Kernel", name: str) -> None:
        self.kernel = kernel
        self.name = name
        self._regions: Dict[str, List[PageFrame]] = {}

    def alloc_region(
        self, name: str, nbytes: int, *, cpu: int = 0, huge: bool = False
    ) -> int:
        """mmap-style anonymous region; returns pages allocated.

        ``huge=True`` requests THP backing (2MB compound groups, §5)."""
        if name in self._regions:
            raise SimulationError(f"region {name!r} exists in {self.name}")
        npages = pages_for(nbytes)
        self._regions[name] = self.kernel.alloc_app_pages(
            npages, cpu=cpu, huge=huge
        )
        return npages

    def extend_region(self, name: str, nbytes: int, *, cpu: int = 0) -> int:
        """Grow a region (apps malloc incrementally, interleaved with I/O,
        rather than reserving everything up front)."""
        frames = self._regions.get(name)
        if frames is None:
            raise SimulationError(f"no region {name!r} in {self.name}")
        npages = pages_for(nbytes)
        frames.extend(self.kernel.alloc_app_pages(npages, cpu=cpu))
        return npages

    def free_region(self, name: str) -> int:
        frames = self._regions.pop(name, None)
        if frames is None:
            raise SimulationError(f"no region {name!r} in {self.name}")
        self.kernel.free_app_pages(frames)
        return len(frames)

    def has_region(self, name: str) -> bool:
        return name in self._regions

    def region_pages(self, name: str) -> int:
        return len(self._regions.get(name, ()))

    def touch(
        self,
        name: str,
        nbytes: int,
        *,
        write: bool = False,
        page_hint: int = 0,
        cpu: int = 0,
    ) -> int:
        """Reference ``nbytes`` of a region starting at ``page_hint``
        (wrapping), returning the charged cost. Models the app-side work
        of an operation (hashing a key, serializing a value, ...)."""
        frames = self._regions.get(name)
        if not frames:
            raise SimulationError(f"no region {name!r} in {self.name}")
        cost = 0
        remaining = nbytes
        index = page_hint % len(frames)
        while remaining > 0:
            chunk = min(remaining, PAGE_SIZE)
            frame = frames[index]
            if frame.live:
                cost += self.kernel.access_frame(frame, chunk, write=write, cpu=cpu)
            remaining -= chunk
            index = (index + 1) % len(frames)
        return cost

    def total_pages(self) -> int:
        return sum(len(frames) for frames in self._regions.values())

    def teardown(self) -> None:
        """Free every region (process exit)."""
        for name in list(self._regions):
            self.free_region(name)

    def __repr__(self) -> str:
        return f"Process({self.name}, regions={len(self._regions)}, pages={self.total_pages()})"
