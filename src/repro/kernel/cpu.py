"""CPU bookkeeping: round-robin assignment for workload threads.

Figure 3(a)'s per-CPU knode lists live in :mod:`repro.kloc.percpu_cache`;
this module only decides *which* CPU a workload thread's next operation
runs on, so object allocations and fast-path lookups are spread across
cores the way a 16-thread benchmark spreads them.
"""

from __future__ import annotations


class CpuSet:
    """Round-robin CPU dispenser with per-CPU op counters."""

    def __init__(self, num_cpus: int) -> None:
        if num_cpus <= 0:
            raise ValueError(f"need at least one CPU: {num_cpus}")
        self.num_cpus = num_cpus
        self._next = 0
        self.ops_per_cpu = [0] * num_cpus

    def next_cpu(self) -> int:
        """CPU for the next operation (round-robin across threads)."""
        cpu = self._next
        self._next = (self._next + 1) % self.num_cpus
        self.ops_per_cpu[cpu] += 1
        return cpu

    def cpu_for_thread(self, thread_id: int) -> int:
        """Stable CPU assignment for a pinned thread."""
        return thread_id % self.num_cpus

    def __repr__(self) -> str:
        return f"CpuSet(cpus={self.num_cpus})"
