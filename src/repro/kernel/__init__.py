"""Kernel facade: wires memory, allocators, VFS, networking, KLOCs, and
the active tiering policy into one simulated OS instance."""

from repro.kernel.cpu import CpuSet
from repro.kernel.kernel import Kernel
from repro.kernel.process import Process
from repro.kernel.syscalls import SyscallInterface

__all__ = ["Kernel", "SyscallInterface", "Process", "CpuSet"]
