"""System-call layer: the thin boundary workloads cross into the kernel.

§5 ("KLOC System call cost"): entering a syscall under KLOCs just sets a
flag marking the inode active — "a fast operation". Each syscall here
charges a fixed entry/exit cost and dispatches to the filesystem or
network stack; workloads never touch those subsystems directly, which
keeps the operation mix measurable in one place.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from repro.core.units import NS
from repro.net.socket import Socket
from repro.vfs.filesystem import FileHandle

if TYPE_CHECKING:
    from repro.kernel.kernel import Kernel

#: Syscall entry/exit (trap, register save, return) — ~150ns on Broadwell.
SYSCALL_COST_NS = 150 * NS


class SyscallInterface:
    """open/read/write/fsync/close/unlink + socket/send/recv/close."""

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel
        self.counts: Dict[str, int] = {}

    def _enter(self, name: str) -> None:
        self.counts[name] = self.counts.get(name, 0) + 1
        self.kernel.clock.advance(SYSCALL_COST_NS)

    # -- filesystem ------------------------------------------------------

    def creat(self, path: str, *, cpu: int = 0) -> FileHandle:
        self._enter("creat")
        return self.kernel.fs.create(path, cpu=cpu)

    def open(self, path: str, *, cpu: int = 0) -> FileHandle:
        self._enter("open")
        return self.kernel.fs.open(path, cpu=cpu)

    def read(self, fh: FileHandle, offset: int, nbytes: int, *, cpu: int = 0) -> int:
        self._enter("read")
        return self.kernel.fs.read(fh, offset, nbytes, cpu=cpu)

    def write(self, fh: FileHandle, offset: int, nbytes: int, *, cpu: int = 0) -> int:
        self._enter("write")
        return self.kernel.fs.write(fh, offset, nbytes, cpu=cpu)

    def fsync(self, fh: FileHandle, *, cpu: int = 0, background: bool = False) -> int:
        self._enter("fsync")
        return self.kernel.fs.fsync(fh, cpu=cpu, background=background)

    def close(self, fh: FileHandle, *, cpu: int = 0) -> None:
        self._enter("close")
        self.kernel.fs.close(fh, cpu=cpu)

    def unlink(self, path: str, *, cpu: int = 0) -> None:
        self._enter("unlink")
        self.kernel.fs.unlink(path, cpu=cpu)

    # -- network ---------------------------------------------------------

    def socket(self, port: int, *, cpu: int = 0) -> Socket:
        self._enter("socket")
        return self.kernel.net.socket(port, cpu=cpu)

    def send(self, sock: Socket, nbytes: int, *, cpu: int = 0) -> int:
        self._enter("send")
        return self.kernel.net.send(sock, nbytes, cpu=cpu)

    def recv(self, sock: Socket, *, cpu: int = 0) -> int:
        self._enter("recv")
        return self.kernel.net.recv(sock, cpu=cpu)

    def close_socket(self, sock: Socket, *, cpu: int = 0) -> None:
        self._enter("close_socket")
        self.kernel.net.close(sock, cpu=cpu)

    def total_syscalls(self) -> int:
        return sum(self.counts.values())

    def __repr__(self) -> str:
        return f"SyscallInterface(total={self.total_syscalls()})"
