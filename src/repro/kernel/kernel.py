"""The Kernel: the one real implementation of the KernelContext protocol.

A :class:`Kernel` is a complete simulated OS instance: memory topology,
the four allocator families, the migration engine, the ext4-like
filesystem, the network stack, the KLOC machinery (when the policy uses
it), and the metric counters every experiment reads. The active
:class:`~repro.policies.base.TieringPolicy` decides placement; the kernel
mechanically executes it.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.alloc.base import KernelObject
from repro.alloc.buddy import PageAllocator
from repro.alloc.kloc_alloc import KlocAllocator
from repro.alloc.slab import SlabAllocator
from repro.alloc.vmalloc import VmallocAllocator
from repro.core.clock import Clock
from repro.core.config import PlatformSpec
from repro.core.errors import AllocationError, SimulationError
from repro.core.objtypes import AllocatorKind, KernelObjectType
from repro.core.rng import DeterministicRNG
from repro.kernel.cpu import CpuSet
from repro.kloc.manager import KlocManager
from repro.kloc.migrationd import KlocMigrationDaemon
from repro.kloc.registry import KlocRegistry
from repro.mem.frame import PageFrame, PageOwner
from repro.mem.hwcache import HardwareDRAMCache
from repro.mem.migration import MigrationEngine
from repro.mem.node import NumaNode
from repro.mem.thp import CompoundRegistry
from repro.mem.topology import MemoryTopology
from repro.net.stack import NetworkStack
from repro.vfs.filesystem import Filesystem
from repro.vfs.inode import Inode
from repro.vfs.storage import NVMeDevice
from repro.vfs.writeback import WritebackDaemon


class Kernel:
    """One simulated OS instance under one tiering policy."""

    def __init__(
        self,
        platform: PlatformSpec,
        policy,
        *,
        registry: Optional[KlocRegistry] = None,
        seed: int = 42,
        page_cache_max_pages: Optional[int] = None,
        readahead_enabled: bool = True,
        retired_limit: Optional[int] = None,
    ) -> None:
        self.platform = platform
        self.policy = policy
        self.clock = Clock()
        self.rng = DeterministicRNG(seed)
        self.num_cpus = platform.num_cpus
        self.cpus = CpuSet(platform.num_cpus)

        self.topology = MemoryTopology(
            [platform.fast, platform.slow], retired_limit=retired_limit
        )
        # Direct name → tier map for the access hot path (skips the
        # topology's checked lookup on every charged reference).
        self._tiers = self.topology.tiers
        self.engine = MigrationEngine(self.topology, self.clock, platform.migration)
        self.storage = NVMeDevice(platform.storage)
        self.thp = CompoundRegistry()

        self.slab = SlabAllocator(self.topology, self.clock)
        self.kloc_alloc = KlocAllocator(self.topology, self.clock)
        self.page_alloc = PageAllocator(self.topology, self.clock)
        self.vmalloc = VmallocAllocator(self.topology, self.clock)

        # NUMA (Optane Memory Mode) wiring: each tier is a socket with an
        # optional hardware DRAM cache in front.
        self.numa_mode = bool(getattr(policy, "numa_mode", False))
        self.task_node = 0
        self.nodes: Dict[str, NumaNode] = {}
        if self.numa_mode:
            for node_id, spec in enumerate([platform.fast, platform.slow]):
                cache = (
                    HardwareDRAMCache(platform.hw_cache_bytes)
                    if platform.hw_cache_bytes
                    else None
                )
                self.nodes[spec.name] = NumaNode(
                    node_id, self.topology.tier(spec.name), cache
                )

        # KLOC machinery (only when the policy asks for it).
        self.kloc_registry = registry if registry is not None else KlocRegistry()
        self.kloc_manager: Optional[KlocManager] = None
        self.kloc_daemon: Optional[KlocMigrationDaemon] = None
        if policy.uses_kloc:
            self.kloc_manager = KlocManager(
                self.clock,
                num_cpus=platform.num_cpus,
                registry=self.kloc_registry,
                spec=platform.kloc,
            )
            self.kloc_daemon = KlocMigrationDaemon(
                self.kloc_manager,
                self.engine,
                self.topology,
                fast_tier=platform.fast.name,
                slow_tier=platform.slow.name,
                kloc_allocator=self.kloc_alloc,
                spec=platform.kloc,
                background_charge=self.background_cpu_work,
            )
            self.kloc_manager.on_knode_inactive = policy.on_knode_inactive
            self.kloc_manager.on_knode_active = policy.on_knode_active
            self.kloc_manager.on_knode_deleted = (
                lambda knode: self.kloc_daemon.unmark(knode.knode_id)
            )

        # Metric counters (Fig 2c's reference attribution).
        self.kernel_refs = 0
        self.kernel_ref_bytes = 0
        self.app_refs = 0
        self.app_ref_bytes = 0
        self.refs_by_owner: Dict[PageOwner, int] = {o: 0 for o in PageOwner}
        #: (tier_name, is_kernel) → reference count, for placement quality
        #: diagnostics (what fraction of traffic actually hit fast memory).
        self.refs_by_tier: Dict[tuple, int] = {}
        #: (owner, tier) → cumulative access ns, for time decomposition.
        self.access_ns_by: Dict[tuple, int] = {}
        self.storage_ns_total = 0
        self.background_ns_total = 0
        #: Optional tracepoint sink (repro.core.trace.Tracer); costs one
        #: None-check per event when unset.
        self.tracer = None

        # Subsystems.
        if page_cache_max_pages is None:
            # Tight enough that steady-state workloads see continual page
            # cache reclaim — the churn that recycles cold (including
            # fast-tier-stranded) pages and bounds cache-page lifetimes.
            total = platform.fast.capacity_pages + platform.slow.capacity_pages
            page_cache_max_pages = max(64, int(total * 0.4))
        self.fs = Filesystem(
            self,
            page_cache_max_pages=page_cache_max_pages,
            readahead_enabled=readahead_enabled,
        )
        demux = policy.early_demux if policy.early_demux is not None else policy.uses_kloc
        self.net = NetworkStack(self, early_demux=demux)
        self.writeback = WritebackDaemon(
            self.fs, period_ns=platform.writeback_period_ns
        )

        policy.attach(self)

    def start(self) -> None:
        """Start background daemons (writeback + policy scanners)."""
        self.writeback.start()
        self.policy.start_daemons()

    # ------------------------------------------------------------------
    # KernelContext: kernel-object lifecycle
    # ------------------------------------------------------------------

    def alloc_object(
        self,
        otype: KernelObjectType,
        inode: Optional[Inode] = None,
        *,
        cpu: int = 0,
    ) -> KernelObject:
        covered = (
            self.kloc_manager is not None and self.kloc_registry.covered(otype)
        )
        tier_order = self.policy.tier_order_kernel(
            otype, inode, covered=covered, cpu=cpu
        )
        knode_id = inode.knode_id if (inode is not None and covered) else None

        try:
            obj = self._route_alloc(otype, tier_order, knode_id, covered)
        except AllocationError:
            # Memory pressure: shrink the page cache, then retry once.
            self._emergency_reclaim(cpu=cpu)
            obj = self._route_alloc(otype, tier_order, knode_id, covered)

        self._fix_node_id(obj.frame)
        if covered and inode is not None:
            self.kloc_manager.add_object(inode, obj, cpu=cpu)
        if self.tracer is not None:
            self.tracer.emit(
                self.clock.now(),
                "alloc",
                obj.otype.name,
                allocator=obj.allocator,
                tier=obj.frame.tier_name,
                knode=obj.knode_id,
            )
        return obj

    def _route_alloc(
        self,
        otype: KernelObjectType,
        tier_order: List[str],
        knode_id: Optional[int],
        covered: bool,
    ) -> KernelObject:
        if otype.allocator is AllocatorKind.SLAB:
            if covered and self.policy.uses_kloc_interface:
                # §4.4: redirected sites get relocatable, knode-grouped pages.
                return self.kloc_alloc.alloc(otype, tier_order, knode_id=knode_id)
            return self.slab.alloc(otype, tier_order, knode_id=knode_id)
        return self.page_alloc.alloc_object(otype, tier_order, knode_id=knode_id)

    def free_object(self, obj: KernelObject, *, cpu: int = 0) -> None:
        if self.tracer is not None:
            self.tracer.emit(
                self.clock.now(),
                "free",
                obj.otype.name,
                lifetime_ns=obj.lifetime_ns(self.clock.now()),
            )
        if self.kloc_manager is not None and obj.knode_id is not None:
            self.kloc_manager.remove_object(obj, cpu=cpu)
        if obj.allocator == "slab":
            self.slab.free(obj)
        elif obj.allocator == "kloc":
            self.kloc_alloc.free(obj)
        else:
            self.page_alloc.free_object(obj)

    # ------------------------------------------------------------------
    # KernelContext: references
    # ------------------------------------------------------------------

    def access_object(
        self,
        obj: KernelObject,
        nbytes: Optional[int] = None,
        *,
        write: bool = False,
        cpu: int = 0,
    ) -> int:
        if not obj.live:
            raise SimulationError(f"access to freed object {obj!r}")
        frame = obj.frame
        size = nbytes if nbytes is not None else obj.size_bytes
        cost = self._charge_access(frame, size, write=write)
        self.kernel_refs += 1
        self.kernel_ref_bytes += size
        self.refs_by_owner[frame.owner] += 1
        if self.kloc_manager is not None and obj.knode_id is not None:
            self.kloc_manager.note_access(obj, cpu=cpu)
        return cost

    def access_frame(
        self, frame: PageFrame, nbytes: int, *, write: bool = False, cpu: int = 0
    ) -> int:
        if not frame.live:
            raise SimulationError(f"access to freed frame {frame!r}")
        cost = self._charge_access(frame, nbytes, write=write)
        owner = frame.owner
        if owner is PageOwner.APP:
            self.app_refs += 1
            self.app_ref_bytes += nbytes
        else:
            self.kernel_refs += 1
            self.kernel_ref_bytes += nbytes
        self.refs_by_owner[owner] += 1
        return cost

    def _charge_access(self, frame: PageFrame, nbytes: int, *, write: bool) -> int:
        tier_name = frame.tier_name
        owner = frame.owner
        if self.numa_mode:
            cost = self.nodes[tier_name].access_cost_ns(
                frame.fid, nbytes, write=write, from_node=self.task_node
            )
        else:
            cost = self._tiers[tier_name].access_cost_ns(nbytes, write=write)
        refs_by_tier = self.refs_by_tier
        key = (tier_name, owner is not PageOwner.APP)
        refs_by_tier[key] = refs_by_tier.get(key, 0) + 1
        access_ns_by = self.access_ns_by
        cost_key = (owner, tier_name)
        access_ns_by[cost_key] = access_ns_by.get(cost_key, 0) + cost
        clock = self.clock
        frame.record_access(clock.now(), write=write)
        clock.advance(cost)
        return cost

    # ------------------------------------------------------------------
    # KernelContext: application memory
    # ------------------------------------------------------------------

    def alloc_app_pages(
        self, npages: int, *, cpu: int = 0, huge: bool = False
    ) -> List[PageFrame]:
        """Anonymous application pages; ``huge=True`` backs the region
        with transparent huge pages (512-page compound groups, §5)."""
        order = self.policy.tier_order_app(cpu=cpu)
        try:
            frames = self.page_alloc.alloc_frames(npages, order, PageOwner.APP)
        except AllocationError:
            self._emergency_reclaim(cpu=cpu)
            frames = self.page_alloc.alloc_frames(npages, order, PageOwner.APP)
        for frame in frames:
            self._fix_node_id(frame)
        if huge:
            self.thp.make_compounds(frames)
        return frames

    def free_app_pages(self, frames: List[PageFrame]) -> None:
        live = [f for f in frames if f.live]
        self.thp.drop(live)
        self.page_alloc.free_frames(live)

    # ------------------------------------------------------------------
    # KernelContext: storage + background work
    # ------------------------------------------------------------------

    def storage_io(
        self, nbytes: int, *, write: bool, sequential: bool, background: bool = False
    ) -> int:
        cost = self.storage.io_cost_ns(nbytes, write=write, sequential=sequential)
        if background:
            cost = cost // self.num_cpus
        self.storage_ns_total += cost
        self.clock.advance(cost)
        return cost

    def background_cpu_work(self, cost_ns: int) -> None:
        """Daemon CPU time, amortized across cores instead of stalling the
        foreground operation."""
        if cost_ns > 0:
            charged = cost_ns // self.num_cpus
            self.background_ns_total += charged
            self.clock.advance(charged)

    # ------------------------------------------------------------------
    # KernelContext: inode / KLOC lifecycle
    # ------------------------------------------------------------------

    def on_inode_create(self, inode: Inode, *, cpu: int = 0) -> None:
        if self.kloc_manager is not None:
            self.kloc_manager.create_knode(inode, cpu=cpu)
            if self.tracer is not None:
                self.tracer.emit(
                    self.clock.now(), "knode", "create",
                    knode=inode.knode_id, ino=inode.ino,
                )

    def on_inode_open(self, inode: Inode, *, cpu: int = 0) -> None:
        if self.kloc_manager is not None:
            self.kloc_manager.open_knode(inode, cpu=cpu)

    def on_inode_close(self, inode: Inode, *, cpu: int = 0) -> None:
        if self.kloc_manager is not None:
            self.kloc_manager.close_knode(inode, cpu=cpu)

    def on_inode_unlink(self, inode: Inode, *, cpu: int = 0) -> None:
        if self.kloc_manager is not None:
            self.kloc_manager.delete_knode(inode, cpu=cpu)

    def notify_prefetch(self, inode: Inode, npages: int) -> None:
        """Readahead happened for this inode — let the policy piggyback
        (KLOCs promote the knode's kernel objects, §4.4)."""
        self.policy.on_prefetch(inode, npages)

    def adopt_object(self, obj: KernelObject, inode: Inode, *, cpu: int = 0) -> None:
        """Attach an object allocated before its inode existed (the inode
        structure itself, driver rx buffers resolved by early demux)."""
        if self.kloc_manager is not None:
            self.kloc_manager.add_object(inode, obj, cpu=cpu)

    # ------------------------------------------------------------------
    # NUMA helpers
    # ------------------------------------------------------------------

    def set_task_node(self, node: int) -> None:
        """The scheduler moved the workload to another socket (§6.2's
        interference experiment)."""
        if not self.numa_mode:
            raise SimulationError("set_task_node requires a NUMA-mode policy")
        self.task_node = node
        hook = getattr(self.policy, "on_task_moved", None)
        if hook is not None:
            hook()

    def _fix_node_id(self, frame: PageFrame) -> None:
        if self.numa_mode and frame.tier_name in self.nodes:
            frame.node_id = self.nodes[frame.tier_name].node_id

    # ------------------------------------------------------------------
    # pressure + reporting
    # ------------------------------------------------------------------

    def _emergency_reclaim(self, *, cpu: int = 0) -> None:
        """Direct reclaim: drop a slice of the coldest page-cache pages."""
        victims = self.fs.cache_mgr.eviction_victims(256)
        if not victims:
            raise AllocationError("memory exhausted and nothing reclaimable")
        if self.tracer is not None:
            self.tracer.emit(
                self.clock.now(), "reclaim", "direct", victims=len(victims)
            )
        for cache, page in victims:
            if page.dirty:
                self.storage_io(
                    page.obj.size_bytes, write=True, sequential=False, background=True
                )
                page.clean()
            self.fs.cache_mgr.note_remove(page)
            cache.remove(page.index)
            self.free_object(page.obj, cpu=cpu)

    def reset_reference_counters(self) -> None:
        """Zero the Fig 2c attribution counters (called after a workload's
        load phase so measurements cover steady state only)."""
        self.kernel_refs = 0
        self.kernel_ref_bytes = 0
        self.app_refs = 0
        self.app_ref_bytes = 0
        self.refs_by_owner = {o: 0 for o in PageOwner}
        self.refs_by_tier = {}
        # Time decomposition must cover the same window as the reference
        # split, or steady-state reports silently include the load phase.
        self.access_ns_by = {}

    def fast_ref_fraction(self, fast_tier: str = "fast") -> float:
        """Fraction of references served by the fast tier — the quantity
        tiering quality ultimately controls."""
        total = sum(self.refs_by_tier.values())
        fast = sum(n for (t, _k), n in self.refs_by_tier.items() if t == fast_tier)
        return fast / total if total else 0.0

    def kernel_ref_fraction(self) -> float:
        """Fig 2c: fraction of memory references that hit kernel objects."""
        total = self.kernel_refs + self.app_refs
        return self.kernel_refs / total if total else 0.0

    def __repr__(self) -> str:
        return (
            f"Kernel(policy={self.policy.name}, now={self.clock.now_seconds():.3f}s, "
            f"{self.topology!r})"
        )
