"""The Kernel: the one real implementation of the KernelContext protocol.

A :class:`Kernel` is a complete simulated OS instance: memory topology,
the four allocator families, the migration engine, the ext4-like
filesystem, the network stack, the KLOC machinery (when the policy uses
it), and the metric counters every experiment reads. The active
:class:`~repro.policies.base.TieringPolicy` decides placement; the kernel
mechanically executes it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.alloc.base import KernelObject
from repro.alloc.buddy import PageAllocator
from repro.alloc.kloc_alloc import KlocAllocator
from repro.alloc.slab import SlabAllocator
from repro.alloc.vmalloc import VmallocAllocator
from repro.core.clock import Clock
from repro.core.config import PlatformSpec
from repro.core.errors import AllocationError, SimulationError
from repro.core.hotpath import hot, hotpath_enabled
from repro.core.objtypes import AllocatorKind, KernelObjectType
from repro.core.rng import DeterministicRNG
from repro.core.units import PAGE_SIZE
from repro.kernel.cpu import CpuSet
from repro.kloc.manager import KlocManager
from repro.kloc.migrationd import KlocMigrationDaemon
from repro.kloc.registry import KlocRegistry
from repro.mem.frame import PageFrame, PageOwner
from repro.mem.hwcache import HardwareDRAMCache
from repro.mem.migration import MigrationEngine
from repro.mem.node import NumaNode
from repro.mem.thp import CompoundRegistry
from repro.mem.topology import MemoryTopology
from repro.net.stack import NetworkStack
from repro.vfs.filesystem import Filesystem
from repro.vfs.inode import Inode
from repro.vfs.storage import NVMeDevice
from repro.vfs.writeback import WritebackDaemon

#: Hoisted enum member: the charge hot path tests page ownership once per
#: reference, and ``PageOwner.APP`` is two attribute loads per test.
_OWNER_APP = PageOwner.APP


class Kernel:
    """One simulated OS instance under one tiering policy."""

    def __init__(
        self,
        platform: PlatformSpec,
        policy,
        *,
        registry: Optional[KlocRegistry] = None,
        seed: int = 42,
        page_cache_max_pages: Optional[int] = None,
        readahead_enabled: bool = True,
        retired_limit: Optional[int] = None,
    ) -> None:
        self.platform = platform
        self.policy = policy
        self.clock = Clock()
        self.rng = DeterministicRNG(seed)
        self.num_cpus = platform.num_cpus
        self.cpus = CpuSet(platform.num_cpus)

        self.topology = MemoryTopology(
            [platform.fast, platform.slow], retired_limit=retired_limit
        )
        # Direct name → tier map for the access hot path (skips the
        # topology's checked lookup on every charged reference).
        self._tiers = self.topology.tiers
        #: The machine's shared sanitizer ledger (None unless
        #: ``REPRO_SANITIZE=1`` was set when the topology was built).
        self._san = self.topology.sanitizer
        self.engine = MigrationEngine(self.topology, self.clock, platform.migration)
        self.storage = NVMeDevice(platform.storage)
        self.thp = CompoundRegistry()

        self.slab = SlabAllocator(self.topology, self.clock)
        self.kloc_alloc = KlocAllocator(self.topology, self.clock)
        self.page_alloc = PageAllocator(self.topology, self.clock)
        self.vmalloc = VmallocAllocator(self.topology, self.clock)

        # NUMA (Optane Memory Mode) wiring: each tier is a socket with an
        # optional hardware DRAM cache in front.
        self.numa_mode = bool(getattr(policy, "numa_mode", False))
        self.task_node = 0
        self.nodes: Dict[str, NumaNode] = {}
        if self.numa_mode:
            for node_id, spec in enumerate([platform.fast, platform.slow]):
                cache = (
                    HardwareDRAMCache(platform.hw_cache_bytes)
                    if platform.hw_cache_bytes
                    else None
                )
                self.nodes[spec.name] = NumaNode(
                    node_id, self.topology.tier(spec.name), cache
                )

        # KLOC machinery (only when the policy asks for it).
        self.kloc_registry = registry if registry is not None else KlocRegistry()
        self.kloc_manager: Optional[KlocManager] = None
        self.kloc_daemon: Optional[KlocMigrationDaemon] = None
        if policy.uses_kloc:
            self.kloc_manager = KlocManager(
                self.clock,
                num_cpus=platform.num_cpus,
                registry=self.kloc_registry,
                spec=platform.kloc,
                sanitizer=self._san,
            )
            self.kloc_daemon = KlocMigrationDaemon(
                self.kloc_manager,
                self.engine,
                self.topology,
                fast_tier=platform.fast.name,
                slow_tier=platform.slow.name,
                kloc_allocator=self.kloc_alloc,
                spec=platform.kloc,
                background_charge=self.background_cpu_work,
            )
            self.kloc_manager.on_knode_inactive = policy.on_knode_inactive
            self.kloc_manager.on_knode_active = policy.on_knode_active
            self.kloc_manager.on_knode_deleted = self._on_knode_deleted
        #: Live reference to the registry's coverage set when KLOC
        #: tracking is on — the alloc path's ``covered`` test is a plain
        #: membership check instead of two attribute loads and a method
        #: call per allocation. Empty when the policy has no manager.
        self._covered_types = (
            self.kloc_registry._covered  # noqa: SLF001 - live reference
            if self.kloc_manager is not None
            else frozenset()
        )
        #: Bound hotness hook for the flat reference path (None when the
        #: policy runs without KLOC tracking).
        self._note_access = (
            self.kloc_manager.note_access if self.kloc_manager is not None else None
        )

        # Metric counters (Fig 2c's reference attribution).
        self.kernel_refs = 0
        self.kernel_ref_bytes = 0
        self.app_refs = 0
        self.app_ref_bytes = 0
        self.refs_by_owner: Dict[PageOwner, int] = {o: 0 for o in PageOwner}
        # Reference attribution storage. Flat mode (the default outside
        # NUMA platforms) preallocates nested counters for every tier ×
        # owner pair so the charge path is ``d[k] += v`` with no tuple
        # allocation or ``.get()``; the legacy tuple-keyed dicts are kept
        # behind ``REPRO_NO_HOTPATH=1`` (and in NUMA mode, whose hw-cache
        # costs keep the legacy charge path anyway). ``refs_by_tier`` and
        # ``access_ns_by`` are exposed as properties that materialize the
        # same dicts either way.
        # REPRO_SANITIZE=1 forces the legacy charge paths so every access
        # funnels through the liveness-checked entry points — bit-identical
        # by the hotpath equivalence guarantee, just slower.
        self._flat = hotpath_enabled() and not self.numa_mode and self._san is None
        tier_names = [platform.fast.name, platform.slow.name]
        #: tier → [app_refs, kernel_refs]; indexed by ``owner is not APP``.
        self._refs_by_tier_n: Dict[str, List[int]] = {
            t: [0, 0] for t in tier_names
        }
        #: owner → tier → [cumulative ns, access count]. The count decides
        #: which keys the materialized dict contains (a zero-cost access
        #: must still create its key, exactly like the legacy dict).
        self._access_ns_n: Dict[PageOwner, Dict[str, List[int]]] = {
            o: {t: [0, 0] for t in tier_names} for o in PageOwner
        }
        #: Legacy tuple-keyed dicts (REPRO_NO_HOTPATH=1 / NUMA mode).
        self._refs_by_tier_d: Dict[tuple, int] = {}
        self._access_ns_d: Dict[tuple, int] = {}
        self.storage_ns_total = 0
        self.background_ns_total = 0
        #: Optional tracepoint sink (repro.core.trace.Tracer); costs one
        #: None-check per event when unset.
        self.tracer = None

        # Subsystems.
        if page_cache_max_pages is None:
            # Tight enough that steady-state workloads see continual page
            # cache reclaim — the churn that recycles cold (including
            # fast-tier-stranded) pages and bounds cache-page lifetimes.
            total = platform.fast.capacity_pages + platform.slow.capacity_pages
            page_cache_max_pages = max(64, int(total * 0.4))
        self.fs = Filesystem(
            self,
            page_cache_max_pages=page_cache_max_pages,
            readahead_enabled=readahead_enabled,
        )
        demux = policy.early_demux if policy.early_demux is not None else policy.uses_kloc
        self.net = NetworkStack(self, early_demux=demux)
        self.writeback = WritebackDaemon(
            self.fs, period_ns=platform.writeback_period_ns
        )

        policy.attach(self)

    def start(self) -> None:
        """Start background daemons (writeback + policy scanners)."""
        self.writeback.start()
        self.policy.start_daemons()

    # ------------------------------------------------------------------
    # KernelContext: kernel-object lifecycle
    # ------------------------------------------------------------------

    def alloc_object(
        self,
        otype: KernelObjectType,
        inode: Optional[Inode] = None,
        *,
        cpu: int = 0,
    ) -> KernelObject:
        covered = otype in self._covered_types
        tier_order = self.policy.tier_order_kernel(
            otype, inode, covered=covered, cpu=cpu
        )
        knode_id = inode.knode_id if (inode is not None and covered) else None

        # Allocator routing, inlined:
        if otype.allocator is AllocatorKind.SLAB:
            if covered and self.policy.uses_kloc_interface:
                # §4.4: redirected sites get relocatable, knode-grouped pages.
                allocator = self.kloc_alloc.alloc
            else:
                allocator = self.slab.alloc
        else:
            allocator = self.page_alloc.alloc_object
        try:
            obj = allocator(otype, tier_order, knode_id=knode_id)
        except AllocationError:
            # Memory pressure: shrink the page cache, then retry once.
            self._emergency_reclaim(cpu=cpu)
            obj = allocator(otype, tier_order, knode_id=knode_id)

        if self.numa_mode:
            self._fix_node_id(obj.frame)
        if covered and inode is not None:
            self.kloc_manager.add_object(inode, obj, cpu=cpu)
        if self.tracer is not None:
            self.tracer.emit(
                self.clock.now(),
                "alloc",
                obj.otype.name,
                allocator=obj.allocator,
                tier=obj.frame.tier_name,
                knode=obj.knode_id,
            )
        return obj

    def free_object(
        self, obj: KernelObject, *, cpu: int = 0, now_ns: Optional[int] = None
    ) -> Optional[int]:
        """Free a kernel object.

        ``now_ns`` is the deferred-advance variant used by
        :class:`AccessBatch`: the free executes at that virtual time and
        the allocator's (constant) CPU cost is *returned* instead of
        advanced — the batch owns the coalesced advance. Plain calls
        (``now_ns=None``) keep the legacy advance inside the allocator.
        """
        if now_ns is None:
            if self.tracer is not None:
                self.tracer.emit(
                    self.clock.now(),
                    "free",
                    obj.otype.name,
                    lifetime_ns=obj.lifetime_ns(self.clock.now()),
                )
            if self.kloc_manager is not None and obj.knode_id is not None:
                self.kloc_manager.remove_object(obj, cpu=cpu)
            if obj.allocator == "slab":
                self.slab.free(obj)
            elif obj.allocator == "kloc":
                self.kloc_alloc.free(obj)
            else:
                self.page_alloc.free_object(obj)
            return None
        # Deferred variant: only reachable from AccessBatch, which is never
        # handed out while a tracer is attached.
        if self.kloc_manager is not None and obj.knode_id is not None:
            self.kloc_manager.remove_object(obj, cpu=cpu)
        if obj.allocator == "slab":
            return self.slab.free(obj, now_ns=now_ns)
        if obj.allocator == "kloc":
            return self.kloc_alloc.free(obj, now_ns=now_ns)
        return self.page_alloc.free_object(obj, now_ns=now_ns)

    # ------------------------------------------------------------------
    # KernelContext: references
    # ------------------------------------------------------------------

    @hot
    def access_object(
        self,
        obj: KernelObject,
        nbytes: Optional[int] = None,
        *,
        write: bool = False,
        cpu: int = 0,
    ) -> int:
        if not self._flat:
            if not obj.live:
                if self._san is not None:
                    raise self._san.dead_object_error(obj)
                raise SimulationError(f"access to freed object {obj!r}")
            frame = obj.frame
            size = nbytes if nbytes is not None else obj.size_bytes
            cost = self._charge_access(frame, size, write=write)
            self.kernel_refs += 1
            self.kernel_ref_bytes += size
            self.refs_by_owner[frame.owner] += 1
            if self.kloc_manager is not None and obj.knode_id is not None:
                self.kloc_manager.note_access(obj, cpu=cpu)
            return cost
        # Flat path: the whole charge sequence inlined — same operations,
        # same order, no helper-call overhead per reference.
        if obj.freed_at is not None:
            raise SimulationError(f"access to freed object {obj!r}")
        frame = obj.frame
        size = nbytes if nbytes is not None else obj.otype.size_bytes
        tier_name = frame.tier_name
        owner = frame.owner
        tier = self._tiers[tier_name]
        if write:
            tier.bytes_written += size
            cost = tier.write_latency_ns + int(size * tier.slowdown / tier.write_bw)
        else:
            tier.bytes_read += size
            cost = tier.read_latency_ns + int(size * tier.slowdown / tier.read_bw)
        self._refs_by_tier_n[tier_name][owner is not _OWNER_APP] += 1
        cell = self._access_ns_n[owner][tier_name]
        cell[0] += cost
        cell[1] += 1
        clock = self.clock
        # frame.record_access(clock.now(), write=write), inlined:
        frame.last_access = clock._now  # noqa: SLF001 - hot-path read
        frame.lru_age = 0
        journal = frame.journal
        if journal is not None:
            journal[frame.fid] = frame
        if write:
            frame.writes += 1
            frame.dirty = True
        else:
            frame.reads += 1
        # clock.advance(cost), inlined (cost >= 0 by construction):
        clock._now = now = clock._now + cost  # noqa: SLF001
        if now >= clock._next_deadline:  # noqa: SLF001
            clock._fire_due()  # noqa: SLF001
        self.kernel_refs += 1
        self.kernel_ref_bytes += size
        self.refs_by_owner[owner] += 1
        note_access = self._note_access
        if note_access is not None and obj.knode_id is not None:
            note_access(obj, cpu=cpu)
        return cost

    @hot
    def access_frame(
        self, frame: PageFrame, nbytes: int, *, write: bool = False, cpu: int = 0
    ) -> int:
        if not self._flat:
            if not frame.live:
                if self._san is not None:
                    raise self._san.dead_frame_error(frame)
                raise SimulationError(f"access to freed frame {frame!r}")
            cost = self._charge_access(frame, nbytes, write=write)
            owner = frame.owner
            if owner is PageOwner.APP:
                self.app_refs += 1
                self.app_ref_bytes += nbytes
            else:
                self.kernel_refs += 1
                self.kernel_ref_bytes += nbytes
            self.refs_by_owner[owner] += 1
            return cost
        if frame.freed_at is not None:
            raise SimulationError(f"access to freed frame {frame!r}")
        tier_name = frame.tier_name
        owner = frame.owner
        tier = self._tiers[tier_name]
        if write:
            tier.bytes_written += nbytes
            cost = tier.write_latency_ns + int(
                nbytes * tier.slowdown / tier.write_bw
            )
        else:
            tier.bytes_read += nbytes
            cost = tier.read_latency_ns + int(nbytes * tier.slowdown / tier.read_bw)
        self._refs_by_tier_n[tier_name][owner is not _OWNER_APP] += 1
        cell = self._access_ns_n[owner][tier_name]
        cell[0] += cost
        cell[1] += 1
        clock = self.clock
        frame.last_access = clock._now  # noqa: SLF001 - hot-path read
        frame.lru_age = 0
        journal = frame.journal
        if journal is not None:
            journal[frame.fid] = frame
        if write:
            frame.writes += 1
            frame.dirty = True
        else:
            frame.reads += 1
        # clock.advance(cost), inlined (cost >= 0 by construction):
        clock._now = now = clock._now + cost  # noqa: SLF001
        if now >= clock._next_deadline:  # noqa: SLF001
            clock._fire_due()  # noqa: SLF001
        if owner is _OWNER_APP:
            self.app_refs += 1
            self.app_ref_bytes += nbytes
        else:
            self.kernel_refs += 1
            self.kernel_ref_bytes += nbytes
        self.refs_by_owner[owner] += 1
        return cost

    @hot
    def access_frames(
        self,
        frames: Sequence[PageFrame],
        nbytes: int,
        *,
        write: bool = False,
        cpu: int = 0,
    ) -> int:
        """Charge a run of frames, batching the clock advances.

        Chunks ``nbytes`` across ``frames`` in order (PAGE_SIZE per frame,
        the remainder on the last) — the shape of :meth:`Process.touch`'s
        loop. All bookkeeping (tier byte counters, reference attribution,
        per-frame access records with exact per-access timestamps) happens
        per frame in the legacy order; only ``Clock.advance`` is deferred
        and coalesced. An access is deferred only while
        ``now + pending + cost < clock.next_deadline_ns`` — no daemon can
        fire inside that span, so the single flush advance is
        indistinguishable from per-frame advances. An access that would
        cross the deadline flushes the pending time (still strictly before
        the deadline, so nothing fires early) and is charged with a real
        per-frame advance, which fires daemons exactly when the legacy
        loop would. With ``REPRO_NO_HOTPATH=1`` (or in NUMA mode, whose
        hw-cache hit/miss state makes costs order-dependent) this is a
        plain loop over :meth:`access_frame`.
        """
        if not self._flat:
            total = 0
            remaining = nbytes
            for frame in frames:
                if remaining <= 0:
                    break
                chunk = PAGE_SIZE if remaining >= PAGE_SIZE else remaining
                total += self.access_frame(frame, chunk, write=write, cpu=cpu)
                remaining -= chunk
            return total
        clock = self.clock
        tiers = self._tiers
        refs_n = self._refs_by_tier_n
        ns_n = self._access_ns_n
        refs_by_owner = self.refs_by_owner
        start = clock._now  # noqa: SLF001 - hot-path read
        deadline = clock._next_deadline  # noqa: SLF001 - hot-path read
        pending = 0
        total = 0
        app_refs = 0
        app_bytes = 0
        kern_refs = 0
        kern_bytes = 0
        remaining = nbytes
        for frame in frames:
            if remaining <= 0:
                break
            chunk = PAGE_SIZE if remaining >= PAGE_SIZE else remaining
            remaining -= chunk
            if frame.freed_at is not None:
                raise SimulationError(f"access to freed frame {frame!r}")
            tier_name = frame.tier_name
            owner = frame.owner
            tier = tiers[tier_name]
            if write:
                tier.bytes_written += chunk
                cost = tier.write_latency_ns + int(
                    chunk * tier.slowdown / tier.write_bw
                )
            else:
                tier.bytes_read += chunk
                cost = tier.read_latency_ns + int(
                    chunk * tier.slowdown / tier.read_bw
                )
            refs_n[tier_name][owner is not _OWNER_APP] += 1
            cell = ns_n[owner][tier_name]
            cell[0] += cost
            cell[1] += 1
            t = start + pending
            boundary = t + cost >= deadline
            if boundary and pending:
                # Flush the deferred span: lands strictly before the
                # deadline, so nothing fires ahead of legacy order.
                clock.advance(pending)
                pending = 0
            frame.last_access = t
            frame.lru_age = 0
            journal = frame.journal
            if journal is not None:
                journal[frame.fid] = frame
            if write:
                frame.writes += 1
                frame.dirty = True
            else:
                frame.reads += 1
            if boundary:
                # Real advance: daemons fire exactly as in the per-frame
                # loop; rebase the window on the post-firing clock state.
                clock.advance(cost)
                start = clock._now  # noqa: SLF001
                deadline = clock._next_deadline  # noqa: SLF001
            else:
                pending += cost
            total += cost
            if owner is _OWNER_APP:
                app_refs += 1
                app_bytes += chunk
            else:
                kern_refs += 1
                kern_bytes += chunk
            refs_by_owner[owner] += 1
        if pending:
            clock.advance(pending)
        self.app_refs += app_refs
        self.app_ref_bytes += app_bytes
        self.kernel_refs += kern_refs
        self.kernel_ref_bytes += kern_bytes
        return total

    def begin_access_batch(self) -> Optional["AccessBatch"]:
        """Open a deferred-advance charging window, or None when batching
        is unavailable (legacy mode, NUMA hw-cache costs, or an attached
        tracer, whose events must see exact per-event clock values)."""
        if not self._flat or self.tracer is not None:
            return None
        return AccessBatch(self)

    @hot
    def _charge_access(self, frame: PageFrame, nbytes: int, *, write: bool) -> int:
        tier_name = frame.tier_name
        owner = frame.owner
        if self.numa_mode:
            cost = self.nodes[tier_name].access_cost_ns(
                frame.fid, nbytes, write=write, from_node=self.task_node
            )
        else:
            cost = self._tiers[tier_name].access_cost_ns(nbytes, write=write)
        refs_by_tier = self._refs_by_tier_d
        key = (tier_name, owner is not PageOwner.APP)
        refs_by_tier[key] = refs_by_tier.get(key, 0) + 1
        access_ns_by = self._access_ns_d
        cost_key = (owner, tier_name)
        access_ns_by[cost_key] = access_ns_by.get(cost_key, 0) + cost
        clock = self.clock
        frame.record_access(clock.now(), write=write)
        clock.advance(cost)
        return cost

    # ------------------------------------------------------------------
    # KernelContext: application memory
    # ------------------------------------------------------------------

    def alloc_app_pages(
        self, npages: int, *, cpu: int = 0, huge: bool = False
    ) -> List[PageFrame]:
        """Anonymous application pages; ``huge=True`` backs the region
        with transparent huge pages (512-page compound groups, §5)."""
        order = self.policy.tier_order_app(cpu=cpu)
        try:
            frames = self.page_alloc.alloc_frames(npages, order, PageOwner.APP)
        except AllocationError:
            self._emergency_reclaim(cpu=cpu)
            frames = self.page_alloc.alloc_frames(npages, order, PageOwner.APP)
        for frame in frames:
            self._fix_node_id(frame)
        if huge:
            self.thp.make_compounds(frames)
        return frames

    def free_app_pages(self, frames: List[PageFrame]) -> None:
        live = [f for f in frames if f.live]
        self.thp.drop(live)
        self.page_alloc.free_frames(live)

    # ------------------------------------------------------------------
    # KernelContext: storage + background work
    # ------------------------------------------------------------------

    def storage_io(
        self, nbytes: int, *, write: bool, sequential: bool, background: bool = False
    ) -> int:
        cost = self.storage.io_cost_ns(nbytes, write=write, sequential=sequential)
        if background:
            cost = cost // self.num_cpus
        self.storage_ns_total += cost
        self.clock.advance(cost)
        return cost

    def background_cpu_work(self, cost_ns: int) -> None:
        """Daemon CPU time, amortized across cores instead of stalling the
        foreground operation."""
        if cost_ns > 0:
            charged = cost_ns // self.num_cpus
            self.background_ns_total += charged
            self.clock.advance(charged)

    # ------------------------------------------------------------------
    # KernelContext: inode / KLOC lifecycle
    # ------------------------------------------------------------------

    def _on_knode_deleted(self, knode) -> None:
        """KlocManager deletion hook: drop the daemon's pending mark.

        A named method (not a lambda) so the kernel graph stays
        snapshot-serializable — see ``repro.snapshot``.
        """
        self.kloc_daemon.unmark(knode.knode_id)

    def on_inode_create(self, inode: Inode, *, cpu: int = 0) -> None:
        if self.kloc_manager is not None:
            self.kloc_manager.create_knode(inode, cpu=cpu)
            if self.tracer is not None:
                self.tracer.emit(
                    self.clock.now(), "knode", "create",
                    knode=inode.knode_id, ino=inode.ino,
                )

    def on_inode_open(self, inode: Inode, *, cpu: int = 0) -> None:
        if self.kloc_manager is not None:
            self.kloc_manager.open_knode(inode, cpu=cpu)

    def on_inode_close(self, inode: Inode, *, cpu: int = 0) -> None:
        if self.kloc_manager is not None:
            self.kloc_manager.close_knode(inode, cpu=cpu)

    def on_inode_unlink(self, inode: Inode, *, cpu: int = 0) -> None:
        if self.kloc_manager is not None:
            self.kloc_manager.delete_knode(inode, cpu=cpu)

    def notify_prefetch(self, inode: Inode, npages: int) -> None:
        """Readahead happened for this inode — let the policy piggyback
        (KLOCs promote the knode's kernel objects, §4.4)."""
        self.policy.on_prefetch(inode, npages)

    def adopt_object(self, obj: KernelObject, inode: Inode, *, cpu: int = 0) -> None:
        """Attach an object allocated before its inode existed (the inode
        structure itself, driver rx buffers resolved by early demux)."""
        if self.kloc_manager is not None:
            self.kloc_manager.add_object(inode, obj, cpu=cpu)

    # ------------------------------------------------------------------
    # NUMA helpers
    # ------------------------------------------------------------------

    def set_task_node(self, node: int) -> None:
        """The scheduler moved the workload to another socket (§6.2's
        interference experiment)."""
        if not self.numa_mode:
            raise SimulationError("set_task_node requires a NUMA-mode policy")
        self.task_node = node
        hook = getattr(self.policy, "on_task_moved", None)
        if hook is not None:
            hook()

    def _fix_node_id(self, frame: PageFrame) -> None:
        if self.numa_mode and frame.tier_name in self.nodes:
            frame.node_id = self.nodes[frame.tier_name].node_id

    # ------------------------------------------------------------------
    # pressure + reporting
    # ------------------------------------------------------------------

    def _emergency_reclaim(self, *, cpu: int = 0) -> None:
        """Direct reclaim: drop a slice of the coldest page-cache pages."""
        victims = self.fs.cache_mgr.eviction_victims(256)
        if not victims:
            raise AllocationError("memory exhausted and nothing reclaimable")
        if self.tracer is not None:
            self.tracer.emit(
                self.clock.now(), "reclaim", "direct", victims=len(victims)
            )
        for cache, page in victims:
            if page.dirty:
                self.storage_io(
                    page.obj.size_bytes, write=True, sequential=False, background=True
                )
                page.clean()
            self.fs.cache_mgr.note_remove(page)
            cache.remove(page.index)
            self.free_object(page.obj, cpu=cpu)

    @property
    def refs_by_tier(self) -> Dict[tuple, int]:
        """(tier_name, is_kernel) → reference count, for placement quality
        diagnostics (what fraction of traffic actually hit fast memory).

        Materialized from the preallocated nested counters in flat mode;
        the legacy tuple-keyed dict otherwise. Reporting-frequency only —
        the hot path never builds this."""
        if not self._flat:
            return self._refs_by_tier_d
        out: Dict[tuple, int] = {}
        for tier_name, counts in self._refs_by_tier_n.items():
            if counts[0]:
                out[(tier_name, False)] = counts[0]
            if counts[1]:
                out[(tier_name, True)] = counts[1]
        return out

    @property
    def access_ns_by(self) -> Dict[tuple, int]:
        """(owner, tier) → cumulative access ns, for time decomposition.

        Keys exist for every pair that was accessed at least once (even at
        zero cost), matching the legacy dict's key population."""
        if not self._flat:
            return self._access_ns_d
        out: Dict[tuple, int] = {}
        for owner, by_tier in self._access_ns_n.items():
            for tier_name, cell in by_tier.items():
                if cell[1]:
                    out[(owner, tier_name)] = cell[0]
        return out

    def reset_reference_counters(self) -> None:
        """Zero the Fig 2c attribution counters (called after a workload's
        load phase so measurements cover steady state only)."""
        self.kernel_refs = 0
        self.kernel_ref_bytes = 0
        self.app_refs = 0
        self.app_ref_bytes = 0
        # Zeroed in place: Process binds this dict for its inlined charge
        # body, so the identity must survive resets (keys are always the
        # full PageOwner population).
        for o in self.refs_by_owner:
            self.refs_by_owner[o] = 0
        for counts in self._refs_by_tier_n.values():
            counts[0] = 0
            counts[1] = 0
        self._refs_by_tier_d = {}
        # Time decomposition must cover the same window as the reference
        # split, or steady-state reports silently include the load phase.
        for by_tier in self._access_ns_n.values():
            for cell in by_tier.values():
                cell[0] = 0
                cell[1] = 0
        self._access_ns_d = {}

    def fast_ref_fraction(self, fast_tier: str = "fast") -> float:
        """Fraction of references served by the fast tier — the quantity
        tiering quality ultimately controls."""
        total = sum(self.refs_by_tier.values())
        fast = sum(n for (t, _k), n in self.refs_by_tier.items() if t == fast_tier)
        return fast / total if total else 0.0

    def kernel_ref_fraction(self) -> float:
        """Fig 2c: fraction of memory references that hit kernel objects."""
        total = self.kernel_refs + self.app_refs
        return self.kernel_refs / total if total else 0.0

    def sanitize_teardown(self) -> Optional[Dict[str, int]]:
        """End-of-run accounting audit (``REPRO_SANITIZE=1`` only).

        Cross-checks every allocator's alloc/free balance against its live
        structures, the tier page counters against the frame table, and
        the KLOC metadata counters against a recomputation. Raises
        :class:`~repro.core.errors.SanitizerError` on any leak; returns
        the sanitizer's summary counters (None when the mode is off).
        Read-only — charges no simulated time, so callers may audit after
        building their payload without perturbing it.
        """
        san = self._san
        if san is None:
            return None
        self.topology.check_invariants()
        for tier in self.topology.tiers.values():
            san.expect(
                f"tier {tier.name} used_pages (allocs - frees)",
                tier.used_pages,
                tier.total_allocs - tier.total_frees,
            )
        slab = self.slab
        san.expect(
            "slab live objects (allocs - frees) vs oid->page table",
            slab.stats.allocs - slab.stats.frees,
            len(slab._page_of),  # noqa: SLF001 - ground-truth recount
        )
        slab_pages = 0
        for cache in slab._caches.values():  # noqa: SLF001
            slab_pages += len(cache.partial) + len(cache.full)
        san.expect(
            "slab live pages (grabbed - returned) vs cache lists",
            slab.live_pages(),
            slab_pages,
        )
        kloc = self.kloc_alloc
        san.expect(
            "kloc live objects (allocs - frees) vs oid->page table",
            kloc.stats.allocs - kloc.stats.frees,
            len(kloc._page_of),  # noqa: SLF001 - ground-truth recount
        )
        kloc_pages = 0
        for pages in kloc._knode_pages.values():  # noqa: SLF001
            kloc_pages += len(pages)
        san.expect(
            "kloc live pages (grabbed - returned) vs knode page groups",
            kloc.live_pages(),
            kloc_pages,
        )
        san.expect(
            "vmalloc live areas (allocs - frees) vs area table",
            self.vmalloc.stats.allocs - self.vmalloc.stats.frees,
            len(self.vmalloc._areas),  # noqa: SLF001 - ground-truth recount
        )
        if self.kloc_manager is not None:
            self.kloc_manager.verify_counters()
        return san.report()

    def __repr__(self) -> str:
        return (
            f"Kernel(policy={self.policy.name}, now={self.clock.now_seconds():.3f}s, "
            f"{self.topology!r})"
        )


class AccessBatch:
    """A deferred-advance charging window over a run of object accesses.

    Opened via :meth:`Kernel.begin_access_batch` by loops that issue many
    small charges back-to-back (the page-cache read hit loop, the skb
    copy-to-user loop). Each access/free executes all of its bookkeeping
    immediately, at its exact legacy virtual time (``start + pending``) —
    access records, KLOC hotness timestamps, reference attribution — but
    the clock advance is accumulated and flushed once, which is legal
    precisely while ``start + pending + cost < next_deadline``: no daemon
    can fire inside that span, so per-item and coalesced advances are
    indistinguishable. An item that would cross the deadline flushes the
    pending span (still strictly before the deadline) and runs with a real
    advance, firing daemons in legacy order.

    Contract: callers must :meth:`sync` before doing any out-of-band clock
    work (block I/O, allocations, readahead) and :meth:`close` when the
    loop ends. After external work the next charge rebases automatically.
    """

    __slots__ = ("kernel", "clock", "start", "pending", "deadline")

    def __init__(self, kernel: Kernel) -> None:
        self.kernel = kernel
        self.clock = kernel.clock
        self.start = self.clock._now  # noqa: SLF001 - hot-path read
        self.pending = 0
        self.deadline = self.clock._next_deadline  # noqa: SLF001

    def access_object(
        self,
        obj: KernelObject,
        nbytes: Optional[int] = None,
        *,
        write: bool = False,
        cpu: int = 0,
    ) -> int:
        k = self.kernel
        clock = self.clock
        if self.pending == 0 and clock._now != self.start:  # noqa: SLF001
            # External work advanced the clock since the last sync.
            self.start = clock._now  # noqa: SLF001
            self.deadline = clock._next_deadline  # noqa: SLF001
        if obj.freed_at is not None:
            raise SimulationError(f"access to freed object {obj!r}")
        frame = obj.frame
        size = nbytes if nbytes is not None else obj.otype.size_bytes
        tier_name = frame.tier_name
        owner = frame.owner
        tier = k._tiers[tier_name]  # noqa: SLF001 - same-module hot path
        if write:
            tier.bytes_written += size
            cost = tier.write_latency_ns + int(size * tier.slowdown / tier.write_bw)
        else:
            tier.bytes_read += size
            cost = tier.read_latency_ns + int(size * tier.slowdown / tier.read_bw)
        k._refs_by_tier_n[tier_name][owner is not _OWNER_APP] += 1  # noqa: SLF001
        cell = k._access_ns_n[owner][tier_name]  # noqa: SLF001
        cell[0] += cost
        cell[1] += 1
        t = self.start + self.pending
        deferred = t + cost < self.deadline
        if not deferred and self.pending:
            clock.advance(self.pending)  # strictly before the deadline
            self.pending = 0
        frame.last_access = t
        frame.lru_age = 0
        journal = frame.journal
        if journal is not None:
            journal[frame.fid] = frame
        if write:
            frame.writes += 1
            frame.dirty = True
        else:
            frame.reads += 1
        if deferred:
            self.pending += cost
        else:
            clock.advance(cost)  # may fire daemons, in legacy order
            self.start = clock._now  # noqa: SLF001
            self.deadline = clock._next_deadline  # noqa: SLF001
        k.kernel_refs += 1
        k.kernel_ref_bytes += size
        k.refs_by_owner[owner] += 1
        if k.kloc_manager is not None and obj.knode_id is not None:
            if deferred:
                # Legacy stamps hotness with the post-advance clock; inside
                # the window that is exactly t + cost.
                k.kloc_manager.note_access(obj, cpu=cpu, now_ns=t + cost)
            else:
                k.kloc_manager.note_access(obj, cpu=cpu)
        return cost

    def free_object(self, obj: KernelObject, *, cpu: int = 0) -> None:
        clock = self.clock
        if self.pending == 0 and clock._now != self.start:  # noqa: SLF001
            self.start = clock._now  # noqa: SLF001
            self.deadline = clock._next_deadline  # noqa: SLF001
        t = self.start + self.pending
        cost = self.kernel.free_object(obj, cpu=cpu, now_ns=t)
        if t + cost < self.deadline:
            self.pending += cost
            return
        if self.pending:
            clock.advance(self.pending)
            self.pending = 0
        clock.advance(cost)  # may fire daemons, in legacy order
        self.start = clock._now  # noqa: SLF001
        self.deadline = clock._next_deadline  # noqa: SLF001

    def sync(self) -> None:
        """Flush deferred time; call before out-of-band clock work."""
        if self.pending:
            self.clock.advance(self.pending)  # strictly before the deadline
            self.pending = 0
        self.start = self.clock._now  # noqa: SLF001
        self.deadline = self.clock._next_deadline  # noqa: SLF001

    def close(self) -> None:
        """Flush any deferred time at the end of the batched loop."""
        self.sync()
