"""§4.3's per-CPU fast-path statistic.

"Per-CPU lists reduce the rbtree-cache and rbtree-slab accesses by 54%."
We run the same workload with normally-sized per-CPU lists and with
degenerate single-entry lists, and report the rbtree-access reduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.config import KLOCSpec
from repro.experiments.defaults import SCALE_FACTOR, ops_for, seed
from repro.experiments.runner import make_workload
from repro.metrics.report import format_table
from repro.platforms.twotier import build_two_tier_kernel


@dataclass
class PerCPUReport:
    fast_path_reduction: float
    kmap_accesses_with: int
    kmap_accesses_without: int

    @property
    def access_reduction(self) -> float:
        """Fraction of kmap rbtree accesses the fast path eliminated."""
        if not self.kmap_accesses_without:
            return 0.0
        return 1.0 - self.kmap_accesses_with / self.kmap_accesses_without

    def format_report(self) -> str:
        return format_table(
            ["metric", "value"],
            [
                ["fast-path hit fraction", self.fast_path_reduction],
                ["kmap rbtree accesses (lists on)", self.kmap_accesses_with],
                ["kmap rbtree accesses (lists off)", self.kmap_accesses_without],
                ["rbtree access reduction", self.access_reduction],
            ],
            title="§4.3 — per-CPU knode list ablation (paper: 54%)",
        )


def _measure(percpu_list_max: int, workload: str, ops: int) -> tuple:
    kernel, _pol = build_two_tier_kernel(
        "klocs", scale_factor=SCALE_FACTOR, seed=seed()
    )
    # Shrink the per-CPU lists after construction for the ablation arm.
    if percpu_list_max != kernel.platform.kloc.percpu_list_max:
        kernel.kloc_manager.percpu.lists.max_per_cpu = percpu_list_max
        for lst in kernel.kloc_manager.percpu.lists._lists:  # noqa: SLF001
            lst.clear()
    wl = make_workload(kernel, workload)
    wl.setup()
    kernel.kloc_manager.kmap.rbtree_accesses = 0
    kernel.kloc_manager.percpu.fast_hits = 0
    kernel.kloc_manager.percpu.slow_lookups = 0
    wl.run(ops)
    manager = kernel.kloc_manager
    stats = (
        manager.percpu.rbtree_access_reduction(),
        manager.kmap.rbtree_accesses,
    )
    wl.teardown()
    return stats


def run_percpu_ablation(
    workload: str = "rocksdb", *, ops: Optional[int] = None
) -> PerCPUReport:
    budget = ops if ops is not None else ops_for(workload)
    reduction_on, kmap_on = _measure(KLOCSpec().percpu_list_max, workload, budget)
    _reduction_off, kmap_off = _measure(1, workload, budget)
    return PerCPUReport(
        fast_path_reduction=reduction_on,
        kmap_accesses_with=kmap_on,
        kmap_accesses_without=kmap_off,
    )
