"""CLI: regenerate any of the paper's figures/tables.

Usage::

    python -m repro.experiments list
    python -m repro.experiments fig4
    python -m repro.experiments fig5b --ops 8000
    REPRO_QUICK=1 python -m repro.experiments fig6
    python -m repro.experiments fig4 --jobs 8         # parallel sweep
    python -m repro.experiments fig4 --no-cache       # force recompute
    python -m repro.experiments --cache-info          # cache/snapshot usage
    python -m repro.experiments --cache-clear         # empty both stores
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.experiments.registry import EXPERIMENTS


def _cache_maintenance(info: bool, clear: bool) -> int:
    """Report or empty the result cache + snapshot store."""
    from repro.experiments.cache import ResultCache
    from repro.snapshot import SnapshotStore, cache_max_mb, usage

    cache = ResultCache(enabled=True)
    store = SnapshotStore(enabled=True)
    if clear:
        results = cache.clear()
        snaps = store.clear()
        print(f"cleared: {results} result(s), {snaps} snapshot(s)")
        return 0

    total = usage(cache.root)
    snap = usage(store.root)
    results = {
        "files": total["files"] - snap["files"],
        "bytes": total["bytes"] - snap["bytes"],
    }
    budget = cache_max_mb()
    print(f"cache root: {cache.root}")
    print(
        f"  results:   {results['files']:5d} file(s)"
        f"  {results['bytes'] / (1 << 20):8.2f} MB"
    )
    print(
        f"  snapshots: {snap['files']:5d} file(s)"
        f"  {snap['bytes'] / (1 << 20):8.2f} MB"
    )
    print(
        f"  total:     {total['files']:5d} file(s)"
        f"  {total['bytes'] / (1 << 20):8.2f} MB"
    )
    print(
        "  budget:    "
        + (f"{budget} MB (REPRO_CACHE_MAX_MB)" if budget is not None else "unbounded")
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate KLOC paper figures/tables on the simulator.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        default=None,
        help="experiment id (or 'list' to enumerate)",
    )
    parser.add_argument(
        "--ops", type=int, default=None, help="override the per-run op budget"
    )
    parser.add_argument(
        "--save", default=None, metavar="PATH", help="also write the report as JSON"
    )
    parser.add_argument(
        "--verdict",
        action="store_true",
        help="audit the report against the paper's expected bands "
        "(fig4/fig5a only)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for grid experiments "
        "(default: REPRO_JOBS or all cores; 1 = serial)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and don't write the .repro_cache result cache",
    )
    parser.add_argument(
        "--no-snapshot",
        action="store_true",
        help="disable snapshot warm starts (always replay setup cold)",
    )
    parser.add_argument(
        "--cache-info",
        action="store_true",
        help="print result-cache/snapshot-store usage and exit",
    )
    parser.add_argument(
        "--cache-clear",
        action="store_true",
        help="delete every cached result and snapshot, then exit",
    )
    args = parser.parse_args(argv)

    if args.cache_info or args.cache_clear:
        return _cache_maintenance(args.cache_info, args.cache_clear)
    if args.experiment is None:
        parser.error("an experiment id is required (or 'list' to enumerate)")

    # The engine reads these from the environment so every entry point
    # (figure runners, run_sweep, examples) honors one mechanism. This
    # CLI prologue runs before any component is constructed, so the
    # writes *are* construction-time configuration.
    if args.jobs is not None:
        if args.jobs < 1:
            parser.error("--jobs must be >= 1")
        os.environ["REPRO_JOBS"] = str(args.jobs)  # simlint: ok[env-knob]
    if args.no_cache:
        os.environ["REPRO_NO_CACHE"] = "1"  # simlint: ok[env-knob]
    if args.no_snapshot:
        os.environ["REPRO_NO_SNAPSHOT"] = "1"  # simlint: ok[env-knob]

    if args.experiment == "list":
        width = max(len(k) for k in EXPERIMENTS)
        for exp in EXPERIMENTS.values():
            print(f"{exp.experiment_id:<{width}}  {exp.description}")
        return 0

    exp = EXPERIMENTS.get(args.experiment)
    if exp is None:
        print(
            f"unknown experiment {args.experiment!r}; try 'list'",
            file=sys.stderr,
        )
        return 2

    kwargs = {"ops": args.ops} if args.ops is not None else {}
    report = exp.runner(**kwargs)
    print(report.format_report())

    if args.save:
        from repro.analysis.results import save_results

        path = save_results(
            report, args.save, experiment=args.experiment, config=kwargs
        )
        print(f"\nsaved: {path}")

    if args.verdict:
        from repro.analysis.verdict import check_fig4, check_fig5a

        checkers = {"fig4": check_fig4, "fig5a": check_fig5a}
        checker = checkers.get(args.experiment)
        if checker is None:
            print("\n(no verdict checker for this experiment)")
        else:
            verdict = checker(report)
            print("\n" + verdict.format_report())
            return 0 if verdict.ok else 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
