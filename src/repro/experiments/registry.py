"""Experiment registry: id → (description, entry point).

Maps every table/figure from DESIGN.md's per-experiment index to the
function that regenerates it, so tooling (and readers) can enumerate the
reproduction surface.
"""

from __future__ import annotations

from typing import Callable, Dict, NamedTuple

from repro.experiments.fig2 import (
    run_fig2a_footprint,
    run_fig2b_scaling,
    run_fig2c_references,
    run_fig2d_lifetimes,
)
from repro.experiments.fig4 import run_figure4
from repro.experiments.fig5 import run_fig5a_optane, run_fig5b_sources, run_fig5c_objtypes
from repro.experiments.fig6 import run_figure6
from repro.experiments.percpu_ablation import run_percpu_ablation
from repro.experiments.prefetch import run_prefetch_study
from repro.experiments.table6 import run_table6_overhead


class Experiment(NamedTuple):
    experiment_id: str
    description: str
    runner: Callable


EXPERIMENTS: Dict[str, Experiment] = {
    exp.experiment_id: exp
    for exp in [
        Experiment(
            "fig2a",
            "Kernel-object vs application footprint per workload",
            run_fig2a_footprint,
        ),
        Experiment(
            "fig2b",
            "Footprint split for small (10GB) vs large (40GB) inputs",
            run_fig2b_scaling,
        ),
        Experiment(
            "fig2c",
            "Memory-reference attribution (kernel vs application)",
            run_fig2c_references,
        ),
        Experiment(
            "fig2d",
            "Lifetimes: app pages vs slab vs page-cache pages",
            run_fig2d_lifetimes,
        ),
        Experiment(
            "fig4",
            "Two-tier speedups across Table 5's strategies",
            run_figure4,
        ),
        Experiment(
            "fig5a",
            "Optane Memory Mode speedups under interference",
            run_fig5a_optane,
        ),
        Experiment(
            "fig5b",
            "Slow-memory allocations and migrations (RocksDB)",
            run_fig5b_sources,
        ),
        Experiment(
            "fig5c",
            "Incremental kernel-object-type coverage",
            run_fig5c_objtypes,
        ),
        Experiment(
            "fig6",
            "Capacity and bandwidth sensitivity sweep",
            run_figure6,
        ),
        Experiment(
            "table6",
            "KLOC metadata memory overhead",
            run_table6_overhead,
        ),
        Experiment(
            "percpu",
            "Per-CPU knode fast-path ablation (the 54% statistic)",
            run_percpu_ablation,
        ),
        Experiment(
            "prefetch",
            "KLOC-aware readahead study (the 1.26x statistic)",
            run_prefetch_study,
        ),
    ]
}
