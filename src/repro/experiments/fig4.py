"""Figure 4: two-tier speedups, normalized to *All Slow Mem*.

The paper's headline: KLOCs outperform every alternative (except for
Cassandra, where they roughly match Nimble++); RocksDB gains 1.96x over
Naive with migration vs 1.61x without; Redis gains 2.2x over Naive /
2.7x over Nimble.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.experiments.cache import two_tier_spec
from repro.experiments.defaults import EVAL_WORKLOADS, ops_for
from repro.experiments.parallel import run_specs
from repro.experiments.runner import TwoTierRun
from repro.metrics.report import format_table

#: Bar order follows the figure.
FIG4_POLICIES = (
    "all_slow",
    "naive",
    "nimble",
    "nimble++",
    "klocs_nomigration",
    "klocs",
    "all_fast",
)


@dataclass
class Fig4Report:
    """speedups[workload][policy] = throughput / throughput(all_slow)."""

    speedups: Dict[str, Dict[str, float]] = field(default_factory=dict)
    runs: List[TwoTierRun] = field(default_factory=list)

    def speedup(self, workload: str, policy: str) -> float:
        return self.speedups[workload][policy]

    def ratio(self, workload: str, policy_a: str, policy_b: str) -> float:
        """speedup(a) / speedup(b) — the paper's X-over-Y statements."""
        return self.speedup(workload, policy_a) / self.speedup(workload, policy_b)

    def format_report(self) -> str:
        policies = [p for p in FIG4_POLICIES if any(p in v for v in self.speedups.values())]
        rows = []
        for workload, by_policy in self.speedups.items():
            rows.append([workload] + [by_policy.get(p, float("nan")) for p in policies])
        return format_table(
            ["workload"] + list(policies),
            rows,
            title="Fig 4 — two-tier speedup vs All Slow Mem",
        )


def run_figure4(
    workloads: Sequence[str] = EVAL_WORKLOADS,
    policies: Sequence[str] = FIG4_POLICIES,
    *,
    ops: Optional[int] = None,
) -> Fig4Report:
    """Regenerate Figure 4 (full: 4 workloads x 7 strategies).

    The (workload, policy) grid — plus an ``all_slow`` baseline cell per
    workload when the policy list omits it — is dispatched through the
    parallel engine and merged back in grid order.
    """
    report = Fig4Report()
    grid: List[tuple] = []
    for workload in workloads:
        budget = ops if ops is not None else ops_for(workload)
        for policy in policies:
            grid.append((workload, policy, budget))
        if "all_slow" not in policies:
            grid.append((workload, "all_slow", budget))
    results = run_specs(
        [two_tier_spec(w, p, ops=budget) for w, p, budget in grid]
    )

    runs_by: Dict[str, Dict[str, TwoTierRun]] = {}
    for (workload, policy, _budget), run in zip(grid, results):
        runs_by.setdefault(workload, {})[policy] = run
    for workload in workloads:
        by_policy: Dict[str, float] = {}
        for policy in policies:
            run = runs_by[workload][policy]
            by_policy[policy] = run.throughput
            report.runs.append(run)
        base = by_policy.get("all_slow")
        if base is None:
            base = runs_by[workload]["all_slow"].throughput
        report.speedups[workload] = {
            policy: tput / base for policy, tput in by_policy.items()
        }
    return report
