"""Figure 5: Optane Memory Mode speedups (5a), sources of improvement
(5b), and kernel-object-type sensitivity (5c)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.experiments.cache import optane_spec, two_tier_spec
from repro.experiments.defaults import ops_for
from repro.experiments.parallel import run_specs
from repro.experiments.runner import TwoTierRun, run_optane_interference
from repro.kloc.registry import KlocRegistry
from repro.metrics.report import format_table

# ----------------------------------------------------------------------
# Fig 5a — Optane Memory Mode
# ----------------------------------------------------------------------

FIG5A_POLICIES = ("all_remote", "autonuma", "nimble", "klocs", "all_local")


@dataclass
class Fig5aReport:
    """speedups[workload][policy], normalized to all_remote."""

    speedups: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def format_report(self) -> str:
        rows = [
            [w] + [v.get(p, float("nan")) for p in FIG5A_POLICIES]
            for w, v in self.speedups.items()
        ]
        return format_table(
            ["workload"] + list(FIG5A_POLICIES),
            rows,
            title="Fig 5a — Optane Memory Mode speedup vs all-remote",
        )


#: Retained alias: the measurement body now lives in the shared runner so
#: the parallel engine can dispatch it (see ``run_optane_interference``).
_optane_throughput = run_optane_interference


def run_fig5a_optane(
    workloads: Sequence[str] = ("rocksdb", "redis"),
    policies: Sequence[str] = FIG5A_POLICIES,
    *,
    ops: Optional[int] = None,
) -> Fig5aReport:
    report = Fig5aReport()
    grid = [
        (workload, policy, ops if ops is not None else ops_for(workload))
        for workload in workloads
        for policy in policies
    ]
    results = run_specs(
        [optane_spec(w, p, ops=budget) for w, p, budget in grid]
    )
    tputs: Dict[str, Dict[str, float]] = {}
    for (workload, policy, _budget), tput in zip(grid, results):
        tputs.setdefault(workload, {})[policy] = tput
    for workload in workloads:
        base = tputs[workload]["all_remote"]
        report.speedups[workload] = {
            p: t / base for p, t in tputs[workload].items()
        }
    return report


# ----------------------------------------------------------------------
# Fig 5b — sources of improvement (RocksDB)
# ----------------------------------------------------------------------


@dataclass
class Fig5bReport:
    """Per policy: slow-memory allocations (page cache, slab) and
    fast→slow migrations, for RocksDB — lower slow-allocs and controlled
    migrations are what give KLOCs its edge."""

    rows: List[TwoTierRun] = field(default_factory=list)

    def format_report(self) -> str:
        return format_table(
            ["policy", "slow_alloc_page_cache", "slow_alloc_slab",
             "migr_down", "migr_up", "fast_ref_frac"],
            [
                [
                    r.policy,
                    r.slow_allocs.get("page_cache", 0),
                    r.slow_allocs.get("slab", 0),
                    r.migrations_down,
                    r.migrations_up,
                    r.fast_ref_fraction,
                ]
                for r in self.rows
            ],
            title="Fig 5b — RocksDB slow-memory allocations and migrations",
        )


def run_fig5b_sources(
    policies: Sequence[str] = ("naive", "nimble", "nimble++", "klocs"),
    *,
    ops: Optional[int] = None,
) -> Fig5bReport:
    report = Fig5bReport()
    report.rows.extend(
        run_specs([two_tier_spec("rocksdb", p, ops=ops) for p in policies])
    )
    return report


# ----------------------------------------------------------------------
# Fig 5c — incremental kernel-object-type coverage
# ----------------------------------------------------------------------

#: The paper's incremental order: app-only first, then page caches,
#: journals, slab objects, socket buffers, block I/O.
FIG5C_ORDER = ("none", "page_cache", "journal", "slab", "sockbuf", "block_io")


@dataclass
class Fig5cReport:
    """speedups[workload][coverage_label] vs the app-only configuration."""

    speedups: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def format_report(self) -> str:
        labels = ["+" + g if g != "none" else "app-only" for g in FIG5C_ORDER]
        rows = [
            [w] + [v.get(g, float("nan")) for g in FIG5C_ORDER]
            for w, v in self.speedups.items()
        ]
        return format_table(
            ["workload"] + labels,
            rows,
            title="Fig 5c — KLOC speedup as object types are added "
            "(normalized to app-only tiering)",
        )


def run_fig5c_objtypes(
    workloads: Sequence[str] = ("rocksdb", "redis"),
    *,
    ops: Optional[int] = None,
) -> Fig5cReport:
    """Incrementally add Fig 5c's object groups to the KLOC registry.

    Types excluded from coverage are always placed in fast memory (the
    paper's control: "kernel objects excluded from KLOCs are placed in
    fast memory"), which our uncovered-type placement implements.
    """
    report = Fig5cReport()
    grid: List[tuple] = []
    for workload in workloads:
        covered: List[str] = []
        for group in FIG5C_ORDER:
            if group != "none":
                covered.append(group)
            registry = KlocRegistry.groups(*covered) if covered else KlocRegistry.none()
            grid.append((workload, group, registry))
    results = run_specs(
        [
            two_tier_spec(w, "klocs", ops=ops, registry=registry)
            for w, _g, registry in grid
        ]
    )
    tput_by: Dict[str, Dict[str, float]] = {}
    for (workload, group, _registry), run in zip(grid, results):
        tput_by.setdefault(workload, {})[group] = run.throughput
    for workload in workloads:
        base_tput = tput_by[workload][FIG5C_ORDER[0]]
        report.speedups[workload] = {
            group: tput / base_tput for group, tput in tput_by[workload].items()
        }
    return report
