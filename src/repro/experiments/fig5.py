"""Figure 5: Optane Memory Mode speedups (5a), sources of improvement
(5b), and kernel-object-type sensitivity (5c)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.experiments.defaults import SCALE_FACTOR, ops_for, seed
from repro.experiments.runner import TwoTierRun, make_workload, run_two_tier
from repro.kloc.registry import KlocRegistry
from repro.metrics.report import format_table
from repro.platforms.optane import build_optane_kernel
from repro.workloads.interference import StreamingInterferer

# ----------------------------------------------------------------------
# Fig 5a — Optane Memory Mode
# ----------------------------------------------------------------------

FIG5A_POLICIES = ("all_remote", "autonuma", "nimble", "klocs", "all_local")


@dataclass
class Fig5aReport:
    """speedups[workload][policy], normalized to all_remote."""

    speedups: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def format_report(self) -> str:
        rows = [
            [w] + [v.get(p, float("nan")) for p in FIG5A_POLICIES]
            for w, v in self.speedups.items()
        ]
        return format_table(
            ["workload"] + list(FIG5A_POLICIES),
            rows,
            title="Fig 5a — Optane Memory Mode speedup vs all-remote",
        )


def _optane_throughput(workload: str, policy: str, ops: int) -> float:
    """§6.2's interference experiment: run, interfere, migrate, measure.

    The workload starts on socket 0. A third of the way in, a streaming
    co-runner contends for socket 0's bandwidth and the scheduler moves
    the task to socket 1; the policy decides what data follows. Reported
    throughput covers the post-interference phase, where placement
    matters.
    """
    kernel, _pol = build_optane_kernel(policy, scale_factor=SCALE_FACTOR, seed=seed())
    wl = make_workload(kernel, workload)
    wl.setup()
    warm = max(1, ops // 3)
    wl.run(warm)

    interferer = StreamingInterferer(kernel, "node0", streams=3)
    interferer.start()
    kernel.set_task_node(1)
    result = wl.run(ops - warm)
    interferer.stop()
    wl.teardown()
    return result.throughput_ops_per_sec


def run_fig5a_optane(
    workloads: Sequence[str] = ("rocksdb", "redis"),
    policies: Sequence[str] = FIG5A_POLICIES,
    *,
    ops: Optional[int] = None,
) -> Fig5aReport:
    report = Fig5aReport()
    for workload in workloads:
        budget = ops if ops is not None else ops_for(workload)
        tputs = {p: _optane_throughput(workload, p, budget) for p in policies}
        base = tputs["all_remote"]
        report.speedups[workload] = {p: t / base for p, t in tputs.items()}
    return report


# ----------------------------------------------------------------------
# Fig 5b — sources of improvement (RocksDB)
# ----------------------------------------------------------------------


@dataclass
class Fig5bReport:
    """Per policy: slow-memory allocations (page cache, slab) and
    fast→slow migrations, for RocksDB — lower slow-allocs and controlled
    migrations are what give KLOCs its edge."""

    rows: List[TwoTierRun] = field(default_factory=list)

    def format_report(self) -> str:
        return format_table(
            ["policy", "slow_alloc_page_cache", "slow_alloc_slab",
             "migr_down", "migr_up", "fast_ref_frac"],
            [
                [
                    r.policy,
                    r.slow_allocs.get("page_cache", 0),
                    r.slow_allocs.get("slab", 0),
                    r.migrations_down,
                    r.migrations_up,
                    r.fast_ref_fraction,
                ]
                for r in self.rows
            ],
            title="Fig 5b — RocksDB slow-memory allocations and migrations",
        )


def run_fig5b_sources(
    policies: Sequence[str] = ("naive", "nimble", "nimble++", "klocs"),
    *,
    ops: Optional[int] = None,
) -> Fig5bReport:
    report = Fig5bReport()
    for policy in policies:
        report.rows.append(run_two_tier("rocksdb", policy, ops=ops))
    return report


# ----------------------------------------------------------------------
# Fig 5c — incremental kernel-object-type coverage
# ----------------------------------------------------------------------

#: The paper's incremental order: app-only first, then page caches,
#: journals, slab objects, socket buffers, block I/O.
FIG5C_ORDER = ("none", "page_cache", "journal", "slab", "sockbuf", "block_io")


@dataclass
class Fig5cReport:
    """speedups[workload][coverage_label] vs the app-only configuration."""

    speedups: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def format_report(self) -> str:
        labels = ["+" + g if g != "none" else "app-only" for g in FIG5C_ORDER]
        rows = [
            [w] + [v.get(g, float("nan")) for g in FIG5C_ORDER]
            for w, v in self.speedups.items()
        ]
        return format_table(
            ["workload"] + labels,
            rows,
            title="Fig 5c — KLOC speedup as object types are added "
            "(normalized to app-only tiering)",
        )


def run_fig5c_objtypes(
    workloads: Sequence[str] = ("rocksdb", "redis"),
    *,
    ops: Optional[int] = None,
) -> Fig5cReport:
    """Incrementally add Fig 5c's object groups to the KLOC registry.

    Types excluded from coverage are always placed in fast memory (the
    paper's control: "kernel objects excluded from KLOCs are placed in
    fast memory"), which our uncovered-type placement implements.
    """
    report = Fig5cReport()
    for workload in workloads:
        base_tput: Optional[float] = None
        covered: List[str] = []
        by_group: Dict[str, float] = {}
        for group in FIG5C_ORDER:
            if group != "none":
                covered.append(group)
            registry = KlocRegistry.groups(*covered) if covered else KlocRegistry.none()
            run = run_two_tier("%s" % workload, "klocs", ops=ops, registry=registry)
            if base_tput is None:
                base_tput = run.throughput
            by_group[group] = run.throughput / base_tput
        report.speedups[workload] = by_group
    return report
