"""Content-addressed on-disk cache for experiment runs.

Every measured run in this repository is a pure function of its spec:
the simulator is deterministic, so (workload, policy, ops, scale factor,
bandwidth ratio, fast capacity, seed, registry coverage, readahead flag)
fully determine the result. The cache exploits that: a
:class:`RunSpec` hashes to a stable key, results are stored as JSON under
``.repro_cache/``, and any later invocation with the same spec is served
from disk instead of re-simulating.

Invalidation is by construction: the key includes :data:`SIM_VERSION`,
which MUST be bumped whenever a change alters simulated behavior (cost
models, policies, daemon scheduling, workload op mixes). Pure
refactors and performance work keep the tag, so the cache survives them.

Environment knobs:

- ``REPRO_CACHE_DIR`` — cache directory (default ``./.repro_cache``).
- ``REPRO_NO_CACHE=1`` — disable reads *and* writes (every run computes).
- ``REPRO_CACHE_MAX_MB`` — byte budget for the whole cache tree (results
  plus snapshots), enforced oldest-first on every store (see
  :mod:`repro.snapshot.budget`).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro.core.objtypes import KernelObjectType

#: Canonical home is :mod:`repro.core.version` (a leaf module both this
#: cache and the snapshot store key on); re-exported here because every
#: existing caller imports it from this module.
from repro.core.version import SIM_VERSION
from repro.experiments.defaults import SCALE_FACTOR, ops_for, seed
from repro.experiments.runner import TwoTierRun
from repro.kloc.registry import KlocRegistry
from repro.mem.frame import PageOwner
from repro.metrics.footprint import FootprintSnapshot
from repro.metrics.references import ReferenceReport
from repro.platforms.twotier import PAPER_FAST_BYTES

#: Shared with the snapshot store so both keys agree on what "same
#: registry coverage" means.
from repro.snapshot.budget import enforce_size_limit
from repro.snapshot.store import registry_names
from repro.workloads.base import WorkloadResult


@dataclasses.dataclass(frozen=True)
class RunSpec:
    """The full identity of one deterministic experiment run.

    ``kind`` selects the measurement procedure: ``"two_tier"`` maps to
    :func:`repro.experiments.runner.run_two_tier`, ``"optane"`` to
    :func:`repro.experiments.runner.run_optane_interference`.
    ``registry`` is the KLOC coverage as a sorted tuple of
    :class:`KernelObjectType` names, or ``None`` for the policy default
    (full coverage).
    """

    workload: str
    policy: str
    ops: int
    kind: str = "two_tier"
    scale_factor: int = SCALE_FACTOR
    bandwidth_ratio: int = 8
    fast_bytes_paper: int = PAPER_FAST_BYTES
    seed: int = 42
    registry: Optional[Tuple[str, ...]] = None
    readahead_enabled: bool = True
    measure_setup: bool = False

    def key(self) -> str:
        """Stable content hash of the spec + simulator version."""
        record = dataclasses.asdict(self)
        record["registry"] = (
            list(self.registry) if self.registry is not None else None
        )
        record["sim_version"] = SIM_VERSION
        blob = json.dumps(record, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def label(self) -> str:
        """Short human-readable cell label for sweep logs."""
        bits = [f"{self.workload}/{self.policy}", f"ops={self.ops}"]
        if self.kind != "two_tier":
            bits.insert(0, self.kind)
        if self.bandwidth_ratio != 8:
            bits.append(f"bw=1:{self.bandwidth_ratio}")
        if self.fast_bytes_paper != PAPER_FAST_BYTES:
            bits.append(f"fast={self.fast_bytes_paper // (1 << 30)}GB")
        if self.registry is not None:
            bits.append(f"reg={len(self.registry)}t")
        return " ".join(bits)

    def build_registry(self) -> Optional[KlocRegistry]:
        """Materialize the registry coverage this spec encodes."""
        if self.registry is None:
            return None
        return KlocRegistry(
            covered=[KernelObjectType[name] for name in self.registry]
        )


def two_tier_spec(
    workload: str,
    policy: str,
    *,
    ops: Optional[int] = None,
    scale_factor: int = SCALE_FACTOR,
    bandwidth_ratio: int = 8,
    fast_bytes_paper: int = PAPER_FAST_BYTES,
    registry: Optional[KlocRegistry] = None,
    readahead_enabled: bool = True,
    run_seed: Optional[int] = None,
    measure_setup: bool = False,
) -> RunSpec:
    """Build a spec mirroring :func:`run_two_tier`'s signature, with the
    op budget and seed resolved to concrete values (cache keys must not
    depend on environment state at *replay* time)."""
    return RunSpec(
        workload=workload,
        policy=policy,
        ops=ops if ops is not None else ops_for(workload),
        kind="two_tier",
        scale_factor=scale_factor,
        bandwidth_ratio=bandwidth_ratio,
        fast_bytes_paper=fast_bytes_paper,
        seed=run_seed if run_seed is not None else seed(),
        registry=registry_names(registry),
        readahead_enabled=readahead_enabled,
        measure_setup=measure_setup,
    )


def optane_spec(
    workload: str,
    policy: str,
    *,
    ops: Optional[int] = None,
    scale_factor: int = SCALE_FACTOR,
    run_seed: Optional[int] = None,
) -> RunSpec:
    """Spec for the §6.2 Optane interference measurement."""
    return RunSpec(
        workload=workload,
        policy=policy,
        ops=ops if ops is not None else ops_for(workload),
        kind="optane",
        scale_factor=scale_factor,
        seed=run_seed if run_seed is not None else seed(),
    )


# ----------------------------------------------------------------------
# result (de)serialization
# ----------------------------------------------------------------------


def run_to_payload(run: TwoTierRun) -> Dict[str, Any]:
    """JSON-able encoding of a :class:`TwoTierRun` (lossless round-trip)."""
    return {
        "kind": "two_tier",
        "workload": run.workload,
        "policy": run.policy,
        "result": {
            "name": run.result.name,
            "ops": run.result.ops,
            "elapsed_ns": run.result.elapsed_ns,
            "setup_ns": run.result.setup_ns,
        },
        "fast_ref_fraction": run.fast_ref_fraction,
        "footprint": {
            "allocated": {o.value: n for o, n in run.footprint.allocated.items()},
            "live": {o.value: n for o, n in run.footprint.live.items()},
        },
        "references": {
            "kernel_refs": run.references.kernel_refs,
            "app_refs": run.references.app_refs,
            "kernel_bytes": run.references.kernel_bytes,
            "app_bytes": run.references.app_bytes,
            "by_owner": {o.value: n for o, n in run.references.by_owner.items()},
        },
        "slow_allocs": dict(run.slow_allocs),
        "migrations_down": run.migrations_down,
        "migrations_up": run.migrations_up,
        "kloc_metadata_bytes": run.kloc_metadata_bytes,
    }


def run_from_payload(payload: Dict[str, Any]) -> TwoTierRun:
    """Inverse of :func:`run_to_payload`."""
    fp = payload["footprint"]
    refs = payload["references"]
    return TwoTierRun(
        workload=payload["workload"],
        policy=payload["policy"],
        result=WorkloadResult(**payload["result"]),
        fast_ref_fraction=payload["fast_ref_fraction"],
        footprint=FootprintSnapshot(
            allocated={PageOwner(k): v for k, v in fp["allocated"].items()},
            live={PageOwner(k): v for k, v in fp["live"].items()},
        ),
        references=ReferenceReport(
            kernel_refs=refs["kernel_refs"],
            app_refs=refs["app_refs"],
            kernel_bytes=refs["kernel_bytes"],
            app_bytes=refs["app_bytes"],
            by_owner={PageOwner(k): v for k, v in refs["by_owner"].items()},
        ),
        slow_allocs=dict(payload["slow_allocs"]),
        migrations_down=payload["migrations_down"],
        migrations_up=payload["migrations_up"],
        kloc_metadata_bytes=payload["kloc_metadata_bytes"],
    )


# ----------------------------------------------------------------------
# the on-disk cache
# ----------------------------------------------------------------------


class ResultCache:
    """Content-addressed JSON store for run payloads.

    One file per spec key; writes go through a temp file + ``os.replace``
    so concurrent workers (or concurrent sweeps) never observe a torn
    entry.
    """

    def __init__(
        self,
        root: Optional[Path] = None,
        *,
        enabled: Optional[bool] = None,
    ) -> None:
        if root is None:
            root = Path(os.environ.get("REPRO_CACHE_DIR", ".repro_cache"))
        self.root = Path(root)
        if enabled is None:
            enabled = not os.environ.get("REPRO_NO_CACHE")
        self.enabled = enabled

    def _path(self, spec: RunSpec) -> Path:
        return self.root / f"{spec.workload}-{spec.policy}-{spec.key()[:20]}.json"

    def load(self, spec: RunSpec) -> Optional[Dict[str, Any]]:
        """Stored payload for ``spec``, or None on miss/corruption."""
        if not self.enabled:
            return None
        path = self._path(spec)
        try:
            with path.open("r", encoding="utf-8") as fh:
                entry = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None
        if entry.get("sim_version") != SIM_VERSION:
            return None
        return entry.get("payload")

    def store(self, spec: RunSpec, payload: Dict[str, Any]) -> None:
        if not self.enabled:
            return
        self.root.mkdir(parents=True, exist_ok=True)
        entry = {
            "sim_version": SIM_VERSION,
            "spec": dataclasses.asdict(spec),
            "payload": payload,
        }
        path = self._path(spec)
        fd, tmp = tempfile.mkstemp(dir=str(self.root), suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(entry, fh, indent=1)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        # REPRO_CACHE_MAX_MB: bound the whole cache tree (result entries
        # plus the snapshots/ subdirectory), oldest first. No-op unless
        # the knob is set.
        enforce_size_limit(self.root)

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed
