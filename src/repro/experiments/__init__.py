"""Experiment harness: one module per paper figure/table.

Every experiment returns a structured result object with a
``format_report()`` method printing the same rows/series the paper
reports, and the benchmark suite under ``benchmarks/`` drives these
functions one-to-one.
"""

from repro.experiments.cache import ResultCache, RunSpec, SIM_VERSION, two_tier_spec
from repro.experiments.fig2 import (
    run_fig2a_footprint,
    run_fig2b_scaling,
    run_fig2c_references,
    run_fig2d_lifetimes,
)
from repro.experiments.fig4 import run_figure4
from repro.experiments.fig5 import run_fig5a_optane, run_fig5b_sources, run_fig5c_objtypes
from repro.experiments.fig6 import run_figure6
from repro.experiments.percpu_ablation import run_percpu_ablation
from repro.experiments.prefetch import run_prefetch_study
from repro.experiments.parallel import default_jobs, run_specs
from repro.experiments.registry import EXPERIMENTS
from repro.experiments.runner import TwoTierRun, run_two_tier
from repro.experiments.table6 import run_table6_overhead

__all__ = [
    "run_two_tier",
    "TwoTierRun",
    "RunSpec",
    "ResultCache",
    "SIM_VERSION",
    "two_tier_spec",
    "run_specs",
    "default_jobs",
    "run_fig2a_footprint",
    "run_fig2b_scaling",
    "run_fig2c_references",
    "run_fig2d_lifetimes",
    "run_figure4",
    "run_fig5a_optane",
    "run_fig5b_sources",
    "run_fig5c_objtypes",
    "run_figure6",
    "run_table6_overhead",
    "run_percpu_ablation",
    "run_prefetch_study",
    "EXPERIMENTS",
]
