"""Shared run machinery: build kernel → setup workload → measure.

Runs are **two-phase** (setup → snapshot → measure): the load phase
either replays cold or restores from the content-addressed snapshot
store (:mod:`repro.snapshot`), keyed by the setup-affecting slice of the
spec. Restored runs are byte-identical to cold runs (enforced by
``tests/experiments/test_snapshot_equivalence.py``); ``REPRO_NO_SNAPSHOT=1``
restores the always-cold legacy path. Because every completed setup is
persisted before measurement begins, a killed sweep resumes from its
last completed phase: finished cells come back from the result cache,
half-done cells skip straight to measurement.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.experiments.defaults import SCALE_FACTOR, ops_for, seed
from repro.kernel.kernel import Kernel
from repro.kloc.registry import KlocRegistry
from repro.metrics.footprint import FootprintSnapshot, footprint_snapshot
from repro.metrics.references import ReferenceReport, reference_report
from repro.platforms.twotier import PAPER_FAST_BYTES, build_two_tier_kernel
from repro.snapshot import SnapshotStore, setup_key
from repro.workloads import WORKLOADS
from repro.workloads.base import Workload, WorkloadResult


def make_workload(kernel: Kernel, name: str, *, scale_factor: int = SCALE_FACTOR):
    """Instantiate a workload with its default config rescaled.

    ``dataclasses.replace`` keeps every other config field as the
    workload's default, so new fields can't be silently dropped here.
    """
    workload_cls = WORKLOADS[name]
    probe_cfg = workload_cls(kernel, None).config
    cfg = dataclasses.replace(probe_cfg, scale_factor=scale_factor)
    return workload_cls(kernel, cfg)


@dataclass
class TwoTierRun:
    """Everything a figure needs from one (workload, policy) run."""

    workload: str
    policy: str
    result: WorkloadResult
    fast_ref_fraction: float
    footprint: FootprintSnapshot
    references: ReferenceReport
    slow_allocs: Dict[str, int] = field(default_factory=dict)
    migrations_down: int = 0
    migrations_up: int = 0
    kloc_metadata_bytes: int = 0
    #: True when the setup phase came from the snapshot store instead of
    #: a cold replay. Diagnostic only — never serialized into payloads
    #: (cold and restored runs are byte-identical by contract) and never
    #: part of equality.
    from_snapshot: bool = field(default=False, compare=False)

    @property
    def throughput(self) -> float:
        return self.result.throughput_ops_per_sec


def run_two_tier(
    workload: str,
    policy: str,
    *,
    ops: Optional[int] = None,
    scale_factor: int = SCALE_FACTOR,
    bandwidth_ratio: int = 8,
    fast_bytes_paper: int = PAPER_FAST_BYTES,
    registry: Optional[KlocRegistry] = None,
    readahead_enabled: bool = True,
    run_seed: Optional[int] = None,
    measure_setup: bool = False,
    snapshots: Optional[SnapshotStore] = None,
) -> TwoTierRun:
    """One measured workload run on the two-tier platform.

    The load phase (setup) runs first — restored from the snapshot store
    when a warmed kernel with this exact setup identity exists, replayed
    cold otherwise (and then snapshotted for the next cell). Reference
    counters reset after it so the reported split covers steady state,
    as perf-counter measurements do. ``snapshots=None`` builds the
    default store (honoring ``REPRO_NO_SNAPSHOT`` / ``REPRO_NO_CACHE`` /
    ``REPRO_CACHE_DIR``); pass an explicit store to pin placement.
    """
    resolved_seed = run_seed if run_seed is not None else seed()
    store = snapshots if snapshots is not None else SnapshotStore()
    key = None
    kernel: Optional[Kernel] = None
    wl: Optional[Workload] = None
    restored = False
    if store.enabled:
        key = setup_key(
            kind="two_tier",
            workload=workload,
            policy=policy,
            scale_factor=scale_factor,
            seed=resolved_seed,
            bandwidth_ratio=bandwidth_ratio,
            fast_bytes_paper=fast_bytes_paper,
            registry=registry,
            readahead_enabled=readahead_enabled,
            retired_limit=0,
        )
        loaded = store.load(key)
        if loaded is not None:
            kernel, wl = loaded
            restored = True
    if kernel is None or wl is None:
        kernel, _pol = build_two_tier_kernel(
            policy,
            scale_factor=scale_factor,
            bandwidth_ratio=bandwidth_ratio,
            fast_bytes_paper=fast_bytes_paper,
            seed=resolved_seed,
            registry=registry,
            readahead_enabled=readahead_enabled,
            # This runner never reads lifetime metrics, so the retired-frame
            # log is dead weight — don't let it grow with every freed page.
            # (Fig 2's characterization builds its own kernel, uncapped.)
            retired_limit=0,
        )
        wl = make_workload(kernel, workload, scale_factor=scale_factor)
        wl.setup()
        if key is not None:
            store.save(key, kernel, wl)
    if not measure_setup:
        kernel.reset_reference_counters()
    result = wl.run(ops if ops is not None else ops_for(workload))

    from repro.mem.frame import PageOwner

    slow_allocs = {
        owner.value: kernel.topology.alloc_count.get(("slow", owner), 0)
        for owner in (PageOwner.PAGE_CACHE, PageOwner.SLAB)
    }
    run = TwoTierRun(
        workload=workload,
        policy=policy,
        result=result,
        fast_ref_fraction=kernel.fast_ref_fraction(),
        footprint=footprint_snapshot(kernel.topology),
        references=reference_report(kernel),
        slow_allocs=slow_allocs,
        migrations_down=kernel.topology.migrations_between("fast", "slow"),
        migrations_up=kernel.topology.migrations_between("slow", "fast"),
        kloc_metadata_bytes=(
            kernel.kloc_manager.peak_metadata_bytes if kernel.kloc_manager else 0
        ),
        from_snapshot=restored,
    )
    wl.teardown()
    # REPRO_SANITIZE=1: audit the books after teardown (no-op otherwise).
    # The payload above is already built, so the audit cannot perturb it.
    kernel.sanitize_teardown()
    return run


def run_optane_interference(
    workload: str,
    policy: str,
    ops: int,
    *,
    scale_factor: int = SCALE_FACTOR,
    run_seed: Optional[int] = None,
    snapshots: Optional[SnapshotStore] = None,
) -> float:
    """§6.2's interference experiment: run, interfere, migrate, measure.

    The workload starts on socket 0. A third of the way in, a streaming
    co-runner contends for socket 0's bandwidth and the scheduler moves
    the task to socket 1; the policy decides what data follows. Reported
    throughput covers the post-interference phase, where placement
    matters.

    The snapshot point is right after ``setup()`` — the warm pre-phase
    depends on ``ops`` (a measurement knob), so it replays on every run
    and every ops point shares one warmed kernel.
    """
    from repro.platforms.optane import build_optane_kernel
    from repro.workloads.interference import StreamingInterferer

    resolved_seed = run_seed if run_seed is not None else seed()
    store = snapshots if snapshots is not None else SnapshotStore()
    key = None
    kernel: Optional[Kernel] = None
    wl: Optional[Workload] = None
    if store.enabled:
        key = setup_key(
            kind="optane",
            workload=workload,
            policy=policy,
            scale_factor=scale_factor,
            seed=resolved_seed,
            retired_limit=0,
        )
        loaded = store.load(key)
        if loaded is not None:
            kernel, wl = loaded
    if kernel is None or wl is None:
        kernel, _pol = build_optane_kernel(
            policy,
            scale_factor=scale_factor,
            seed=resolved_seed,
            retired_limit=0,  # throughput-only measurement; no lifetime reads
        )
        wl = make_workload(kernel, workload, scale_factor=scale_factor)
        wl.setup()
        if key is not None:
            store.save(key, kernel, wl)
    warm = max(1, ops // 3)
    wl.run(warm)

    interferer = StreamingInterferer(kernel, "node0", streams=3)
    interferer.start()
    kernel.set_task_node(1)
    result = wl.run(ops - warm)
    interferer.stop()
    wl.teardown()
    kernel.sanitize_teardown()  # no-op unless REPRO_SANITIZE=1
    return result.throughput_ops_per_sec
