"""Table 6: KLOC metadata memory overhead.

The paper: Filebench 44MB, RocksDB 101MB, Redis 83MB, Cassandra 12MB,
Spark 43MB — all under 1% of memory, dominated by the 8-byte rb-tree
pointers (≈96MB of RocksDB's 101MB). The simulator's metadata accounting
uses the same 64B-knode + 8B-pointer arithmetic; multiplying the peak by
the capacity scale factor gives paper-comparable magnitudes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.core.units import MB
from repro.experiments.cache import two_tier_spec
from repro.experiments.defaults import SCALE_FACTOR
from repro.experiments.parallel import run_specs
from repro.metrics.report import format_table
from repro.platforms.twotier import PAPER_FAST_BYTES


@dataclass
class Table6Report:
    #: workload → peak metadata bytes (sim scale).
    metadata_bytes: Dict[str, int] = field(default_factory=dict)
    scale_factor: int = SCALE_FACTOR

    def paper_equivalent_mb(self, workload: str) -> float:
        """Scale the sim-scale peak back up to paper-scale megabytes."""
        return self.metadata_bytes[workload] * self.scale_factor / MB

    def fraction_of_memory(self, workload: str) -> float:
        """Overhead as a fraction of fast memory (paper: <1% of total)."""
        fast_bytes = PAPER_FAST_BYTES // self.scale_factor
        return self.metadata_bytes[workload] / fast_bytes

    def format_report(self) -> str:
        return format_table(
            ["workload", "peak_metadata(sim)", "paper-equivalent MB",
             "frac of fast mem"],
            [
                [
                    w,
                    nbytes,
                    self.paper_equivalent_mb(w),
                    self.fraction_of_memory(w),
                ]
                for w, nbytes in self.metadata_bytes.items()
            ],
            title="Table 6 — KLOC metadata memory increase",
        )


def run_table6_overhead(
    workloads: Sequence[str] = ("rocksdb", "redis", "filebench", "cassandra", "spark"),
    *,
    ops: Optional[int] = None,
) -> Table6Report:
    report = Table6Report()
    runs = run_specs(
        [two_tier_spec(w, "klocs", ops=ops) for w in workloads]
    )
    for workload, run in zip(workloads, runs):
        report.metadata_bytes[workload] = run.kloc_metadata_bytes
    return report
