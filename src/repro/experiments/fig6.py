"""Figure 6: sensitivity to fast-memory capacity and bandwidth ratio.

The paper sweeps fast capacity {4, 8, 32}GB against fast:slow bandwidth
differentials {1:8, 1:4, 1:2} and reports, per configuration, the average
speedup across workloads with min/max variance bars. The expected shape:
gains grow with the bandwidth differential, peak at mid-scale (8GB)
capacity, and shrink as fast capacity covers the working set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.units import GB
from repro.experiments.cache import two_tier_spec
from repro.experiments.defaults import SWEEP_WORKLOADS, ops_for
from repro.experiments.parallel import run_specs
from repro.metrics.report import format_table

CAPACITIES_GB = (4, 8, 32)
BANDWIDTH_RATIOS = (8, 4, 2)
FIG6_POLICIES = ("nimble", "nimble++", "klocs")


@dataclass
class Fig6Cell:
    """One (capacity, ratio, policy) cell: avg/min/max across workloads."""

    capacity_gb: int
    ratio: int
    policy: str
    avg: float
    lo: float
    hi: float
    per_workload: Dict[str, float] = field(default_factory=dict)


@dataclass
class Fig6Report:
    cells: List[Fig6Cell] = field(default_factory=list)

    def cell(self, capacity_gb: int, ratio: int, policy: str) -> Fig6Cell:
        for c in self.cells:
            if (c.capacity_gb, c.ratio, c.policy) == (capacity_gb, ratio, policy):
                return c
        raise KeyError((capacity_gb, ratio, policy))

    def format_report(self) -> str:
        return format_table(
            ["fast_cap", "bw_ratio", "policy", "avg_speedup", "min", "max"],
            [
                [f"{c.capacity_gb}GB", f"1:{c.ratio}", c.policy, c.avg, c.lo, c.hi]
                for c in self.cells
            ],
            title="Fig 6 — sensitivity to capacity and bandwidth (vs All Slow)",
        )


def run_figure6(
    workloads: Sequence[str] = SWEEP_WORKLOADS,
    policies: Sequence[str] = FIG6_POLICIES,
    capacities_gb: Sequence[int] = CAPACITIES_GB,
    ratios: Sequence[int] = BANDWIDTH_RATIOS,
    *,
    ops: Optional[int] = None,
) -> Fig6Report:
    report = Fig6Report()
    # The full (capacity, ratio, policy+all_slow baseline, workload) grid
    # goes through the engine in one fan-out; cells are rebuilt in the
    # original nesting order afterwards.
    grid: List[tuple] = []
    for capacity in capacities_gb:
        for ratio in ratios:
            for policy in ("all_slow",) + tuple(policies):
                for workload in workloads:
                    budget = ops if ops is not None else ops_for(workload)
                    grid.append((capacity, ratio, policy, workload, budget))
    results = run_specs(
        [
            two_tier_spec(
                workload,
                policy,
                ops=budget,
                bandwidth_ratio=ratio,
                fast_bytes_paper=capacity * GB,
            )
            for capacity, ratio, policy, workload, budget in grid
        ]
    )
    tput: Dict[tuple, float] = {
        (capacity, ratio, policy, workload): run.throughput
        for (capacity, ratio, policy, workload, _budget), run in zip(grid, results)
    }

    for capacity in capacities_gb:
        for ratio in ratios:
            for policy in policies:
                per: Dict[str, float] = {
                    workload: (
                        tput[(capacity, ratio, policy, workload)]
                        / tput[(capacity, ratio, "all_slow", workload)]
                    )
                    for workload in workloads
                }
                values = list(per.values())
                report.cells.append(
                    Fig6Cell(
                        capacity_gb=capacity,
                        ratio=ratio,
                        policy=policy,
                        avg=sum(values) / len(values),
                        lo=min(values),
                        hi=max(values),
                        per_workload=per,
                    )
                )
    return report
