"""Shared experiment defaults: scale, op budgets, and the quick switch.

Set ``REPRO_QUICK=1`` to shrink every experiment by ~4x (CI-friendly);
``REPRO_FULL=1`` doubles op budgets for tighter steady-state numbers.
"""

from __future__ import annotations

import os
from typing import Dict

#: Capacity divisor relative to the paper's hardware (8GB fast → 8MB).
SCALE_FACTOR = 1024

#: Steady-state measurement ops per workload (post-setup).
DEFAULT_OPS: Dict[str, int] = {
    "rocksdb": 40_000,
    "redis": 20_000,
    "filebench": 24_000,
    "cassandra": 20_000,
    "spark": 600,
}

#: The workloads Fig 4/Fig 6 sweep (the paper drops Spark in §6.1 because
#: of firewall issues; we include it in Fig 2 only, like the paper).
EVAL_WORKLOADS = ("rocksdb", "redis", "filebench", "cassandra")

#: Representative pair used where a full sweep would be prohibitively
#: slow at benchmark time (Fig 6's 9-config sweep).
SWEEP_WORKLOADS = ("rocksdb", "redis")


def _factor() -> float:  # simlint: config-site
    if os.environ.get("REPRO_QUICK"):
        return 0.25
    if os.environ.get("REPRO_FULL"):
        return 2.0
    return 1.0


def ops_for(workload: str) -> int:
    """Measurement op budget for one workload, honoring REPRO_QUICK/FULL."""
    base = DEFAULT_OPS.get(workload)
    if base is None:
        raise KeyError(f"no op budget for workload {workload!r}")
    return max(500, int(base * _factor()))


def seed() -> int:  # simlint: config-site
    return int(os.environ.get("REPRO_SEED", "42"))
