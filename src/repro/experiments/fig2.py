"""Figure 2: the motivation characterization.

2a — % of the memory footprint in kernel objects vs application pages
     (large inputs), with raw page counts.
2b — the same split for Small (10GB) vs Large (40GB) inputs.
2c — % of memory *references* to kernel objects vs application data.
2d — lifetimes of application pages vs slab objects vs page-cache pages
     (log scale; the paper: app ≈ tens of minutes, slab ≈ 36ms, cache ≈
     160ms — our compressed clock preserves the ordering and the orders
     of magnitude between the classes).

These run on an ample-memory platform (the *All Fast Mem* bound) because
the characterization is about the workloads, not a tiering policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.units import GB
from repro.experiments.defaults import SCALE_FACTOR, ops_for, seed
from repro.experiments.runner import make_workload
from repro.metrics.footprint import FootprintSnapshot, footprint_snapshot
from repro.metrics.lifetime import LifetimeReport, lifetime_report
from repro.metrics.references import ReferenceReport, reference_report
from repro.metrics.report import format_table
from repro.platforms.twotier import build_two_tier_kernel
from repro.workloads import WORKLOADS


@dataclass
class Fig2Result:
    """One workload's characterization numbers."""

    workload: str
    footprint: FootprintSnapshot
    references: ReferenceReport
    lifetimes: LifetimeReport


@dataclass
class Fig2Report:
    rows: List[Fig2Result] = field(default_factory=list)
    #: workload → {"small": frac, "large": frac} for Fig 2b.
    scaling: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def format_report(self) -> str:
        parts = []
        if self.rows:
            parts.append(
                format_table(
                    ["workload", "kernel_frac", "pages(M-equiv)", "page_cache",
                     "slab", "sockbuf", "journal", "block_io"],
                    [
                        [
                            r.workload,
                            r.footprint.kernel_fraction(),
                            r.footprint.total_allocated,
                            r.footprint.breakdown()["page_cache"],
                            r.footprint.breakdown()["slab"],
                            r.footprint.breakdown()["sockbuf"],
                            r.footprint.breakdown()["journal"],
                            r.footprint.breakdown()["block_io"],
                        ]
                        for r in self.rows
                    ],
                    title="Fig 2a — footprint attribution (cumulative pages)",
                )
            )
            parts.append(
                format_table(
                    ["workload", "kernel_ref_frac"],
                    [[r.workload, r.references.kernel_fraction()] for r in self.rows],
                    title="Fig 2c — reference attribution",
                )
            )
            parts.append(
                format_table(
                    ["workload", "app_ms", "slab_ms", "page_cache_ms", "ordering_ok"],
                    [
                        [
                            r.workload,
                            _ms(r.lifetimes.app_mean_ns),
                            _ms(r.lifetimes.slab_mean_ns),
                            _ms(r.lifetimes.page_cache_mean_ns),
                            r.lifetimes.ordering_holds(),
                        ]
                        for r in self.rows
                    ],
                    title="Fig 2d — mean lifetimes",
                )
            )
        if self.scaling:
            parts.append(
                format_table(
                    ["workload", "small(10GB)", "large(40GB)"],
                    [
                        [w, v.get("small", 0.0), v.get("large", 0.0)]
                        for w, v in self.scaling.items()
                    ],
                    title="Fig 2b — kernel footprint fraction vs input size",
                )
            )
        return "\n\n".join(parts)


def _ms(ns: Optional[float]) -> float:
    return (ns or 0.0) / 1e6


def _characterize(
    workload: str, *, dataset_bytes: Optional[int] = None, ops: Optional[int] = None
) -> Fig2Result:
    kernel, _pol = build_two_tier_kernel(
        "all_fast", scale_factor=SCALE_FACTOR, seed=seed()
    )
    wl = make_workload(kernel, workload)
    if dataset_bytes is not None:
        cfg = wl.config
        wl.config = type(cfg)(
            name=cfg.name,
            dataset_bytes=dataset_bytes,
            scale_factor=cfg.scale_factor,
            num_threads=cfg.num_threads,
            value_bytes=cfg.value_bytes,
            extra=cfg.extra,
        )
    wl.setup()
    kernel.reset_reference_counters()
    wl.run(ops if ops is not None else ops_for(workload))
    result = Fig2Result(
        workload=workload,
        footprint=footprint_snapshot(kernel.topology),
        references=reference_report(kernel),
        lifetimes=lifetime_report(kernel),
    )
    wl.teardown()
    return result


def run_fig2a_footprint(workloads=tuple(WORKLOADS)) -> Fig2Report:
    """Fig 2a: footprint attribution per workload (large inputs)."""
    report = Fig2Report()
    for name in workloads:
        report.rows.append(_characterize(name))
    return report


def run_fig2b_scaling(workloads=("rocksdb", "redis", "filebench")) -> Fig2Report:
    """Fig 2b: the kernel share persists when inputs shrink 4x."""
    report = Fig2Report()
    for name in workloads:
        large = _characterize(name)
        small = _characterize(name, dataset_bytes=10 * GB)
        report.scaling[name] = {
            "large": large.footprint.kernel_fraction(),
            "small": small.footprint.kernel_fraction(),
        }
    return report


def run_fig2c_references(workloads=tuple(WORKLOADS)) -> Fig2Report:
    """Fig 2c: reference attribution (same runs as 2a, separate entry
    point so the bench table matches the paper's figure list)."""
    return run_fig2a_footprint(workloads)


def run_fig2d_lifetimes(workloads=("rocksdb", "redis")) -> Fig2Report:
    """Fig 2d: lifetime ordering — slab < page cache < application."""
    return run_fig2a_footprint(workloads)
