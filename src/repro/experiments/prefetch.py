"""§7.3's prefetching study: KLOC-aware readahead.

"Augmenting prefetchers with KLOCs improves RocksDB throughput by 1.26x."
We compare KLOCs with readahead enabled vs disabled, and the same for
Naive, where prefetching amplifies pollution instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.experiments.runner import run_two_tier
from repro.metrics.report import format_table


@dataclass
class PrefetchReport:
    #: (workload, policy) → throughput ratio (readahead on / off).
    ratios: Dict[tuple, float] = field(default_factory=dict)

    def ratio(self, workload: str, policy: str) -> float:
        return self.ratios[(workload, policy)]

    def format_report(self) -> str:
        return format_table(
            ["workload", "policy", "readahead_gain"],
            [[w, p, r] for (w, p), r in self.ratios.items()],
            title="§7.3 — throughput gain from I/O prefetching",
        )


def run_prefetch_study(
    workloads: Sequence[str] = ("rocksdb",),
    policies: Sequence[str] = ("klocs", "naive"),
    *,
    ops: Optional[int] = None,
) -> PrefetchReport:
    report = PrefetchReport()
    for workload in workloads:
        for policy in policies:
            on = run_two_tier(workload, policy, ops=ops, readahead_enabled=True)
            off = run_two_tier(workload, policy, ops=ops, readahead_enabled=False)
            report.ratios[(workload, policy)] = on.throughput / off.throughput
    return report
