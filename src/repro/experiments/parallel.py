"""Parallel experiment engine: fan independent runs out across cores.

Every paper figure is a grid of independent, deterministic simulator runs
(Fig 4 is workloads × strategies; Fig 6 is workloads × 9 configs ×
strategies). Each grid cell builds its own kernel with its own seed, so
cells share no state and can execute in any order on any core — the
engine dispatches cache misses to a :class:`ProcessPoolExecutor` and
merges results back **in grid order**, making parallel output
bit-for-bit identical to a serial sweep.

Combined with :mod:`repro.experiments.cache`, a repeated invocation of a
figure is served almost entirely from disk.

Environment knobs:

- ``REPRO_JOBS`` — worker processes (default: all cores).
  ``REPRO_JOBS=1`` forces the in-process serial path (debugging,
  profiling, pdb).
- ``REPRO_NO_CACHE=1`` / ``REPRO_CACHE_DIR`` — see the cache module.
- ``REPRO_SWEEP_QUIET=1`` — suppress the per-cell stderr summary.

Per-cell visibility: each grid cell logs one stderr line —
``[sweep] 3/12 rocksdb/klocs ops=40000 .. computed 12.4s``,
``.. restored 1.2s`` (setup phase warm-started from the snapshot store)
or ``.. cached`` — so silent cache staleness (or a surprisingly slow
cell) is visible at a glance.

Sweeps are resumable at phase granularity: every completed setup is
snapshotted (:mod:`repro.snapshot`) before measurement starts, so a
killed sweep's finished cells return from the result cache and its
interrupted cells skip straight to measurement on the next invocation.
"""

from __future__ import annotations

import os
import sys
import time  # simlint: ok[determinism] host-side wall timing for stderr logs only
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Any, Dict, List, Optional, Sequence

from repro.experiments.cache import (
    ResultCache,
    RunSpec,
    run_from_payload,
    run_to_payload,
)
from repro.experiments.runner import run_optane_interference, run_two_tier
from repro.snapshot import SnapshotStore


def default_jobs() -> int:  # simlint: config-site
    """Worker count: ``REPRO_JOBS`` if set, else every core."""
    env = os.environ.get("REPRO_JOBS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise ValueError(f"REPRO_JOBS must be an integer, got {env!r}")
    return os.cpu_count() or 1


def execute_spec(spec: RunSpec) -> Dict[str, Any]:
    """Run one spec to completion and return its JSON-able payload.

    This is the worker entry point — it must stay module-level (and take
    only picklable arguments) so :class:`ProcessPoolExecutor` can ship it
    to a forked/spawned child.
    """
    if spec.kind == "two_tier":
        run = run_two_tier(
            spec.workload,
            spec.policy,
            ops=spec.ops,
            scale_factor=spec.scale_factor,
            bandwidth_ratio=spec.bandwidth_ratio,
            fast_bytes_paper=spec.fast_bytes_paper,
            registry=spec.build_registry(),
            readahead_enabled=spec.readahead_enabled,
            run_seed=spec.seed,
            measure_setup=spec.measure_setup,
        )
        payload = run_to_payload(run)
        # Transient log hint only — run_specs pops it before caching, so
        # cached payload bytes stay identical to the pre-snapshot era.
        payload["_snap"] = "restored" if run.from_snapshot else "cold"
        return payload
    if spec.kind == "optane":
        store = SnapshotStore()
        tput = run_optane_interference(
            spec.workload,
            spec.policy,
            spec.ops,
            scale_factor=spec.scale_factor,
            run_seed=spec.seed,
            snapshots=store,
        )
        return {
            "kind": "optane",
            "throughput": tput,
            "_snap": "restored" if store.hits else "cold",
        }
    raise ValueError(f"unknown spec kind {spec.kind!r}")


def sweep_quiet() -> bool:  # simlint: config-site
    """True when ``REPRO_SWEEP_QUIET`` suppresses per-cell log lines.

    Read once per :func:`run_specs` call, not per cell: env knobs are
    construction-time configuration, never per-iteration state."""
    return bool(os.environ.get("REPRO_SWEEP_QUIET"))


def _timed_execute(spec: RunSpec) -> Dict[str, Any]:
    start = time.perf_counter()  # simlint: ok[determinism] host-side timing
    payload = execute_spec(spec)
    # simlint: ok[determinism] host-side timing; stripped before decode
    payload["_wall_s"] = time.perf_counter() - start
    return payload


def result_from_payload(payload: Dict[str, Any]) -> Any:
    """Decode a payload to what the serial runner would have returned:
    a :class:`TwoTierRun` for two-tier cells, a throughput float for
    Optane cells."""
    if payload.get("kind") == "optane":
        return payload["throughput"]
    return run_from_payload(payload)


def _log_cell(
    index: int,
    total: int,
    spec: RunSpec,
    status: str,
    wall_s: float,
    *,
    quiet: bool,
) -> None:
    if quiet:
        return
    timing = "" if status == "cached" else f" {wall_s:.1f}s"
    print(
        f"[sweep] {index + 1}/{total} {spec.label()} .. {status}{timing}",
        file=sys.stderr,
        flush=True,
    )


def run_specs(
    specs: Sequence[RunSpec],
    *,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> List[Any]:
    """Execute a grid of specs, parallel where possible, cached always.

    Results come back in ``specs`` order regardless of completion order,
    so callers can zip them against the grid they enumerated. Duplicate
    specs are computed once.
    """
    if jobs is None:
        jobs = default_jobs()
    if cache is None:
        cache = ResultCache()
    quiet = sweep_quiet()

    total = len(specs)
    payloads: List[Optional[Dict[str, Any]]] = [None] * total
    pending: List[int] = []
    computed_keys: Dict[str, int] = {}
    for i, spec in enumerate(specs):
        payload = cache.load(spec)
        if payload is not None:
            payloads[i] = payload
            _log_cell(i, total, spec, "cached", 0.0, quiet=quiet)
        else:
            pending.append(i)

    # Dedupe identical pending specs: compute one, share the payload.
    leaders: List[int] = []
    followers: Dict[int, int] = {}
    for i in pending:
        key = specs[i].key()
        if key in computed_keys:
            followers[i] = computed_keys[key]
        else:
            computed_keys[key] = i
            leaders.append(i)

    if leaders:
        if jobs > 1 and len(leaders) > 1:
            with ProcessPoolExecutor(max_workers=min(jobs, len(leaders))) as pool:
                futures = {
                    pool.submit(_timed_execute, specs[i]): i for i in leaders
                }
                for future in as_completed(futures):
                    i = futures[future]
                    payload = future.result()
                    wall_s = payload.pop("_wall_s", 0.0)
                    status = (
                        "restored"
                        if payload.pop("_snap", "cold") == "restored"
                        else "computed"
                    )
                    payloads[i] = payload
                    cache.store(specs[i], payload)
                    _log_cell(i, total, specs[i], status, wall_s, quiet=quiet)
        else:
            for i in leaders:
                payload = _timed_execute(specs[i])
                wall_s = payload.pop("_wall_s", 0.0)
                status = (
                    "restored"
                    if payload.pop("_snap", "cold") == "restored"
                    else "computed"
                )
                payloads[i] = payload
                cache.store(specs[i], payload)
                _log_cell(i, total, specs[i], status, wall_s, quiet=quiet)

    for i, leader in followers.items():
        payloads[i] = payloads[leader]
        _log_cell(i, total, specs[i], "cached", 0.0, quiet=quiet)

    return [result_from_payload(p) for p in payloads]
