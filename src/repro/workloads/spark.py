"""Spark model: Terasort over an HDFS-style chunked file layout.

Table 3: "Apache Spark with Hadoop, running Terasort on 20GB of data
with 16 threads. The workload first generates the dataset followed by
the analytics."

Phases (each ``run_op`` advances the phase machine by one unit of work):

1. **Generate** — write the input as HDFS-style chunk files, sequentially.
2. **Shuffle** — read every input chunk, sort in an app-side buffer
   (heavy app references), write spill files.
3. **Merge** — read the spills, write sorted output chunks, unlink spills
   and inputs (checkpoint-and-delete, §3.1's footnote on HDFS caching).

Spark's op unit is one chunk-step, so throughput is records-proportional
rather than request-oriented.
"""

from __future__ import annotations

from typing import List

from repro.core.units import GB, KB, MB
from repro.workloads.base import Workload, WorkloadConfig

#: HDFS chunk size: 128MB in the paper's deployments, scaled by 64x like
#: RocksDB's SSTs to keep per-file metadata proportionate.
CHUNK_BYTES = 2 * MB
IO_UNIT = 64 * KB


def spark_config(scale_factor: int = 512) -> WorkloadConfig:
    return WorkloadConfig(
        name="spark",
        dataset_bytes=20 * GB,
        scale_factor=scale_factor,
        num_threads=16,
        value_bytes=100,  # terasort records
    )


class SparkWorkload(Workload):
    """Generate → shuffle → merge phase machine."""

    def __init__(self, kernel, config: WorkloadConfig = None) -> None:  # type: ignore[assignment]
        super().__init__(kernel, config or spark_config())
        self._inputs: List[str] = []
        self._spills: List[str] = []
        self._outputs: List[str] = []
        self._phase = "generate"
        self._cursor = 0

    def _setup(self) -> None:
        # Executor heap + sort buffer (Spark's in-memory working set).
        self.proc.alloc_region("executor_heap", self.config.scaled(16 * GB))
        self.proc.alloc_region("sort_buffer", self.config.scaled(4 * GB))
        self._total_chunks = max(2, self.config.sim_dataset_bytes // CHUNK_BYTES)

    @property
    def phase(self) -> str:
        return self._phase

    def run_op(self, op_index: int, cpu: int) -> None:
        if self._phase == "generate":
            self._generate_chunk(cpu)
        elif self._phase == "shuffle":
            self._shuffle_chunk(cpu)
        else:
            self._merge_chunk(cpu)

    # ------------------------------------------------------------------

    def _write_file(self, name: str, nbytes: int, cpu: int, *, from_region: str) -> None:
        fh = self.sys.creat(name, cpu=cpu)
        offset = 0
        while offset < nbytes:
            self.proc.touch(from_region, IO_UNIT, write=True,
                            page_hint=offset // 4096, cpu=cpu)
            self.sys.write(fh, offset, IO_UNIT, cpu=cpu)
            offset += IO_UNIT
        self.sys.fsync(fh, cpu=cpu)
        self.sys.close(fh, cpu=cpu)

    def _read_file(self, name: str, nbytes: int, cpu: int, *, to_region: str) -> None:
        fh = self.sys.open(name, cpu=cpu)
        offset = 0
        while offset < nbytes:
            self.sys.read(fh, offset, IO_UNIT, cpu=cpu)
            self.proc.touch(to_region, IO_UNIT, write=True,
                            page_hint=offset // 4096, cpu=cpu)
            offset += IO_UNIT
        self.sys.close(fh, cpu=cpu)

    def _generate_chunk(self, cpu: int) -> None:
        name = f"/hdfs/input/part-{len(self._inputs):05d}"
        self._write_file(name, CHUNK_BYTES, cpu, from_region="executor_heap")
        self._inputs.append(name)
        if len(self._inputs) >= self._total_chunks:
            self._phase = "shuffle"
            self._cursor = 0

    def _shuffle_chunk(self, cpu: int) -> None:
        name = self._inputs[self._cursor]
        self._read_file(name, CHUNK_BYTES, cpu, to_region="sort_buffer")
        # Sort the partition: heavy app-side work over the sort buffer.
        self.proc.touch("sort_buffer", CHUNK_BYTES // 4, write=True, cpu=cpu)
        spill = f"/spark/spill-{self._cursor:05d}"
        self._write_file(spill, CHUNK_BYTES, cpu, from_region="sort_buffer")
        self._spills.append(spill)
        self._cursor += 1
        if self._cursor >= len(self._inputs):
            self._phase = "merge"
            self._cursor = 0

    def _merge_chunk(self, cpu: int) -> None:
        if self._cursor >= len(self._spills):
            return  # job complete; further ops are no-ops
        spill = self._spills[self._cursor]
        self._read_file(spill, CHUNK_BYTES, cpu, to_region="sort_buffer")
        out = f"/hdfs/output/part-{self._cursor:05d}"
        self._write_file(out, CHUNK_BYTES, cpu, from_region="sort_buffer")
        self._outputs.append(out)
        self.sys.unlink(spill, cpu=cpu)
        self.sys.unlink(self._inputs[self._cursor], cpu=cpu)
        self._cursor += 1
        if self._cursor >= len(self._spills):
            self._phase = "done"

    @property
    def done(self) -> bool:
        return self._phase == "done"

    def ops_to_complete(self) -> int:
        """Total ops needed to run the whole job once."""
        return 3 * self._total_chunks
