"""Workload models (Table 3): behavioural drivers that issue the same
kernel-visible operation streams as the paper's benchmarks, scaled down.

Each workload reproduces its application's *kernel-object signature*: the
file/socket churn, the object mix (Fig 2a), the app-vs-kernel reference
split (Fig 2c), and the activity phases the tiering policies exploit.
"""

from repro.workloads.base import Workload, WorkloadConfig, WorkloadResult
from repro.workloads.cassandra import CassandraWorkload
from repro.workloads.filebench import FilebenchWorkload
from repro.workloads.interference import StreamingInterferer
from repro.workloads.keydist import UniformKeys, ZipfKeys
from repro.workloads.redis import RedisWorkload
from repro.workloads.rocksdb import RocksDBWorkload
from repro.workloads.spark import SparkWorkload
from repro.workloads.ycsb import YCSBGenerator, YCSBOp

__all__ = [
    "Workload",
    "WorkloadConfig",
    "WorkloadResult",
    "RocksDBWorkload",
    "RedisWorkload",
    "FilebenchWorkload",
    "CassandraWorkload",
    "SparkWorkload",
    "StreamingInterferer",
    "ZipfKeys",
    "UniformKeys",
    "YCSBGenerator",
    "YCSBOp",
]

#: Name → class registry used by the experiment harness.
WORKLOADS = {
    "rocksdb": RocksDBWorkload,
    "redis": RedisWorkload,
    "filebench": FilebenchWorkload,
    "cassandra": CassandraWorkload,
    "spark": SparkWorkload,
}
