"""RocksDB model: LSM-tree key-value store over the simulated filesystem.

Table 3: "Facebook's persistent key-value store based on log-structured
merge tree. DBbench with 1M keys and 16 client threads, 50% random and
sequential writes and reads."

The kernel-visible signature this model reproduces:

* **File churn** — writes fill an in-memory memtable; each flush writes a
  fresh SST file sequentially, fsyncs, and *closes* it. Closed SSTs turn
  cold (their KLOCs go inactive) but their page-cache pages linger — the
  fast-memory pollution Fig 4 shows Naive suffering from.
* **Compaction** — periodically merges the oldest SSTs into one new file
  and unlinks the inputs: kernel objects are freed, not migrated (§3.2).
* **Point reads** — Zipf-skewed toward recent SSTs, through an LRU handle
  cache; cold files are opened and closed per read, driving knode
  activity transitions.
* **~50% OS time** — every op also touches the app-side memtable/block
  cache, keeping the reference split near Fig 2c's RocksDB band.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List

from repro.core.units import GB, KB
from repro.vfs.filesystem import FileHandle
from repro.workloads.base import Workload, WorkloadConfig

#: Simulated SST size. The paper's SSTs are 4MB; shrinking them by the
#: full scale factor would make per-file metadata dominate, so SSTs scale
#: by 32x (4MB → 128KB), preserving a hundreds-of-files population.
SST_BYTES = 128 * KB
#: Writes buffered before a memtable flush (memtable / value size).
WRITES_PER_FLUSH = 64
#: Flushes between compactions; each compaction merges this many inputs.
FLUSHES_PER_COMPACTION = 8
COMPACTION_FANIN = 4
#: Open file-handle cache (RocksDB's table cache). Holds the read-hot
#: upper-level SSTs; cold-tail reads open and close their file, so cold
#: files' knodes toggle active → inactive exactly as §3.2 describes.
HANDLE_CACHE_SIZE = 128


def rocksdb_config(scale_factor: int = 512) -> WorkloadConfig:
    return WorkloadConfig(
        name="rocksdb",
        dataset_bytes=40 * GB,
        scale_factor=scale_factor,
        num_threads=16,
        value_bytes=1024,
    )


class RocksDBWorkload(Workload):
    """dbbench-style driver over the LSM file lifecycle."""

    def __init__(self, kernel, config: WorkloadConfig = None) -> None:  # type: ignore[assignment]
        super().__init__(kernel, config or rocksdb_config())
        self._sst_names: List[str] = []
        self._next_sst = 0
        self._writes_since_flush = 0
        self._flushes_since_compaction = 0
        self._handles: "OrderedDict[str, FileHandle]" = OrderedDict()
        self.flushes = 0
        self.compactions = 0

    # ------------------------------------------------------------------

    def _setup(self) -> None:
        """Load phase: memtable, then the initial SST population, then the
        read-side caches (the block cache only warms once reads start, so
        it is the *last* thing to allocate — under greedy placement it
        therefore lands behind the load phase's page-cache pollution)."""
        self.proc.alloc_region("memtable", WRITES_PER_FLUSH * self.config.value_bytes)
        # The read-side caches grow as the load phase proceeds (malloc on
        # demand, interleaved with file I/O), as they do in the real app.
        self.proc.alloc_region("block_cache", 4096)
        self.proc.alloc_region("table_readers", 4096)
        block_cache_target = self.config.scaled(4 * GB)
        # Table readers, index/filter blocks, per-thread buffers: the bulk
        # of dbbench's 12.4GB footprint (Table 3), mostly cold.
        table_reader_target = self.config.scaled(7 * GB)
        initial_files = max(4, self.config.sim_dataset_bytes // SST_BYTES)
        bc_step = max(1, block_cache_target // initial_files)
        tr_step = max(1, table_reader_target // initial_files)
        for _ in range(initial_files):
            self._flush_memtable(cpu=0)
            self.proc.extend_region("block_cache", bc_step)
            self.proc.extend_region("table_readers", tr_step)

    def teardown(self) -> None:
        for handle in self._handles.values():
            self.sys.close(handle)
        self._handles.clear()
        super().teardown()

    # ------------------------------------------------------------------
    # LSM mechanics
    # ------------------------------------------------------------------

    def _flush_memtable(self, *, cpu: int) -> None:
        """Write the memtable out as a brand-new SST: the open → write →
        sync → close lifecycle of Figure 3(b). The close is the KLOC
        signal that the write burst's kernel objects are reclaimable;
        read-hot files are reopened moments later and pulled back page by
        page as they are actually referenced.
        """
        name = f"/sst/{self._next_sst:08d}.sst"
        self._next_sst += 1
        fh = self.sys.creat(name, cpu=cpu)
        offset = 0
        chunk = 16 * KB
        while offset < SST_BYTES:
            self.sys.write(fh, offset, chunk, cpu=cpu)
            offset += chunk
        self.sys.fsync(fh, cpu=cpu, background=True)
        self.sys.close(fh, cpu=cpu)
        self._sst_names.append(name)
        self.flushes += 1

        self._flushes_since_compaction += 1
        if self._flushes_since_compaction >= FLUSHES_PER_COMPACTION:
            self._flushes_since_compaction = 0
            self._compact(cpu=cpu)

    def _compact(self, *, cpu: int) -> None:
        """Merge the oldest SSTs into one output, unlink the inputs."""
        if len(self._sst_names) < COMPACTION_FANIN + 1:
            return
        inputs = self._sst_names[:COMPACTION_FANIN]
        self._sst_names = self._sst_names[COMPACTION_FANIN:]
        for name in inputs:
            self._evict_handle(name, cpu=cpu)
            fh = self.sys.open(name, cpu=cpu)
            offset = 0
            while offset < SST_BYTES:
                self.sys.read(fh, offset, 16 * KB, cpu=cpu)
                offset += 16 * KB
            self.sys.close(fh, cpu=cpu)

        out = f"/sst/{self._next_sst:08d}.sst"
        self._next_sst += 1
        fh = self.sys.creat(out, cpu=cpu)
        offset = 0
        total = SST_BYTES * COMPACTION_FANIN
        while offset < total:
            self.sys.write(fh, offset, 16 * KB, cpu=cpu)
            offset += 16 * KB
        self.sys.fsync(fh, cpu=cpu, background=True)
        self.sys.close(fh, cpu=cpu)
        # Merged output replaces the inputs at the cold end of the LSM.
        self._sst_names.insert(0, out)
        for name in inputs:
            self.sys.unlink(name, cpu=cpu)
        self.compactions += 1

    # ------------------------------------------------------------------
    # handle cache
    # ------------------------------------------------------------------

    def _handle_for(self, name: str, *, cpu: int) -> FileHandle:
        handle = self._handles.get(name)
        if handle is not None:
            self._handles.move_to_end(name)
            return handle
        handle = self.sys.open(name, cpu=cpu)
        self._cache_handle(name, handle, cpu=cpu)
        return handle

    def _cache_handle(self, name: str, handle: FileHandle, *, cpu: int) -> None:
        self._handles[name] = handle
        if len(self._handles) > HANDLE_CACHE_SIZE:
            _, old = self._handles.popitem(last=False)
            self.sys.close(old, cpu=cpu)

    def _evict_handle(self, name: str, *, cpu: int) -> None:
        handle = self._handles.pop(name, None)
        if handle is not None:
            self.sys.close(handle, cpu=cpu)

    # ------------------------------------------------------------------
    # op mix: 50% reads, 50% writes (half of each sequential/random)
    # ------------------------------------------------------------------

    def run_op(self, op_index: int, cpu: int) -> None:
        if self.rng.random() < 0.5:
            self._do_write(op_index, cpu)
        else:
            self._do_read(cpu)

    def _do_write(self, op_index: int, cpu: int) -> None:
        # App side: skiplist probe, then arena append into the memtable.
        self.proc.touch(
            "memtable", 4 * KB, page_hint=self._writes_since_flush + 5, cpu=cpu
        )
        self.proc.touch(
            "memtable",
            self.config.value_bytes,
            write=True,
            page_hint=self._writes_since_flush,
            cpu=cpu,
        )
        self._writes_since_flush += 1
        if self._writes_since_flush >= WRITES_PER_FLUSH:
            self._writes_since_flush = 0
            self._flush_memtable(cpu=cpu)

    #: Point-read locality: the block cache absorbs most reads at the
    #: application level; only misses reach the filesystem. RocksDB's
    #: file page cache is therefore write-once-read-rarely — the reason
    #: flush output can be downgraded at close without penalty.
    BLOCK_CACHE_HIT_RATE = 0.85
    #: Misses that target recently flushed SSTs (blocks not yet promoted
    #: into the block cache); the rest sweep the store uniformly. Recency
    #: locality lives in the *application* cache, so file-page-cache
    #: misses are nearly uniform — flushed SSTs really do turn cold at
    #: close, which is the signal KLOCs exploits.
    RECENT_MISS_FRACTION = 0.1
    HOT_FILE_WINDOW = 16

    def _do_read(self, cpu: int) -> None:
        if not self._sst_names:
            return
        # Index binary search + block-cache probe happen on every read.
        key = self.rng.randint(0, 1 << 20)
        self.proc.touch("block_cache", 4 * KB, page_hint=key, cpu=cpu)
        self.proc.touch(
            "block_cache", self.config.value_bytes, write=True, page_hint=key + 3, cpu=cpu
        )
        if self.rng.random() < 0.05:
            self.proc.touch("table_readers", 4 * KB, page_hint=key * 7, cpu=cpu)
        if self.rng.random() < self.BLOCK_CACHE_HIT_RATE:
            return  # served from the application-level cache

        nfiles = len(self._sst_names)
        if self.rng.random() < self.RECENT_MISS_FRACTION:
            window = min(self.HOT_FILE_WINDOW, nfiles)
            rank = min(self.rng.zipf(window, theta=0.9), window - 1)
        else:
            rank = self.rng.randint(0, nfiles - 1)
        name = self._sst_names[-1 - rank]
        handle = self._handle_for(name, cpu=cpu)
        offset = self.rng.randint(0, max(0, SST_BYTES - self.config.value_bytes))
        self.sys.read(handle, offset, self.config.value_bytes, cpu=cpu)

    @property
    def live_ssts(self) -> int:
        return len(self._sst_names)
