"""Cassandra model: YCSB over a heavyweight JVM store with an app cache.

Table 3: "NoSQL DB running YCSB with 16 threads, 50% read-write ratio."

The behaviours §7.1 calls out to explain why "KLOCs is similar to
Nimble++ for Cassandra":

* **A large application-level cache (512MB for 200K keys)** absorbs most
  reads before they reach the kernel — "because this large cache
  satisfies many requests at the application level, kernel I/O is
  reduced, performance is less sensitive to kernel object placement".
* **High language overhead** — each op burns extra app-side references
  (JVM object graphs, GC pressure), diluting the kernel share further.
* Writes append to a commitlog and occasionally flush memtables to
  SSTables, Cassandra-style; YCSB requests arrive over sockets.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.units import GB, KB, MB
from repro.net.socket import Socket
from repro.vfs.filesystem import FileHandle
from repro.workloads.base import Workload, WorkloadConfig
from repro.workloads.ycsb import YCSBGenerator, YCSBOp

#: Probability a read is served from the row cache (the paper's 512MB
#: cache over 200K keys keeps hit rates high under Zipf).
APP_CACHE_HIT_RATE = 0.85
#: Writes between memtable → SSTable flushes.
WRITES_PER_FLUSH = 512
SSTABLE_BYTES = 128 * KB
#: JVM object-graph pointer chases per op (1KB cache-line-cluster reads).
JVM_GRAPH_TOUCHES = 10
#: JVM allocation/GC-card writes per op.
JVM_WRITE_TOUCHES = 6
#: Interpreter/JIT/lock CPU time per op — tier-independent work that is
#: the core of §7.1's "high Java and language overheads towards storage
#: access", and the reason Cassandra benefits least from fast memory.
JVM_CPU_NS = 1500


def cassandra_config(scale_factor: int = 512) -> WorkloadConfig:
    return WorkloadConfig(
        name="cassandra",
        dataset_bytes=40 * GB,
        scale_factor=scale_factor,
        num_threads=16,
        value_bytes=1024,
    )


class CassandraWorkload(Workload):
    """YCSB 50/50 against a cache-heavy JVM store."""

    def __init__(self, kernel, config: WorkloadConfig = None) -> None:  # type: ignore[assignment]
        super().__init__(kernel, config or cassandra_config())
        self._sockets: List[Socket] = []
        self._ycsb: Optional[YCSBGenerator] = None
        self._commitlog: Optional[FileHandle] = None
        self._commitlog_offset = 0
        self._writes_since_flush = 0
        self._sstables: List[str] = []
        self._next_sstable = 0
        self.flushes = 0

    def _setup(self) -> None:
        # The 512MB application-level cache (§7.1) + the JVM heap, scaled.
        self.proc.alloc_region("row_cache", self.config.scaled(512 * MB))
        self.proc.alloc_region("jvm_heap", self.config.scaled(10 * GB))
        self._ycsb = YCSBGenerator(self.rng, num_keys=200_000, read_fraction=0.5)
        for client in range(self.config.num_threads):
            self._sockets.append(self.sys.socket(9042 + client))
        self._commitlog = self.sys.creat("/cassandra/commitlog")
        # Seed a few SSTables so cache misses have something to read.
        for _ in range(8):
            self._flush_memtable(cpu=0)

    def teardown(self) -> None:
        if self._commitlog is not None:
            self.sys.close(self._commitlog)
            self._commitlog = None
        for sock in self._sockets:
            self.sys.close_socket(sock)
        self._sockets.clear()
        super().teardown()

    # ------------------------------------------------------------------

    def run_op(self, op_index: int, cpu: int) -> None:
        request = self._ycsb.next_request()
        sock = self._sockets[op_index % len(self._sockets)]

        # YCSB request over the wire.
        self.kernel.net.deliver(sock.port, 256, cpu=cpu)
        self.sys.recv(sock, cpu=cpu)

        # JVM overhead on every op: pointer-chased object graph reads,
        # allocation/GC-card writes, and tier-independent CPU time.
        for i in range(JVM_GRAPH_TOUCHES):
            self.proc.touch(
                "jvm_heap", KB, page_hint=request.key + 31 * i, cpu=cpu
            )
        for i in range(JVM_WRITE_TOUCHES):
            self.proc.touch(
                "jvm_heap", KB, write=True, page_hint=op_index + 7 * i, cpu=cpu
            )
        self.kernel.clock.advance(JVM_CPU_NS)

        if request.op is YCSBOp.READ:
            self._do_read(request.key, cpu)
        else:
            self._do_update(request.key, cpu)

        self.sys.send(sock, self.config.value_bytes, cpu=cpu)

    def _do_read(self, key: int, cpu: int) -> None:
        hit = self.rng.random() < APP_CACHE_HIT_RATE
        self.proc.touch(
            "row_cache", self.config.value_bytes, page_hint=key, cpu=cpu
        )
        if hit or not self._sstables:
            return
        # Cache miss: read from a random SSTable.
        name = self.rng.choice(self._sstables)
        fh = self.sys.open(name, cpu=cpu)
        offset = self.rng.randint(0, max(0, SSTABLE_BYTES - self.config.value_bytes))
        self.sys.read(fh, offset, self.config.value_bytes, cpu=cpu)
        self.sys.close(fh, cpu=cpu)

    def _do_update(self, key: int, cpu: int) -> None:
        # Commitlog append + memtable (row cache doubles as memtable here).
        self.sys.write(
            self._commitlog, self._commitlog_offset, self.config.value_bytes, cpu=cpu
        )
        self._commitlog_offset += self.config.value_bytes
        self.proc.touch(
            "row_cache", self.config.value_bytes, write=True, page_hint=key, cpu=cpu
        )
        self._writes_since_flush += 1
        if self._writes_since_flush >= WRITES_PER_FLUSH:
            self._writes_since_flush = 0
            self._flush_memtable(cpu=cpu)

    def _flush_memtable(self, *, cpu: int) -> None:
        name = f"/cassandra/sstable-{self._next_sstable:06d}.db"
        self._next_sstable += 1
        fh = self.sys.creat(name, cpu=cpu)
        offset = 0
        while offset < SSTABLE_BYTES:
            self.sys.write(fh, offset, 32 * KB, cpu=cpu)
            offset += 32 * KB
        self.sys.fsync(fh, cpu=cpu, background=True)
        self.sys.close(fh, cpu=cpu)
        self._sstables.append(name)
        self.flushes += 1
        # Keep the on-disk population bounded, like size-tiered compaction.
        while len(self._sstables) > 64:
            self.sys.unlink(self._sstables.pop(0), cpu=cpu)
