"""YCSB-style operation generator (Cooper et al., SoCC'10).

Produces (op, key) streams with a configurable read/write mix and
Zipfian key skew — the generator behind the paper's Cassandra runs
(YCSB, 16 threads, 50% read-write) and reusable for any KV workload.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.rng import DeterministicRNG
from repro.workloads.keydist import ZipfKeys


class YCSBOp(enum.Enum):
    READ = "read"
    UPDATE = "update"


@dataclass(frozen=True)
class YCSBRequest:
    op: YCSBOp
    key: int


class YCSBGenerator:
    """Endless stream of YCSB requests."""

    def __init__(
        self,
        rng: DeterministicRNG,
        *,
        num_keys: int,
        read_fraction: float = 0.5,
        theta: float = 0.99,
    ) -> None:
        if not 0.0 <= read_fraction <= 1.0:
            raise ValueError(f"read fraction out of range: {read_fraction}")
        self.rng = rng
        self.keys = ZipfKeys(rng, num_keys, theta)
        self.read_fraction = read_fraction

    def next_request(self) -> YCSBRequest:
        op = YCSBOp.READ if self.rng.random() < self.read_fraction else YCSBOp.UPDATE
        return YCSBRequest(op, self.keys.next_key())
