"""Workload base: configuration scaling, the run loop, and results.

The paper's inputs are 10GB ("small") and 40GB ("large") against an 8GB
fast tier — the fast tier holds roughly a fifth of the large working set.
The simulator preserves those *ratios* at MB scale via ``scale_factor``:
every byte quantity in a config is the paper's value divided by the
factor (default 320, mapping 40GB → 128MB).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict

from repro.core.errors import ConfigError
from repro.core.units import GB, SEC
from repro.kernel.process import Process
from repro.kernel.syscalls import SyscallInterface

if TYPE_CHECKING:
    from repro.kernel.kernel import Kernel

#: Default paper-bytes → sim-bytes divisor (40GB → 80MB, 8GB fast → 16MB).
DEFAULT_SCALE_FACTOR = 512


@dataclass(frozen=True)
class WorkloadConfig:
    """Scaled workload parameters (Table 3)."""

    name: str
    #: Paper-scale dataset size; divide by ``scale_factor`` for sim bytes.
    dataset_bytes: int = 40 * GB
    scale_factor: int = DEFAULT_SCALE_FACTOR
    num_threads: int = 16
    value_bytes: int = 1024
    extra: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.scale_factor <= 0:
            raise ConfigError(f"scale factor must be positive: {self.scale_factor}")
        if self.dataset_bytes <= 0:
            raise ConfigError(f"dataset must be positive: {self.dataset_bytes}")

    @property
    def sim_dataset_bytes(self) -> int:
        return self.dataset_bytes // self.scale_factor

    def scaled(self, nbytes: int) -> int:
        """Scale an arbitrary paper-scale byte quantity."""
        return max(1, nbytes // self.scale_factor)

    def small(self) -> "WorkloadConfig":
        """The 10GB variant of this config (Fig 2b's Small bars)."""
        return replace(self, dataset_bytes=10 * GB)


@dataclass
class WorkloadResult:
    """Outcome of one workload run."""

    name: str
    ops: int
    elapsed_ns: int
    setup_ns: int = 0

    @property
    def throughput_ops_per_sec(self) -> float:
        if self.elapsed_ns <= 0:
            return 0.0
        return self.ops / (self.elapsed_ns / SEC)

    def __repr__(self) -> str:
        return (
            f"WorkloadResult({self.name}, ops={self.ops}, "
            f"elapsed={self.elapsed_ns / SEC:.3f}s, "
            f"tput={self.throughput_ops_per_sec:.0f} ops/s)"
        )


class Workload:
    """Base driver: owns a process, a syscall interface, and RNG streams."""

    def __init__(self, kernel: "Kernel", config: WorkloadConfig) -> None:
        self.kernel = kernel
        self.config = config
        self.sys = SyscallInterface(kernel)
        self.proc = Process(kernel, config.name)
        self.rng = kernel.rng.stream(config.name)
        self._setup_done = False

    # -- subclass surface --------------------------------------------------

    def setup(self) -> None:
        """Build initial state (load phase). Subclasses override _setup."""
        if self._setup_done:
            return
        start = self.kernel.clock.now()
        self._setup()
        self._setup_ns = self.kernel.clock.now() - start
        self._setup_done = True

    def _setup(self) -> None:
        raise NotImplementedError

    def run_op(self, op_index: int, cpu: int) -> None:
        """Execute one operation of the workload's mix."""
        raise NotImplementedError

    def teardown(self) -> None:
        """Release application memory and open handles."""
        self.proc.teardown()

    # -- driver --------------------------------------------------------------

    def run(self, ops: int) -> WorkloadResult:
        """Run ``ops`` operations round-robin across modeled threads."""
        if ops <= 0:
            raise ConfigError(f"ops must be positive: {ops}")
        self.setup()
        start = self.kernel.clock.now()
        for i in range(ops):
            cpu = self.kernel.cpus.cpu_for_thread(i % self.config.num_threads)
            self.run_op(i, cpu)
        elapsed = self.kernel.clock.now() - start
        return WorkloadResult(
            name=self.config.name,
            ops=ops,
            elapsed_ns=elapsed,
            setup_ns=getattr(self, "_setup_ns", 0),
        )
