"""Redis model: in-memory KV store with sockets and disk checkpoints.

Table 3: "In-memory key-value store that periodically checkpoints to
disk. 16 Redis instances serve requests from 16 clients with 4M keys,
75% sets, 25% gets."

Kernel-visible signature:

* **Network-dominated op path** — every request arrives as packets
  through the driver rx ring and TCP demux; replies flow back out. The
  socket-buffer object churn (Fig 2a's Redis mix) and the early-demux
  benefit (§4.2.3) both come from here.
* **Long-lived hot sockets** — one socket per instance stays open, so
  with KLOCs its buffers are always allocated hot.
* **Periodic RDB checkpoints** — a fraction of the heap is written to a
  fresh dump file, fsynced, closed, and the previous dump unlinked: a
  burst of page-cache/journal allocations whose KLOC immediately turns
  cold ("Redis ... uses only a few large files to checkpoint data").
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.units import GB, KB
from repro.net.socket import Socket
from repro.workloads.base import Workload, WorkloadConfig
from repro.workloads.keydist import ZipfKeys

#: Requests between checkpoint dumps (scaled from Redis's save cadence).
OPS_PER_CHECKPOINT = 2500
#: Fraction of the heap serialized per checkpoint dump (RDB dumps the
#: whole store; the simulator's dumps overlap, so each round serializes
#: half — the tracked-object peak is what Table 6 measures).
CHECKPOINT_FRACTION = 0.5
#: Request/reply sizes on the wire.
REQUEST_BYTES = 128


def redis_config(scale_factor: int = 512) -> WorkloadConfig:
    return WorkloadConfig(
        name="redis",
        dataset_bytes=40 * GB,
        scale_factor=scale_factor,
        num_threads=16,
        value_bytes=1024,
        extra={"set_fraction": 0.75},
    )


class RedisWorkload(Workload):
    """16 instances serving a 75/25 set/get mix with checkpointing."""

    def __init__(self, kernel, config: WorkloadConfig = None) -> None:  # type: ignore[assignment]
        super().__init__(kernel, config or redis_config())
        self._sockets: List[Socket] = []
        self._keys: Optional[ZipfKeys] = None
        self._checkpoint_seq = 0
        self._prev_dump: Optional[str] = None
        self._ops_since_checkpoint = 0
        self.checkpoints = 0

    def _setup(self) -> None:
        # The resident store: Redis keeps its working state in the heap
        # (Table 3 measures a 14GB footprint for this configuration).
        heap_bytes = self.config.scaled(14 * GB)
        self.proc.alloc_region("heap", heap_bytes)
        # Per-instance event-loop state and client I/O buffers: small and
        # constantly reused, unlike the big key-value heap.
        self.proc.alloc_region("client_bufs", 64 * KB * self.config.num_threads)
        self._keys = ZipfKeys(self.rng, 4_000_000)
        for instance in range(self.config.num_threads):
            self._sockets.append(self.sys.socket(6379 + instance))

    def teardown(self) -> None:
        for sock in self._sockets:
            self.sys.close_socket(sock)
        self._sockets.clear()
        super().teardown()

    # ------------------------------------------------------------------

    def run_op(self, op_index: int, cpu: int) -> None:
        sock = self._sockets[op_index % len(self._sockets)]
        is_set = self.rng.random() < self.config.extra.get("set_fraction", 0.75)
        key = self._keys.next_key()
        value = self.config.value_bytes

        # Request arrives on the wire and is consumed.
        request = REQUEST_BYTES + (value if is_set else 0)
        self.kernel.net.deliver(sock.port, request, cpu=cpu)
        self.sys.recv(sock, cpu=cpu)

        # Heap work — Redis ops are reference-heavy in userspace (§3.1's
        # Fig 2c puts Redis at ~38% kernel references): protocol parse and
        # reply serialization hit the per-client buffers; the dict probe
        # and value access hit the Zipf-hot region of the key-value heap.
        page_hint = key // 4  # ~4 values per page
        for i in range(3):  # protocol parse, arg vector, command dispatch
            self.proc.touch("client_bufs", KB, page_hint=op_index + i, cpu=cpu)
        for i in range(3):  # dict probe, robj, expiry check
            self.proc.touch("heap", KB, page_hint=page_hint + 7 * i, cpu=cpu)
        self.proc.touch("heap", value, write=is_set, page_hint=page_hint + 1, cpu=cpu)
        for i in range(4):  # reply serialization + event-loop bookkeeping
            self.proc.touch(
                "client_bufs", KB, write=True, page_hint=op_index + 3 + i, cpu=cpu
            )

        # Reply: OK for sets, the value for gets.
        reply = 16 if is_set else value
        self.sys.send(sock, reply, cpu=cpu)

        self._ops_since_checkpoint += 1
        if self._ops_since_checkpoint >= OPS_PER_CHECKPOINT:
            self._ops_since_checkpoint = 0
            self._checkpoint(cpu=cpu)

    def _checkpoint(self, *, cpu: int) -> None:
        """Fork-style RDB dump: serialize part of the heap to a new file."""
        dump_bytes = int(self.proc.region_pages("heap") * 4096 * CHECKPOINT_FRACTION)
        name = f"/redis/dump-{self._checkpoint_seq:06d}.rdb"
        self._checkpoint_seq += 1
        fh = self.sys.creat(name, cpu=cpu)
        offset = 0
        chunk = 64 * KB
        while offset < dump_bytes:
            # Serialize from the heap, write to the page cache.
            self.proc.touch("heap", chunk, page_hint=offset // 4096, cpu=cpu)
            self.sys.write(fh, offset, min(chunk, dump_bytes - offset), cpu=cpu)
            offset += chunk
        self.sys.fsync(fh, cpu=cpu, background=True)
        self.sys.close(fh, cpu=cpu)
        if self._prev_dump is not None:
            self.sys.unlink(self._prev_dump, cpu=cpu)
        self._prev_dump = name
        self.checkpoints += 1
