"""Key distributions for KV workloads: Zipfian (YCSB-style) and uniform."""

from __future__ import annotations

from repro.core.rng import DeterministicRNG


class ZipfKeys:
    """Skewed key chooser — the default YCSB request distribution."""

    def __init__(self, rng: DeterministicRNG, universe: int, theta: float = 0.99) -> None:
        if universe <= 0:
            raise ValueError(f"key universe must be positive: {universe}")
        self.rng = rng
        self.universe = universe
        self.theta = theta

    def next_key(self) -> int:
        key = self.rng.zipf(self.universe, self.theta)
        return min(key, self.universe - 1)


class UniformKeys:
    """Uniform key chooser (dbbench's random mode)."""

    def __init__(self, rng: DeterministicRNG, universe: int) -> None:
        if universe <= 0:
            raise ValueError(f"key universe must be positive: {universe}")
        self.rng = rng
        self.universe = universe

    def next_key(self) -> int:
        return self.rng.randint(0, self.universe - 1)
