"""Streaming interferer for the Optane experiments.

§6.2: "workloads are run concurrently with another workload that streams
through memory and hence interferes with our workload on one of the
sockets. When interference begins to harm performance, AutoNUMA migrates
the workload of interest to another socket."

The interferer contends for one node's memory bandwidth (raising its
``contention_streams``) and pins down part of its capacity with a
streaming buffer.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.core.errors import SimulationError
from repro.mem.frame import PageFrame, PageOwner

if TYPE_CHECKING:
    from repro.kernel.kernel import Kernel


class StreamingInterferer:
    """Bandwidth hog pinned to one NUMA node."""

    def __init__(
        self,
        kernel: "Kernel",
        tier_name: str,
        *,
        streams: int = 2,
        footprint_pages: int = 0,
    ) -> None:
        if streams <= 0:
            raise ValueError(f"need at least one stream: {streams}")
        self.kernel = kernel
        self.tier_name = tier_name
        self.streams = streams
        self.footprint_pages = footprint_pages
        self._frames: List[PageFrame] = []
        self.active = False

    def start(self) -> None:
        """Begin streaming: bandwidth contention + resident footprint."""
        if self.active:
            raise SimulationError("interferer already running")
        tier = self.kernel.topology.tier(self.tier_name)
        tier.contention_streams += self.streams
        if self.footprint_pages:
            take = min(self.footprint_pages, tier.free_pages)
            if take:
                self._frames = self.kernel.topology.allocate(
                    take,
                    [self.tier_name],
                    PageOwner.APP,
                    obj_type="interferer",
                    now_ns=self.kernel.clock.now(),
                )
        self.active = True

    def stop(self) -> None:
        if not self.active:
            raise SimulationError("interferer not running")
        tier = self.kernel.topology.tier(self.tier_name)
        tier.contention_streams -= self.streams
        self.kernel.topology.free_all(self._frames, now_ns=self.kernel.clock.now())
        self._frames = []
        self.active = False

    def __repr__(self) -> str:
        state = "on" if self.active else "off"
        return f"StreamingInterferer({self.tier_name}, {self.streams} streams, {state})"
