"""Filebench model: raw filesystem stress, with selectable personalities.

Table 3: "File system benchmark using 16 threads, executing 50%
sequential and random reads on a 32GB file" (plus the §3.1 discussion of
its write path: page cache updates, journalling, metadata radix trees,
block driver buffers).

This is the most kernel-intensive workload — §3.1: "Filebench spends 86%
of execution time inside the OS" — which the model reproduces by doing
almost no application-side work per op.

Like the real Filebench, the driver supports *personalities* via
``extra={"profile": ...}``:

* ``"fileserver"`` (default, the paper's configuration): 16 big
  per-thread files, 4KB-64KB reads/writes, half sequential/half random.
* ``"varmail"``: mail-spool churn — create/append/fsync/read/delete of
  small files. Maximal inode/dentry/journal turnover: the KLOC stressor.
* ``"webserver"``: open-read-close over a large population of small
  files plus an append-only access log.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.errors import ConfigError
from repro.core.units import GB, KB
from repro.vfs.filesystem import FileHandle
from repro.workloads.base import Workload, WorkloadConfig

#: I/O sizes drawn per op (Filebench's 4KB blocks, coalesced bursts).
IO_BYTES = [4 * KB, 16 * KB, 64 * KB]
#: Fraction of ops that write (the workload is read-heavy).
WRITE_FRACTION = 0.3


def filebench_config(scale_factor: int = 512) -> WorkloadConfig:
    return WorkloadConfig(
        name="filebench",
        dataset_bytes=32 * GB,
        scale_factor=scale_factor,
        num_threads=16,
        value_bytes=4 * KB,
    )


#: varmail personality parameters.
VARMAIL_FILE_BYTES = 16 * KB
VARMAIL_POPULATION = 256
#: webserver personality parameters.
WEBSERVER_FILE_BYTES = 32 * KB
WEBSERVER_POPULATION = 256

PROFILES = ("fileserver", "varmail", "webserver")


class FilebenchWorkload(Workload):
    """16 threads driving one of the Filebench personalities."""

    def __init__(self, kernel, config: WorkloadConfig = None) -> None:  # type: ignore[assignment]
        super().__init__(kernel, config or filebench_config())
        self.profile = self.config.extra.get("profile", "fileserver")
        if self.profile not in PROFILES:
            raise ConfigError(
                f"unknown filebench profile {self.profile!r}; "
                f"choose from {PROFILES}"
            )
        self._handles: List[FileHandle] = []
        self._file_bytes = 0
        self._seq_offset: Dict[int, int] = {}
        self._mail_names: List[str] = []
        self._next_mail = 0
        self._log_handle: FileHandle = None  # type: ignore[assignment]
        self._log_offset = 0

    # ------------------------------------------------------------------
    # setup per personality
    # ------------------------------------------------------------------

    def _setup(self) -> None:
        # A token application buffer — Filebench itself is a thin shim.
        self.proc.alloc_region("iobuf", 64 * KB * self.config.num_threads)
        if self.profile == "fileserver":
            self._setup_fileserver()
        elif self.profile == "varmail":
            self._setup_small_files("/mail", VARMAIL_POPULATION, VARMAIL_FILE_BYTES)
        else:
            self._setup_small_files(
                "/htdocs", WEBSERVER_POPULATION, WEBSERVER_FILE_BYTES
            )
            self._log_handle = self.sys.creat("/logs/access.log")

    def _setup_fileserver(self) -> None:
        nfiles = self.config.num_threads
        self._file_bytes = self.config.sim_dataset_bytes // nfiles
        for i in range(nfiles):
            fh = self.sys.creat(f"/fb/file-{i:02d}", cpu=i % self.kernel.num_cpus)
            offset = 0
            while offset < self._file_bytes:
                self.sys.write(fh, offset, 64 * KB, cpu=i % self.kernel.num_cpus)
                offset += 64 * KB
            self.sys.fsync(fh, cpu=i % self.kernel.num_cpus)
            self._handles.append(fh)
            self._seq_offset[i] = 0

    def _setup_small_files(self, root: str, population: int, nbytes: int) -> None:
        for i in range(population):
            name = f"{root}/f{i:06d}"
            fh = self.sys.creat(name)
            self.sys.write(fh, 0, nbytes)
            self.sys.close(fh)
            self._mail_names.append(name)
        self._next_mail = population

    def teardown(self) -> None:
        for fh in self._handles:
            self.sys.close(fh)
        self._handles.clear()
        if self._log_handle is not None:
            self.sys.close(self._log_handle)
            self._log_handle = None
        super().teardown()

    # ------------------------------------------------------------------
    # op mixes
    # ------------------------------------------------------------------

    def run_op(self, op_index: int, cpu: int) -> None:
        if self.profile == "fileserver":
            self._fileserver_op(op_index, cpu)
        elif self.profile == "varmail":
            self._varmail_op(cpu)
        else:
            self._webserver_op(cpu)
        # Minimal app-side work: copy + checksum in the I/O buffer.
        self.proc.touch("iobuf", 4 * KB, write=True, cpu=cpu)
        self.proc.touch("iobuf", 4 * KB, page_hint=op_index, cpu=cpu)

    def _fileserver_op(self, op_index: int, cpu: int) -> None:
        thread = op_index % self.config.num_threads
        fh = self._handles[thread]
        nbytes = self.rng.choice(IO_BYTES)
        sequential = self.rng.random() < 0.5
        if sequential:
            offset = self._seq_offset[thread]
            self._seq_offset[thread] = (offset + nbytes) % max(
                1, self._file_bytes - nbytes
            )
        else:
            offset = self.rng.randint(0, max(0, self._file_bytes - nbytes))
        if self.rng.random() < WRITE_FRACTION:
            self.sys.write(fh, offset, nbytes, cpu=cpu)
        else:
            self.sys.read(fh, offset, nbytes, cpu=cpu)

    def _varmail_op(self, cpu: int) -> None:
        """Mail-spool churn: deliver (create+fsync), read, or delete."""
        roll = self.rng.random()
        if roll < 0.4 or not self._mail_names:  # deliver new mail
            name = f"/mail/f{self._next_mail:06d}"
            self._next_mail += 1
            fh = self.sys.creat(name, cpu=cpu)
            self.sys.write(fh, 0, VARMAIL_FILE_BYTES, cpu=cpu)
            self.sys.fsync(fh, cpu=cpu)
            self.sys.close(fh, cpu=cpu)
            self._mail_names.append(name)
        elif roll < 0.8:  # read a mailbox file
            name = self.rng.choice(self._mail_names)
            fh = self.sys.open(name, cpu=cpu)
            self.sys.read(fh, 0, VARMAIL_FILE_BYTES, cpu=cpu)
            self.sys.close(fh, cpu=cpu)
        else:  # expunge
            index = self.rng.randint(0, len(self._mail_names) - 1)
            self.sys.unlink(self._mail_names.pop(index), cpu=cpu)

    def _webserver_op(self, cpu: int) -> None:
        """Serve a page: open-read-close + an access-log append."""
        name = self.rng.choice(self._mail_names)
        fh = self.sys.open(name, cpu=cpu)
        self.sys.read(fh, 0, WEBSERVER_FILE_BYTES, cpu=cpu)
        self.sys.close(fh, cpu=cpu)
        self.sys.write(self._log_handle, self._log_offset, 256, cpu=cpu)
        self._log_offset += 256
