"""Terminal bar charts for experiment reports.

The paper's figures are grouped bar charts; these helpers render the
same data as aligned unicode bars so example scripts and the CLI can
show the *shape* directly in a terminal.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

FULL = "█"
PARTIAL = ("", "▏", "▎", "▍", "▌", "▋", "▊", "▉")


def _bar(value: float, scale: float, width: int) -> str:
    """Render ``value`` as a bar of at most ``width`` cells."""
    if scale <= 0:
        return ""
    cells = value / scale * width
    whole = int(cells)
    remainder = int((cells - whole) * 8)
    bar = FULL * min(whole, width)
    if whole < width and remainder:
        bar += PARTIAL[remainder]
    return bar


def bar_chart(
    values: Mapping[str, float],
    *,
    title: str = "",
    width: int = 40,
    unit: str = "",
) -> str:
    """One bar per (label, value), scaled to the max value."""
    if not values:
        raise ValueError("nothing to chart")
    label_width = max(len(label) for label in values)
    scale = max(values.values())
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, value in values.items():
        lines.append(
            f"{label.ljust(label_width)} {_bar(value, scale, width)} "
            f"{value:.2f}{unit}"
        )
    return "\n".join(lines)


def grouped_bar_chart(
    groups: Mapping[str, Mapping[str, float]],
    *,
    title: str = "",
    width: int = 32,
    unit: str = "x",
) -> str:
    """Figure-4-style chart: one block per group (workload), one bar per
    series (policy), all sharing one scale."""
    if not groups:
        raise ValueError("nothing to chart")
    scale = max(v for series in groups.values() for v in series.values())
    label_width = max(len(k) for series in groups.values() for k in series)
    lines: List[str] = []
    if title:
        lines.append(title)
    for group, series in groups.items():
        lines.append(f"-- {group} --")
        for label, value in series.items():
            lines.append(
                f"  {label.ljust(label_width)} "
                f"{_bar(value, scale, width)} {value:.2f}{unit}"
            )
    return "\n".join(lines)


def sparkline(values: Sequence[float], *, width: Optional[int] = None) -> str:
    """Compact trend line (e.g. throughput over a parameter sweep)."""
    if not values:
        raise ValueError("nothing to chart")
    ticks = "▁▂▃▄▅▆▇█"
    lo, hi = min(values), max(values)
    span = hi - lo or 1.0
    picked = list(values)
    if width is not None and len(picked) > width:
        step = len(picked) / width
        picked = [picked[int(i * step)] for i in range(width)]
    return "".join(ticks[int((v - lo) / span * (len(ticks) - 1))] for v in picked)
