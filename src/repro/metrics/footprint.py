"""Footprint attribution: pages by owner category (Figures 2a/2b).

The paper reports *cumulative allocations* ("Pages are allocated and
released frequently; hence the total allocations can be greater than
available memory"), so both cumulative and live views are captured.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.mem.frame import PageOwner
from repro.mem.topology import MemoryTopology


@dataclass
class FootprintSnapshot:
    """Pages by owner, cumulative and live, with Fig 2a/2b percentages."""

    allocated: Dict[PageOwner, int] = field(default_factory=dict)
    live: Dict[PageOwner, int] = field(default_factory=dict)

    @property
    def total_allocated(self) -> int:
        return sum(self.allocated.values())

    @property
    def kernel_allocated(self) -> int:
        return sum(n for o, n in self.allocated.items() if o.is_kernel)

    @property
    def app_allocated(self) -> int:
        return self.allocated.get(PageOwner.APP, 0)

    def kernel_fraction(self) -> float:
        """Fig 2a/2b: fraction of page allocations that are kernel objects."""
        total = self.total_allocated
        return self.kernel_allocated / total if total else 0.0

    def fraction(self, owner: PageOwner) -> float:
        total = self.total_allocated
        return self.allocated.get(owner, 0) / total if total else 0.0

    def breakdown(self) -> Dict[str, float]:
        """Owner → fraction of cumulative allocations (Fig 2a's stack)."""
        return {owner.value: self.fraction(owner) for owner in PageOwner}


def footprint_snapshot(topology: MemoryTopology) -> FootprintSnapshot:
    """Capture the current footprint attribution from a topology."""
    snap = FootprintSnapshot()
    for (tier, owner), count in topology.alloc_count.items():
        snap.allocated[owner] = snap.allocated.get(owner, 0) + count
    for (tier, owner), count in topology.live_count.items():
        snap.live[owner] = snap.live.get(owner, 0) + count
    return snap
