"""Measurement helpers: footprint, reference, and lifetime attribution
(the quantities behind Figures 2a-2d) plus table rendering."""

from repro.metrics.footprint import FootprintSnapshot, footprint_snapshot
from repro.metrics.lifetime import LifetimeReport, lifetime_report
from repro.metrics.references import ReferenceReport, reference_report
from repro.metrics.report import format_table

__all__ = [
    "FootprintSnapshot",
    "footprint_snapshot",
    "ReferenceReport",
    "reference_report",
    "LifetimeReport",
    "lifetime_report",
    "format_table",
]
