"""Plain-text table rendering for the benchmark harness output."""

from __future__ import annotations

from typing import List, Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], *, title: str = ""
) -> str:
    """Render an aligned ASCII table like the ones the benches print."""
    cells: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row!r}"
            )
        cells.append([_fmt(v) for v in row])
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(c.ljust(w) for c, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}" if abs(value) < 100 else f"{value:.1f}"
    return str(value)
