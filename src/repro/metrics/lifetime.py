"""Lifetime analysis: how long pages and objects live (Figure 2d).

Combines the allocators' per-type ledgers (slab/kloc/page objects) with
the topology's retired-frame log (application pages), classified into the
figure's three series: application pages, slab objects, page-cache pages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional

from repro.core.objtypes import AllocatorKind, KernelObjectType
from repro.mem.frame import PageOwner

if TYPE_CHECKING:
    from repro.kernel.kernel import Kernel


@dataclass
class LifetimeReport:
    """Mean lifetimes (ns) per Figure 2d series and per object type."""

    app_mean_ns: Optional[float] = None
    slab_mean_ns: Optional[float] = None
    page_cache_mean_ns: Optional[float] = None
    by_type_ns: Dict[str, float] = field(default_factory=dict)
    samples: Dict[str, int] = field(default_factory=dict)

    def ordering_holds(self) -> bool:
        """Fig 2d's shape: slab < page cache < application lifetimes."""
        if None in (self.app_mean_ns, self.slab_mean_ns, self.page_cache_mean_ns):
            return False
        return self.slab_mean_ns <= self.page_cache_mean_ns <= self.app_mean_ns


def lifetime_report(kernel: "Kernel", *, now_ns: Optional[int] = None) -> LifetimeReport:
    """Aggregate lifetimes across allocators and retired app frames."""
    now = now_ns if now_ns is not None else kernel.clock.now()
    report = LifetimeReport()

    # Kernel objects, from the allocator ledgers.
    slab_sum = slab_n = cache_sum = cache_n = 0
    for ledger in (
        kernel.slab.stats.lifetimes,
        kernel.kloc_alloc.stats.lifetimes,
        kernel.page_alloc.stats.lifetimes,
    ):
        for otype in KernelObjectType:
            mean = ledger.mean_ns(otype)
            count = ledger.count(otype)
            if mean is None:
                continue
            key = otype.name
            prev_n = report.samples.get(key, 0)
            prev = report.by_type_ns.get(key, 0.0)
            report.by_type_ns[key] = (prev * prev_n + mean * count) / (prev_n + count)
            report.samples[key] = prev_n + count
            if otype is KernelObjectType.PAGE_CACHE:
                cache_sum += mean * count
                cache_n += count
            elif otype.allocator is AllocatorKind.SLAB:
                slab_sum += mean * count
                slab_n += count
    if slab_n:
        report.slab_mean_ns = slab_sum / slab_n
    if cache_n:
        report.page_cache_mean_ns = cache_sum / cache_n

    # Application pages: retired frames plus still-live ones (app pages
    # typically outlive the measurement window, as in the paper). Live
    # frames come from the per-(tier, owner) resident index, so the
    # report never walks the global frame table.
    app_sum = app_n = 0
    for frame in kernel.topology.retired:
        if frame.owner is PageOwner.APP:
            app_sum += frame.lifetime_ns(now)
            app_n += 1
    for frame in kernel.topology.iter_frames_by_owner(PageOwner.APP):
        app_sum += frame.lifetime_ns(now)
        app_n += 1
    if app_n:
        report.app_mean_ns = app_sum / app_n
        report.samples["APP"] = app_n
    return report
