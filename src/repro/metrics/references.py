"""Reference attribution: who memory accesses hit (Figure 2c).

The paper samples this with VTune/perf counters; the simulator counts
every modeled reference exactly, attributed by page owner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict

from repro.mem.frame import PageOwner

if TYPE_CHECKING:
    from repro.kernel.kernel import Kernel


@dataclass
class ReferenceReport:
    """Counts of memory references by origin."""

    kernel_refs: int = 0
    app_refs: int = 0
    kernel_bytes: int = 0
    app_bytes: int = 0
    by_owner: Dict[PageOwner, int] = field(default_factory=dict)

    @property
    def total_refs(self) -> int:
        return self.kernel_refs + self.app_refs

    def kernel_fraction(self) -> float:
        """Fig 2c's y-axis: % of references to kernel objects."""
        total = self.total_refs
        return self.kernel_refs / total if total else 0.0

    def owner_fraction(self, owner: PageOwner) -> float:
        total = self.total_refs
        return self.by_owner.get(owner, 0) / total if total else 0.0


def reference_report(kernel: "Kernel") -> ReferenceReport:
    return ReferenceReport(
        kernel_refs=kernel.kernel_refs,
        app_refs=kernel.app_refs,
        kernel_bytes=kernel.kernel_ref_bytes,
        app_bytes=kernel.app_ref_bytes,
        by_owner=dict(kernel.refs_by_owner),
    )
