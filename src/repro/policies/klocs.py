"""The KLOCs policies (Table 5) — the paper's contribution.

Both variants keep Nimble's application-page machinery (Table 5: "Original
Nimble policies to identify hot application pages") and add KLOC
tracking: kernel objects of *active* knodes are allocated directly into
fast memory, objects of inactive knodes into slow memory (§3.2
implication one / §4.2.2).

:class:`KlocsPolicy` additionally migrates kernel objects:

* the instant a knode goes inactive, its whole subtree is downgraded
  ("we immediately mark and migrate the kernel page objects they are
  associated with, without waiting for scans" — §4.5);
* the asynchronous daemon ages open-but-idle knodes and pulls reopened
  knodes' objects back up (§4.4);
* ping-ponging pages are pinned in fast memory via the 8-bit counters
  (§4.5).

:class:`KlocsNoMigrationPolicy` is Fig 4's *KLOCs-nomigration* bar:
direct allocation only — inactive objects stay wherever they are until
freed, shrinking the fast memory available to active knodes.
"""

from __future__ import annotations

from typing import List

from repro.core.objtypes import KernelObjectType
from repro.mem.frame import PageOwner
from repro.policies.base import TieringPolicy
from repro.policies.lru_engine import LRUScanEngine

#: §4.5: pages migrated this many times get retained in fast memory.
PINGPONG_PIN_THRESHOLD = 4

#: Object types whose lifetimes are far below the migration/reclaim
#: timescale (Fig 2d's shortest-lived classes): they are freed before
#: they could ever pollute fast memory, so direct allocation always
#: places them fast — §3.2 implication one, without the share cap.
TRANSIENT_TYPES = frozenset(
    {
        KernelObjectType.BLOCK,
        KernelObjectType.BLK_MQ,
        KernelObjectType.SKBUFF,
        KernelObjectType.SKBUFF_DATA,
        KernelObjectType.RX_BUF,
        KernelObjectType.JOURNAL,
    }
)

#: Shared placement orders, returned by the per-allocation hooks instead
#: of building a fresh list per call. Consumers only iterate them
#: (``MemoryTopology.allocate``) — never mutate.
_FAST_FIRST = ["fast", "slow"]
_SLOW_FIRST = ["slow", "fast"]


class KlocsNoMigrationPolicy(TieringPolicy):
    """Direct allocation by knode activity; no kernel-object migration."""

    name = "klocs_nomigration"
    uses_kloc = True
    uses_kloc_interface = True

    def __init__(self) -> None:
        super().__init__()
        self.lru: LRUScanEngine = None  # type: ignore[assignment]

    def attach(self, kernel) -> None:
        super().attach(kernel)
        # Promotion covers kernel pages too — KLOCs make referenced slow
        # kernel pages identifiable and (via the KLOC allocation interface)
        # relocatable; demotion of kernel objects is handled by knode
        # events, so the scan only demotes application pages.
        self.lru = LRUScanEngine(
            kernel,
            spec=kernel.platform.lru,
            promote_owners=None,
            demote_owners={PageOwner.APP},
        )

    def start_daemons(self) -> None:
        self.lru.start()

    def tier_order_app(self, *, cpu: int = 0) -> List[str]:
        # §4.2.2: "KLOCs prioritize application pages to reduce their
        # placement in slower memory".
        return _FAST_FIRST

    def tier_order_kernel(self, otype, inode, *, covered: bool, cpu: int = 0) -> List[str]:
        if not covered:
            return _FAST_FIRST
        if inode is None or otype in TRANSIENT_TYPES:
            # Transient objects (bios, blk-mq requests, packet buffers,
            # journal records) live microseconds-to-sub-ms and are
            # referenced immediately — always hot at allocation, gone
            # before pollution is possible.
            return _FAST_FIRST
        if self._knode_active(inode, cpu=cpu) and not self._kernel_share_full():
            return _FAST_FIRST
        return _SLOW_FIRST

    #: Headroom kept available for application promotions beyond the
    #: app's current fast-tier residency.
    APP_GROWTH_MARGIN = 256

    def _kernel_share_full(self) -> bool:
        """sys_kloc_memsize()-style cap with demand-based app priority.

        Application pages are entitled to (1 - fast_capacity_fraction) of
        fast memory (§4.2.2: "KLOCs prioritize application pages"), but
        entitlement the app is not using — beyond a growth margin — is
        lendable to kernel objects, so app-light workloads (Filebench)
        still fill fast memory with kernel data.
        """
        topo = self.kernel.topology
        fast = topo.tier("fast")
        cap = fast.capacity_pages
        frac = self.kernel.platform.kloc.fast_capacity_fraction
        app_fast = topo.live_count.get(("fast", PageOwner.APP), 0)
        app_entitlement = min(int(cap * (1 - frac)), app_fast + self.APP_GROWTH_MARGIN)
        budget = cap - app_entitlement
        return topo.kernel_pages_in("fast") >= budget

    def _knode_active(self, inode, *, cpu: int) -> bool:
        if inode is None:
            return False
        manager = self.kernel.kloc_manager
        if manager is None or inode.knode_id is None:
            return False
        knode = manager.knode_for_inode(inode, cpu=cpu)
        return knode is not None and knode.inuse


class KlocsPolicy(KlocsNoMigrationPolicy):
    """Full KLOCs: direct allocation plus en-masse kernel-object migration."""

    name = "klocs"
    migrates_kernel_objects = True

    def attach(self, kernel) -> None:
        super().attach(kernel)
        # Table 5: KLOCs keeps the "original Nimble policies" — full
        # page-granularity LRU over application AND kernel pages — and
        # layers the knode short-circuits (immediate close-downgrades,
        # en-masse cold-knode sweeps) on top.
        self.lru = LRUScanEngine(
            kernel,
            spec=kernel.platform.lru,
            promote_owners=None,
            demote_owners=None,
        )

    def start_daemons(self) -> None:
        super().start_daemons()
        daemon = self.kernel.kloc_daemon
        if daemon is not None:
            daemon.start()

    def on_knode_inactive(self, knode) -> None:
        """Mark the knode definitely-cold — the short-circuit that defines
        KLOCs: no scan is needed to identify every object it owns.

        The migration itself is asynchronous (§5's dedicated kernel
        threads): the daemon's next pass downgrades marked knodes first,
        under memory pressure. Deferring one tick also means a file that
        is closed and immediately unlinked frees its objects rather than
        migrating them (§3.2: deleted objects "should not be migrated").
        """
        daemon = self.kernel.kloc_daemon
        if daemon is not None:
            daemon.mark_cold(knode)

    #: Pages pulled up eagerly when a knode reactivates; the rest come up
    #: page-by-page through the promote scan as they are referenced.
    REACTIVATE_UPGRADE_LIMIT = 4

    def on_knode_active(self, knode) -> None:
        """Reopened file/socket: retrieve its hottest objects eagerly."""
        daemon = self.kernel.kloc_daemon
        if daemon is None:
            return
        daemon.unmark(knode.knode_id)  # reopened before the daemon ran
        daemon.upgrade_knode(knode, limit=self.REACTIVATE_UPGRADE_LIMIT)
        for frame in daemon.knode_frames(knode):
            if frame.migrations >= PINGPONG_PIN_THRESHOLD:
                frame.pinned_fast = True

    def on_prefetch(self, inode, npages: int) -> None:
        """§4.4: the readahead path exposes kernel objects to the
        prefetcher — pull the inode's knode up alongside its data."""
        manager = self.kernel.kloc_manager
        daemon = self.kernel.kloc_daemon
        if manager is None or daemon is None or inode.knode_id is None:
            return
        knode = manager.knode_for_inode(inode)
        if knode is not None and knode.inuse:
            daemon.upgrade_knode(knode, limit=16)


class KlocsFineGrainedPolicy(KlocsPolicy):
    """§4.4's future-work variant: per-object (per-page) tracking.

    "Our future work will explore the benefits of employing a fine-grained
    kernel object tracking approach" — this policy keeps the KLOC
    allocation interface and activity-based direct allocation but drops
    the inode-granularity *migration* short-circuits: kernel pages move
    only via the page-granularity LRU, individually. Comparing it against
    :class:`KlocsPolicy` quantifies what the en-masse knode sweeps buy
    (see benchmarks/bench_ablation_granularity.py).
    """

    name = "klocs_fine"

    def start_daemons(self) -> None:
        # Page-granularity scanning only — no knode migration daemon.
        self.lru.start()

    def on_knode_inactive(self, knode) -> None:
        """No en-masse downgrade: cold pages age out one by one."""

    def on_knode_active(self, knode) -> None:
        """No en-masse upgrade: hot pages promote one by one."""

    def on_prefetch(self, inode, npages: int) -> None:
        """No knode-level prefetch piggyback."""
