"""Tiering policies — Table 5's strategies, for both platforms.

Two-tier platform:

* :class:`AllFastMem` / :class:`AllSlowMem` — the ideal and pessimistic bounds.
* :class:`NaivePolicy` — greedy first-come-first-served, no migration.
* :class:`NimblePolicy` — application-page tiering with scan-based hotness
  and parallel page copy (Yan et al., ASPLOS'19); kernel objects pinned in
  slow memory.
* :class:`NimblePlusPlusPolicy` — Nimble's scan machinery extended to
  kernel objects, *without* the KLOC abstraction.
* :class:`KlocsPolicy` / :class:`KlocsNoMigrationPolicy` — the paper's
  contribution, with and without kernel-object migration.

Optane Memory Mode platform:

* :class:`NumaAllLocal` / :class:`NumaAllRemote` — bounds.
* :class:`AutoNumaPolicy` — application pages follow the task's socket.
* :class:`NumaNimblePolicy` — AutoNUMA with parallel page copy.
* :class:`NumaKlocsPolicy` — AutoNUMA + kernel-object migration via KLOCs.
"""

from repro.policies.autonuma import (
    AutoNumaPolicy,
    NumaAllLocal,
    NumaAllRemote,
    NumaKlocsPolicy,
    NumaNimblePolicy,
)
from repro.policies.base import TieringPolicy
from repro.policies.klocs import (
    KlocsFineGrainedPolicy,
    KlocsNoMigrationPolicy,
    KlocsPolicy,
)
from repro.policies.lru_engine import LRUScanEngine
from repro.policies.nimble import NimblePlusPlusPolicy, NimblePolicy
from repro.policies.simple import AllFastMem, AllSlowMem, NaivePolicy

__all__ = [
    "TieringPolicy",
    "LRUScanEngine",
    "AllFastMem",
    "AllSlowMem",
    "NaivePolicy",
    "NimblePolicy",
    "NimblePlusPlusPolicy",
    "KlocsPolicy",
    "KlocsNoMigrationPolicy",
    "KlocsFineGrainedPolicy",
    "AutoNumaPolicy",
    "NumaNimblePolicy",
    "NumaKlocsPolicy",
    "NumaAllLocal",
    "NumaAllRemote",
]

#: Name → class registry used by the experiment harness.
TWO_TIER_POLICIES = {
    "all_fast": AllFastMem,
    "all_slow": AllSlowMem,
    "naive": NaivePolicy,
    "nimble": NimblePolicy,
    "nimble++": NimblePlusPlusPolicy,
    "klocs_nomigration": KlocsNoMigrationPolicy,
    "klocs": KlocsPolicy,
    # §4.4 future-work extension, not part of the paper's Fig 4 bar set.
    "klocs_fine": KlocsFineGrainedPolicy,
}

OPTANE_POLICIES = {
    "all_local": NumaAllLocal,
    "all_remote": NumaAllRemote,
    "autonuma": AutoNumaPolicy,
    "nimble": NumaNimblePolicy,
    "klocs": NumaKlocsPolicy,
}
