"""Optane Memory-Mode policies: AutoNUMA and friends (Table 5, Fig 5a).

The platform is two NUMA sockets, each a DRAM-cache-fronted PMEM node.
The experiment (§6.2): the workload starts on node 0; a streaming
co-runner then contends for node 0's bandwidth, and the scheduler moves
the task to node 1. What happens next distinguishes the policies:

* **AutoNUMA** migrates application pages toward the task's new socket
  ("vanilla AutoNUMA migrates application pages, kernel object pages are
  ignored").
* **Nimble** does the same with parallel page copy (bigger batches).
* **KLOCs** additionally migrates the kernel objects of active knodes,
  found via the kmap and per-CPU lists (§4.5).
* **All-local / all-remote** are the bounds Fig 5a normalizes against.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.units import MS
from repro.mem.frame import PageFrame, PageOwner
from repro.mem.topology import frame_index_enabled
from repro.policies.base import TieringPolicy


def _by_fid(frame: PageFrame) -> int:
    return frame.fid

#: AutoNUMA's default scan/migrate cadence (time-compressed alongside the
#: LRU engine; see two_tier_platform_spec's discussion).
NUMA_SCAN_PERIOD_NS = 4 * MS
#: Pages AutoNUMA moves per wakeup (fault-driven, one at a time-ish).
AUTONUMA_BATCH = 256
#: Nimble's parallelized copy moves larger batches per wakeup.
NIMBLE_BATCH = 1024


class NumaPolicyBase(TieringPolicy):
    """Shared plumbing for node-preference policies."""

    numa_mode = True
    #: Which owners the periodic migrator moves (None = nothing).
    migrate_owners: Optional[set] = None
    batch = AUTONUMA_BATCH

    def __init__(self) -> None:
        super().__init__()
        self.migrated_app = 0
        self.migrated_kernel = 0
        self._started = False
        #: Scan the per-(tier, owner) resident indexes instead of the
        #: global frame table — bit-identical decisions, O(away residents)
        #: per wakeup. REPRO_NO_FRAME_INDEX=1 restores the global walk.
        self.use_index = frame_index_enabled()

    def node_tier(self, node: int) -> str:
        return f"node{node}"

    def preferred_node(self) -> int:
        return self.kernel.task_node

    def tier_order_app(self, *, cpu: int = 0) -> List[str]:
        home = self.preferred_node()
        return [self.node_tier(home), self.node_tier(1 - home)]

    def tier_order_kernel(self, otype, inode, *, covered: bool, cpu: int = 0) -> List[str]:
        # Modern OSes allocate kernel objects on the allocating CPU's
        # socket (§3.3) — which is the task's current socket here.
        home = self.preferred_node()
        return [self.node_tier(home), self.node_tier(1 - home)]

    def start_daemons(self) -> None:
        if self._started or self.migrate_owners is None:
            return
        self.kernel.clock.schedule_periodic(NUMA_SCAN_PERIOD_NS, self._scan)
        self._started = True

    def _scan(self, now_ns: int = 0) -> None:
        """Move misplaced frames toward the task's socket, batch-limited."""
        home_tier = self.node_tier(self.preferred_node())
        topo = self.kernel.topology
        candidates: List[PageFrame] = []
        if self.use_index:
            # Only away-from-home residents of the managed owners can be
            # misplaced; the fid sort restores the global walk's encounter
            # order before the batch cut.
            for tier_name in topo.tiers:
                if tier_name == home_tier:
                    continue
                for owner in self.migrate_owners:
                    candidates.extend(
                        frame
                        for frame in topo.resident_frames_by_owner(
                            tier_name, owner
                        ).values()
                        if frame.relocatable
                    )
            candidates.sort(key=_by_fid)
            del candidates[self.batch :]
        else:
            for frame in topo.frames.values():
                if frame.tier_name == home_tier or not frame.relocatable:
                    continue
                if frame.owner in self.migrate_owners:
                    candidates.append(frame)
                    if len(candidates) >= self.batch:
                        break
        if not candidates:
            return
        result = self.kernel.engine.migrate(candidates, home_tier, charge_time=False)
        self.kernel.background_cpu_work(result.cost_ns)
        for frame in result.frames:
            frame.node_id = self.preferred_node()
            if frame.owner is PageOwner.APP:
                self.migrated_app += 1
            else:
                self.migrated_kernel += 1


class NumaAllRemote(NumaPolicyBase):
    """Worst case: every access crosses the interconnect (Fig 5a's
    normalization baseline)."""

    name = "all_remote"

    def tier_order_app(self, *, cpu: int = 0) -> List[str]:
        away = 1 - self.preferred_node()
        return [self.node_tier(away), self.node_tier(1 - away)]

    def tier_order_kernel(self, otype, inode, *, covered: bool, cpu: int = 0) -> List[str]:
        away = 1 - self.preferred_node()
        return [self.node_tier(away), self.node_tier(1 - away)]


class NumaAllLocal(NumaPolicyBase):
    """Ideal: data follows the task instantly and freely (Fig 5a's 1.6x).

    The bound is generous on every axis, so it also gets the driver-level
    socket demux that KLOCs otherwise uniquely enable."""

    name = "all_local"
    early_demux = True

    def on_task_moved(self) -> None:
        """Teleport everything to the new home node, free of charge."""
        topo = self.kernel.topology
        home_tier = self.node_tier(self.preferred_node())
        dst = topo.tier(home_tier)
        if self.use_index:
            away = [
                frame
                for tier_name in topo.tiers
                if tier_name != home_tier
                for frame in topo.resident_frames(tier_name).values()
            ]
            away.sort(key=_by_fid)
            for frame in away:
                if not dst.has_room(1):
                    break
                topo.move_frame(frame, home_tier)
                frame.node_id = self.preferred_node()
        else:
            for frame in list(topo.frames.values()):
                if frame.tier_name != home_tier and dst.has_room(1):
                    topo.move_frame(frame, home_tier)
                    frame.node_id = self.preferred_node()


class AutoNumaPolicy(NumaPolicyBase):
    """Vanilla AutoNUMA: application pages follow the task; kernel objects
    stay stranded on the old socket."""

    name = "autonuma"
    migrate_owners = {PageOwner.APP}
    batch = AUTONUMA_BATCH


class NumaNimblePolicy(NumaPolicyBase):
    """Nimble on Optane: same app-only coverage, parallel-copy batches."""

    name = "nimble"
    migrate_owners = {PageOwner.APP}
    batch = NIMBLE_BATCH


class NumaKlocsPolicy(NumaPolicyBase):
    """AutoNUMA + KLOCs: kernel objects of active KLOCs migrate too (§4.5:
    "for all active KLOCs currently in use by an application, we identify
    related kernel objects and check if their pages are placed in local
    memory ... and subsequently migrate kernel objects that are remote")."""

    name = "klocs"
    uses_kloc = True
    uses_kloc_interface = True
    migrates_kernel_objects = True
    migrate_owners = {PageOwner.APP}
    batch = NIMBLE_BATCH

    def _scan(self, now_ns: int = 0) -> None:
        super()._scan(now_ns)
        manager = self.kernel.kloc_manager
        if manager is None:
            return
        home_tier = self.node_tier(self.preferred_node())
        moved = 0
        for knode in manager.kmap.all_knodes():
            if moved >= self.batch:
                break
            if not knode.inuse:
                continue
            remote = [
                f
                for f in self.kernel.kloc_daemon.knode_frames(knode)
                if f.tier_name != home_tier
            ]
            if not remote:
                continue
            result = self.kernel.engine.migrate(
                remote[: self.batch - moved], home_tier, charge_time=False
            )
            for frame in result.frames:
                frame.node_id = self.preferred_node()
            moved += result.moved
            self.migrated_kernel += result.moved
