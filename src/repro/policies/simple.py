"""Bound and baseline policies: All-Fast, All-Slow, Naive (Table 5)."""

from __future__ import annotations

from typing import List

from repro.policies.base import TieringPolicy


class AllFastMem(TieringPolicy):
    """Ideal bound: every page — application and kernel — in fast memory.

    Experiments pair this with a fast tier sized to hold the workload, as
    the paper does for its *All Fast Mem* reference."""

    name = "all_fast"

    def tier_order_app(self, *, cpu: int = 0) -> List[str]:
        return ["fast", "slow"]

    def tier_order_kernel(self, otype, inode, *, covered: bool, cpu: int = 0) -> List[str]:
        return ["fast", "slow"]


class AllSlowMem(TieringPolicy):
    """Pessimistic bound: everything in slow memory (the Fig 4 baseline)."""

    name = "all_slow"

    def tier_order_app(self, *, cpu: int = 0) -> List[str]:
        return ["slow"]

    def tier_order_kernel(self, otype, inode, *, covered: bool, cpu: int = 0) -> List[str]:
        return ["slow"]


class NaivePolicy(TieringPolicy):
    """Greedy FCFS (Table 5's *Naive*).

    Fast memory fills first-come-first-served with whatever allocates —
    hot or cold, kernel or application. Nothing ever migrates, so fast
    memory only becomes available again when resident data is freed. Cold
    files therefore pollute fast memory for their entire lifetime, the
    pathology Fig 4 quantifies.
    """

    name = "naive"

    def tier_order_app(self, *, cpu: int = 0) -> List[str]:
        return ["fast", "slow"]

    def tier_order_kernel(self, otype, inode, *, covered: bool, cpu: int = 0) -> List[str]:
        return ["fast", "slow"]
