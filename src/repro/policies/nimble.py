"""Nimble and Nimble++ (Table 5).

*Nimble* (Yan et al., ASPLOS'19) tiers **application pages**: scan-based
hotness detection plus parallelized page copy. Like all the prior work
§3.2 surveys, it "allocates kernel objects entirely in slow memory" on
two-tier systems, and never migrates them.

*Nimble++* is the paper's strawman extension: the same scan machinery
also covers kernel objects, with fast-first allocation — but without the
KLOC abstraction. Its two structural handicaps (§6.2):

1. Hotness detection latency ≫ kernel object lifetime, so cold kernel
   objects linger in fast memory and hot ones die before promotion —
   "once kernel objects are evicted to slow memory, they rarely return".
2. Slab-family objects stay physically addressed (no KLOC allocation
   interface), so the scanner can classify them but never move them.
"""

from __future__ import annotations

from typing import List

from repro.mem.frame import PageOwner
from repro.policies.base import TieringPolicy
from repro.policies.lru_engine import LRUScanEngine


class NimblePolicy(TieringPolicy):
    """Application-page tiering only; kernel objects live in slow memory."""

    name = "nimble"

    def __init__(self) -> None:
        super().__init__()
        self.lru: LRUScanEngine = None  # type: ignore[assignment]

    def attach(self, kernel) -> None:
        super().attach(kernel)
        self.lru = LRUScanEngine(
            kernel,
            spec=kernel.platform.lru,
            owners={PageOwner.APP},
        )

    def start_daemons(self) -> None:
        self.lru.start()

    def tier_order_app(self, *, cpu: int = 0) -> List[str]:
        return ["fast", "slow"]

    def tier_order_kernel(self, otype, inode, *, covered: bool, cpu: int = 0) -> List[str]:
        # Prior art places kernel objects wholly in slow memory (§3.2).
        return ["slow", "fast"]


class NimblePlusPlusPolicy(TieringPolicy):
    """Nimble's scans extended to kernel objects, sans KLOC abstraction."""

    name = "nimble++"
    migrates_kernel_objects = True

    def __init__(self) -> None:
        super().__init__()
        self.lru: LRUScanEngine = None  # type: ignore[assignment]

    def attach(self, kernel) -> None:
        super().attach(kernel)
        # owners=None → the scanner walks application AND kernel pages.
        # Non-relocatable slab frames are classified but skipped by the
        # migration engine, mirroring reality.
        self.lru = LRUScanEngine(kernel, spec=kernel.platform.lru, owners=None)

    def start_daemons(self) -> None:
        self.lru.start()

    def tier_order_app(self, *, cpu: int = 0) -> List[str]:
        return ["fast", "slow"]

    def tier_order_kernel(self, otype, inode, *, covered: bool, cpu: int = 0) -> List[str]:
        # Kernel objects may start in fast memory...
        return ["fast", "slow"]
