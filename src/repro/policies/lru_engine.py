"""Scan-based LRU hotness engine — the machinery Nimble-family policies use.

§3.3's structural limit is encoded here: the scanner visits frames at a
finite rate (the paper measures one million pages ≈ 2 seconds), on a
periodic schedule. A kernel object whose lifetime is shorter than the
scan period is dead before the scanner can ever classify it — which is
exactly why Nimble++ "cannot adapt to changes in kernel object hotness
sufficiently rapidly" (§6.2) and why KLOCs short-circuit the scan.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Set, Tuple

from repro.core.config import LRUSpec
from repro.core.units import SEC
from repro.mem.frame import PageFrame, PageOwner
from repro.mem.topology import frame_index_enabled

if TYPE_CHECKING:
    from repro.kernel.kernel import Kernel


def _by_fid(frame: PageFrame) -> int:
    return frame.fid


class LRUScanEngine:
    """Periodic page-table-style scan + two-direction migration."""

    def __init__(
        self,
        kernel: "Kernel",
        *,
        spec: Optional[LRUSpec] = None,
        owners: Optional[Set[PageOwner]] = None,
        promote_owners: Optional[Set[PageOwner]] = None,
        demote_owners: Optional[Set[PageOwner]] = None,
        fast_tier: str = "fast",
        slow_tier: str = "slow",
        promote: bool = True,
        demote: bool = True,
        migrate_batch: int = 2048,
        free_watermark_frac: float = 0.04,
        use_index: Optional[bool] = None,
    ) -> None:
        self.kernel = kernel
        self.spec = spec or LRUSpec()
        #: Scan via the topology's resident-frame indexes (O(candidates))
        #: or the legacy global frame walk (O(all frames)). Decisions and
        #: simulated costs are bit-identical; None defers to the
        #: REPRO_NO_FRAME_INDEX environment knob.
        self.use_index = frame_index_enabled() if use_index is None else use_index
        #: Which owners each direction manages (None = all). ``owners``
        #: is shorthand that sets both. KLOCs uses an asymmetric split:
        #: promotion covers kernel pages too (referenced slow pages come
        #: up at page granularity), while scan-demotion stays app-only —
        #: kernel-object downgrades go through knode events instead.
        self.promote_owners = promote_owners if promote_owners is not None else owners
        self.demote_owners = demote_owners if demote_owners is not None else owners
        self.fast_tier = fast_tier
        self.slow_tier = slow_tier
        self.promote = promote
        self.demote = demote
        self.migrate_batch = migrate_batch
        #: kswapd-style watermark: demotion only runs to keep this much of
        #: fast memory free (plus room for pending promotions) — pages are
        #: not evicted from fast memory without pressure.
        self.free_watermark_frac = free_watermark_frac
        self.scans = 0
        self.pages_scanned = 0
        self.promoted = 0
        self.demoted = 0
        self._last_scan_ns = 0
        self._started = False

    def start(self) -> None:
        if self._started:
            return
        self.kernel.clock.schedule_periodic(self.spec.scan_period_ns, self.scan)
        self._started = True

    def _promotable(self, frame: PageFrame) -> bool:
        return self.promote_owners is None or frame.owner in self.promote_owners

    def _demotable(self, frame: PageFrame) -> bool:
        return self.demote_owners is None or frame.owner in self.demote_owners

    def scan_cost_ns(self, npages: int) -> int:
        """Wall time to visit ``npages`` at the measured scan rate."""
        return int(npages / self.spec.scan_pages_per_second * SEC)

    def _collect_brute_force(self) -> Tuple[List[PageFrame], List[PageFrame], int]:
        """The legacy O(all frames) walk — the equivalence baseline."""
        demote_candidates: List[PageFrame] = []
        promote_candidates: List[PageFrame] = []
        visited = 0
        for frame in list(self.kernel.topology.frames.values()):
            if not frame.live:
                continue
            visited += 1
            referenced = frame.last_access >= self._last_scan_ns
            if frame.tier_name == self.fast_tier:
                if referenced:
                    frame.lru_age = 0
                elif self._demotable(frame):
                    frame.lru_age += 1
                    if frame.lru_age >= self.spec.cold_age_rounds:
                        demote_candidates.append(frame)
            elif frame.tier_name == self.slow_tier:
                # Two-touch activation (Linux's referenced/active bits):
                # a page must be referenced in consecutive scan windows to
                # earn promotion, so touch-once streams stay in slow memory.
                frame.scan_ref_streak = frame.scan_ref_streak + 1 if referenced else 0
                if (
                    frame.scan_ref_streak >= 2
                    and frame.relocatable
                    and self._promotable(frame)
                ):
                    promote_candidates.append(frame)
        return demote_candidates, promote_candidates, visited

    def _collect_indexed(self) -> Tuple[List[PageFrame], List[PageFrame], int]:
        """O(candidates) collection via the resident-frame indexes.

        Equivalence with the brute-force walk rests on three facts:

        * a *referenced* fast-tier frame already has ``lru_age == 0``
          (``record_access`` reset it), so only unreferenced demotable
          residents can change state — age exactly those;
        * the referenced journal is a superset of the slow-tier frames the
          walk would see as referenced (accesses and allocations both
          enroll), and unreferenced slow frames only ever have their
          streak reset — done lazily via ``scan_ref_round``;
        * candidates are re-sorted by fid, restoring the walk's encounter
          order before THP expansion / truncation / the stable age sort.
        """
        topo = self.kernel.topology
        mark = self._last_scan_ns
        cold_rounds = self.spec.cold_age_rounds

        demote_candidates: List[PageFrame] = []
        if self.demote_owners is None:
            demotable = topo.resident_frames(self.fast_tier).values()
        else:
            demotable = [
                frame
                for owner in self.demote_owners
                for frame in topo.resident_frames_by_owner(
                    self.fast_tier, owner
                ).values()
            ]
        for frame in demotable:
            if frame.last_access >= mark:
                continue
            frame.lru_age += 1
            if frame.lru_age >= cold_rounds:
                demote_candidates.append(frame)
        demote_candidates.sort(key=_by_fid)

        promote_candidates: List[PageFrame] = []
        round_no = self.scans
        slow_tier = self.slow_tier
        for frame in topo.drain_referenced():
            if frame.tier_name != slow_tier or frame.last_access < mark:
                continue
            # Lazy two-touch streak: consecutive-window participation is
            # tracked by the round stamp instead of eagerly zeroing every
            # untouched slow frame each scan.
            if frame.scan_ref_round == round_no - 1:
                frame.scan_ref_streak += 1
            else:
                frame.scan_ref_streak = 1
            frame.scan_ref_round = round_no
            if (
                frame.scan_ref_streak >= 2
                and frame.relocatable
                and self._promotable(frame)
            ):
                promote_candidates.append(frame)
        promote_candidates.sort(key=_by_fid)

        # The *simulated* scan still visits every live frame (§3.3's rate
        # is the point of the model); only the host-side walk is indexed.
        return demote_candidates, promote_candidates, len(topo.frames)

    def scan(self, now_ns: int = 0) -> dict:
        """One scan round: age pages, then migrate hot/cold candidates."""
        now = now_ns or self.kernel.clock.now()
        self.scans += 1
        if self.use_index:
            demote_candidates, promote_candidates, visited = self._collect_indexed()
        else:
            demote_candidates, promote_candidates, visited = (
                self._collect_brute_force()
            )

        self.pages_scanned += visited
        # The scan itself burns a CPU at the measured rate (§3.3): charge
        # it as background work spread across the machine's cores.
        self.kernel.background_cpu_work(self.scan_cost_ns(visited))

        # THP handling: compound groups move whole-or-not-at-all, and a
        # single referenced member keeps the entire group resident.
        thp = getattr(self.kernel, "thp", None)
        if thp is not None and demote_candidates:
            demote_candidates = [
                f
                for f in thp.expand(demote_candidates)
                if f.compound_id is None
                or not thp.group_recently_referenced(
                    f.compound_id, self._last_scan_ns
                )
            ]
        if thp is not None and promote_candidates:
            promote_candidates = thp.expand(promote_candidates)

        demoted = promoted = 0
        fast = self.kernel.topology.tier(self.fast_tier)
        if self.demote and demote_candidates:
            # Demote only under pressure: enough to restore the free
            # watermark and admit this round's promotions, coldest first.
            watermark = int(fast.capacity_pages * self.free_watermark_frac)
            wanted = len(promote_candidates) if self.promote else 0
            need = min(
                max(0, watermark + wanted - fast.free_pages), self.migrate_batch
            )
            if need:
                demote_candidates.sort(key=lambda f: -f.lru_age)
                result = self.kernel.engine.migrate(
                    demote_candidates[:need], self.slow_tier, charge_time=False
                )
                self.kernel.background_cpu_work(result.cost_ns)
                demoted = result.moved
        if self.promote and promote_candidates:
            room = max(0, fast.free_pages)
            result = self.kernel.engine.migrate(
                promote_candidates[: min(room, self.migrate_batch)],
                self.fast_tier,
                charge_time=False,
            )
            self.kernel.background_cpu_work(result.cost_ns)
            promoted = result.moved
        self.promoted += promoted
        self.demoted += demoted
        self._last_scan_ns = now
        return {"scanned": visited, "demoted": demoted, "promoted": promoted}

    def __repr__(self) -> str:
        return (
            f"LRUScanEngine(scans={self.scans}, demoted={self.demoted}, "
            f"promoted={self.promoted})"
        )
