"""The tiering-policy protocol.

A policy answers three questions the kernel asks on its hot paths —
*where do application pages go*, *where do kernel objects go*, and *is
this allocation under KLOC management* — and may register background
daemons (LRU scans, migration threads) when attached.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

if TYPE_CHECKING:
    from repro.core.objtypes import KernelObjectType
    from repro.kernel.kernel import Kernel
    from repro.kloc.knode import Knode
    from repro.vfs.inode import Inode


class TieringPolicy:
    """Base class with the no-op defaults every strategy refines."""

    name = "base"
    #: Run the KlocManager hooks (knodes, kmap, per-CPU lists)?
    uses_kloc = False
    #: Redirect covered slab allocation sites to the relocatable KLOC
    #: allocation interface?
    uses_kloc_interface = False
    #: Does this policy migrate kernel objects at all?
    migrates_kernel_objects = False
    #: Is this an Optane/NUMA-mode policy (placement by node, not tier)?
    numa_mode = False
    #: Fill skbuffs' 8-byte socket field in the driver (§4.2.3)? Defaults
    #: to following uses_kloc; ideal bounds enable it explicitly.
    early_demux: Optional[bool] = None

    def __init__(self) -> None:
        self.kernel: Optional["Kernel"] = None

    def attach(self, kernel: "Kernel") -> None:
        """Bind to a kernel instance; called once during kernel setup."""
        self.kernel = kernel

    def start_daemons(self) -> None:
        """Register periodic work on the kernel's clock (default: none)."""

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------

    def tier_order_app(self, *, cpu: int = 0) -> List[str]:
        """Allocation order for application pages."""
        return ["fast", "slow"]

    def tier_order_kernel(
        self,
        otype: "KernelObjectType",
        inode: Optional["Inode"],
        *,
        covered: bool,
        cpu: int = 0,
    ) -> List[str]:
        """Allocation order for a kernel object.

        ``covered`` is True when the object type is inside the KLOC
        registry's coverage *and* the policy uses KLOCs.
        """
        return ["fast", "slow"]

    # ------------------------------------------------------------------
    # event hooks
    # ------------------------------------------------------------------

    def on_knode_inactive(self, knode: "Knode") -> None:
        """A file/socket closed its last handle (KLOC policies act here)."""

    def on_knode_active(self, knode: "Knode") -> None:
        """A closed file/socket was reopened."""

    def on_prefetch(self, inode: "Inode", npages: int) -> None:
        """The readahead engine prefetched data pages of this inode."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
