"""The six simlint rules.

Each rule is a small AST pass encoding one contract the simulator's
correctness rests on (see ``docs/ANALYSIS.md`` for the catalog with
examples and rationale):

``determinism``
    all randomness/wall-clock flows through ``repro.core.rng`` and
    ``repro.core.clock``; nothing else imports ``random``/``time``/
    ``uuid``/``secrets`` or calls ``os.urandom``.
``hash-order``
    no hash-order-dependent construct may feed ordered results:
    iterating a set (or a set-valued mapping entry) into a loop, list or
    tuple, and ``key=id`` sorts, are flagged.
``env-knob``
    ``os.environ``/``os.getenv`` may be touched only at module level, in
    ``__init__``, or in a function marked ``# simlint: config-site`` —
    the result cache keys on construction-time configuration, so
    mid-run reads are cache-poisoning bugs.
``hotpath``
    functions registered via :func:`repro.core.hotpath.hot` must stay
    allocation-free: no closures/lambdas/comprehensions, no recursion,
    and every callee on :data:`repro.core.hotpath.HOT_CALLEE_WHITELIST`
    (calls inside ``raise`` statements are exempt — error paths are
    cold by definition).
``counter-balance``
    incrementally maintained counters must balance: paired monotonic
    counters (created/deleted, allocs/frees) both move in any module
    that moves one, up/down counters have a decrement wherever they
    have an increment, and metadata-bearing growth sites sample the
    peak in the same function.
``snapshot-path``
    simulator state is (de)serialized only by :mod:`repro.snapshot`,
    the audited snapshot path; direct ``pickle``/``marshal``/``dill``
    imports and ``copy.deepcopy`` calls anywhere else are flagged.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.simlint.engine import Rule, SourceFile, Violation

# ---------------------------------------------------------------------------
# shared helpers
# ---------------------------------------------------------------------------


def _enclosing_functions(
    tree: ast.AST,
) -> Dict[ast.AST, Tuple[ast.FunctionDef, ...]]:
    """Map every node to its chain of enclosing function defs (outermost
    first). Module-level nodes map to an empty tuple."""
    out: Dict[ast.AST, Tuple[ast.FunctionDef, ...]] = {}

    def walk(node: ast.AST, stack: Tuple[ast.FunctionDef, ...]) -> None:
        for child in ast.iter_child_nodes(node):
            out[child] = stack
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                walk(child, stack + (child,))
            else:
                walk(child, stack)

    out[tree] = ()
    walk(tree, ())
    return out


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _self_attr(node: ast.AST) -> Optional[str]:
    """``x`` for ``self.x``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


# ---------------------------------------------------------------------------
# determinism
# ---------------------------------------------------------------------------


class DeterminismRule(Rule):
    """Nondeterminism sources outside the sanctioned core modules."""

    id = "determinism"
    description = (
        "randomness/wall-clock only via repro.core.rng and repro.core.clock"
    )

    #: Importing these anywhere else is a determinism hazard.
    BANNED_MODULES = {"random", "uuid", "secrets", "time"}
    #: ``module name`` → attribute calls banned on it. ``"*"`` bans all.
    BANNED_CALLS: Dict[str, Set[str]] = {
        "os": {"urandom", "getrandom"},
        "random": {"*"},
        "uuid": {"*"},
        "secrets": {"*"},
        "time": {"*"},
        "datetime": {"now", "utcnow", "today"},
    }
    #: Modules allowed to wrap the entropy/clock primitives.
    ALLOWED_MODULES = {"repro.core.rng", "repro.core.clock"}

    def check(self, src: SourceFile) -> Iterator[Violation]:
        if src.module_name in self.ALLOWED_MODULES:
            return
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in self.BANNED_MODULES:
                        yield self.violation(
                            src,
                            node,
                            f"import of {alias.name!r}: randomness and "
                            f"wall-clock must flow through repro.core.rng / "
                            f"repro.core.clock",
                        )
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".")[0]
                if root in self.BANNED_MODULES:
                    yield self.violation(
                        src,
                        node,
                        f"import from {node.module!r}: randomness and "
                        f"wall-clock must flow through repro.core.rng / "
                        f"repro.core.clock",
                    )
            elif isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute) and isinstance(
                    func.value, ast.Name
                ):
                    banned = self.BANNED_CALLS.get(func.value.id)
                    if banned and ("*" in banned or func.attr in banned):
                        yield self.violation(
                            src,
                            node,
                            f"call to {func.value.id}.{func.attr}(): "
                            f"nondeterministic source outside "
                            f"repro.core.rng / repro.core.clock",
                        )


# ---------------------------------------------------------------------------
# hash-order
# ---------------------------------------------------------------------------


def _ann_is_set(ann: str) -> bool:
    ann = ann.strip()
    if ann.startswith("Optional[") and ann.endswith("]"):
        ann = ann[len("Optional[") : -1].strip()
    return ann.split("[")[0] in {"Set", "set", "FrozenSet", "frozenset"}


def _ann_is_set_valued_mapping(ann: str) -> bool:
    ann = ann.strip()
    if ann.startswith("Optional[") and ann.endswith("]"):
        ann = ann[len("Optional[") : -1].strip()
    head, _, rest = ann.partition("[")
    if head not in {"Dict", "dict", "DefaultDict", "defaultdict", "Mapping"}:
        return False
    # Value type is everything after the first top-level comma.
    depth = 0
    for i, ch in enumerate(rest):
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        elif ch == "," and depth == 0:
            return _ann_is_set(rest[i + 1 :].rstrip("]").strip())
    return False


class HashOrderRule(Rule):
    """Hash-order-dependent constructs feeding ordered results."""

    id = "hash-order"
    description = "no set iteration into ordered results; no id()-keyed sorts"

    def check(self, src: SourceFile) -> Iterator[Violation]:
        set_names: Set[str] = set()  # plain names known set-typed
        set_attrs: Set[str] = set()  # self.X known set-typed
        map_attrs: Set[str] = set()  # self.X: Dict[..., Set[...]]

        # Pass 1: collect set-typed bindings from annotations/assignments.
        for node in ast.walk(src.tree):
            if isinstance(node, ast.AnnAssign):
                ann = ast.unparse(node.annotation)
                target = node.target
                if _ann_is_set(ann):
                    if isinstance(target, ast.Name):
                        set_names.add(target.id)
                    elif _self_attr(target):
                        set_attrs.add(_self_attr(target) or "")
                elif _ann_is_set_valued_mapping(ann):
                    if isinstance(target, ast.Name):
                        # Module-level mapping-of-sets: track name itself.
                        set_names.add(target.id)
                    elif _self_attr(target):
                        map_attrs.add(_self_attr(target) or "")
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                value = node.value
                is_set_value = isinstance(value, ast.Set) or (
                    isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Name)
                    and value.func.id in {"set", "frozenset"}
                )
                # ``x = self._map.get(k)`` / ``.pop(k)`` on a tracked
                # set-valued mapping binds a set too.
                is_map_entry = (
                    isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Attribute)
                    and value.func.attr in {"get", "pop"}
                    and _self_attr(value.func.value) in map_attrs
                )
                if is_set_value or is_map_entry:
                    target = node.targets[0]
                    if isinstance(target, ast.Name):
                        set_names.add(target.id)
                    elif _self_attr(target):
                        set_attrs.add(_self_attr(target) or "")

        def describe_set_expr(expr: ast.AST) -> Optional[str]:
            """A human label when ``expr`` is known set-typed, else None."""
            if isinstance(expr, ast.Set):
                return "a set literal"
            if isinstance(expr, ast.Call):
                func = expr.func
                if isinstance(func, ast.Name) and func.id in {
                    "set",
                    "frozenset",
                }:
                    return f"a {func.id}() result"
                if isinstance(func, ast.Attribute) and func.attr in {
                    "get",
                    "pop",
                }:
                    attr = _self_attr(func.value)
                    if attr in map_attrs:
                        return f"a set entry of self.{attr}"
                if isinstance(func, ast.Attribute) and func.attr == "values":
                    attr = _self_attr(func.value)
                    if attr in map_attrs:
                        return f"the set values of self.{attr}"
            if isinstance(expr, ast.Name) and expr.id in set_names:
                return f"set {expr.id!r}"
            attr = _self_attr(expr)
            if attr is not None:
                if attr in set_attrs:
                    return f"set self.{attr}"
                if attr in map_attrs:
                    return f"set-valued mapping self.{attr}"
            if isinstance(expr, ast.Subscript):
                attr = _self_attr(expr.value)
                if attr in map_attrs:
                    return f"a set entry of self.{attr}"
            return None

        # Pass 2: flag ordered consumption of set-typed expressions.
        for node in ast.walk(src.tree):
            if isinstance(node, ast.For):
                label = describe_set_expr(node.iter)
                if label:
                    yield self.violation(
                        src,
                        node,
                        f"for-loop iterates {label}: iteration order is "
                        f"hash/address-dependent; sort or use an ordered "
                        f"container",
                    )
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                for gen in node.generators:
                    label = describe_set_expr(gen.iter)
                    if label:
                        yield self.violation(
                            src,
                            node,
                            f"comprehension iterates {label}: iteration "
                            f"order is hash/address-dependent; sort or use "
                            f"an ordered container",
                        )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Name)
                    and func.id in {"list", "tuple"}
                    and len(node.args) == 1
                ):
                    label = describe_set_expr(node.args[0])
                    if label:
                        yield self.violation(
                            src,
                            node,
                            f"{func.id}() materializes {label} in hash/"
                            f"address order; sort first",
                        )
                # ``sorted(xs, key=id)`` / ``xs.sort(key=id)``
                is_sortish = (
                    isinstance(func, ast.Name) and func.id == "sorted"
                ) or (isinstance(func, ast.Attribute) and func.attr == "sort")
                if is_sortish:
                    for kw in node.keywords:
                        if (
                            kw.arg == "key"
                            and isinstance(kw.value, ast.Name)
                            and kw.value.id == "id"
                        ):
                            yield self.violation(
                                src,
                                node,
                                "sort keyed on id(): object addresses vary "
                                "run to run; key on a stable field",
                            )


# ---------------------------------------------------------------------------
# env-knob
# ---------------------------------------------------------------------------


class EnvKnobRule(Rule):
    """Environment knobs read only at construction/config sites."""

    id = "env-knob"
    description = (
        "os.environ / os.getenv only at module level, __init__, or "
        "config-site-marked functions"
    )

    ALLOWED_FUNCTION_NAMES = {"__init__", "__post_init__"}

    def check(self, src: SourceFile) -> Iterator[Violation]:
        enclosing = _enclosing_functions(src.tree)
        for node in ast.walk(src.tree):
            use: Optional[str] = None
            if _dotted(node) == "os.environ":
                use = "os.environ"
            elif (
                isinstance(node, ast.Call) and _dotted(node.func) == "os.getenv"
            ):
                use = "os.getenv()"
            if use is None:
                continue
            chain = enclosing.get(node, ())
            if not chain:
                continue  # module level: import-time configuration
            if any(f.name in self.ALLOWED_FUNCTION_NAMES for f in chain):
                continue
            if any(src.is_config_site(f) for f in chain):
                continue
            yield self.violation(
                src,
                node,
                f"{use} read in {chain[-1].name}(): REPRO_* knobs are part "
                f"of the cache key and must be read at construction time — "
                f"hoist to __init__ or mark the function "
                f"'# simlint: config-site'",
            )


# ---------------------------------------------------------------------------
# hotpath
# ---------------------------------------------------------------------------


class HotPathRule(Rule):
    """``@hot`` functions stay allocation-free and whitelist-bound."""

    id = "hotpath"
    description = (
        "@hot functions: no closures/comprehensions/recursion; callees on "
        "HOT_CALLEE_WHITELIST"
    )

    def __init__(self, whitelist: Optional[Set[str]] = None) -> None:
        if whitelist is None:
            from repro.core.hotpath import HOT_CALLEE_WHITELIST

            whitelist = HOT_CALLEE_WHITELIST
        self.whitelist = whitelist

    @staticmethod
    def _is_hot(fn: ast.FunctionDef) -> bool:
        for dec in fn.decorator_list:
            if isinstance(dec, ast.Name) and dec.id == "hot":
                return True
            if isinstance(dec, ast.Attribute) and dec.attr == "hot":
                return True
        return False

    def check(self, src: SourceFile) -> Iterator[Violation]:
        for node in ast.walk(src.tree):
            if isinstance(node, ast.FunctionDef) and self._is_hot(node):
                yield from self._check_function(src, node)

    def _check_function(
        self, src: SourceFile, fn: ast.FunctionDef
    ) -> Iterator[Violation]:
        # Calls under a ``raise`` build the error being thrown — the path
        # is cold by definition, so exempt the whole subtree.
        in_raise: Set[ast.AST] = set()
        for node in ast.walk(fn):
            if isinstance(node, ast.Raise):
                in_raise.update(ast.walk(node))

        for node in ast.walk(fn):
            if node is fn:
                continue
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield self.violation(
                    src,
                    node,
                    f"@hot {fn.name}() defines nested function "
                    f"{node.name}(): closure objects allocate per call",
                )
            elif isinstance(node, ast.Lambda):
                yield self.violation(
                    src,
                    node,
                    f"@hot {fn.name}() builds a lambda: closure objects "
                    f"allocate per call",
                )
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ) and node not in in_raise:
                kind = type(node).__name__
                yield self.violation(
                    src,
                    node,
                    f"@hot {fn.name}() contains a {kind}: comprehensions "
                    f"allocate a new frame and container per call",
                )
            elif isinstance(node, ast.Call) and node not in in_raise:
                func = node.func
                if isinstance(func, ast.Name):
                    if func.id == fn.name:
                        yield self.violation(
                            src,
                            node,
                            f"@hot {fn.name}() recurses into itself: hot "
                            f"paths must be iterative",
                        )
                    elif func.id not in self.whitelist:
                        yield self.violation(
                            src,
                            node,
                            f"@hot {fn.name}() calls {func.id}() which is "
                            f"not on HOT_CALLEE_WHITELIST — inline it or "
                            f"whitelist it in repro.core.hotpath",
                        )
                elif isinstance(func, ast.Attribute):
                    # Only ``self.<name>()`` is self-recursion; a same-named
                    # method on another object (``self.topology.free()``
                    # inside ``free()``) is a plain whitelisted callee.
                    if (
                        func.attr == fn.name
                        and isinstance(func.value, ast.Name)
                        and func.value.id == "self"
                    ):
                        yield self.violation(
                            src,
                            node,
                            f"@hot {fn.name}() recurses into itself: hot "
                            f"paths must be iterative",
                        )
                    elif func.attr not in self.whitelist:
                        yield self.violation(
                            src,
                            node,
                            f"@hot {fn.name}() calls .{func.attr}() which "
                            f"is not on HOT_CALLEE_WHITELIST — inline it or "
                            f"whitelist it in repro.core.hotpath",
                        )
                else:
                    yield self.violation(
                        src,
                        node,
                        f"@hot {fn.name}() makes an indirect call "
                        f"(computed callee): hot-path callees must be "
                        f"statically auditable",
                    )


# ---------------------------------------------------------------------------
# counter-balance
# ---------------------------------------------------------------------------


class CounterBalanceRule(Rule):
    """Incremental counters balance; metadata growth samples the peak."""

    id = "counter-balance"
    description = (
        "paired counters both move per module; up/down counters have both "
        "directions; metadata growth sites sample the peak"
    )

    #: Monotonic pair: a module bumping the left must bump the right.
    PAIRED: Dict[str, str] = {
        "knodes_created": "knodes_deleted",
        "total_allocs": "total_frees",
    }
    #: Up/down counters: a module with ``+=`` needs a ``-=``.
    SELF_BALANCED: Set[str] = {
        "_tracked_objects",
        "total_entries",
        "used_pages",
        "_size",
        "node_count",
    }
    #: Counters that feed metadata_bytes: every growth site's enclosing
    #: function must sample the peak (call ``_note_metadata`` or touch a
    #: ``*peak*`` attribute).
    PEAK_SAMPLED: Set[str] = {
        "knodes_created",
        "_tracked_objects",
        "total_allocs",
        "total_entries",
    }

    @staticmethod
    def _samples_peak(fn: ast.FunctionDef) -> bool:
        for node in ast.walk(fn):
            if isinstance(node, ast.Call):
                name = None
                if isinstance(node.func, ast.Name):
                    name = node.func.id
                elif isinstance(node.func, ast.Attribute):
                    name = node.func.attr
                if name == "_note_metadata":
                    return True
            if isinstance(node, ast.Attribute) and "peak" in node.attr:
                return True
        return False

    def check(self, src: SourceFile) -> Iterator[Violation]:
        enclosing = _enclosing_functions(src.tree)
        # attr → op ("+" / "-") → first AugAssign node seen.
        sites: Dict[str, Dict[str, ast.AugAssign]] = {}
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.AugAssign):
                continue
            attr = _self_attr(node.target)
            if attr is None:
                continue
            if isinstance(node.op, ast.Add):
                op = "+"
            elif isinstance(node.op, ast.Sub):
                op = "-"
            else:
                continue
            sites.setdefault(attr, {}).setdefault(op, node)

            # Peak-sampling check is per growth site.
            if op == "+" and attr in self.PEAK_SAMPLED:
                chain = enclosing.get(node, ())
                if chain and not any(self._samples_peak(f) for f in chain):
                    yield self.violation(
                        src,
                        node,
                        f"metadata counter {attr} grows in "
                        f"{chain[-1].name}() without a peak sample — call "
                        f"_note_metadata() or update the peak watermark in "
                        f"the same function",
                    )

        for inc, dec in self.PAIRED.items():
            inc_site = sites.get(inc, {}).get("+")
            if inc_site is not None and "+" not in sites.get(dec, {}):
                yield self.violation(
                    src,
                    inc_site,
                    f"counter {inc} is incremented here but its pair {dec} "
                    f"never moves in this module — the balance "
                    f"({inc} - {dec}) can only grow",
                )

        for attr in self.SELF_BALANCED:
            ops = sites.get(attr, {})
            if "+" in ops and "-" not in ops:
                yield self.violation(
                    src,
                    ops["+"],
                    f"up/down counter {attr} is incremented in this module "
                    f"but never decremented — growth sites need matching "
                    f"shrink sites",
                )


# ---------------------------------------------------------------------------
# snapshot-path
# ---------------------------------------------------------------------------


class SnapshotPathRule(Rule):
    """Ad-hoc serialization of simulator state outside ``repro.snapshot``.

    Snapshots must be byte-identical across processes and sessions, so
    every (de)serialization of live kernel state goes through the one
    audited module. A stray ``pickle.dumps`` elsewhere silently forks the
    contract: it won't share the recursion-limit guard, the format
    header, or the restore-time validation, and deep copies of kernel
    graphs (``copy.deepcopy``) split shared references that the snapshot
    path is careful to preserve.
    """

    id = "snapshot-path"
    description = (
        "pickle/deepcopy/marshal only inside repro.snapshot (the blessed "
        "serialization path)"
    )

    #: Importing these anywhere else is an ad-hoc serialization hazard.
    BANNED_MODULES = {"pickle", "cPickle", "marshal", "dill", "shelve"}
    #: Prefix owning the blessed path.
    ALLOWED_PREFIX = "repro.snapshot"

    def _allowed(self, src: SourceFile) -> bool:
        name = src.module_name
        return name == self.ALLOWED_PREFIX or name.startswith(
            self.ALLOWED_PREFIX + "."
        )

    def check(self, src: SourceFile) -> Iterator[Violation]:
        if self._allowed(src):
            return
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in self.BANNED_MODULES:
                        yield self.violation(
                            src,
                            node,
                            f"import of {alias.name!r}: serialization of "
                            f"simulator state must go through repro.snapshot",
                        )
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".")[0]
                if root in self.BANNED_MODULES:
                    yield self.violation(
                        src,
                        node,
                        f"import from {node.module!r}: serialization of "
                        f"simulator state must go through repro.snapshot",
                    )
                elif root == "copy" and any(
                    alias.name == "deepcopy" for alias in node.names
                ):
                    yield self.violation(
                        src,
                        node,
                        "import of copy.deepcopy: deep-copying kernel state "
                        "splits shared references — snapshot via "
                        "repro.snapshot instead",
                    )
            elif isinstance(node, ast.Call):
                dotted = _dotted(node.func)
                if dotted == "copy.deepcopy" or dotted == "deepcopy":
                    yield self.violation(
                        src,
                        node,
                        "call to deepcopy(): deep-copying kernel state "
                        "splits shared references — snapshot via "
                        "repro.snapshot instead",
                    )


#: Registry consumed by the CLI and the engine's default path.
DEFAULT_RULES: Sequence[Rule] = (
    DeterminismRule(),
    HashOrderRule(),
    EnvKnobRule(),
    HotPathRule(),
    CounterBalanceRule(),
    SnapshotPathRule(),
)
