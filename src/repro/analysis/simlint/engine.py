"""simlint engine: source loading, suppression comments, rule protocol.

simlint is the repository's determinism/hot-path lint: a small set of
AST rules (:mod:`repro.analysis.simlint.rules`) that encode the
contracts the fast paths rest on — all randomness through
``repro.core.rng``, env knobs read at construction only, ``@hot``
functions allocation-free, incremental counters balanced. The engine is
deliberately tiny: one pass of ``ast.parse`` per file, rules are plain
visitors, and everything is pure so the lint itself is deterministic.

Suppression syntax (checked on the flagged line or the line above)::

    foo = time.perf_counter()  # simlint: ok[determinism] host-side timing

    # simlint: ok[hash-order] deletions commute; order cannot leak
    for cpu in holders:
        ...

Several ids may be listed: ``# simlint: ok[determinism, env-knob]``.
A function may be declared a legitimate environment-knob read site by
putting ``# simlint: config-site`` on its ``def`` (or decorator) line —
see :class:`~repro.analysis.simlint.rules.EnvKnobRule`.
"""

from __future__ import annotations

import ast
import dataclasses
import re
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

#: ``# simlint: ok[rule-a, rule-b] optional reason``
SUPPRESS_RE = re.compile(r"#\s*simlint:\s*ok\[([a-z0-9_,\s-]+)\]")
#: ``# simlint: config-site`` — marks a def as an env-knob read site.
CONFIG_SITE_RE = re.compile(r"#\s*simlint:\s*config-site\b")


@dataclasses.dataclass(frozen=True)
class Violation:
    """One finding: where, which rule, and what went wrong."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"


class SourceFile:
    """A parsed module plus its suppression/config-site comment maps."""

    def __init__(self, path: str, text: str) -> None:
        self.path = path
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=path)
        #: line number → rule ids suppressed on that line.
        self.suppressions: Dict[int, Set[str]] = {}
        #: lines carrying a ``config-site`` marker.
        self.config_site_lines: Set[int] = set()
        for lineno, line in enumerate(self.lines, start=1):
            match = SUPPRESS_RE.search(line)
            if match:
                ids = {part.strip() for part in match.group(1).split(",")}
                self.suppressions[lineno] = {i for i in ids if i}
            if CONFIG_SITE_RE.search(line):
                self.config_site_lines.add(lineno)

    @property
    def module_name(self) -> str:
        """Dotted module path (best effort: the tail after ``src/``)."""
        parts = Path(self.path).with_suffix("").parts
        if "src" in parts:
            parts = parts[parts.index("src") + 1 :]
        elif "repro" in parts:
            parts = parts[parts.index("repro") :]
        if parts and parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts)

    def is_suppressed(self, rule_id: str, lineno: int) -> bool:
        """True when the line (or the one above it) suppresses the rule."""
        for line in (lineno, lineno - 1):
            if rule_id in self.suppressions.get(line, ()):
                return True
        return False

    def is_config_site(self, node: ast.AST) -> bool:
        """True when a def carries the ``config-site`` marker on its
        ``def`` line or any decorator line."""
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return False
        first = min(
            [node.lineno] + [d.lineno for d in node.decorator_list]
        )
        body_start = node.body[0].lineno if node.body else node.lineno + 1
        return any(
            line in self.config_site_lines for line in range(first, body_start + 1)
        )


class Rule:
    """Base class: one pluggable lint rule.

    Subclasses set :attr:`id`/:attr:`description` and implement
    :meth:`check` yielding raw findings; the engine applies suppression
    filtering, so rules never need to know about comments.
    """

    id: str = "abstract"
    description: str = ""

    def check(self, src: SourceFile) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(self, src: SourceFile, node: ast.AST, message: str) -> Violation:
        return Violation(
            path=src.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.id,
            message=message,
        )


def iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``.py`` files."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path
        else:
            raise FileNotFoundError(f"not a python file or directory: {raw}")


def lint_source(
    text: str, *, path: str = "<string>", rules: Sequence[Rule]
) -> List[Violation]:
    """Lint one source string; returns suppression-filtered violations."""
    src = SourceFile(path, text)
    out: List[Violation] = []
    for rule in rules:
        for violation in rule.check(src):
            if not src.is_suppressed(rule.id, violation.line):
                out.append(violation)
    out.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return out


def lint_paths(
    paths: Sequence[str], *, rules: Optional[Sequence[Rule]] = None
) -> List[Violation]:
    """Lint every ``.py`` file under ``paths`` with the given rules
    (default: the full registry)."""
    if rules is None:
        from repro.analysis.simlint.rules import DEFAULT_RULES

        rules = DEFAULT_RULES
    out: List[Violation] = []
    for path in iter_python_files(paths):
        text = path.read_text(encoding="utf-8")
        out.extend(lint_source(text, path=str(path), rules=rules))
    return out


def format_report(violations: Iterable[Violation]) -> str:
    return "\n".join(v.format() for v in violations)
