"""simlint: the repository's determinism/hot-path static analysis.

Run it as ``python -m repro.analysis src/``; see
:mod:`repro.analysis.simlint.engine` for the suppression syntax and
:mod:`repro.analysis.simlint.rules` for the rule catalog (documented in
``docs/ANALYSIS.md``).
"""

from repro.analysis.simlint.engine import (
    Rule,
    SourceFile,
    Violation,
    format_report,
    lint_paths,
    lint_source,
)
from repro.analysis.simlint.rules import (
    DEFAULT_RULES,
    CounterBalanceRule,
    DeterminismRule,
    EnvKnobRule,
    HashOrderRule,
    HotPathRule,
    SnapshotPathRule,
)

__all__ = [
    "Rule",
    "SourceFile",
    "Violation",
    "lint_source",
    "lint_paths",
    "format_report",
    "DEFAULT_RULES",
    "DeterminismRule",
    "HashOrderRule",
    "EnvKnobRule",
    "HotPathRule",
    "CounterBalanceRule",
    "SnapshotPathRule",
]
