"""Generic parameter sweeps over the two-tier platform.

Fig 6 is one fixed sweep; this utility exposes the same machinery for
arbitrary grids — any combination of policies, bandwidth ratios, fast
capacities, scale factors, and seeds — with CSV export for offline
plotting. Used by downstream studies that want sensitivity curves the
paper didn't draw.
"""

from __future__ import annotations

import csv
import itertools
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.experiments.cache import two_tier_spec
from repro.experiments.parallel import run_specs
from repro.metrics.report import format_table

#: Grid keys forwarded to :func:`run_two_tier`.
SWEEPABLE = ("bandwidth_ratio", "fast_bytes_paper", "scale_factor", "run_seed")


@dataclass
class SweepRow:
    """One (workload, policy, grid-point) measurement."""

    workload: str
    policy: str
    params: Dict[str, Any]
    throughput: float
    fast_ref_fraction: float
    migrations_down: int
    migrations_up: int

    def as_record(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "workload": self.workload,
            "policy": self.policy,
            "throughput": self.throughput,
            "fast_ref_fraction": self.fast_ref_fraction,
            "migrations_down": self.migrations_down,
            "migrations_up": self.migrations_up,
        }
        record.update(self.params)
        return record


@dataclass
class SweepResult:
    rows: List[SweepRow] = field(default_factory=list)

    def filter(self, *, workload: Optional[str] = None, policy: Optional[str] = None) -> List[SweepRow]:
        return [
            r
            for r in self.rows
            if (workload is None or r.workload == workload)
            and (policy is None or r.policy == policy)
        ]

    def best(self, *, workload: Optional[str] = None) -> SweepRow:
        """Highest-throughput row (optionally within one workload)."""
        candidates = self.filter(workload=workload)
        if not candidates:
            raise ValueError("no rows match")
        return max(candidates, key=lambda r: r.throughput)

    def speedup(self, row: SweepRow, baseline_policy: str) -> float:
        """Row throughput over the same grid-point baseline policy."""
        for base in self.rows:
            if (
                base.workload == row.workload
                and base.policy == baseline_policy
                and base.params == row.params
            ):
                return row.throughput / base.throughput
        raise ValueError(
            f"no {baseline_policy!r} baseline at {row.params} for {row.workload}"
        )

    def to_csv(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        if not self.rows:
            raise ValueError("empty sweep")
        path.parent.mkdir(parents=True, exist_ok=True)
        records = [r.as_record() for r in self.rows]
        fieldnames = list(records[0])
        with path.open("w", newline="") as fh:
            writer = csv.DictWriter(fh, fieldnames=fieldnames)
            writer.writeheader()
            writer.writerows(records)
        return path

    def format_report(self) -> str:
        if not self.rows:
            return "(empty sweep)"
        param_keys = sorted({k for r in self.rows for k in r.params})
        return format_table(
            ["workload", "policy"] + param_keys + ["tput", "fast_ref"],
            [
                [r.workload, r.policy]
                + [r.params.get(k, "") for k in param_keys]
                + [r.throughput, r.fast_ref_fraction]
                for r in self.rows
            ],
            title="parameter sweep",
        )


def run_sweep(
    workloads: Sequence[str],
    policies: Sequence[str],
    grid: Dict[str, Sequence[Any]],
    *,
    ops: int,
) -> SweepResult:
    """Cartesian sweep: every (workload, policy, grid point) combination.

    ``grid`` keys must come from :data:`SWEEPABLE`. Grid cells are
    independent runs, so they dispatch through the parallel experiment
    engine (``REPRO_JOBS`` workers, on-disk result cache) and merge back
    in enumeration order.
    """
    for key in grid:
        if key not in SWEEPABLE:
            raise ValueError(f"cannot sweep {key!r}; sweepable: {SWEEPABLE}")
    result = SweepResult()
    keys = list(grid)
    cells = [
        (workload, policy, dict(zip(keys, values)))
        for values in itertools.product(*(grid[k] for k in keys))
        for workload in workloads
        for policy in policies
    ]
    runs = run_specs(
        [
            two_tier_spec(workload, policy, ops=ops, **params)
            for workload, policy, params in cells
        ]
    )
    for (workload, policy, params), run in zip(cells, runs):
        result.rows.append(
            SweepRow(
                workload=workload,
                policy=policy,
                params=dict(params),
                throughput=run.throughput,
                fast_ref_fraction=run.fast_ref_fraction,
                migrations_down=run.migrations_down,
                migrations_up=run.migrations_up,
            )
        )
    return result
