"""Reproduction verdicts: compare measured reports to the paper's bands.

The benches assert these same shapes at run time; this module exposes
them as data so reports can be audited offline (EXPERIMENTS.md style).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List

from repro.analysis.expectations import PAPER_EXPECTATIONS, Band

if TYPE_CHECKING:
    from repro.experiments.fig4 import Fig4Report
    from repro.experiments.fig5 import Fig5aReport


@dataclass
class Check:
    """One claim checked against its band."""

    experiment: str
    metric: str
    measured: float
    band: Band
    ok: bool

    def __repr__(self) -> str:
        mark = "PASS" if self.ok else "MISS"
        return (
            f"[{mark}] {self.experiment}/{self.metric}: "
            f"measured={self.measured:.3f}, expected {self.band!r}"
        )


@dataclass
class Verdict:
    """A bundle of checks with an overall pass flag."""

    checks: List[Check] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.checks)

    def add(self, experiment: str, metric: str, measured: float) -> Check:
        band = PAPER_EXPECTATIONS[(experiment, metric)]
        check = Check(experiment, metric, measured, band, band.contains(measured))
        self.checks.append(check)
        return check

    def format_report(self) -> str:
        return "\n".join(repr(c) for c in self.checks)


def check_fig4(report: "Fig4Report") -> Verdict:
    """Audit a Figure 4 report against §7.1's claims."""
    verdict = Verdict()
    s = report.speedups
    if "rocksdb" in s:
        verdict.add(
            "fig4", "rocksdb_klocs_over_naive", report.ratio("rocksdb", "klocs", "naive")
        )
        verdict.add(
            "fig4",
            "rocksdb_klocsnomig_over_naive",
            report.ratio("rocksdb", "klocs_nomigration", "naive"),
        )
    if "redis" in s:
        verdict.add(
            "fig4", "redis_klocs_over_naive", report.ratio("redis", "klocs", "naive")
        )
        verdict.add(
            "fig4", "redis_klocs_over_nimble", report.ratio("redis", "klocs", "nimble")
        )
    if "cassandra" in s:
        verdict.add(
            "fig4",
            "cassandra_klocs_over_nimblepp",
            report.ratio("cassandra", "klocs", "nimble++"),
        )
    return verdict


def check_fig5a(report: "Fig5aReport") -> Verdict:
    """Audit a Figure 5a report against §7.1's Optane claims."""
    verdict = Verdict()
    for workload, speedups in report.speedups.items():
        verdict.add("fig5a", "ideal_over_remote", speedups["all_local"])
        verdict.add(
            "fig5a",
            "klocs_over_autonuma",
            speedups["klocs"] / speedups["autonuma"],
        )
        verdict.add(
            "fig5a", "klocs_over_nimble", speedups["klocs"] / speedups["nimble"]
        )
    return verdict
