"""CLI for simlint: ``python -m repro.analysis src/``.

Exit status 0 when the tree is clean, 1 when any violation survives
suppression filtering, 2 on usage errors. ``--select`` narrows to a
subset of rules; ``--list-rules`` prints the catalog.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.analysis.simlint import DEFAULT_RULES, format_report, lint_paths


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "simlint: determinism / env-knob / hot-path / counter-balance "
            "static analysis for the simulator sources"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RULE",
        help="run only these rule ids (repeatable)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in DEFAULT_RULES:
            print(f"{rule.id:16s} {rule.description}")
        return 0

    rules: List = list(DEFAULT_RULES)
    if args.select:
        known = {rule.id for rule in rules}
        unknown = set(args.select) - known
        if unknown:
            print(
                f"unknown rule id(s): {', '.join(sorted(unknown))} "
                f"(known: {', '.join(sorted(known))})",
                file=sys.stderr,
            )
            return 2
        rules = [rule for rule in rules if rule.id in set(args.select)]

    try:
        violations = lint_paths(args.paths, rules=rules)
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    if violations:
        print(format_report(violations))
        print(
            f"\nsimlint: {len(violations)} violation(s) "
            f"across {len({v.path for v in violations})} file(s)",
            file=sys.stderr,
        )
        return 1
    print("simlint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
