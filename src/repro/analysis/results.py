"""Persist experiment reports as JSON for offline analysis.

Reports are dataclass trees with enum/dataclass leaves; this module
flattens them into plain JSON-compatible structures, stamps them with
the run configuration, and loads them back as dictionaries.
"""

from __future__ import annotations

import dataclasses
import enum
import json
from pathlib import Path
from typing import Any, Dict, Optional, Union


def _plain(value: Any) -> Any:
    """Recursively convert report objects to JSON-compatible values."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: _plain(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, enum.Enum):
        return value.name
    if isinstance(value, dict):
        return {_key(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [_plain(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def _key(key: Any) -> str:
    if isinstance(key, enum.Enum):
        return key.name
    if isinstance(key, tuple):
        return "/".join(str(_key(part)) for part in key)
    return str(key)


def save_results(
    report: Any,
    path: Union[str, Path],
    *,
    experiment: str,
    config: Optional[Dict[str, Any]] = None,
) -> Path:
    """Write a report to ``path`` as JSON; returns the path written."""
    path = Path(path)
    payload = {
        "experiment": experiment,
        "config": config or {},
        "report": _plain(report),
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


def load_results(path: Union[str, Path]) -> Dict[str, Any]:
    """Load a previously saved report payload."""
    payload = json.loads(Path(path).read_text())
    for key in ("experiment", "report"):
        if key not in payload:
            raise ValueError(f"not a kloc-repro results file (missing {key!r})")
    return payload
