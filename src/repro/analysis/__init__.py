"""Result analysis: persist experiment reports, compare against the
paper's expected bands, and summarize reproduction status — the
"analysis scripts" side of the artifact."""

from repro.analysis.expectations import PAPER_EXPECTATIONS, Band
from repro.analysis.results import load_results, save_results
from repro.analysis.sweep import SweepResult, run_sweep
from repro.analysis.verdict import Verdict, check_fig4, check_fig5a

__all__ = [
    "Band",
    "PAPER_EXPECTATIONS",
    "save_results",
    "load_results",
    "run_sweep",
    "SweepResult",
    "Verdict",
    "check_fig4",
    "check_fig5a",
]
