"""The paper's quantitative claims, encoded as checkable bands.

Each entry records what the paper states (for provenance) and the band
a reproduction on *this* substrate is expected to land in — orderings
are strict, magnitudes get generous tolerances because the simulator
compresses ratios (see EXPERIMENTS.md's reading guide).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class Band:
    """An expected numeric interval with provenance."""

    lo: float
    hi: float
    paper_value: Optional[float] = None
    source: str = ""

    def contains(self, value: float) -> bool:
        return self.lo <= value <= self.hi

    def __repr__(self) -> str:
        paper = f", paper={self.paper_value}" if self.paper_value is not None else ""
        return f"Band([{self.lo}, {self.hi}]{paper})"


#: Keyed by (experiment, metric) — the reproduction contract in data form.
PAPER_EXPECTATIONS: Dict[Tuple[str, str], Band] = {
    # Fig 2c reference-attribution bands (§3.1).
    ("fig2c", "filebench"): Band(0.75, 1.0, 0.86, "§3.1: 86% of time in OS"),
    ("fig2c", "rocksdb"): Band(0.35, 0.70, 0.54, "§3.1: 54%"),
    ("fig2c", "redis"): Band(0.25, 0.55, 0.38, "§3.1: 38%"),
    # Fig 4 ratios (§7.1).
    ("fig4", "rocksdb_klocs_over_naive"): Band(
        1.1, 2.5, 1.96, "§7.1: KLOCs 1.96x over Naive (RocksDB)"
    ),
    ("fig4", "rocksdb_klocsnomig_over_naive"): Band(
        0.9, 2.2, 1.61, "§7.1: KLOCs-nomigration 1.61x over Naive"
    ),
    ("fig4", "redis_klocs_over_naive"): Band(
        1.3, 3.0, 2.2, "§7.1: KLOCs 2.2x over Naive (Redis)"
    ),
    ("fig4", "redis_klocs_over_nimble"): Band(
        1.15, 3.2, 2.7, "§7.1: KLOCs 2.7x over Nimble (Redis)"
    ),
    ("fig4", "cassandra_klocs_over_nimblepp"): Band(
        0.85, 1.25, 1.0, "§7.1: KLOCs similar to Nimble++ for Cassandra"
    ),
    # Fig 5a (§7.1 hardware/software-managed tiered memory).
    ("fig5a", "ideal_over_remote"): Band(1.3, 3.5, 1.6, "§7.1: ideal 1.6x"),
    ("fig5a", "klocs_over_autonuma"): Band(
        1.05, 2.0, 1.5, "§7.1: KLOCs ~1.5x over AutoNUMA"
    ),
    ("fig5a", "klocs_over_nimble"): Band(
        1.0, 1.8, 1.4, "§7.1: KLOCs ~1.4x over Nimble"
    ),
    # §4.3 per-CPU lists.
    ("percpu", "rbtree_access_reduction"): Band(
        0.40, 1.0, 0.54, "§4.3: per-CPU lists absorb 54% of accesses"
    ),
    # §7.3 prefetching.
    ("prefetch", "rocksdb_readahead_gain"): Band(
        1.0, 2.0, 1.26, "§7.3: RocksDB x1.26 with KLOC-aware prefetch"
    ),
    # Table 6 (MB, paper-equivalent).
    ("table6", "rocksdb_mb"): Band(40.0, 250.0, 101.0, "Table 6"),
    ("table6", "cassandra_mb"): Band(2.0, 60.0, 12.0, "Table 6"),
    # §4.4 migration mix.
    ("fig5b", "downgrade_fraction"): Band(
        0.5, 1.0, 0.88, "§4.4: downgrades are 88% of migrations"
    ),
}
