"""skbuff: the packet buffer pair (header + data).

Table 1 lists three network buffer objects: *skbuff* (the header),
*skbuff->data* (the payload buffer), and *rx buf* (the driver receive
buffer that, on ingress, becomes the payload). §4.2.3's key mechanism
lives here too: the paper extends skbuff with an **8-byte socket field**
filled in by the device driver, so higher TCP layers never re-extract the
socket — ``sock_hint`` models that field.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.alloc.base import KernelObject

#: Ethernet MTU payload the simulator moves per packet.
MTU_BYTES = 1500


@dataclass
class SKBuff:
    """One packet in flight: header object + data object."""

    header: KernelObject
    data: KernelObject
    nbytes: int
    #: §4.2.3: socket information extracted in the device driver and
    #: carried up the stack (None when KLOC early demux is disabled).
    sock_hint: Optional[int] = None
    ingress: bool = True

    @property
    def live(self) -> bool:
        return self.header.live and self.data.live

    def __repr__(self) -> str:
        way = "rx" if self.ingress else "tx"
        return f"SKBuff({way}, {self.nbytes}B, sock_hint={self.sock_hint})"
