"""Network substrate: sockets, skbuffs, the NIC driver rx ring (NAPI), and
a simplified TCP demux layer. Sockets get inodes — "everything is a file"
— so the KLOC machinery covers them exactly like filesystem objects."""

from repro.net.driver import NICDriver
from repro.net.skbuff import SKBuff
from repro.net.socket import Socket
from repro.net.stack import NetworkStack
from repro.net.tcp import TCPLayer

__all__ = ["SKBuff", "Socket", "NICDriver", "TCPLayer", "NetworkStack"]
