"""Simplified TCP layer: demultiplexing and per-layer processing cost.

Ingress without KLOC early demux pays the multi-layer traversal §4.2.3
describes ("the OS determines the socket for incoming network packet
buffers only after traversing several levels in the TCP stack"); with the
driver-filled socket field the upper-layer extraction is elided.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.core.errors import NetworkError
from repro.core.units import NS
from repro.net.skbuff import SKBuff
from repro.net.socket import Socket

if TYPE_CHECKING:
    from repro.core.context import KernelContext

#: Per-layer (IP, TCP, socket glue) processing cost for one packet.
LAYER_COST_NS = 300 * NS
LAYERS = 3
#: Extra cost of extracting the owning socket at the TCP layer when the
#: driver did not provide it (hash lookup + header parsing).
LATE_DEMUX_COST_NS = 900 * NS


class TCPLayer:
    """Port-keyed demux plus processing-cost accounting."""

    def __init__(self, ctx: "KernelContext") -> None:
        self.ctx = ctx
        self._by_port: Dict[int, Socket] = {}
        self.ingress_packets = 0
        self.egress_packets = 0
        self.late_demuxes = 0

    def bind(self, socket: Socket) -> None:
        if socket.port in self._by_port:
            raise NetworkError(f"port {socket.port} already bound")
        self._by_port[socket.port] = socket

    def unbind(self, socket: Socket) -> None:
        self._by_port.pop(socket.port, None)

    def socket_for(self, port: int) -> Optional[Socket]:
        return self._by_port.get(port)

    def ingress(self, skb: SKBuff, port: int, *, cpu: int = 0) -> Socket:
        """Carry a received packet up the stack into its socket's queue."""
        socket = self._by_port.get(port)
        if socket is None:
            raise NetworkError(f"no socket bound to port {port}")
        self.ctx.clock.advance(LAYER_COST_NS * LAYERS)
        if skb.sock_hint is None:
            # §4.2.3: without the driver-filled field, the socket is
            # extracted here, after several layers of buffering.
            self.ctx.clock.advance(LATE_DEMUX_COST_NS)
            self.late_demuxes += 1
            skb.sock_hint = socket.inode.ino
        # Socket state (Table 1's sock object) is read and updated.
        self.ctx.access_object(socket.sock_obj, write=True, cpu=cpu)
        socket.enqueue(skb)
        self.ingress_packets += 1
        return socket

    def egress(self, socket: Socket, skb: SKBuff, *, cpu: int = 0) -> None:
        """Carry an outgoing packet down the stack to the driver."""
        if socket.closed:
            raise NetworkError(f"socket {socket.sid} is closed")
        self.ctx.clock.advance(LAYER_COST_NS * LAYERS)
        self.ctx.access_object(socket.sock_obj, write=True, cpu=cpu)
        self.egress_packets += 1

    def __repr__(self) -> str:
        return (
            f"TCPLayer(ports={len(self._by_port)}, in={self.ingress_packets}, "
            f"out={self.egress_packets}, late_demux={self.late_demuxes})"
        )
