"""NIC driver: receive ring, NAPI-style ingress, and KLOC early demux.

§4.2.3: "As network packets arrive, the device driver allocates a generic
packet buffer but does not know the socket to which this packet belongs."
With KLOCs, the driver extracts the socket cheaply (a hash lookup on the
flow tuple), stores it in the skbuff's 8-byte field, and adds the packet
buffers to the right knode immediately; without KLOCs, association — and
hence any placement decision — waits until the TCP layer.

Ingress is zero-copy: the rx-ring page becomes the skbuff's data buffer,
and the driver replenishes the ring with a fresh RX_BUF allocation — the
driver-buffer churn visible in Fig 2a's socket-buffer slice.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, Optional

from repro.alloc.base import KernelObject
from repro.core.errors import NetworkError
from repro.core.objtypes import KernelObjectType
from repro.core.units import NS
from repro.net.skbuff import SKBuff

if TYPE_CHECKING:
    from repro.core.context import KernelContext
    from repro.vfs.inode import Inode

#: Default receive ring depth (rx descriptors).
RX_RING_SIZE = 256
#: Cost of the driver-level flow-hash lookup that fills the 8-byte socket
#: field (§4.2.3 — cheap, unlike full header extraction).
EARLY_DEMUX_COST_NS = 150 * NS


def _resolve_no_inode(port: int) -> Optional["Inode"]:
    """Default resolver: no port → inode mapping (early demux finds
    nothing). Module-level so driver state stays snapshot-serializable."""
    return None


class NICDriver:
    """Receive ring + packet construction."""

    def __init__(
        self,
        ctx: "KernelContext",
        *,
        ring_size: int = RX_RING_SIZE,
        early_demux: bool = False,
        resolve_inode: Optional[Callable[[int], Optional["Inode"]]] = None,
    ) -> None:
        if ring_size <= 0:
            raise NetworkError(f"rx ring needs entries: {ring_size}")
        self.ctx = ctx
        self.ring_size = ring_size
        #: §4.2.3's KLOC extension: extract the socket in the driver.
        self.early_demux = early_demux
        #: Maps a port to the owning socket's inode (for early demux).
        self._resolve_inode = resolve_inode or _resolve_no_inode
        self._ring: Deque[KernelObject] = deque()
        self.rx_packets = 0
        self.tx_packets = 0
        self.ring_refills = 0

    def fill_ring(self, *, cpu: int = 0) -> int:
        """(Re)populate the rx ring with driver buffers."""
        added = 0
        while len(self._ring) < self.ring_size:
            buf = self.ctx.alloc_object(KernelObjectType.RX_BUF, None, cpu=cpu)
            self._ring.append(buf)
            added += 1
        if added:
            self.ring_refills += 1
        return added

    def receive(self, port: int, nbytes: int, *, cpu: int = 0) -> SKBuff:
        """One packet arrives for ``port``; returns the constructed skbuff.

        The ring entry becomes skb->data (zero copy); a fresh RX_BUF
        replenishes the ring. With ``early_demux`` the socket's inode is
        resolved here and the buffers are charged to its knode.
        """
        if nbytes <= 0:
            raise NetworkError(f"packet needs bytes: {nbytes}")
        if not self._ring:
            self.fill_ring(cpu=cpu)

        inode = None
        if self.early_demux:
            inode = self._resolve_inode(port)
            self.ctx.clock.advance(EARLY_DEMUX_COST_NS)

        data = self._ring.popleft()
        # NIC DMA writes the payload into the driver buffer.
        self.ctx.access_object(data, nbytes, write=True, cpu=cpu)
        if inode is not None:
            self._reassociate(data, inode)

        header = self.ctx.alloc_object(KernelObjectType.SKBUFF, inode, cpu=cpu)
        self.ctx.access_object(header, write=True, cpu=cpu)

        # Replenish the ring slot.
        refill = self.ctx.alloc_object(KernelObjectType.RX_BUF, None, cpu=cpu)
        self._ring.append(refill)

        self.rx_packets += 1
        skb = SKBuff(header=header, data=data, nbytes=nbytes, ingress=True)
        if inode is not None:
            skb.sock_hint = inode.ino
        return skb

    def transmit(self, skb: SKBuff, *, cpu: int = 0) -> None:
        """DMA the packet out and free its buffers."""
        self.ctx.access_object(skb.data, skb.nbytes, cpu=cpu)  # NIC reads payload
        self.ctx.free_object(skb.header, cpu=cpu)
        self.ctx.free_object(skb.data, cpu=cpu)
        self.tx_packets += 1

    def drain_ring(self, *, cpu: int = 0) -> None:
        """Free all ring buffers (device teardown)."""
        while self._ring:
            self.ctx.free_object(self._ring.popleft(), cpu=cpu)

    def _reassociate(self, obj: KernelObject, inode: "Inode") -> None:
        """Charge a generically-allocated buffer to the socket's knode."""
        adopt = getattr(self.ctx, "adopt_object", None)
        if adopt is not None:
            adopt(obj, inode)

    @property
    def ring_level(self) -> int:
        return len(self._ring)

    def __repr__(self) -> str:
        return (
            f"NICDriver(rx={self.rx_packets}, tx={self.tx_packets}, "
            f"ring={self.ring_level}/{self.ring_size}, early_demux={self.early_demux})"
        )
