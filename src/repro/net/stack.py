"""Network stack facade: socket lifecycle, send/recv, ingress simulation.

Ties the driver, TCP layer, and sockets together behind the handful of
calls workloads use (``socket() / deliver() / recv() / send() / close()``),
and drives the same KLOC lifecycle hooks as the filesystem — a socket's
inode creation is a knode creation (§4.2.2).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.core.errors import NetworkError
from repro.core.objtypes import KernelObjectType
from repro.net.driver import NICDriver
from repro.net.skbuff import MTU_BYTES, SKBuff
from repro.net.socket import Socket
from repro.net.tcp import TCPLayer
from repro.vfs.inode import InodeTable

if TYPE_CHECKING:
    from repro.core.context import KernelContext


class NetworkStack:
    """Everything above the wire and below the application."""

    def __init__(
        self,
        ctx: "KernelContext",
        *,
        inode_table: Optional[InodeTable] = None,
        early_demux: bool = False,
        rx_ring_size: int = 256,
    ) -> None:
        self.ctx = ctx
        self.inodes = inode_table if inode_table is not None else InodeTable()
        self.tcp = TCPLayer(ctx)
        self.driver = NICDriver(
            ctx,
            ring_size=rx_ring_size,
            early_demux=early_demux,
            resolve_inode=self._inode_for_port,
        )
        self._sockets: Dict[int, Socket] = {}
        self._next_sid = 1

    def _inode_for_port(self, port: int):
        socket = self.tcp.socket_for(port)
        return socket.inode if socket is not None else None

    # ------------------------------------------------------------------
    # socket lifecycle
    # ------------------------------------------------------------------

    def socket(self, port: int, *, cpu: int = 0) -> Socket:
        """Create and bind a socket (socket() + bind() + accept() rolled
        into one, which is all the workloads need)."""
        if self.tcp.socket_for(port) is not None:
            raise NetworkError(f"port {port} already in use")
        sock_obj = self.ctx.alloc_object(KernelObjectType.SOCK, None, cpu=cpu)
        inode = self.inodes.create(
            is_socket=True, backing=sock_obj, now_ns=self.ctx.clock.now()
        )
        self.ctx.on_inode_create(inode, cpu=cpu)
        adopt = getattr(self.ctx, "adopt_object", None)
        if adopt is not None:
            adopt(sock_obj, inode)
        socket = Socket(self._next_sid, port, inode, sock_obj)
        self._next_sid += 1
        self._sockets[socket.sid] = socket
        self.tcp.bind(socket)
        inode.open()
        self.ctx.on_inode_open(inode, cpu=cpu)
        return socket

    def close(self, socket: Socket, *, cpu: int = 0) -> None:
        """Close a socket: drain its queue and tear down its objects."""
        if socket.closed:
            raise NetworkError(f"socket {socket.sid} already closed")
        while socket.rx_queue:
            skb = socket.rx_queue.popleft()
            self.ctx.free_object(skb.header, cpu=cpu)
            self.ctx.free_object(skb.data, cpu=cpu)
        socket.closed = True
        self.tcp.unbind(socket)
        del self._sockets[socket.sid]
        socket.inode.close()
        self.ctx.on_inode_close(socket.inode, cpu=cpu)
        self.ctx.on_inode_unlink(socket.inode, cpu=cpu)
        self.ctx.free_object(socket.sock_obj, cpu=cpu)
        self.inodes.drop(socket.inode.ino)

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------

    def deliver(self, port: int, nbytes: int, *, cpu: int = 0) -> int:
        """Simulate ingress: a remote peer sends ``nbytes`` to ``port``.

        Splits into MTU-sized packets; each goes through the driver (ring
        buffer, skbuff construction, optional early demux) and the TCP
        layer into the socket's receive queue. Returns packets delivered.
        """
        if self.tcp.socket_for(port) is None:
            raise NetworkError(f"no socket bound to port {port}")
        packets = 0
        remaining = nbytes
        while remaining > 0:
            chunk = min(remaining, MTU_BYTES)
            skb = self.driver.receive(port, chunk, cpu=cpu)
            self.tcp.ingress(skb, port, cpu=cpu)
            remaining -= chunk
            packets += 1
        return packets

    def recv(self, socket: Socket, *, cpu: int = 0) -> int:
        """Application reads everything queued; returns bytes consumed."""
        consumed = 0
        # The copy-to-user + free sequence per skb is pure charging work,
        # so the whole drain can share one deferred-advance window when
        # the kernel offers one.
        begin = getattr(self.ctx, "begin_access_batch", None)
        batch = begin() if begin is not None else None
        if batch is None:
            while True:
                skb = socket.dequeue()
                if skb is None:
                    break
                # Copy-to-user: the application reads the payload.
                self.ctx.access_object(skb.data, skb.nbytes, cpu=cpu)
                self.ctx.free_object(skb.header, cpu=cpu)
                self.ctx.free_object(skb.data, cpu=cpu)
                consumed += skb.nbytes
            return consumed
        while True:
            skb = socket.dequeue()
            if skb is None:
                break
            batch.access_object(skb.data, skb.nbytes, cpu=cpu)
            batch.free_object(skb.header, cpu=cpu)
            batch.free_object(skb.data, cpu=cpu)
            consumed += skb.nbytes
        batch.close()
        return consumed

    def send(self, socket: Socket, nbytes: int, *, cpu: int = 0) -> int:
        """Application sends ``nbytes``; returns packets transmitted."""
        if nbytes <= 0:
            raise NetworkError(f"send needs bytes: {nbytes}")
        if socket.closed:
            raise NetworkError(f"socket {socket.sid} is closed")
        packets = 0
        remaining = nbytes
        while remaining > 0:
            chunk = min(remaining, MTU_BYTES)
            header = self.ctx.alloc_object(
                KernelObjectType.SKBUFF, socket.inode, cpu=cpu
            )
            data = self.ctx.alloc_object(
                KernelObjectType.SKBUFF_DATA, socket.inode, cpu=cpu
            )
            # Copy-from-user into the kernel buffer.
            self.ctx.access_object(data, chunk, write=True, cpu=cpu)
            skb = SKBuff(
                header=header,
                data=data,
                nbytes=chunk,
                sock_hint=socket.inode.ino,
                ingress=False,
            )
            self.tcp.egress(socket, skb, cpu=cpu)
            self.driver.transmit(skb, cpu=cpu)
            remaining -= chunk
            packets += 1
        socket.packets_sent += packets
        socket.bytes_sent += nbytes
        return packets

    def live_sockets(self) -> int:
        return len(self._sockets)

    def __repr__(self) -> str:
        return f"NetworkStack(sockets={self.live_sockets()}, driver={self.driver!r})"
