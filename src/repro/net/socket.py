"""Sockets: file-like endpoints with receive queues.

Each socket owns an inode (``is_socket=True``) so its kernel objects —
the sock structure, queued skbuffs, driver buffers — hang off a knode
exactly like a file's (Figure 1).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.alloc.base import KernelObject
from repro.core.errors import NetworkError
from repro.net.skbuff import SKBuff
from repro.vfs.inode import Inode


class Socket:
    """One connected socket endpoint."""

    def __init__(self, sid: int, port: int, inode: Inode, sock_obj: KernelObject) -> None:
        self.sid = sid
        self.port = port
        self.inode = inode
        #: Table 1's *sock* object holding this socket's kernel state.
        self.sock_obj = sock_obj
        self.rx_queue: Deque[SKBuff] = deque()
        self.closed = False
        self.bytes_received = 0
        self.bytes_sent = 0
        self.packets_received = 0
        self.packets_sent = 0

    @property
    def rx_backlog(self) -> int:
        return len(self.rx_queue)

    def enqueue(self, skb: SKBuff) -> None:
        if self.closed:
            raise NetworkError(f"socket {self.sid} is closed")
        self.rx_queue.append(skb)
        self.packets_received += 1
        self.bytes_received += skb.nbytes

    def dequeue(self) -> Optional[SKBuff]:
        if self.closed:
            raise NetworkError(f"socket {self.sid} is closed")
        if not self.rx_queue:
            return None
        return self.rx_queue.popleft()

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return f"Socket(#{self.sid} port={self.port} {state} backlog={self.rx_backlog})"
