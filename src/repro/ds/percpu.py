"""Per-CPU lists with coherence, modeling §4.3's knode fast paths.

Each CPU keeps a bounded, recency-ordered list of knode references — "a
software cache of the bigger kmap structure". The same knode may appear
on several CPUs' lists; :meth:`invalidate` provides the coherence hook
Linux's per-CPU APIs give the real implementation. Hit/miss counters feed
the §4.3 claim that per-CPU lists absorb 54% of rbtree accesses.

``total_entries`` is maintained incrementally on every record/eviction/
invalidate so metadata accounting is pure arithmetic instead of an
all-lists walk. With the hot paths enabled (see
:mod:`repro.core.hotpath`) a membership shadow maps each item to the set
of CPUs holding it, making :meth:`invalidate` and :meth:`find_cpus`
O(holders) instead of O(num_cpus); ``REPRO_NO_HOTPATH=1`` restores the
every-list scans.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Generic, List, Optional, Set, TypeVar

from repro.core.hotpath import hot, hotpath_enabled

T = TypeVar("T")


class PerCPUListSet(Generic[T]):
    """One bounded LRU list per CPU, with cross-CPU invalidation."""

    def __init__(self, num_cpus: int, max_per_cpu: int) -> None:
        if num_cpus <= 0:
            raise ValueError(f"need at least one CPU: {num_cpus}")
        if max_per_cpu <= 0:
            raise ValueError(f"lists must hold at least one entry: {max_per_cpu}")
        self.num_cpus = num_cpus
        self.max_per_cpu = max_per_cpu
        self._lists: List["OrderedDict[T, None]"] = [
            OrderedDict() for _ in range(num_cpus)
        ]
        #: Live count of entries across every CPU's list, maintained on
        #: record / eviction / invalidate — O(1) metadata accounting.
        self.total_entries = 0
        #: item → CPUs holding it (the membership shadow); None when the
        #: legacy scans are forced via REPRO_NO_HOTPATH=1.
        self._where: Optional[Dict[T, Set[int]]] = (
            {} if hotpath_enabled() else None
        )
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def _check_cpu(self, cpu: int) -> None:
        if not 0 <= cpu < self.num_cpus:
            raise IndexError(f"cpu {cpu} out of range [0, {self.num_cpus})")

    @hot
    def lookup(self, cpu: int, item: T) -> bool:
        """Fast-path lookup on one CPU's list; refreshes recency on hit."""
        if not 0 <= cpu < self.num_cpus:
            raise IndexError(f"cpu {cpu} out of range [0, {self.num_cpus})")
        lst = self._lists[cpu]
        if item in lst:
            lst.move_to_end(item)
            self.hits += 1
            return True
        self.misses += 1
        return False

    @hot
    def record(self, cpu: int, item: T) -> Optional[T]:
        """Note that ``cpu`` touched ``item``; returns any entry evicted by
        the size cap (§4.3: "restricting their sizes ensures that they can
        be traversed fast")."""
        self._check_cpu(cpu)
        lst = self._lists[cpu]
        if item not in lst:
            # The peak is sampled by the owner of metadata accounting
            # (KlocManager._note_metadata) after every record; this
            # container does not know the byte weights.
            # simlint: ok[counter-balance] peak sampled by KlocManager
            self.total_entries += 1
            if self._where is not None:
                holders = self._where.get(item)
                if holders is None:
                    self._where[item] = {cpu}
                else:
                    holders.add(cpu)
        lst[item] = None
        lst.move_to_end(item)
        if len(lst) > self.max_per_cpu:
            evicted, _ = lst.popitem(last=False)
            self.total_entries -= 1
            if self._where is not None:
                self._drop_holder(evicted, cpu)
            return evicted
        return None

    def _drop_holder(self, item: T, cpu: int) -> None:
        holders = self._where.get(item)
        if holders is not None:
            holders.discard(cpu)
            if not holders:
                del self._where[item]

    def invalidate(self, item: T) -> int:
        """Coherence: drop ``item`` from every CPU's list (knode deleted or
        marked inactive). Returns the number of lists it was on."""
        if self._where is not None:
            holders = self._where.pop(item, None)
            if not holders:
                return 0
            lists = self._lists
            # simlint: ok[hash-order] deletions commute; no ordered result
            for cpu in holders:
                del lists[cpu][item]
            dropped = len(holders)
            self.total_entries -= dropped
            self.invalidations += 1
            return dropped
        dropped = 0
        for lst in self._lists:
            if item in lst:
                del lst[item]
                dropped += 1
        if dropped:
            self.invalidations += 1
            self.total_entries -= dropped
        return dropped

    def entries(self, cpu: int) -> List[T]:
        """Snapshot of one CPU's list, LRU → MRU order."""
        self._check_cpu(cpu)
        return list(self._lists[cpu])

    def all_entries(self) -> List[T]:
        """Union of all CPUs' lists (deduplicated, arbitrary order)."""
        seen = set()
        out: List[T] = []
        for lst in self._lists:
            for item in lst:
                if item not in seen:
                    seen.add(item)
                    out.append(item)
        return out

    def find_cpus(self, item: T) -> List[int]:
        """CPUs whose list holds ``item`` — backs Table 2's find_cpu().

        Always ascending CPU order, matching the enumerate scan."""
        if self._where is not None:
            holders = self._where.get(item)
            return sorted(holders) if holders else []
        return [cpu for cpu, lst in enumerate(self._lists) if item in lst]

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:
        sizes = [len(lst) for lst in self._lists]
        return f"PerCPUListSet(cpus={self.num_cpus}, sizes={sizes})"
