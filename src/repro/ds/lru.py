"""Linux-style two-list (active/inactive) LRU.

§4.5: "Modern LRU policies track active pages and inactive pages via
separate lists. Ideally, as pages become inactive, they would be migrated
to slow memory, and as they become active, they are migrated to fast
memory." This structure is what the LRU engine and the Nimble policies
scan; KLOCs short-circuit it for kernel objects.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic, Iterator, List, TypeVar

T = TypeVar("T")


class ActiveInactiveLRU(Generic[T]):
    """Two ordered sets with Linux's promotion/demotion flow.

    Items enter the *inactive* list (Linux puts new page-cache pages
    there); a second access promotes to *active*; balancing demotes the
    coldest active items back when the active list outgrows the target
    ratio. Eviction candidates come from the inactive tail.
    """

    def __init__(self, active_ratio: float = 0.5) -> None:
        if not 0.0 < active_ratio < 1.0:
            raise ValueError(f"active_ratio must be in (0,1): {active_ratio}")
        self._active: "OrderedDict[T, None]" = OrderedDict()
        self._inactive: "OrderedDict[T, None]" = OrderedDict()
        self._active_ratio = active_ratio
        self.promotions = 0
        self.demotions = 0

    def __len__(self) -> int:
        return len(self._active) + len(self._inactive)

    def __contains__(self, item: T) -> bool:
        return item in self._active or item in self._inactive

    @property
    def active_count(self) -> int:
        return len(self._active)

    @property
    def inactive_count(self) -> int:
        return len(self._inactive)

    def insert(self, item: T) -> None:
        """Add a new item to the head of the inactive list."""
        if item in self:
            self.touch(item)
            return
        self._inactive[item] = None
        self._inactive.move_to_end(item)

    def touch(self, item: T) -> None:
        """Record a reference: inactive → active, active → MRU position."""
        if item in self._active:
            self._active.move_to_end(item)
        elif item in self._inactive:
            del self._inactive[item]
            self._active[item] = None
            self.promotions += 1
            self._balance()
        else:
            self.insert(item)

    def remove(self, item: T) -> bool:
        """Drop an item entirely (it was freed); returns False if absent."""
        if item in self._active:
            del self._active[item]
            return True
        if item in self._inactive:
            del self._inactive[item]
            return True
        return False

    def is_active(self, item: T) -> bool:
        return item in self._active

    def _balance(self) -> None:
        """Demote cold active items when the active list is oversized."""
        total = len(self)
        floor = max(1.0, total * self._active_ratio)
        while self._active and len(self._active) > floor:
            item, _ = self._active.popitem(last=False)
            self._inactive[item] = None
            self.demotions += 1

    def eviction_candidates(self, n: int) -> List[T]:
        """The ``n`` coldest items (inactive tail first, then active tail)."""
        out: List[T] = []
        for item in self._inactive:
            if len(out) >= n:
                return out
            out.append(item)
        for item in self._active:
            if len(out) >= n:
                break
            out.append(item)
        return out

    def inactive_items(self) -> Iterator[T]:
        """Coldest-first iteration over the inactive list."""
        return iter(list(self._inactive))

    def active_items(self) -> Iterator[T]:
        return iter(list(self._active))

    def __repr__(self) -> str:
        return (
            f"ActiveInactiveLRU(active={len(self._active)}, "
            f"inactive={len(self._inactive)})"
        )
