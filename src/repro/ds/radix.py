"""Radix tree, as used by the Linux page cache to index file offsets.

The interior nodes matter to this paper: they are slab-allocated kernel
objects ("buffers added to radix tree nodes to track file metadata ...
are frequently queried, allocated, and deleted when trees are rebalanced"
— §3.3). Node creation/destruction is therefore surfaced via callbacks so
the filesystem can charge them to the slab allocator and count them in
the Figure 2 breakdowns.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.core.hotpath import hotpath_enabled

#: Linux uses 6-bit fanout (64 slots per node).
RADIX_SHIFT = 6
RADIX_SLOTS = 1 << RADIX_SHIFT


class _RadixNode:
    __slots__ = ("slots", "count", "shift", "token")

    def __init__(self, shift: int) -> None:
        self.slots: Dict[int, Any] = {}
        self.count = 0
        self.shift = shift
        #: Opaque handle the owner attaches (e.g. the backing slab object).
        self.token: Any = None


class RadixTree:
    """Sparse index → value map with kernel-style interior nodes.

    ``on_node_alloc``/``on_node_free`` fire whenever an interior node is
    created or torn down, letting callers model node allocations.
    """

    def __init__(
        self,
        on_node_alloc: Optional[Callable[[_RadixNode], None]] = None,
        on_node_free: Optional[Callable[[_RadixNode], None]] = None,
    ) -> None:
        self._root: Optional[_RadixNode] = None
        self._height_shift = 0  # shift of the root node
        self._size = 0
        self._hot = hotpath_enabled()
        self._on_alloc = on_node_alloc
        self._on_free = on_node_free
        self.node_count = 0
        self.lookups = 0
        self.lookup_hops = 0

    def __len__(self) -> int:
        return self._size

    def _new_node(self, shift: int) -> _RadixNode:
        node = _RadixNode(shift)
        self.node_count += 1
        if self._on_alloc:
            self._on_alloc(node)
        return node

    def _free_node(self, node: _RadixNode) -> None:
        self.node_count -= 1
        if self._on_free:
            self._on_free(node)

    # ------------------------------------------------------------------

    def insert(self, index: int, value: Any) -> bool:
        """Map ``index`` to ``value``; returns True if the slot was empty."""
        if index < 0:
            raise ValueError(f"radix index must be non-negative: {index}")
        if value is None:
            raise ValueError("radix tree cannot store None")
        self._maybe_grow(index)
        if self._root is None:
            self._root = self._new_node(self._height_shift)
        node = self._root
        while node.shift > 0:
            slot = (index >> node.shift) & (RADIX_SLOTS - 1)
            child = node.slots.get(slot)
            if child is None:
                child = self._new_node(node.shift - RADIX_SHIFT)
                node.slots[slot] = child
                node.count += 1
            node = child
        slot = index & (RADIX_SLOTS - 1)
        fresh = slot not in node.slots
        if fresh:
            node.count += 1
            self._size += 1
        node.slots[slot] = value
        return fresh

    def _maybe_grow(self, index: int) -> None:
        while index >= (1 << (self._height_shift + RADIX_SHIFT)):
            old_root = self._root
            self._height_shift += RADIX_SHIFT if old_root is not None else RADIX_SHIFT
            if old_root is not None:
                new_root = self._new_node(old_root.shift + RADIX_SHIFT)
                new_root.slots[0] = old_root
                new_root.count = 1
                self._root = new_root
            # With no root yet, just remember the required height.

    def lookup(self, index: int) -> Any:
        """Return the value at ``index`` or None."""
        self.lookups += 1
        node = self._root
        if node is None or index >= (1 << (self._height_shift + RADIX_SHIFT)):
            return None
        while node is not None and node.shift > 0:
            self.lookup_hops += 1
            node = node.slots.get((index >> node.shift) & (RADIX_SLOTS - 1))
        if node is None:
            return None
        self.lookup_hops += 1
        return node.slots.get(index & (RADIX_SLOTS - 1))

    def delete(self, index: int) -> Any:
        """Remove and return the value at ``index`` (None if absent).

        Empty interior nodes are freed on the way back up — the churn §3.3
        attributes radix-node slab traffic to.
        """
        path: List[Tuple[_RadixNode, int]] = []
        node = self._root
        if node is None or index >= (1 << (self._height_shift + RADIX_SHIFT)):
            return None
        while node.shift > 0:
            slot = (index >> node.shift) & (RADIX_SLOTS - 1)
            child = node.slots.get(slot)
            if child is None:
                return None
            path.append((node, slot))
            node = child
        slot = index & (RADIX_SLOTS - 1)
        if slot not in node.slots:
            return None
        value = node.slots.pop(slot)
        node.count -= 1
        self._size -= 1
        # Prune empty nodes bottom-up.
        child = node
        for parent, pslot in reversed(path):
            if child.count:
                break
            self._free_node(child)
            parent.slots.pop(pslot, None)
            parent.count -= 1
            child = parent
        if self._root is not None and self._root.count == 0:
            self._free_node(self._root)
            self._root = None
            self._height_shift = 0
        return value

    def items(self) -> Iterator[Tuple[int, Any]]:
        """Iterate (index, value) pairs in index order.

        One flat generator with an explicit stack — the recursive
        ``yield from`` formulation resumes depth-many generators per
        yielded page, which dominated writeback's full-cache scans.
        ``REPRO_NO_HOTPATH=1`` keeps the recursive walk (same order).
        """
        root = self._root
        if root is None:
            return
        if not self._hot:
            yield from self._walk(root, 0)
            return
        stack = [(root, 0)]
        while stack:
            node, prefix = stack.pop()
            slots = node.slots
            if node.shift > 0:
                shift = node.shift
                for slot in sorted(slots, reverse=True):
                    stack.append((slots[slot], prefix | (slot << shift)))
            else:
                for slot in sorted(slots):
                    yield prefix | slot, slots[slot]

    def _walk(self, node: _RadixNode, prefix: int) -> Iterator[Tuple[int, Any]]:
        if node.shift > 0:
            for slot in sorted(node.slots):
                yield from self._walk(node.slots[slot], prefix | (slot << node.shift))
        else:
            for slot in sorted(node.slots):
                yield prefix | slot, node.slots[slot]

    def mean_lookup_hops(self) -> float:
        return self.lookup_hops / self.lookups if self.lookups else 0.0

    def __repr__(self) -> str:
        return f"RadixTree(size={self._size}, nodes={self.node_count})"
