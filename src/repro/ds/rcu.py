"""Minimal read-copy-update model.

§4.3 leans on Linux's RCU-aware red-black trees for "multi-reader,
single-writer" concurrency. The simulator is single-threaded, so RCU here
is a *cost and contention model*: readers are free, writers serialize and
pay a grace-period cost proportional to how many readers were in-flight
around them — enough to make the contention ablations meaningful.
"""

from __future__ import annotations

from repro.core.units import NS, US

#: Cost of entering/leaving a read-side critical section (≈ free in Linux).
READ_SIDE_COST_NS = 5 * NS
#: Baseline writer cost: take the updater lock, publish the new version.
WRITE_BASE_COST_NS = 200 * NS
#: Deferred reclamation (synchronize_rcu amortized via call_rcu).
GRACE_PERIOD_COST_NS = 1 * US


class RCUDomain:
    """Tracks read/write-side entries for one RCU-protected structure."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.reads = 0
        self.writes = 0
        self._readers_inflight = 0

    def read(self) -> int:
        """One read-side critical section; returns its modeled cost."""
        self.reads += 1
        return READ_SIDE_COST_NS

    def write(self) -> int:
        """One update; returns its modeled cost (lock + publish + grace)."""
        self.writes += 1
        return WRITE_BASE_COST_NS + GRACE_PERIOD_COST_NS

    def write_fraction(self) -> float:
        total = self.reads + self.writes
        return self.writes / total if total else 0.0

    def __repr__(self) -> str:
        return f"RCUDomain({self.name}, reads={self.reads}, writes={self.writes})"
