"""Kernel data structures: red-black tree, radix tree, LRU lists,
per-CPU lists, and a minimal RCU model — the building blocks §4.2 reuses
("we rely on principled use of data structures already widely employed in
real-world OS kernels")."""

from repro.ds.lru import ActiveInactiveLRU
from repro.ds.percpu import PerCPUListSet
from repro.ds.radix import RadixTree
from repro.ds.rbtree import RedBlackTree
from repro.ds.rcu import RCUDomain

__all__ = [
    "RedBlackTree",
    "RadixTree",
    "ActiveInactiveLRU",
    "PerCPUListSet",
    "RCUDomain",
]
