"""Red-black tree (CLRS) with traversal-cost accounting.

Linux uses rbtrees for VMAs, the CFS runqueue, and — in this paper — the
per-knode object trees (*rbtree-cache*, *rbtree-slab*) and the global
*kmap* (§4.2.2-4.2.3). The implementation tracks comparisons per lookup
so the §4.2.3 observation ("as many as ten memory references are needed
on average for tree traversal") can be measured directly, and so the
split-tree ablation bench has something to compare.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

RED = True
BLACK = False


class _Node:
    __slots__ = ("key", "value", "color", "left", "right", "parent")

    def __init__(self, key: int, value: Any) -> None:
        self.key = key
        self.value = value
        self.color = RED
        self.left: "_Node" = NIL
        self.right: "_Node" = NIL
        self.parent: "_Node" = NIL


class _Nil(_Node):
    """Shared sentinel leaf. Always black, never dereferenced for data."""

    def __init__(self) -> None:  # noqa: D401 - sentinel bootstrap
        self.key = 0
        self.value = None
        self.color = BLACK
        self.left = self
        self.right = self
        self.parent = self

    def __reduce__(self):
        # The sentinel is compared by identity (``node is NIL``)
        # throughout; serialization must resolve back to the module
        # singleton or restored trees would carry a private nil that
        # every identity test misses. See repro.snapshot.
        return (_the_nil, ())


def _the_nil() -> "_Nil":
    """Pickle hook: resolve to the shared :data:`NIL` singleton."""
    return NIL


NIL = _Nil()


class RedBlackTree:
    """Ordered int-keyed map with O(log n) insert/delete/search."""

    def __init__(self) -> None:
        self.root: _Node = NIL
        self._size = 0
        #: Total node-to-node hops performed by searches (a proxy for the
        #: memory references the paper counts).
        self.search_hops = 0
        self.searches = 0

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: int) -> bool:
        return self._find(key) is not NIL

    def get(self, key: int, default: Any = None) -> Any:
        node = self._find(key)
        return node.value if node is not NIL else default

    def _find(self, key: int) -> _Node:
        self.searches += 1
        node = self.root
        while node is not NIL:
            self.search_hops += 1
            if key == node.key:
                return node
            node = node.left if key < node.key else node.right
        return NIL

    def min_key(self) -> Optional[int]:
        if self.root is NIL:
            return None
        return self._minimum(self.root).key

    def mean_search_hops(self) -> float:
        """Average hops per search — the §4.2.3 'ten memory references'."""
        return self.search_hops / self.searches if self.searches else 0.0

    def items(self) -> Iterator[Tuple[int, Any]]:
        """In-order iteration (iterative, stack-based)."""
        stack: List[_Node] = []
        node = self.root
        while stack or node is not NIL:
            while node is not NIL:
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield node.key, node.value
            node = node.right

    def keys(self) -> Iterator[int]:
        return (k for k, _v in self.items())

    def values(self) -> Iterator[Any]:
        return (v for _k, v in self.items())

    # ------------------------------------------------------------------
    # insert
    # ------------------------------------------------------------------

    def insert(self, key: int, value: Any) -> bool:
        """Insert or update; returns True if a new node was created."""
        parent = NIL
        node = self.root
        while node is not NIL:
            parent = node
            if key == node.key:
                node.value = value
                return False
            node = node.left if key < node.key else node.right
        fresh = _Node(key, value)
        fresh.parent = parent
        if parent is NIL:
            self.root = fresh
        elif key < parent.key:
            parent.left = fresh
        else:
            parent.right = fresh
        self._size += 1
        self._insert_fixup(fresh)
        return True

    def _insert_fixup(self, z: _Node) -> None:
        while z.parent.color is RED:
            gp = z.parent.parent
            if z.parent is gp.left:
                uncle = gp.right
                if uncle.color is RED:
                    z.parent.color = BLACK
                    uncle.color = BLACK
                    gp.color = RED
                    z = gp
                else:
                    if z is z.parent.right:
                        z = z.parent
                        self._rotate_left(z)
                    z.parent.color = BLACK
                    gp.color = RED
                    self._rotate_right(gp)
            else:
                uncle = gp.left
                if uncle.color is RED:
                    z.parent.color = BLACK
                    uncle.color = BLACK
                    gp.color = RED
                    z = gp
                else:
                    if z is z.parent.left:
                        z = z.parent
                        self._rotate_right(z)
                    z.parent.color = BLACK
                    gp.color = RED
                    self._rotate_left(gp)
        self.root.color = BLACK

    # ------------------------------------------------------------------
    # delete
    # ------------------------------------------------------------------

    def delete(self, key: int) -> bool:
        """Remove ``key``; returns False if absent."""
        z = self._find(key)
        if z is NIL:
            return False
        self._size -= 1
        y = z
        y_original_color = y.color
        if z.left is NIL:
            x = z.right
            self._transplant(z, z.right)
        elif z.right is NIL:
            x = z.left
            self._transplant(z, z.left)
        else:
            y = self._minimum(z.right)
            y_original_color = y.color
            x = y.right
            if y.parent is z:
                x.parent = y
            else:
                self._transplant(y, y.right)
                y.right = z.right
                y.right.parent = y
            self._transplant(z, y)
            y.left = z.left
            y.left.parent = y
            y.color = z.color
        if y_original_color is BLACK:
            self._delete_fixup(x)
        return True

    def pop_min(self) -> Optional[Tuple[int, Any]]:
        """Remove and return the smallest (key, value), or None if empty."""
        if self.root is NIL:
            return None
        node = self._minimum(self.root)
        result = (node.key, node.value)
        self.delete(node.key)
        return result

    def _transplant(self, u: _Node, v: _Node) -> None:
        if u.parent is NIL:
            self.root = v
        elif u is u.parent.left:
            u.parent.left = v
        else:
            u.parent.right = v
        v.parent = u.parent

    @staticmethod
    def _minimum(node: _Node) -> _Node:
        while node.left is not NIL:
            node = node.left
        return node

    def _delete_fixup(self, x: _Node) -> None:
        while x is not self.root and x.color is BLACK:
            if x is x.parent.left:
                w = x.parent.right
                if w.color is RED:
                    w.color = BLACK
                    x.parent.color = RED
                    self._rotate_left(x.parent)
                    w = x.parent.right
                if w.left.color is BLACK and w.right.color is BLACK:
                    w.color = RED
                    x = x.parent
                else:
                    if w.right.color is BLACK:
                        w.left.color = BLACK
                        w.color = RED
                        self._rotate_right(w)
                        w = x.parent.right
                    w.color = x.parent.color
                    x.parent.color = BLACK
                    w.right.color = BLACK
                    self._rotate_left(x.parent)
                    x = self.root
            else:
                w = x.parent.left
                if w.color is RED:
                    w.color = BLACK
                    x.parent.color = RED
                    self._rotate_right(x.parent)
                    w = x.parent.left
                if w.right.color is BLACK and w.left.color is BLACK:
                    w.color = RED
                    x = x.parent
                else:
                    if w.left.color is BLACK:
                        w.right.color = BLACK
                        w.color = RED
                        self._rotate_left(w)
                        w = x.parent.left
                    w.color = x.parent.color
                    x.parent.color = BLACK
                    w.left.color = BLACK
                    self._rotate_right(x.parent)
                    x = self.root
        x.color = BLACK

    # ------------------------------------------------------------------
    # rotations
    # ------------------------------------------------------------------

    def _rotate_left(self, x: _Node) -> None:
        y = x.right
        x.right = y.left
        if y.left is not NIL:
            y.left.parent = x
        y.parent = x.parent
        if x.parent is NIL:
            self.root = y
        elif x is x.parent.left:
            x.parent.left = y
        else:
            x.parent.right = y
        y.left = x
        x.parent = y

    def _rotate_right(self, x: _Node) -> None:
        y = x.left
        x.left = y.right
        if y.right is not NIL:
            y.right.parent = x
        y.parent = x.parent
        if x.parent is NIL:
            self.root = y
        elif x is x.parent.right:
            x.parent.right = y
        else:
            x.parent.left = y
        y.right = x
        x.parent = y

    # ------------------------------------------------------------------
    # validation (tests + property-based checks)
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Verify the red-black properties; raises AssertionError if broken."""
        assert self.root.color is BLACK, "root must be black"
        self._check(self.root)
        assert self._size == sum(1 for _ in self.items()), "size mismatch"

    def _check(self, node: _Node) -> int:
        if node is NIL:
            return 1
        if node.color is RED:
            assert node.left.color is BLACK and node.right.color is BLACK, (
                f"red node {node.key} has a red child"
            )
        if node.left is not NIL:
            assert node.left.key < node.key, "BST order violated (left)"
        if node.right is not NIL:
            assert node.right.key > node.key, "BST order violated (right)"
        lh = self._check(node.left)
        rh = self._check(node.right)
        assert lh == rh, f"black-height mismatch at {node.key}: {lh} != {rh}"
        return lh + (1 if node.color is BLACK else 0)

    def __repr__(self) -> str:
        return f"RedBlackTree(size={self._size})"
