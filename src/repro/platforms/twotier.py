"""Two-tier software-managed platform (Table 4, first half).

8GB fast DRAM @30GB/s over 80GB bandwidth-throttled DRAM, scaled down by
``scale_factor`` with time compression to match (see
:func:`repro.core.config.two_tier_platform_spec`).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.config import PlatformSpec, two_tier_platform_spec
from repro.core.errors import ConfigError
from repro.core.units import GB
from repro.kernel.kernel import Kernel
from repro.kloc.registry import KlocRegistry
from repro.policies import TWO_TIER_POLICIES
from repro.policies.base import TieringPolicy

#: Paper-scale capacities (Table 4).
PAPER_FAST_BYTES = 8 * GB
PAPER_SLOW_BYTES = 80 * GB


def two_tier_spec_scaled(
    *,
    scale_factor: int = 1024,
    bandwidth_ratio: int = 8,
    fast_bytes_paper: int = PAPER_FAST_BYTES,
    slow_bytes_paper: int = PAPER_SLOW_BYTES,
    num_cpus: int = 16,
) -> PlatformSpec:
    """The paper's two-tier platform at 1/``scale_factor`` capacity."""
    return two_tier_platform_spec(
        fast_capacity_bytes=fast_bytes_paper // scale_factor,
        slow_capacity_bytes=slow_bytes_paper // scale_factor,
        bandwidth_ratio=bandwidth_ratio,
        num_cpus=num_cpus,
    )


def build_two_tier_kernel(
    policy: str,
    *,
    scale_factor: int = 1024,
    bandwidth_ratio: int = 8,
    fast_bytes_paper: int = PAPER_FAST_BYTES,
    seed: int = 42,
    registry: Optional[KlocRegistry] = None,
    readahead_enabled: bool = True,
    retired_limit: Optional[int] = None,
) -> Tuple[Kernel, TieringPolicy]:
    """Construct a started kernel under one of Table 5's strategies.

    ``policy`` is a TWO_TIER_POLICIES key. The *All Fast Mem* bound gets a
    fast tier as large as the slow tier so nothing ever spills.
    ``retired_limit`` caps the topology's retired-frame log (None keeps
    every freed frame for Fig 2d lifetime analysis).
    """
    try:
        policy_cls = TWO_TIER_POLICIES[policy]
    except KeyError:
        raise ConfigError(
            f"unknown two-tier policy {policy!r}; choose from "
            f"{sorted(TWO_TIER_POLICIES)}"
        ) from None
    fast = PAPER_SLOW_BYTES if policy == "all_fast" else fast_bytes_paper
    spec = two_tier_spec_scaled(
        scale_factor=scale_factor,
        bandwidth_ratio=bandwidth_ratio,
        fast_bytes_paper=fast,
    )
    instance = policy_cls()
    kernel = Kernel(
        spec,
        instance,
        seed=seed,
        registry=registry,
        readahead_enabled=readahead_enabled,
        retired_limit=retired_limit,
    )
    kernel.start()
    return kernel, instance
