"""Optane Memory Mode platform (Table 4, second half).

Two NUMA sockets, each with a 128GB persistent-memory DIMM fronted by a
16GB hardware-managed DRAM L4 cache. The OS moves data *between* sockets
(AutoNUMA family); hardware manages DRAM-vs-PMEM within a socket. §6.2's
experiment adds a streaming interferer to one socket and lets the
scheduler move the workload to the other.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.config import (
    KLOCSpec,
    LRUSpec,
    PlatformSpec,
    TierSpec,
)
from repro.core.errors import ConfigError
from repro.core.units import GB, NS
from repro.kernel.kernel import Kernel
from repro.kloc.registry import KlocRegistry
from repro.policies import OPTANE_POLICIES
from repro.policies.base import TieringPolicy

PAPER_PMEM_BYTES = 128 * GB
PAPER_DRAM_CACHE_BYTES = 16 * GB


def _node_spec(name: str, capacity_bytes: int) -> TierSpec:
    """One socket's PMEM DIMM (§6.2: DRAM cache is 3-4x faster)."""
    return TierSpec(
        name=name,
        capacity_bytes=capacity_bytes,
        read_latency_ns=300 * NS,
        write_latency_ns=500 * NS,
        read_bw_bytes_per_ns=6.0,
        write_bw_bytes_per_ns=2.0,
    )


def optane_platform_spec(
    *, scale_factor: int = 1024, num_cpus: int = 16
) -> PlatformSpec:
    capacity = PAPER_PMEM_BYTES // scale_factor
    return PlatformSpec(
        name=f"optane-memory-mode(1/{scale_factor})",
        fast=_node_spec("node0", capacity),
        slow=_node_spec("node1", capacity),
        hw_cache_bytes=PAPER_DRAM_CACHE_BYTES // scale_factor,
        lru=LRUSpec(
            scan_pages_per_second=256_000_000,
            scan_period_ns=4_000_000,
            cold_age_rounds=2,
        ),
        kloc=KLOCSpec(migrate_period_ns=1_000_000, cold_age_rounds=16),
        writeback_period_ns=500_000,
        num_cpus=num_cpus,
    )


def build_optane_kernel(
    policy: str,
    *,
    scale_factor: int = 1024,
    seed: int = 42,
    registry: Optional[KlocRegistry] = None,
    retired_limit: Optional[int] = None,
) -> Tuple[Kernel, TieringPolicy]:
    """Construct a started Memory-Mode kernel under one Fig 5a strategy."""
    try:
        policy_cls = OPTANE_POLICIES[policy]
    except KeyError:
        raise ConfigError(
            f"unknown Optane policy {policy!r}; choose from "
            f"{sorted(OPTANE_POLICIES)}"
        ) from None
    spec = optane_platform_spec(scale_factor=scale_factor)
    instance = policy_cls()
    kernel = Kernel(
        spec, instance, seed=seed, registry=registry, retired_limit=retired_limit
    )
    kernel.start()
    return kernel, instance
