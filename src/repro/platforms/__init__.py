"""Evaluation platforms (Table 4): the software-managed two-tier system
and the Optane Memory Mode system, with kernel construction helpers."""

from repro.platforms.optane import build_optane_kernel, optane_platform_spec
from repro.platforms.twotier import build_two_tier_kernel

__all__ = ["build_two_tier_kernel", "optane_platform_spec", "build_optane_kernel"]
