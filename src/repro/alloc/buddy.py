"""Page allocator (buddy-system front end).

Whole-page kernel allocations — page cache pages, journal buffers, packet
data buffers, driver rx rings — and application anonymous pages come from
here. Pages are mapped through page tables (not physically addressed), so
they are **relocatable** (§3.3: "vmalloc and page alloc allocations permit
kernel object relocation").

Order-based accounting is kept so fragmentation-style queries are
possible, but contiguity itself is not modeled — nothing in the paper's
experiments depends on it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.clock import Clock
from repro.core.errors import SimulationError
from repro.core.hotpath import hot, hotpath_enabled
from repro.core.objtypes import KernelObjectType
from repro.core.sanitize import call_site
from repro.alloc.base import ALLOC_COSTS, AllocatorStats, KernelObject

from repro.mem.frame import PageFrame, PageOwner
from repro.mem.topology import MemoryTopology

#: Hoisted 'page' cost — read on every alloc/free.
_PAGE_COST = ALLOC_COSTS["page"]
_PAGE_FREE_COST = _PAGE_COST // 2


class PageAllocator:
    """alloc_pages()/__free_pages() plus a kernel-object wrapper."""

    relocatable = True
    family = "page"

    def __init__(self, topology: MemoryTopology, clock: Clock) -> None:
        self.topology = topology
        self.clock = clock
        self._hot = hotpath_enabled()
        self._san = topology.sanitizer
        self.stats = AllocatorStats()
        self._next_oid = 0
        #: Allocations by order (log2 pages), for fragmentation reports.
        self.order_histogram: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # raw frames (application pages, driver rings)
    # ------------------------------------------------------------------

    def alloc_frames(
        self,
        npages: int,
        tier_order: Sequence[str],
        owner: PageOwner,
        *,
        obj_type: Optional[str] = None,
        knode_id: Optional[int] = None,
        node_id: int = 0,
    ) -> List[PageFrame]:
        """Allocate raw relocatable frames (e.g. anonymous app memory)."""
        frames = self.topology.allocate(
            npages,
            tier_order,
            owner,
            obj_type=obj_type,
            knode_id=knode_id,
            node_id=node_id,
            relocatable=True,
            now_ns=self.clock.now(),
        )
        order = max(0, (npages - 1).bit_length())
        self.order_histogram[order] = self.order_histogram.get(order, 0) + 1
        self.stats.pages_grabbed += npages
        cost = _PAGE_COST * npages
        self.stats.cpu_cost_ns += cost
        self.clock.advance(cost)
        return frames

    def free_frames(self, frames: Sequence[PageFrame]) -> None:
        now = self.clock.now()
        for frame in frames:
            self.topology.free(frame, now_ns=now)
        self.stats.pages_returned += len(frames)

    # ------------------------------------------------------------------
    # page-backed kernel objects (Table 1 PAGE-family types)
    # ------------------------------------------------------------------

    @hot
    def alloc_object(
        self,
        otype: KernelObjectType,
        tier_order: Sequence[str],
        *,
        knode_id: Optional[int] = None,
        node_id: int = 0,
    ) -> KernelObject:
        """Allocate one page-backed kernel object owning its frame."""
        now = self.clock.now()
        (frame,) = self.topology.allocate(
            1,
            tier_order,
            otype.owner,
            obj_type=otype.name,
            knode_id=knode_id,
            node_id=node_id,
            relocatable=True,
            now_ns=now,
        )
        self.stats.pages_grabbed += 1
        self.stats.allocs += 1
        oid = self._next_oid
        self._next_oid += 1
        self.stats.cpu_cost_ns += _PAGE_COST
        if self._hot:
            # clock.advance(_PAGE_COST), inlined (constant cost > 0).
            clock = self.clock
            clock._now = t = clock._now + _PAGE_COST  # noqa: SLF001
            if t >= clock._next_deadline:  # noqa: SLF001
                clock._fire_due()  # noqa: SLF001
        else:
            self.clock.advance(_PAGE_COST)
        return KernelObject(
            oid=oid,
            otype=otype,
            knode_id=knode_id,
            frame=frame,
            allocator=self.family,
            allocated_at=now,
        )

    @hot
    def free_object(self, obj: KernelObject, *, now_ns: Optional[int] = None) -> int:
        """Free one page-backed object. ``now_ns`` defers the clock work
        to the caller (batched charge windows): the free executes at that
        virtual time and the constant CPU cost is returned without
        advancing."""
        san = self._san
        if san is not None:
            san.on_object_free(obj, self.family, site=call_site(2))
        if not obj.live:
            raise SimulationError(f"double free of {obj!r}")
        now = self.clock.now() if now_ns is None else now_ns
        obj.freed_at = now
        self.topology.free(obj.frame, now_ns=now)
        self.stats.frees += 1
        self.stats.pages_returned += 1
        self.stats.lifetimes.record(obj.otype, obj.lifetime_ns(now))
        if san is not None:
            san.poison_object(obj)
        cost = _PAGE_FREE_COST
        if now_ns is None:
            if self._hot:
                # clock.advance(cost), inlined (constant cost > 0).
                clock = self.clock
                clock._now = t = clock._now + cost  # noqa: SLF001
                if t >= clock._next_deadline:  # noqa: SLF001
                    clock._fire_due()  # noqa: SLF001
            else:
                self.clock.advance(cost)
        return cost

    def __repr__(self) -> str:
        live = self.stats.pages_grabbed - self.stats.pages_returned
        return f"PageAllocator(live_pages={live})"
