"""Slab allocator: kmem_cache-style object packing on physical pages.

The defining constraint (§3.3): slab allocations "use only contiguous
physical pages, do not require manipulation of page tables during
allocation and release, and **cannot be relocated**. However, they are
allocated quickly." Pages created here are marked non-relocatable; any
attempt to migrate them is skipped (or rejected) by the migration engine.

Slab pages are shared by objects of the same cache regardless of which
file/socket they belong to — the physical-address aliasing that makes
wholesale slab migration "a complex endeavor" (§4.4) and motivates the
KLOC allocation interface.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from repro.core.clock import Clock
from repro.core.errors import SimulationError
from repro.core.hotpath import hot, hotpath_enabled
from repro.core.objtypes import KernelObjectType
from repro.core.sanitize import call_site
from repro.core.units import PAGE_SIZE
from repro.alloc.base import ALLOC_COSTS, AllocatorStats, KernelObject

from repro.mem.frame import PageFrame
from repro.mem.topology import MemoryTopology

#: Hoisted 'slab' cost — read on every alloc/free.
_SLAB_COST = ALLOC_COSTS["slab"]
_SLAB_FREE_COST = _SLAB_COST // 2


class _SlabPage:
    """One page of a kmem_cache: a bitmap of object slots."""

    __slots__ = ("frame", "capacity", "live")

    def __init__(self, frame: PageFrame, capacity: int) -> None:
        self.frame = frame
        self.capacity = capacity
        self.live: Set[int] = set()  # object ids resident on this page

    @property
    def full(self) -> bool:
        return len(self.live) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self.live


class _KmemCache:
    """Per-object-type cache: partial and full slab page lists."""

    def __init__(self, otype: KernelObjectType) -> None:
        self.otype = otype
        self.objs_per_page = max(1, PAGE_SIZE // otype.size_bytes)
        self.partial: List[_SlabPage] = []
        self.full: List[_SlabPage] = []


class SlabAllocator:
    """kmalloc / kmem_cache_alloc for Table 1's small kernel objects."""

    #: Pages marked this way can never migrate.
    relocatable = False
    family = "slab"

    def __init__(self, topology: MemoryTopology, clock: Clock) -> None:
        self.topology = topology
        self.clock = clock
        self._hot = hotpath_enabled()
        self._san = topology.sanitizer
        self.stats = AllocatorStats()
        self._caches: Dict[KernelObjectType, _KmemCache] = {}
        self._next_oid = 0
        self._page_of: Dict[int, _SlabPage] = {}  # oid -> slab page

    def _cache(self, otype: KernelObjectType) -> _KmemCache:
        cache = self._caches.get(otype)
        if cache is None:
            cache = _KmemCache(otype)
            self._caches[otype] = cache
        return cache

    @hot
    def alloc(
        self,
        otype: KernelObjectType,
        tier_order: Sequence[str],
        *,
        knode_id: Optional[int] = None,
    ) -> KernelObject:
        """Allocate one object; grabs a fresh slab page on demand.

        ``tier_order`` decides where a *new* slab page lands; objects
        placed into an existing partial page inherit that page's tier —
        exactly the aliasing that defeats per-object placement for slabs.
        """
        cache = self._cache(otype)
        now = self.clock.now()
        if cache.partial:
            page = cache.partial[-1]
        else:
            (frame,) = self.topology.allocate(
                1,
                tier_order,
                otype.owner,
                obj_type=otype.name,
                knode_id=knode_id,
                relocatable=False,
                now_ns=now,
            )
            page = _SlabPage(frame, cache.objs_per_page)
            cache.partial.append(page)
            self.stats.pages_grabbed += 1

        oid = self._next_oid
        self._next_oid += 1
        page.live.add(oid)
        self._page_of[oid] = page
        if page.full:
            cache.partial.remove(page)
            cache.full.append(page)

        self.stats.allocs += 1
        self.stats.cpu_cost_ns += _SLAB_COST
        if self._hot:
            # clock.advance(_SLAB_COST), inlined (constant cost > 0).
            clock = self.clock
            clock._now = t = clock._now + _SLAB_COST  # noqa: SLF001
            if t >= clock._next_deadline:  # noqa: SLF001
                clock._fire_due()  # noqa: SLF001
        else:
            self.clock.advance(_SLAB_COST)
        return KernelObject(
            oid=oid,
            otype=otype,
            knode_id=knode_id,
            frame=page.frame,
            allocator=self.family,
            allocated_at=now,
        )

    @hot
    def free(self, obj: KernelObject, *, now_ns: Optional[int] = None) -> int:
        """Release an object; empty slab pages return to the page pool.

        ``now_ns`` defers the clock work to the caller: the free executes
        at that virtual time and the (constant) CPU cost is returned
        without advancing — used by batched charge windows. Plain calls
        advance the clock themselves, as before. Returns the cost either
        way."""
        san = self._san
        if san is not None:
            san.on_object_free(obj, self.family, site=call_site(2))
        if not obj.live:
            raise SimulationError(f"double free of {obj!r}")
        page = self._page_of.pop(obj.oid, None)
        if page is None:
            raise SimulationError(f"{obj!r} was not allocated here")
        now = self.clock.now() if now_ns is None else now_ns
        obj.freed_at = now
        page.live.discard(obj.oid)

        cache = self._cache(obj.otype)
        if page in cache.full:
            cache.full.remove(page)
            cache.partial.append(page)
        if page.empty and page in cache.partial:
            cache.partial.remove(page)
            self.topology.free(page.frame, now_ns=now)
            self.stats.pages_returned += 1

        self.stats.frees += 1
        self.stats.lifetimes.record(obj.otype, obj.lifetime_ns(now))
        if san is not None:
            san.poison_object(obj)
        cost = _SLAB_FREE_COST
        if now_ns is None:
            if self._hot:
                # clock.advance(cost), inlined (constant cost > 0).
                clock = self.clock
                clock._now = t = clock._now + cost  # noqa: SLF001
                if t >= clock._next_deadline:  # noqa: SLF001
                    clock._fire_due()  # noqa: SLF001
            else:
                self.clock.advance(cost)
        return cost

    def live_pages(self) -> int:
        return self.stats.pages_grabbed - self.stats.pages_returned

    def cache_pages(self, otype: KernelObjectType) -> List[PageFrame]:
        """All live slab pages of one cache (for footprint accounting)."""
        cache = self._cache(otype)
        return [p.frame for p in cache.partial + cache.full]

    def __repr__(self) -> str:
        return (
            f"SlabAllocator(objects={self.stats.live_objects}, "
            f"pages={self.live_pages()})"
        )
