"""Kernel memory allocators.

Four families, mirroring §3.3/§4.4:

* :class:`SlabAllocator` — fast, physically addressed, **non-relocatable**
  (kmalloc / kmem_cache_alloc).
* :class:`PageAllocator` — buddy-style whole-page allocations, relocatable.
* :class:`VmallocAllocator` — virtually mapped multi-page areas, relocatable
  but slower to set up.
* :class:`KlocAllocator` — the paper's new interface: slab-like object
  packing on relocatable, knode-grouped pages (the 400+ redirected sites).
"""

from repro.alloc.base import ALLOC_COSTS, KernelObject
from repro.alloc.buddy import PageAllocator
from repro.alloc.kloc_alloc import KlocAllocator
from repro.alloc.slab import SlabAllocator
from repro.alloc.vmalloc import VmallocAllocator

__all__ = [
    "KernelObject",
    "ALLOC_COSTS",
    "SlabAllocator",
    "PageAllocator",
    "VmallocAllocator",
    "KlocAllocator",
]
