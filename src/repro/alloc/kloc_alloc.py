"""The paper's KLOC allocation interface (§4.2.2 / §4.4).

"We create a KLOC allocation interface that permits fast allocation of
kernel objects while supporting relocatability and, via systematic study,
are able to redirect 400+ allocation sites to our interface."

Mechanically it differs from the slab allocator in two ways:

1. Backing pages are **relocatable** — they come from anonymous-VMA style
   mappings rather than physically addressed slabs, so the migration
   engine may move them.
2. Pages are **grouped by knode**: objects of one file/socket pack onto
   the same pages. That is what lets the OS migrate everything under a
   knode subtree *en masse* at page granularity without dragging along
   unrelated files' objects.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from repro.core.clock import Clock
from repro.core.errors import SimulationError
from repro.core.hotpath import hot, hotpath_enabled
from repro.core.objtypes import KernelObjectType
from repro.core.sanitize import call_site
from repro.core.units import PAGE_SIZE
from repro.alloc.base import ALLOC_COSTS, AllocatorStats, KernelObject

from repro.mem.frame import PageFrame
from repro.mem.topology import MemoryTopology

#: Hoisted 'kloc' cost — read on every alloc/free.
_KLOC_COST = ALLOC_COSTS["kloc"]
_KLOC_FREE_COST = _KLOC_COST // 2


class _KlocPage:
    """One relocatable page packing a single knode's small objects.

    Unlike kmem_cache slabs, pages are not segregated by object type:
    the KLOC interface packs a knode's inode, dentry, extents, and radix
    nodes together (they are reached through the knode's trees, not by
    size-class freelists), so a typical file needs one or two pages.
    """

    __slots__ = ("frame", "used_bytes", "live", "knode_key")

    def __init__(self, frame: PageFrame, knode_key: Optional[int]) -> None:
        self.frame = frame
        self.used_bytes = 0
        self.live: Set[int] = set()
        #: The knode id this page was allocated under. Objects can later
        #: be *adopted* by a knode (their ``knode_id`` rewritten), so page
        #: bookkeeping must use this original key, not the object's.
        self.knode_key = knode_key

    def fits(self, nbytes: int) -> bool:
        return self.used_bytes + nbytes <= PAGE_SIZE

    @property
    def empty(self) -> bool:
        return not self.live


class KlocAllocator:
    """Slab-speed, relocatable, knode-grouped kernel object allocator."""

    relocatable = True
    family = "kloc"

    def __init__(self, topology: MemoryTopology, clock: Clock) -> None:
        self.topology = topology
        self.clock = clock
        self._hot = hotpath_enabled()
        self._san = topology.sanitizer
        self.stats = AllocatorStats()
        self._next_oid = 0
        #: Current fill page per knode — the grouping that makes en-masse
        #: page-granularity migration of a knode's objects possible.
        self._partial: Dict[Optional[int], _KlocPage] = {}
        self._page_of: Dict[int, _KlocPage] = {}
        #: Live pages per knode, for en-masse migration lookups. A dict
        #: used as an ordered set: ``_KlocPage`` has no value hash, so a
        #: real ``set`` would iterate in address order and leak host
        #: addresses into the migration daemon's frame ordering.
        self._knode_pages: Dict[Optional[int], Dict[_KlocPage, None]] = {}
        #: Object sizes, for releasing page bytes on free.
        self._size_of: Dict[int, int] = {}

    @hot
    def alloc(
        self,
        otype: KernelObjectType,
        tier_order: Sequence[str],
        *,
        knode_id: Optional[int] = None,
    ) -> KernelObject:
        """Allocate one object on a page shared only with ``knode_id``."""
        now = self.clock.now()
        size = min(otype.size_bytes, PAGE_SIZE)
        page = self._partial.get(knode_id)
        if page is None or not page.fits(size):
            (frame,) = self.topology.allocate(
                1,
                tier_order,
                otype.owner,
                obj_type=otype.name,
                knode_id=knode_id,
                relocatable=True,
                now_ns=now,
            )
            page = _KlocPage(frame, knode_id)
            self._partial[knode_id] = page
            self._knode_pages.setdefault(knode_id, {})[page] = None
            self.stats.pages_grabbed += 1

        oid = self._next_oid
        self._next_oid += 1
        page.live.add(oid)
        page.used_bytes += size
        self._page_of[oid] = page
        self._size_of[oid] = size

        self.stats.allocs += 1
        self.stats.cpu_cost_ns += _KLOC_COST
        if self._hot:
            # clock.advance(_KLOC_COST), inlined (constant cost > 0).
            clock = self.clock
            clock._now = t = clock._now + _KLOC_COST  # noqa: SLF001
            if t >= clock._next_deadline:  # noqa: SLF001
                clock._fire_due()  # noqa: SLF001
        else:
            self.clock.advance(_KLOC_COST)
        return KernelObject(
            oid=oid,
            otype=otype,
            knode_id=knode_id,
            frame=page.frame,
            allocator=self.family,
            allocated_at=now,
        )

    @hot
    def free(self, obj: KernelObject, *, now_ns: Optional[int] = None) -> int:
        """Free one object. ``now_ns`` defers the clock work to the caller
        (batched charge windows): the free executes at that virtual time
        and the constant CPU cost is returned without advancing."""
        san = self._san
        if san is not None:
            san.on_object_free(obj, self.family, site=call_site(2))
        if not obj.live:
            raise SimulationError(f"double free of {obj!r}")
        page = self._page_of.pop(obj.oid, None)
        if page is None:
            raise SimulationError(f"{obj!r} was not allocated here")
        now = self.clock.now() if now_ns is None else now_ns
        obj.freed_at = now
        page.live.discard(obj.oid)
        page.used_bytes -= self._size_of.pop(obj.oid, 0)

        if page.empty:
            # Clean up under the page's *allocation* key — the object's
            # knode_id may have been rewritten by adoption (§4.2.3's
            # driver-buffer reassociation).
            if self._partial.get(page.knode_key) is page:
                del self._partial[page.knode_key]
            pages = self._knode_pages.get(page.knode_key)
            if pages is not None:
                pages.pop(page, None)
                if not pages:
                    del self._knode_pages[page.knode_key]
            self.topology.free(page.frame, now_ns=now)
            self.stats.pages_returned += 1

        self.stats.frees += 1
        self.stats.lifetimes.record(obj.otype, obj.lifetime_ns(now))
        if san is not None:
            san.poison_object(obj)
        cost = _KLOC_FREE_COST
        if now_ns is None:
            if self._hot:
                # clock.advance(cost), inlined (constant cost > 0).
                clock = self.clock
                clock._now = t = clock._now + cost  # noqa: SLF001
                if t >= clock._next_deadline:  # noqa: SLF001
                    clock._fire_due()  # noqa: SLF001
            else:
                self.clock.advance(cost)
        return cost

    def knode_frames(self, knode_id: Optional[int]) -> List[PageFrame]:
        """Live backing pages of one knode's small objects — the unit the
        KLOC migration daemon moves when the knode goes cold."""
        return [p.frame for p in self._knode_pages.get(knode_id, ())]

    def live_pages(self) -> int:
        return self.stats.pages_grabbed - self.stats.pages_returned

    def __repr__(self) -> str:
        return (
            f"KlocAllocator(objects={self.stats.live_objects}, "
            f"pages={self.live_pages()}, knodes={len(self._knode_pages)})"
        )
