"""vmalloc: virtually contiguous multi-page kernel areas.

Used for large kernel buffers (hash tables, rings). Relocatable — pages
are reached through the kernel page table — but allocation is slow: every
page needs a PTE installed (§3.3 contrasts this with slab speed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.clock import Clock
from repro.core.errors import SimulationError
from repro.core.sanitize import call_site
from repro.core.units import PAGE_SIZE, pages_for
from repro.alloc.base import ALLOC_COSTS, AllocatorStats
from repro.mem.frame import PageFrame, PageOwner
from repro.mem.topology import MemoryTopology


@dataclass
class VmallocArea:
    """One virtually contiguous area and its backing frames."""

    area_id: int
    nbytes: int
    frames: List[PageFrame]
    allocated_at: int
    freed_at: int = -1

    @property
    def live(self) -> bool:
        return self.freed_at < 0

    @property
    def npages(self) -> int:
        return len(self.frames)


class VmallocAllocator:
    """vmalloc()/vfree() with per-page mapping cost."""

    relocatable = True
    family = "vmalloc"

    def __init__(self, topology: MemoryTopology, clock: Clock) -> None:
        self.topology = topology
        self.clock = clock
        self._san = topology.sanitizer
        self.stats = AllocatorStats()
        self._next_area = 0
        self._areas: Dict[int, VmallocArea] = {}

    def alloc(
        self,
        nbytes: int,
        tier_order: Sequence[str],
        *,
        owner: PageOwner = PageOwner.SLAB,
        obj_type: str = "vmalloc",
    ) -> VmallocArea:
        """Allocate a virtually contiguous area of ``nbytes``."""
        if nbytes <= 0:
            raise ValueError(f"vmalloc size must be positive: {nbytes}")
        npages = pages_for(nbytes)
        now = self.clock.now()
        frames = self.topology.allocate(
            npages,
            tier_order,
            owner,
            obj_type=obj_type,
            relocatable=True,
            now_ns=now,
        )
        area = VmallocArea(self._next_area, nbytes, frames, now)
        self._next_area += 1
        self._areas[area.area_id] = area
        cost = ALLOC_COSTS["vmalloc"] * npages
        self.stats.allocs += 1
        self.stats.pages_grabbed += npages
        self.stats.cpu_cost_ns += cost
        self.clock.advance(cost)
        return area

    def free(self, area: VmallocArea) -> None:
        if self._san is not None:
            self._san.on_area_free(area, site=call_site(2))
        if not area.live:
            raise SimulationError(f"double vfree of area {area.area_id}")
        if area.area_id not in self._areas:
            raise SimulationError(f"area {area.area_id} was not allocated here")
        now = self.clock.now()
        area.freed_at = now
        del self._areas[area.area_id]
        for frame in area.frames:
            self.topology.free(frame, now_ns=now)
        self.stats.frees += 1
        self.stats.pages_returned += area.npages
        self.clock.advance(ALLOC_COSTS["vmalloc"] * area.npages // 4)

    def live_bytes(self) -> int:
        return sum(a.npages * PAGE_SIZE for a in self._areas.values())

    def __repr__(self) -> str:
        return f"VmallocAllocator(areas={len(self._areas)})"
