"""Shared allocator machinery: the kernel-object handle and cost model."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.objtypes import KernelObjectType
from repro.core.units import NS
from repro.mem.frame import PageFrame

#: Allocation-path CPU costs (ns per allocation). Slab is the fastest;
#: vmalloc pays page-table setup; the KLOC interface is "slab-like" with a
#: small premium for the VMA bookkeeping that makes its pages relocatable
#: (§4.2.2 prioritizes allocation speed; §4.4 describes the interface).
ALLOC_COSTS = {
    "slab": 90 * NS,
    "page": 180 * NS,
    "vmalloc": 1200 * NS,
    "kloc": 140 * NS,
}


@dataclass(slots=True)
class KernelObject:
    """A live kernel object: Table 1 type + the page backing it.

    Sub-page (slab-family) objects share their backing frame with other
    objects from the same cache; page-backed objects own their frame.
    Slotted: tens of thousands are created per run and their fields are
    read on every charge.
    """

    oid: int
    otype: KernelObjectType
    knode_id: Optional[int]
    frame: PageFrame
    allocator: str
    allocated_at: int
    freed_at: Optional[int] = None
    reads: int = 0
    writes: int = 0

    @property
    def live(self) -> bool:
        return self.freed_at is None

    @property
    def size_bytes(self) -> int:
        return self.otype.size_bytes

    @property
    def relocatable(self) -> bool:
        return self.frame.relocatable

    def lifetime_ns(self, now_ns: int) -> int:
        end = self.freed_at if self.freed_at is not None else now_ns
        return end - self.allocated_at

    def __repr__(self) -> str:
        state = "live" if self.live else "freed"
        return f"KernelObject(#{self.oid} {self.otype.name} knode={self.knode_id} {state})"


class LifetimeLedger:
    """Streaming per-type lifetime statistics (feeds Fig 2d)."""

    def __init__(self) -> None:
        self._sum: Dict[KernelObjectType, int] = {}
        self._count: Dict[KernelObjectType, int] = {}

    def record(self, otype: KernelObjectType, lifetime_ns: int) -> None:
        self._sum[otype] = self._sum.get(otype, 0) + lifetime_ns
        self._count[otype] = self._count.get(otype, 0) + 1

    def mean_ns(self, otype: KernelObjectType) -> Optional[float]:
        count = self._count.get(otype)
        if not count:
            return None
        return self._sum[otype] / count

    def count(self, otype: KernelObjectType) -> int:
        return self._count.get(otype, 0)

    def as_rows(self) -> List[Tuple[str, int, float]]:
        return [
            (otype.name, self._count[otype], self._sum[otype] / self._count[otype])
            for otype in self._count
        ]


@dataclass
class AllocatorStats:
    """Counters every allocator family maintains."""

    allocs: int = 0
    frees: int = 0
    pages_grabbed: int = 0
    pages_returned: int = 0
    cpu_cost_ns: int = 0
    lifetimes: LifetimeLedger = field(default_factory=LifetimeLedger)

    @property
    def live_objects(self) -> int:
        return self.allocs - self.frees
