"""Content-addressed store of post-``setup()`` kernel snapshots.

A snapshot's identity is its **setup key**: a hash of exactly the slice
of a run's spec that can influence the warmed state — workload, policy,
platform knobs (scale factor, bandwidth ratio, fast-tier capacity),
seed, KLOC registry coverage, readahead flag — plus ``SIM_VERSION``,
the snapshot container format, and the construction-time mode
fingerprint (hot path / sanitizer / frame index). Measurement-phase
knobs (``ops``, ``measure_setup``) are deliberately **excluded**: every
cell of an ops-sensitivity sweep shares one warmed kernel, which is the
whole point.

Files live beside the result cache (``<REPRO_CACHE_DIR>/snapshots/`` by
default) so the two stores version, relocate, and garbage-collect
together: the result cache dedupes identical *cells*, the snapshot
store dedupes identical *prefixes*.

Knobs: ``REPRO_NO_SNAPSHOT=1`` disables the store (legacy cold-setup
path); ``REPRO_NO_CACHE=1`` disables it too (a bench that must time real
runs must not warm-start them silently); ``REPRO_CACHE_MAX_MB`` bounds
on-disk size (see :mod:`repro.snapshot.budget`).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Optional, Tuple

from repro.core.version import SIM_VERSION
from repro.kloc.registry import KlocRegistry
from repro.snapshot.budget import enforce_size_limit
from repro.snapshot.state import (
    SNAPSHOT_FORMAT,
    capture,
    mode_fingerprint,
    restore,
    snapshot_enabled,
)


def registry_names(registry: Optional[KlocRegistry]) -> Optional[Tuple[str, ...]]:
    """Canonical encoding of a registry: sorted covered-type names.

    Shared by the result cache and the snapshot store so both keys agree
    on what "same coverage" means.
    """
    if registry is None:
        return None
    return tuple(sorted(t.name for t in registry.covered_types()))


@dataclasses.dataclass(frozen=True)
class SetupKey:
    """Identity of one warmed setup phase (label + content digest)."""

    workload: str
    policy: str
    digest: str

    def filename(self) -> str:
        return f"{self.workload}-{self.policy}-{self.digest[:20]}.snap"


def setup_key(
    *,
    kind: str,
    workload: str,
    policy: str,
    scale_factor: int,
    seed: int,
    bandwidth_ratio: Optional[int] = None,
    fast_bytes_paper: Optional[int] = None,
    registry: Optional[KlocRegistry] = None,
    readahead_enabled: Optional[bool] = None,
    retired_limit: Optional[int] = 0,
) -> SetupKey:
    """Hash the setup-affecting slice of a run spec.

    ``kind`` separates platforms ("two_tier" vs "optane"); fields a
    platform doesn't take stay ``None`` so its keys can't collide with
    the other's. The record deliberately mirrors
    :class:`repro.experiments.cache.RunSpec` minus the measurement-phase
    fields — if a new setup-affecting knob is added to the runner it
    MUST be added here, or stale snapshots would be served (the
    equivalence suite catches exactly this class of bug).
    """
    record = {
        "kind": kind,
        "workload": workload,
        "policy": policy,
        "scale_factor": scale_factor,
        "seed": seed,
        "bandwidth_ratio": bandwidth_ratio,
        "fast_bytes_paper": fast_bytes_paper,
        "registry": (
            list(registry_names(registry)) if registry is not None else None
        ),
        "readahead_enabled": readahead_enabled,
        "retired_limit": retired_limit,
        "sim_version": SIM_VERSION,
        "snapshot_format": SNAPSHOT_FORMAT,
        "modes": mode_fingerprint(),
    }
    blob = json.dumps(record, sort_keys=True, separators=(",", ":"))
    return SetupKey(
        workload=workload,
        policy=policy,
        digest=hashlib.sha256(blob.encode("utf-8")).hexdigest(),
    )


class SnapshotStore:
    """One directory of ``<workload>-<policy>-<digest20>.snap`` blobs.

    Writes go through a temp file + ``os.replace`` so concurrent sweep
    workers racing on the same setup key never observe a torn snapshot
    (last writer wins; both wrote identical bytes anyway). ``hits`` /
    ``misses`` / ``stores`` count this store's traffic so tests and
    benches can assert the warm path actually engaged.
    """

    def __init__(
        self,
        root: Optional[Path] = None,
        *,
        enabled: Optional[bool] = None,
    ) -> None:
        if root is None:
            root = (
                Path(os.environ.get("REPRO_CACHE_DIR", ".repro_cache"))
                / "snapshots"
            )
        self.root = Path(root)
        if enabled is None:
            enabled = snapshot_enabled() and not os.environ.get("REPRO_NO_CACHE")
        self.enabled = enabled
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def _path(self, key: SetupKey) -> Path:
        return self.root / key.filename()

    def load(self, key: SetupKey) -> Optional[Tuple[Any, Any]]:
        """The warmed (kernel, workload) pair for ``key``, or ``None``.

        Anything unusable — missing file, torn write, corrupted or
        stale-format blob — counts as a miss and falls back to cold
        setup; the store never raises on bad cache contents.
        """
        if not self.enabled:
            return None
        try:
            blob = self._path(key).read_bytes()
        except OSError:
            self.misses += 1
            return None
        state = restore(blob)
        if state is None:
            self.misses += 1
            return None
        self.hits += 1
        return state

    def save(self, key: SetupKey, kernel: Any, workload: Any) -> None:
        """Capture and persist the warmed pair under ``key``."""
        if not self.enabled:
            return
        blob = capture(kernel, workload)
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(self.root), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(blob)
            os.replace(tmp, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stores += 1
        enforce_size_limit(self.root)

    def clear(self) -> int:
        """Delete every snapshot; returns the number removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.snap"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed
