"""Deterministic kernel snapshots: phase-keyed warm starts for sweeps.

``repro.snapshot`` is the repository's single blessed serialization
path for simulated state (enforced by the simlint ``snapshot-path``
rule). :mod:`repro.snapshot.state` owns the capture/restore contract,
:mod:`repro.snapshot.store` the content-addressed on-disk store keyed by
setup keys, and :mod:`repro.snapshot.budget` the shared
``REPRO_CACHE_MAX_MB`` size management.

See ``docs/API.md`` ("Deterministic kernel snapshots") for the user
surface and ``DESIGN.md`` §7 for the CRIU-style checkpoint/restore
mapping.
"""

from repro.snapshot.budget import cache_max_mb, enforce_size_limit, usage
from repro.snapshot.state import (
    SNAPSHOT_FORMAT,
    capture,
    mode_fingerprint,
    restore,
    snapshot_enabled,
)
from repro.snapshot.store import (
    SetupKey,
    SnapshotStore,
    registry_names,
    setup_key,
)

__all__ = [
    "SNAPSHOT_FORMAT",
    "SetupKey",
    "SnapshotStore",
    "cache_max_mb",
    "capture",
    "enforce_size_limit",
    "mode_fingerprint",
    "registry_names",
    "restore",
    "setup_key",
    "snapshot_enabled",
    "usage",
]
