"""The one blessed serialization path for simulated kernel state.

Every figure cell replays its workload's ``setup()`` load phase before
measuring, even when dozens of cells share a bit-identical warmed
kernel (ops-count sensitivity sweeps, capacity sweeps that only change
measurement-phase knobs, repeated bench reps). This module captures the
*complete* simulated machine after setup — clock and scheduled daemons,
tiers/topology with the frame indexes and referenced journal, all four
allocator families, the KLOC registry/knodes/per-CPU caches and their
incremental counters, the VFS and network object graphs, and the
workload's RNG streams — as one pickle graph, so a later run with the
same setup key can restore instead of replaying.

Why pickle is safe *here* and banned everywhere else (the simlint
``snapshot-path`` rule): correctness rests on class-level contracts that
this module owns and the equivalence suite enforces —

- the whole machine is serialized as **one object graph** (kernel +
  workload in a single ``dumps``), so every shared reference — the
  topology's tier map aliased by ``Kernel._tiers``, the frame journal
  aliased by every resident ``PageFrame``, the registry's coverage set
  aliased by ``Kernel._covered_types`` — is restored as the *same*
  shared object, not a copy;
- callbacks stored in live state (clock daemons, KLOC lifecycle hooks,
  radix-node alloc/free) must be bound methods or module-level
  functions, never closures — the lint rule keeps new closures out;
- identity-compared singletons (the rbtree ``NIL`` sentinel) define
  ``__reduce__`` to resolve back to the module singleton;
- enum members (``PageOwner``, ``KernelObjectType``) pickle by name,
  restoring the interned member, so ``is`` comparisons keep working.

Restored runs are **byte-identical** to cold runs:
``tests/experiments/test_snapshot_equivalence.py`` asserts full-payload
sha256 equality for every workload. ``REPRO_NO_SNAPSHOT=1`` disables
the path entirely (every run replays setup, the pre-snapshot behavior).
"""

from __future__ import annotations

import os
import pickle
import sys
from typing import Any, Optional, Tuple

from repro.core.hotpath import hotpath_enabled
from repro.core.sanitize import sanitize_enabled
from repro.mem.topology import frame_index_enabled

#: Snapshot container format version. Bump whenever the capture contract
#: changes shape (what is serialized, the header layout) so stale blobs
#: written by older code are ignored rather than misread. Orthogonal to
#: ``SIM_VERSION``, which tracks simulated *behavior*.
SNAPSHOT_FORMAT = "1"

#: Pinned pickle protocol: snapshots written by one interpreter must load
#: in any other CPython >= 3.8 this repo supports.
PICKLE_PROTOCOL = 4

#: Deep object graphs (rbtree/radix interiors, long allocator lists) can
#: exceed the default interpreter recursion limit during (de)serialization.
_RECURSION_LIMIT = 200_000


def snapshot_enabled() -> bool:  # simlint: config-site
    """True unless ``REPRO_NO_SNAPSHOT`` is set (to anything non-empty).

    Read at store-construction time, like every other ``REPRO_*`` knob.
    """
    return not os.environ.get("REPRO_NO_SNAPSHOT")


def mode_fingerprint() -> str:  # simlint: config-site
    """The construction-time mode flags baked into pickled objects.

    ``REPRO_NO_HOTPATH`` / ``REPRO_SANITIZE`` / ``REPRO_NO_FRAME_INDEX``
    are read when kernels and topologies are *built* and frozen into
    their structure (flat counters vs legacy dicts, sanitizer ledgers,
    index maps). A snapshot taken in one mode must never be restored
    into a run expecting another, so the fingerprint is part of every
    setup key. All modes are bit-identical in results — segregating them
    costs only duplicate snapshots, never wrong ones.
    """
    return (
        f"hot={int(hotpath_enabled())}"
        f",san={int(sanitize_enabled())}"
        f",idx={int(frame_index_enabled())}"
    )


def capture(kernel: Any, workload: Any) -> bytes:
    """Serialize a warmed (kernel, workload) pair into one snapshot blob.

    Called after ``workload.setup()`` returns; pure read — the live
    objects continue into the measurement phase untouched.
    """
    payload = {
        "format": SNAPSHOT_FORMAT,
        "state": (kernel, workload),
    }
    limit = sys.getrecursionlimit()
    if limit < _RECURSION_LIMIT:
        sys.setrecursionlimit(_RECURSION_LIMIT)
    try:
        return pickle.dumps(payload, protocol=PICKLE_PROTOCOL)
    finally:
        if limit < _RECURSION_LIMIT:
            sys.setrecursionlimit(limit)


def restore(blob: bytes) -> Optional[Tuple[Any, Any]]:
    """Rebuild the (kernel, workload) pair from a snapshot blob.

    Returns ``None`` for anything unusable — truncated or corrupted
    bytes, a foreign pickle, a stale container format — so callers fall
    back to a cold setup instead of crashing. Only blobs this repo wrote
    into its own cache directory are ever loaded.
    """
    limit = sys.getrecursionlimit()
    if limit < _RECURSION_LIMIT:
        sys.setrecursionlimit(_RECURSION_LIMIT)
    try:
        payload = pickle.loads(blob)
    except Exception:  # corrupted/truncated/foreign blob: treat as a miss
        return None
    finally:
        if limit < _RECURSION_LIMIT:
            sys.setrecursionlimit(limit)
    if not isinstance(payload, dict):
        return None
    if payload.get("format") != SNAPSHOT_FORMAT:
        return None
    state = payload.get("state")
    if not isinstance(state, tuple) or len(state) != 2:
        return None
    return state
