"""Size management for the on-disk caches (results + snapshots).

Both the result cache (``.repro_cache/*.json``) and the snapshot store
(``.repro_cache/snapshots/*.snap``) are content-addressed and append-only,
so without a bound they grow forever. ``REPRO_CACHE_MAX_MB`` caps the
total bytes under a cache root; enforcement evicts **oldest first** (by
file modification time, tie-broken by name so eviction order is
deterministic) until the tree fits. Evicting is always safe: a missing
entry is a cache miss, and a missing snapshot falls back to a cold
setup.

Unset (the default) means unbounded, the historical behavior.
``python -m repro.experiments --cache-info`` reports usage;
``--cache-clear`` empties both stores.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, List, Optional, Tuple

#: File kinds the caches own; nothing else under the root is touched.
CACHE_SUFFIXES = (".json", ".snap")

_MB = 1 << 20


def cache_max_mb() -> Optional[int]:  # simlint: config-site
    """The ``REPRO_CACHE_MAX_MB`` budget, or ``None`` when unbounded."""
    raw = os.environ.get("REPRO_CACHE_MAX_MB")
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(f"REPRO_CACHE_MAX_MB must be an integer, got {raw!r}")
    if value < 0:
        raise ValueError(f"REPRO_CACHE_MAX_MB must be >= 0, got {value}")
    return value


def cache_files(root: Path) -> List[Path]:
    """Every cache-owned file under ``root`` (recursive)."""
    if not root.is_dir():
        return []
    out = [
        path
        for path in root.rglob("*")
        if path.suffix in CACHE_SUFFIXES and path.is_file()
    ]
    out.sort()
    return out


def usage(root: Path) -> Dict[str, int]:
    """``{"files": n, "bytes": total}`` for the cache tree at ``root``."""
    files = cache_files(root)
    total = 0
    for path in files:
        try:
            total += path.stat().st_size
        except OSError:
            pass
    return {"files": len(files), "bytes": total}


def enforce_size_limit(
    root: Path, max_mb: Optional[int] = None
) -> List[Path]:
    """Evict oldest cache files under ``root`` until it fits the budget.

    ``max_mb=None`` reads ``REPRO_CACHE_MAX_MB``; still-``None`` means
    unbounded and nothing is touched. Returns the evicted paths (empty
    when under budget). A budget smaller than the newest entry evicts
    everything older and may leave just that entry over budget — the
    bound is best-effort per enforcement pass, re-applied on every
    store.
    """
    if max_mb is None:
        max_mb = cache_max_mb()
    if max_mb is None:
        return []
    budget = max_mb * _MB

    entries: List[Tuple[float, str, int, Path]] = []
    total = 0
    for path in cache_files(root):
        try:
            stat = path.stat()
        except OSError:
            continue
        entries.append((stat.st_mtime, path.name, stat.st_size, path))
        total += stat.st_size
    if total <= budget:
        return []

    entries.sort()  # oldest mtime first; name breaks ties deterministically
    evicted: List[Path] = []
    for _mtime, _name, size, path in entries:
        if total <= budget:
            break
        try:
            path.unlink()
        except OSError:
            continue
        total -= size
        evicted.append(path)
    return evicted
