"""kloc-repro: reproduction of *KLOCs: Kernel-Level Object Contexts for
Heterogeneous Memory Systems* (Kannan, Ren, Bhattacharjee — ASPLOS 2021).

The package simulates the kernel subsystems the paper modifies — memory
tiers, slab/buddy/vmalloc allocators, an ext4-like filesystem, a socket
stack — and implements the paper's contribution (the KLOC abstraction:
knodes, the global kmap, per-CPU knode fast paths, and en-masse kernel
object migration) together with every baseline tiering policy the paper
evaluates against.

Top-level convenience imports expose the public API most users need::

    from repro import Clock, PAGE_SIZE
    from repro.platforms import TwoTierPlatform
    from repro.experiments import run_figure4
"""

from repro.core.clock import Clock
from repro.core.units import GB, KB, MB, MS, NS, PAGE_SIZE, SEC, US

__version__ = "1.0.0"

__all__ = [
    "Clock",
    "PAGE_SIZE",
    "KB",
    "MB",
    "GB",
    "NS",
    "US",
    "MS",
    "SEC",
    "__version__",
]
