"""knodes: the per-inode table of contents over kernel objects.

§4.2.3: "we use the simple approach of incorporating two red-black trees
within each knode — *rbtree-cache* tracks large kernel objects allocated
using non-slab allocators, while *rbtree-slab* tracks smaller kernel
objects allocated using slab allocators."

Table 6's metadata accounting lives here too: 8 bytes of rb-tree pointer
per tracked object plus a 64-byte knode structure per inode.
"""

from __future__ import annotations

from typing import Iterator, List, Set

from repro.alloc.base import KernelObject
from repro.core.hotpath import hotpath_enabled
from repro.core.objtypes import AllocatorKind
from repro.ds.rbtree import NIL, RedBlackTree
from repro.mem.frame import PageFrame

#: sizeof(struct knode) — §7.1: "64 byte KLOC structure attached to each
#: open inode".
KNODE_STRUCT_BYTES = 64
#: Per-object rb-tree pointer — §7.1: "8 byte RB-tree pointer for each
#: cache page and slab object structure".
RB_POINTER_BYTES = 8


class Knode:
    """One KLOC: all kernel objects of one file/socket inode."""

    def __init__(self, knode_id: int, ino: int, *, created_at: int = 0) -> None:
        self.knode_id = knode_id
        self.ino = ino
        self.rbtree_cache = RedBlackTree()
        self.rbtree_slab = RedBlackTree()
        #: §4.3: zeroed on access, incremented by LRU scans that skip it.
        self.age = 0
        #: True while the file/socket is open (§4.1's *inuse*).
        self.inuse = False
        self.created_at = created_at
        self.last_access = created_at
        self.peak_objects = 0
        self._hot = hotpath_enabled()

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------

    def _tree_for(self, obj: KernelObject) -> RedBlackTree:
        if obj.otype.allocator is AllocatorKind.SLAB and obj.allocator in ("slab", "kloc"):
            return self.rbtree_slab
        return self.rbtree_cache

    def add_obj(self, obj: KernelObject) -> None:
        """Table 2's knode_add_obj(): insert into the right subtree."""
        # _tree_for, inlined — one membership change per tracked object
        # alloc/free makes the dispatch call itself measurable.
        if obj.otype.allocator is AllocatorKind.SLAB and obj.allocator in (
            "slab",
            "kloc",
        ):
            self.rbtree_slab.insert(obj.oid, obj)
        else:
            self.rbtree_cache.insert(obj.oid, obj)
        count = len(self.rbtree_cache) + len(self.rbtree_slab)
        if count > self.peak_objects:
            self.peak_objects = count

    def remove_obj(self, obj: KernelObject) -> bool:
        if obj.otype.allocator is AllocatorKind.SLAB and obj.allocator in (
            "slab",
            "kloc",
        ):
            return self.rbtree_slab.delete(obj.oid)
        return self.rbtree_cache.delete(obj.oid)

    def has_obj(self, obj: KernelObject) -> bool:
        return obj.oid in self._tree_for(obj)

    @property
    def object_count(self) -> int:
        return len(self.rbtree_cache) + len(self.rbtree_slab)

    def iter_cache(self) -> Iterator[KernelObject]:
        """Table 2's itr_knode_cache()."""
        return self.rbtree_cache.values()

    def iter_slab(self) -> Iterator[KernelObject]:
        """Table 2's itr_knode_slab()."""
        return self.rbtree_slab.values()

    def iter_all(self) -> Iterator[KernelObject]:
        yield from self.iter_cache()
        yield from self.iter_slab()

    # ------------------------------------------------------------------
    # hotness
    # ------------------------------------------------------------------

    def touch(self, now_ns: int) -> None:
        """A member object was referenced: the KLOC is hot again."""
        self.age = 0
        self.last_access = now_ns

    def tick_age(self) -> int:
        """An LRU pass saw the knode but did not evict it (§4.3)."""
        self.age += 1
        return self.age

    def is_cold(self, cold_age: int) -> bool:
        """Definitely cold when closed; likely cold when aged (§3.2)."""
        if not self.inuse:
            return True
        return self.age >= cold_age

    # ------------------------------------------------------------------
    # migration support
    # ------------------------------------------------------------------

    def frames(self) -> List[PageFrame]:
        """Distinct live backing frames under this knode's subtree — the
        unit batch §4.4 migrates en masse.

        Walks the two subtrees' nodes in-order with an explicit stack
        (cache tree first, as :meth:`iter_all` does) — the daemon calls
        this for every candidate knode per pass, and generator
        resumptions dominated the generator-based formulations.
        ``REPRO_NO_HOTPATH=1`` keeps the :meth:`iter_all` chain (same
        frames, same order).
        """
        seen: Set[int] = set()
        out: List[PageFrame] = []
        if not self._hot:
            for obj in self.iter_all():
                frame = obj.frame
                if frame.freed_at is None:
                    fid = frame.fid
                    if fid not in seen:
                        seen.add(fid)
                        out.append(frame)
            return out
        for tree in (self.rbtree_cache, self.rbtree_slab):
            stack: List = []
            node = tree.root
            while stack or node is not NIL:
                while node is not NIL:
                    stack.append(node)
                    node = node.left
                node = stack.pop()
                frame = node.value.frame
                if frame.freed_at is None:
                    fid = frame.fid
                    if fid not in seen:
                        seen.add(fid)
                        out.append(frame)
                node = node.right
        return out

    # ------------------------------------------------------------------
    # Table 6 accounting
    # ------------------------------------------------------------------

    def metadata_bytes(self) -> int:
        return KNODE_STRUCT_BYTES + RB_POINTER_BYTES * self.object_count

    def __repr__(self) -> str:
        state = "inuse" if self.inuse else f"age={self.age}"
        return (
            f"Knode(#{self.knode_id} ino={self.ino} "
            f"cache={len(self.rbtree_cache)} slab={len(self.rbtree_slab)} {state})"
        )
