"""§4.3's per-CPU knode fast paths.

"We employ a well-known OS approach of creating a 'fast path' cache of
the kmap by implementing per-CPU linked-lists of associated knodes."
A lookup that hits the CPU's list avoids the kmap rbtree entirely; the
paper measures a 54% reduction in rbtree-cache/rbtree-slab accesses.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.hotpath import hot, hotpath_enabled
from repro.ds.percpu import PerCPUListSet
from repro.kloc.kmap import KMap
from repro.kloc.knode import Knode


class PerCPUKnodeCache:
    """Bounded per-CPU lists of knode ids in front of the kmap."""

    def __init__(self, kmap: KMap, num_cpus: int, max_per_cpu: int) -> None:
        self.kmap = kmap
        self.lists: PerCPUListSet[int] = PerCPUListSet(num_cpus, max_per_cpu)
        self._hot = hotpath_enabled()
        #: Bound id→knode shadow ``.get`` — hit-path pointer resolution
        #: without the :meth:`KMap.get_uncounted` call (same result, no
        #: counters either way).
        self._kmap_get = kmap._by_id.get  # noqa: SLF001
        #: Lookups resolved without touching the kmap rbtree.
        self.fast_hits = 0
        self.slow_lookups = 0

    @hot
    def lookup(self, knode_id: int, *, cpu: int) -> Optional[Knode]:
        """Resolve a knode, fast path first.

        A per-CPU hit still needs the Knode object; the simulator fetches
        it via :meth:`KMap.get_uncounted` — only *misses* are charged as
        rbtree accesses, matching the paper's accounting, where the list
        entry holds the knode pointer directly.

        The hot path inlines :meth:`PerCPUListSet.lookup`'s hit sequence
        (deliberate friend access — same membership test, recency refresh,
        and hit counter); ``REPRO_NO_HOTPATH=1`` keeps the layered calls.
        """
        lists = self.lists
        if self._hot:
            if not 0 <= cpu < lists.num_cpus:
                raise IndexError(
                    f"cpu {cpu} out of range [0, {lists.num_cpus})"
                )
            lst = lists._lists[cpu]  # noqa: SLF001 - hot-path friend access
            if knode_id in lst:
                lst.move_to_end(knode_id)
                lists.hits += 1
                self.fast_hits += 1
                return self._kmap_get(knode_id)
            lists.misses += 1
        elif lists.lookup(cpu, knode_id):
            self.fast_hits += 1
            return self.kmap.get_uncounted(knode_id)
        self.slow_lookups += 1
        knode = self.kmap.lookup(knode_id)
        if knode is not None:
            lists.record(cpu, knode_id)
        return knode

    def note_access(self, knode: Knode, *, cpu: int) -> None:
        """Record that ``cpu`` touched ``knode`` (refreshes its list slot)."""
        self.lists.record(cpu, knode.knode_id)

    def invalidate(self, knode_id: int) -> int:
        """Coherence: the knode was deleted or marked inactive (§4.3)."""
        return self.lists.invalidate(knode_id)

    def find_cpu(self, knode_id: int) -> Optional[int]:
        """Table 2's find_cpu(): a CPU that recently touched the knode."""
        cpus = self.lists.find_cpus(knode_id)
        return cpus[-1] if cpus else None

    def knodes_for_cpu(self, cpu: int) -> List[int]:
        return self.lists.entries(cpu)

    def rbtree_access_reduction(self) -> float:
        """Fraction of lookups absorbed by the fast path (§4.3's 54%)."""
        total = self.fast_hits + self.slow_lookups
        return self.fast_hits / total if total else 0.0

    def metadata_bytes(self) -> int:
        """Per-CPU list entries: id + age + links ≈ 24B per entry.

        ``PerCPUListSet.total_entries`` is maintained incrementally, so
        the hot path is pure arithmetic; ``REPRO_NO_HOTPATH=1`` restores
        the every-list walk (same value, O(entries) cost).
        """
        if self._hot:
            return self.lists.total_entries * 24
        return sum(len(self.lists.entries(c)) for c in range(self.lists.num_cpus)) * 24

    def __repr__(self) -> str:
        return (
            f"PerCPUKnodeCache(fast={self.fast_hits}, slow={self.slow_lookups}, "
            f"reduction={self.rbtree_access_reduction():.0%})"
        )
