"""The KLOC abstraction — the paper's contribution.

A *kernel-level object context* groups every kernel object belonging to
one file/socket inode behind a ``knode`` (Figure 1). The pieces:

* :class:`Knode` — per-inode "table of contents": two red-black trees
  (*rbtree-cache* for page-backed objects, *rbtree-slab* for small ones),
  an ``age``, and an ``inuse`` flag.
* :class:`KMap` — global rbtree of all knodes.
* :class:`PerCPUKnodeCache` — §4.3's per-CPU fast-path lists.
* :class:`KlocRegistry` — which allocation sites are redirected to the
  KLOC allocation interface (the "400+ sites").
* :class:`KlocManager` — lifecycle glue driven by the kernel's inode and
  object hooks.
* :class:`KlocMigrationDaemon` — asynchronous en-masse migration of cold
  knodes' objects (§4.4).
* :class:`KlocAPI` — Table 2's interface, verbatim.
"""

from repro.kloc.api import KlocAPI
from repro.kloc.kmap import KMap
from repro.kloc.knode import Knode
from repro.kloc.manager import KlocManager
from repro.kloc.migrationd import KlocMigrationDaemon
from repro.kloc.percpu_cache import PerCPUKnodeCache
from repro.kloc.registry import KlocRegistry

__all__ = [
    "Knode",
    "KMap",
    "PerCPUKnodeCache",
    "KlocRegistry",
    "KlocManager",
    "KlocMigrationDaemon",
    "KlocAPI",
]
