"""The global kmap: every knode in the system, in one RCU red-black tree.

Figure 1: "All the KLOCs in the system are tracked using a kmap." §4.3
protects it with RCU ("multi-reader, single-writer") and fronts it with
the per-CPU lists; the rbtree access counters here are the denominator of
the 54%-reduction statistic.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.errors import SimulationError
from repro.ds.rbtree import RedBlackTree
from repro.ds.rcu import RCUDomain
from repro.kloc.knode import Knode


class KMap:
    """knode_id → Knode, plus LRU extraction for the migration daemon."""

    def __init__(self) -> None:
        self._tree = RedBlackTree()
        # Host-side id → knode shadow of the rbtree. The tree remains the
        # modeled structure (its size drives metadata accounting, its
        # counters drive the §4.3 statistics); the dict just resolves a
        # pointer in O(1) for paths that model a direct pointer chase.
        self._by_id: dict = {}
        self.rcu = RCUDomain("kmap")
        self.rbtree_accesses = 0

    def __len__(self) -> int:
        return len(self._tree)

    def __contains__(self, knode_id: int) -> bool:
        return knode_id in self._tree

    def add(self, knode: Knode) -> None:
        """Table 2's add_to_kmap()."""
        if knode.knode_id in self._by_id:
            raise SimulationError(f"knode {knode.knode_id} already in kmap")
        self.rcu.write()
        self._tree.insert(knode.knode_id, knode)
        self._by_id[knode.knode_id] = knode

    def remove(self, knode_id: int) -> bool:
        self.rcu.write()
        self._by_id.pop(knode_id, None)
        return self._tree.delete(knode_id)

    def lookup(self, knode_id: int) -> Optional[Knode]:
        """rbtree search — the slow path the per-CPU lists short-circuit."""
        self.rcu.read()
        self.rbtree_accesses += 1
        return self._tree.get(knode_id)

    def get_uncounted(self, knode_id: int) -> Optional[Knode]:
        """Resolve a knode without rbtree accounting.

        Models a direct pointer chase — a per-CPU list hit already holds
        the knode pointer (§4.3), so neither the RCU read counter, the
        kmap access counter, nor the tree's search statistics move. This
        is the public API for paths that previously reached into
        ``_tree`` directly.
        """
        return self._by_id.get(knode_id)

    def get_lru_knodes(
        self, limit: Optional[int] = None, *, cold_age: int = 0
    ) -> List[Knode]:
        """Table 2's get_LRU_knodes(): coldest knodes first.

        Closed (not inuse) knodes sort before open ones; within each
        class, older last-access first. ``cold_age`` filters open knodes
        that have not aged enough to be candidates.
        """
        self.rcu.read()
        candidates = [
            k
            for k in self._tree.values()
            if not k.inuse or k.age >= cold_age
        ]
        candidates.sort(key=lambda k: (k.inuse, k.last_access))
        if limit is not None:
            candidates = candidates[:limit]
        return candidates

    def all_knodes(self) -> List[Knode]:
        return list(self._tree.values())

    def total_metadata_bytes(self) -> int:
        return sum(k.metadata_bytes() for k in self._tree.values())

    def __repr__(self) -> str:
        return f"KMap(knodes={len(self)}, rbtree_accesses={self.rbtree_accesses})"
