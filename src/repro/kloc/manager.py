"""KlocManager: the lifecycle glue between inodes, objects, and knodes.

Driven by the kernel's hooks (§4.1: "the OS system call interface ...
allocates kernel objects and adds pointers to them in the knodes"):

* inode created  → knode created, added to kmap (KLOC lifetime == inode
  lifetime, §4.2.2)
* inode opened   → knode ``inuse``, hot
* inode closed   → knode inactive → definitely-cold candidate; the
  ``on_knode_inactive`` callback lets the policy migrate immediately
  ("without waiting for scans of active/inactive lists", §4.5)
* inode unlinked → knode deleted; its objects are *freed*, never migrated
* object alloc/free/access → subtree membership + hotness upkeep
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.alloc.base import KernelObject
from repro.core.clock import Clock
from repro.core.config import KLOCSpec
from repro.core.errors import SimulationError
from repro.kloc.kmap import KMap
from repro.kloc.knode import Knode
from repro.kloc.percpu_cache import PerCPUKnodeCache
from repro.kloc.registry import KlocRegistry
from repro.vfs.inode import Inode


class KlocManager:
    """Owns the kmap, the per-CPU fast paths, and knode lifecycle."""

    def __init__(
        self,
        clock: Clock,
        *,
        num_cpus: int = 16,
        registry: Optional[KlocRegistry] = None,
        spec: Optional[KLOCSpec] = None,
    ) -> None:
        self.clock = clock
        self.spec = spec or KLOCSpec()
        self.registry = registry if registry is not None else KlocRegistry()
        self.kmap = KMap()
        self.percpu = PerCPUKnodeCache(
            self.kmap, num_cpus, self.spec.percpu_list_max
        )
        self._next_knode_id = 1
        #: Fired when a knode transitions to inactive (file/socket closed).
        self.on_knode_inactive: Optional[Callable[[Knode], None]] = None
        #: Fired when a knode becomes active again (reopen).
        self.on_knode_active: Optional[Callable[[Knode], None]] = None
        #: Fired when a knode is deleted (inode unlinked).
        self.on_knode_deleted: Optional[Callable[[Knode], None]] = None
        self.knodes_created = 0
        self.knodes_deleted = 0
        self.peak_metadata_bytes = 0
        #: Running count of rb-tree pointers (8B each), kept so metadata
        #: accounting is O(1) per allocation rather than a kmap walk.
        self._tracked_objects = 0

    # ------------------------------------------------------------------
    # inode lifecycle
    # ------------------------------------------------------------------

    def create_knode(self, inode: Inode, *, cpu: int = 0) -> Knode:
        """map_knode(): new inode → new knode, registered in the kmap."""
        if inode.knode_id is not None:
            raise SimulationError(f"inode {inode.ino} already has a knode")
        knode = Knode(self._next_knode_id, inode.ino, created_at=self.clock.now())
        self._next_knode_id += 1
        inode.knode_id = knode.knode_id
        self.kmap.add(knode)
        self.percpu.note_access(knode, cpu=cpu)
        self.knodes_created += 1
        return knode

    def open_knode(self, inode: Inode, *, cpu: int = 0) -> Optional[Knode]:
        knode = self.knode_for_inode(inode, cpu=cpu)
        if knode is None:
            return None
        was_inactive = not knode.inuse
        knode.inuse = True
        knode.touch(self.clock.now())
        self.percpu.note_access(knode, cpu=cpu)
        if was_inactive and self.on_knode_active is not None:
            self.on_knode_active(knode)
        return knode

    def close_knode(self, inode: Inode, *, cpu: int = 0) -> Optional[Knode]:
        """Mark the knode inactive once its last opener is gone."""
        knode = self.knode_for_inode(inode, cpu=cpu)
        if knode is None:
            return None
        if inode.open_count == 0:
            knode.inuse = False
            # §4.3: inactive knodes are invalidated from the fast paths.
            self.percpu.invalidate(knode.knode_id)
            if self.on_knode_inactive is not None:
                self.on_knode_inactive(knode)
        return knode

    def delete_knode(self, inode: Inode, *, cpu: int = 0) -> Optional[Knode]:
        """Inode deleted → knode deleted (§4.2.2); objects are freed by
        their subsystems, not migrated (§3.2)."""
        if inode.knode_id is None:
            return None
        knode = self.kmap.lookup(inode.knode_id)
        if knode is None:
            return None
        self.percpu.invalidate(knode.knode_id)
        self.kmap.remove(knode.knode_id)
        if self.on_knode_deleted is not None:
            self.on_knode_deleted(knode)
        inode.knode_id = None
        self.knodes_deleted += 1
        return knode

    # ------------------------------------------------------------------
    # object membership
    # ------------------------------------------------------------------

    def add_object(self, inode: Inode, obj: KernelObject, *, cpu: int = 0) -> bool:
        """Attach an object to the inode's knode (knode_add_obj()).

        Returns False when the inode has no knode or the type is outside
        the registry's coverage (excluded from the KLOC abstraction, as in
        Fig 5c's partial configurations).
        """
        if not self.registry.covered(obj.otype):
            return False
        knode = self.knode_for_inode(inode, cpu=cpu)
        if knode is None:
            return False
        obj.knode_id = knode.knode_id
        knode.add_obj(obj)
        knode.touch(self.clock.now())
        self._tracked_objects += 1
        self._note_metadata()
        return True

    def remove_object(self, obj: KernelObject, *, cpu: int = 0) -> bool:
        if obj.knode_id is None:
            return False
        knode = self.percpu.lookup(obj.knode_id, cpu=cpu)
        if knode is None:
            return False
        removed = knode.remove_obj(obj)
        if removed:
            self._tracked_objects -= 1
        return removed

    def note_access(self, obj: KernelObject, *, cpu: int = 0) -> None:
        """A member object was referenced — refresh its KLOC's hotness."""
        if obj.knode_id is None:
            return
        knode = self.percpu.lookup(obj.knode_id, cpu=cpu)
        if knode is not None:
            knode.touch(self.clock.now())
            self.percpu.note_access(knode, cpu=cpu)

    def knode_for_inode(self, inode: Inode, *, cpu: int = 0) -> Optional[Knode]:
        if inode.knode_id is None:
            return None
        return self.percpu.lookup(inode.knode_id, cpu=cpu)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------

    def metadata_bytes(self) -> int:
        """Live KLOC metadata (Table 6's accounting): 64B per knode, 8B of
        rb-tree pointer per tracked object, plus the per-CPU lists."""
        from repro.kloc.knode import KNODE_STRUCT_BYTES, RB_POINTER_BYTES

        return (
            KNODE_STRUCT_BYTES * len(self.kmap)
            + RB_POINTER_BYTES * self._tracked_objects
            + self.percpu.metadata_bytes()
        )

    def _note_metadata(self) -> None:
        self.peak_metadata_bytes = max(self.peak_metadata_bytes, self.metadata_bytes())

    def __repr__(self) -> str:
        return (
            f"KlocManager(knodes={len(self.kmap)}, created={self.knodes_created}, "
            f"deleted={self.knodes_deleted})"
        )
