"""KlocManager: the lifecycle glue between inodes, objects, and knodes.

Driven by the kernel's hooks (§4.1: "the OS system call interface ...
allocates kernel objects and adds pointers to them in the knodes"):

* inode created  → knode created, added to kmap (KLOC lifetime == inode
  lifetime, §4.2.2)
* inode opened   → knode ``inuse``, hot
* inode closed   → knode inactive → definitely-cold candidate; the
  ``on_knode_inactive`` callback lets the policy migrate immediately
  ("without waiting for scans of active/inactive lists", §4.5)
* inode unlinked → knode deleted; its objects are *freed*, never migrated
* object alloc/free/access → subtree membership + hotness upkeep
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.alloc.base import KernelObject
from repro.core.clock import Clock
from repro.core.config import KLOCSpec
from repro.core.errors import SimulationError
from repro.core.hotpath import hot, hotpath_enabled
from repro.core.sanitize import Sanitizer
from repro.kloc.kmap import KMap
from repro.kloc.knode import KNODE_STRUCT_BYTES, RB_POINTER_BYTES, Knode
from repro.kloc.percpu_cache import PerCPUKnodeCache
from repro.kloc.registry import KlocRegistry
from repro.vfs.inode import Inode


class KlocManager:
    """Owns the kmap, the per-CPU fast paths, and knode lifecycle."""

    def __init__(
        self,
        clock: Clock,
        *,
        num_cpus: int = 16,
        registry: Optional[KlocRegistry] = None,
        spec: Optional[KLOCSpec] = None,
        sanitizer: Optional[Sanitizer] = None,
    ) -> None:
        self.clock = clock
        #: The kernel's shared sanitizer (None unless REPRO_SANITIZE=1);
        #: enables the scan-boundary counter cross-checks.
        self.sanitizer = sanitizer
        self.spec = spec or KLOCSpec()
        self.registry = registry if registry is not None else KlocRegistry()
        self.kmap = KMap()
        self.percpu = PerCPUKnodeCache(
            self.kmap, num_cpus, self.spec.percpu_list_max
        )
        self._next_knode_id = 1
        #: Fired when a knode transitions to inactive (file/socket closed).
        self.on_knode_inactive: Optional[Callable[[Knode], None]] = None
        #: Fired when a knode becomes active again (reopen).
        self.on_knode_active: Optional[Callable[[Knode], None]] = None
        #: Fired when a knode is deleted (inode unlinked).
        self.on_knode_deleted: Optional[Callable[[Knode], None]] = None
        self.knodes_created = 0
        self.knodes_deleted = 0
        self.peak_metadata_bytes = 0
        #: Running count of rb-tree pointers (8B each), kept so metadata
        #: accounting is O(1) per allocation rather than a kmap walk.
        self._tracked_objects = 0
        #: Objects whose knode was deleted while they were still members:
        #: their late ``remove_object`` finds no knode and (deliberately)
        #: never decrements ``_tracked_objects``. Counted here so the
        #: sanitizer's recomputation can balance the books exactly.
        self._orphaned_objects = 0
        self._hot = hotpath_enabled()
        #: Live reference to the registry's coverage set (mutations in the
        #: registry stay visible) — hot-path coverage test without the
        #: method call. Legacy mode keeps calling the registry.
        self._covered = self.registry._covered  # noqa: SLF001
        #: Bound ``KMap.get_uncounted`` equivalent (the id→knode shadow's
        #: ``.get``) — the hot lookups resolve pointers without a method
        #: call. Identical result; no counters move either way.
        self._kmap_get = self.kmap._by_id.get  # noqa: SLF001

    # ------------------------------------------------------------------
    # inode lifecycle
    # ------------------------------------------------------------------

    def create_knode(self, inode: Inode, *, cpu: int = 0) -> Knode:
        """map_knode(): new inode → new knode, registered in the kmap."""
        if inode.knode_id is not None:
            raise SimulationError(f"inode {inode.ino} already has a knode")
        knode = Knode(self._next_knode_id, inode.ino, created_at=self.clock.now())
        self._next_knode_id += 1
        inode.knode_id = knode.knode_id
        self.kmap.add(knode)
        self.percpu.note_access(knode, cpu=cpu)
        self.knodes_created += 1
        self._note_metadata()
        return knode

    def open_knode(self, inode: Inode, *, cpu: int = 0) -> Optional[Knode]:
        knode = self.knode_for_inode(inode, cpu=cpu)
        if knode is None:
            return None
        was_inactive = not knode.inuse
        knode.inuse = True
        knode.touch(self.clock.now())
        self.percpu.note_access(knode, cpu=cpu)
        self._note_metadata()
        if was_inactive and self.on_knode_active is not None:
            self.on_knode_active(knode)
        return knode

    def close_knode(self, inode: Inode, *, cpu: int = 0) -> Optional[Knode]:
        """Mark the knode inactive once its last opener is gone."""
        knode = self.knode_for_inode(inode, cpu=cpu)
        if knode is None:
            return None
        if inode.open_count == 0:
            knode.inuse = False
            # §4.3: inactive knodes are invalidated from the fast paths.
            self.percpu.invalidate(knode.knode_id)
            self._note_metadata()
            if self.on_knode_inactive is not None:
                self.on_knode_inactive(knode)
        return knode

    def delete_knode(self, inode: Inode, *, cpu: int = 0) -> Optional[Knode]:
        """Inode deleted → knode deleted (§4.2.2); objects are freed by
        their subsystems, not migrated (§3.2)."""
        if inode.knode_id is None:
            return None
        knode = self.kmap.lookup(inode.knode_id)
        if knode is None:
            return None
        self.percpu.invalidate(knode.knode_id)
        self.kmap.remove(knode.knode_id)
        self._orphaned_objects += knode.object_count
        self.knodes_deleted += 1
        self._note_metadata()
        if self.on_knode_deleted is not None:
            self.on_knode_deleted(knode)
        inode.knode_id = None
        return knode

    # ------------------------------------------------------------------
    # object membership
    # ------------------------------------------------------------------

    @hot
    def add_object(self, inode: Inode, obj: KernelObject, *, cpu: int = 0) -> bool:
        """Attach an object to the inode's knode (knode_add_obj()).

        Returns False when the inode has no knode or the type is outside
        the registry's coverage (excluded from the KLOC abstraction, as in
        Fig 5c's partial configurations).
        """
        if self._hot:
            if obj.otype not in self._covered:
                return False
        elif not self.registry.covered(obj.otype):
            return False
        knode = self.knode_for_inode(inode, cpu=cpu)
        if knode is None:
            return False
        obj.knode_id = knode.knode_id
        knode.add_obj(obj)
        if self._hot:
            # knode.touch(self.clock.now()), inlined.
            knode.age = 0
            knode.last_access = self.clock._now  # noqa: SLF001
        else:
            knode.touch(self.clock.now())
        self._tracked_objects += 1
        self._note_metadata()
        return True

    @hot
    def remove_object(self, obj: KernelObject, *, cpu: int = 0) -> bool:
        kid = obj.knode_id
        if kid is None:
            return False
        if self._hot:
            # Inlined lookup, as in note_access. The peak sample is
            # needed only when the lookup *recorded* a new per-CPU entry:
            # a hit followed by a removal strictly shrinks metadata, and
            # every growth site samples, so the legacy call is a no-op
            # there — observationally identical to skip.
            percpu = self.percpu
            lists = percpu.lists
            if not 0 <= cpu < lists.num_cpus:
                raise IndexError(
                    f"cpu {cpu} out of range [0, {lists.num_cpus})"
                )
            lst = lists._lists[cpu]  # noqa: SLF001 - hot-path access
            recorded = False
            if kid in lst:
                lst.move_to_end(kid)
                lists.hits += 1
                percpu.fast_hits += 1
                knode = self._kmap_get(kid)
            else:
                lists.misses += 1
                percpu.slow_lookups += 1
                knode = self.kmap.lookup(kid)
                if knode is not None:
                    lists.record(cpu, kid)
                    recorded = True
            if knode is None:
                return False
            removed = knode.remove_obj(obj)
            if removed:
                self._tracked_objects -= 1
                if recorded:
                    self._note_metadata()
            return removed
        knode = self.percpu.lookup(kid, cpu=cpu)
        if knode is None:
            return False
        removed = knode.remove_obj(obj)
        if removed:
            self._tracked_objects -= 1
            self._note_metadata()
        return removed

    @hot
    def note_access(
        self, obj: KernelObject, *, cpu: int = 0, now_ns: Optional[int] = None
    ) -> None:
        """A member object was referenced — refresh its KLOC's hotness.

        ``now_ns`` lets batched charge paths pass the access's computed
        virtual time instead of re-reading the clock (identical value —
        the caller reads the clock either way).

        Hot-path note: after a successful :meth:`PerCPUKnodeCache.lookup`
        the knode is already on ``cpu``'s list at the MRU end (a hit
        refreshes recency; a miss records it), so the legacy trailing
        ``percpu.note_access`` is a state- and counter-level no-op — the
        flat path drops it. ``REPRO_NO_HOTPATH=1`` restores the call.
        """
        kid = obj.knode_id
        if kid is None:
            return
        if self._hot:
            # Fully inlined lookup (same counters, same recency refresh
            # as PerCPUKnodeCache.lookup) — this is the single most
            # frequent accounting call, one per charged object access.
            percpu = self.percpu
            lists = percpu.lists
            if not 0 <= cpu < lists.num_cpus:
                raise IndexError(
                    f"cpu {cpu} out of range [0, {lists.num_cpus})"
                )
            lst = lists._lists[cpu]  # noqa: SLF001 - hot-path access
            if kid in lst:
                lst.move_to_end(kid)
                lists.hits += 1
                percpu.fast_hits += 1
                knode = self._kmap_get(kid)
            else:
                lists.misses += 1
                percpu.slow_lookups += 1
                knode = self.kmap.lookup(kid)
                if knode is not None:
                    lists.record(cpu, kid)
                    # _note_metadata(), inlined — only the recorded miss
                    # can grow metadata; on a hit the legacy sample is a
                    # no-op (every growth site already samples the peak).
                    size = (
                        KNODE_STRUCT_BYTES
                        * (self.knodes_created - self.knodes_deleted)
                        + RB_POINTER_BYTES * self._tracked_objects
                        + lists.total_entries * 24
                    )
                    if size > self.peak_metadata_bytes:
                        self.peak_metadata_bytes = size
            if knode is None:
                return
            knode.age = 0
            knode.last_access = (
                self.clock._now if now_ns is None else now_ns  # noqa: SLF001
            )
            return
        knode = self.percpu.lookup(kid, cpu=cpu)
        if knode is not None:
            now = self.clock.now() if now_ns is None else now_ns
            knode.age = 0
            knode.last_access = now
            self.percpu.note_access(knode, cpu=cpu)
            # A found lookup may have recorded a new per-CPU entry.
            self._note_metadata()

    @hot
    def knode_for_inode(self, inode: Inode, *, cpu: int = 0) -> Optional[Knode]:
        kid = inode.knode_id
        if kid is None:
            return None
        if self._hot:
            # Inlined lookup; the peak sample matters only when the miss
            # path recorded a new per-CPU entry (a hit changes nothing).
            percpu = self.percpu
            lists = percpu.lists
            if not 0 <= cpu < lists.num_cpus:
                raise IndexError(
                    f"cpu {cpu} out of range [0, {lists.num_cpus})"
                )
            lst = lists._lists[cpu]  # noqa: SLF001 - hot-path access
            if kid in lst:
                lst.move_to_end(kid)
                lists.hits += 1
                percpu.fast_hits += 1
                return self._kmap_get(kid)
            lists.misses += 1
            percpu.slow_lookups += 1
            knode = self.kmap.lookup(kid)
            if knode is not None:
                lists.record(cpu, kid)
                self._note_metadata()
            return knode
        knode = self.percpu.lookup(kid, cpu=cpu)
        if knode is not None:
            self._note_metadata()
        return knode

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------

    def metadata_bytes(self) -> int:
        """Live KLOC metadata (Table 6's accounting): 64B per knode, 8B of
        rb-tree pointer per tracked object, plus the per-CPU lists.

        Every term is a maintained counter on the hot path, so this (and
        the peak sampling built on it) is pure arithmetic per call.
        """
        return (
            KNODE_STRUCT_BYTES * len(self.kmap)
            + RB_POINTER_BYTES * self._tracked_objects
            + self.percpu.metadata_bytes()
        )

    @hot
    def _note_metadata(self) -> None:
        """Sample the peak after any mutation that can grow metadata.

        Called from every site that changes the kmap population, the
        tracked-object count, or the per-CPU lists — not just object
        attach — so short runs no longer under-report the peak.

        The hot path computes the size from maintained counters with no
        calls at all: ``knodes_created - knodes_deleted`` is the kmap
        population (knodes only leave via :meth:`delete_knode`), and the
        per-CPU entry count is a live attribute. ``REPRO_NO_HOTPATH=1``
        recomputes via :meth:`metadata_bytes`'s structure walks.
        """
        if self._hot:
            size = (
                KNODE_STRUCT_BYTES * (self.knodes_created - self.knodes_deleted)
                + RB_POINTER_BYTES * self._tracked_objects
                + self.percpu.lists.total_entries * 24
            )
        else:
            size = self.metadata_bytes()
        if size > self.peak_metadata_bytes:
            self.peak_metadata_bytes = size

    def verify_counters(self) -> None:
        """Sanitizer cross-check: every incrementally maintained counter
        must equal a full recomputation from the live structures.

        Called by the migration daemon at scan boundaries and by kernel
        teardown when ``REPRO_SANITIZE=1``; a no-op otherwise. Read-only —
        the recomputation touches no counters and charges no time.
        """
        san = self.sanitizer
        if san is None:
            return
        knodes = self.kmap.all_knodes()
        san.expect(
            "kmap population (knodes_created - knodes_deleted)",
            self.knodes_created - self.knodes_deleted,
            len(knodes),
        )
        members = 0
        for knode in knodes:
            members += knode.object_count
        san.expect(
            "KlocManager._tracked_objects (rb-tree pointers)",
            self._tracked_objects,
            members + self._orphaned_objects,
        )
        lists = self.percpu.lists
        recounted = 0
        for lst in lists._lists:  # noqa: SLF001 - ground-truth recount
            recounted += len(lst)
        san.expect(
            "PerCPUListSet.total_entries", lists.total_entries, recounted
        )

    def __repr__(self) -> str:
        return (
            f"KlocManager(knodes={len(self.kmap)}, created={self.knodes_created}, "
            f"deleted={self.knodes_deleted})"
        )
