"""The KLOC migration daemon (§4.4 / §5).

"Kernel object migrations are asynchronous, and we use dedicated kernel
threads to migrate kernel objects associated with active and inactive
knodes between fast and slow memory."

Each run:

1. **Downgrade** — cold knodes (closed, or open but aged past the
   threshold) have every relocatable frame under their subtree migrated
   to slow memory en masse. This is the dominant direction (§4.4: 88% of
   migrations are downgrades, 79% of those page-cache pages).
2. **Upgrade** — active knodes with slow-resident frames are pulled back
   to fast memory while capacity (minus the configured reserve) allows —
   the 4–12% reverse migrations.
3. **Aging** — knodes untouched since the previous run age by one round.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.core.config import KLOCSpec
from repro.mem.frame import PageFrame
from repro.mem.migration import MigrationEngine
from repro.mem.topology import MemoryTopology

if TYPE_CHECKING:
    from repro.alloc.kloc_alloc import KlocAllocator
    from repro.kloc.knode import Knode
    from repro.kloc.manager import KlocManager


class KlocMigrationDaemon:
    """Asynchronous knode-granularity migration between two tiers."""

    def __init__(
        self,
        manager: "KlocManager",
        engine: MigrationEngine,
        topology: MemoryTopology,
        *,
        fast_tier: str = "fast",
        slow_tier: str = "slow",
        kloc_allocator: Optional["KlocAllocator"] = None,
        spec: Optional[KLOCSpec] = None,
        background_charge=None,
    ) -> None:
        self.manager = manager
        self.engine = engine
        self.topology = topology
        self.fast_tier = fast_tier
        self.slow_tier = slow_tier
        self.kloc_allocator = kloc_allocator
        self.spec = spec or manager.spec
        #: Called with each batch's cost: migration threads burn CPU even
        #: though they run asynchronously (§5 notes the dedicated threads).
        self.background_charge = background_charge
        self.runs = 0
        self.downgraded_pages = 0
        self.upgraded_pages = 0
        self._last_run_ns = 0
        self.started = False
        #: Knodes marked definitely-cold (closed) awaiting the next daemon
        #: pass. Migration is asynchronous (§5); deferring it one tick also
        #: means close-then-unlink sequences free their objects instead of
        #: pointlessly migrating them (§3.2 implication two).
        self.pending: "OrderedDict[int, Knode]" = OrderedDict()
        #: Downgrades run only while fast memory is under pressure —
        #: §4.1: "The exact number of pages, kernel objects, and KLOCs to
        #: migrate depends upon memory pressure and LRU policies." The
        #: target is sized so a flush-burst's worth of direct allocations
        #: always finds fast pages free (kswapd-style high watermark).
        self.free_target_frac = 0.12

    def start(self) -> None:
        """Register the periodic daemon on the clock (idempotent)."""
        if self.started:
            return
        self.manager.clock.schedule_periodic(self.spec.migrate_period_ns, self.run)
        self.started = True

    # ------------------------------------------------------------------

    def knode_frames(self, knode: "Knode") -> List[PageFrame]:
        """All live frames under the knode subtree, including the KLOC
        allocator's knode-grouped slab-replacement pages."""
        frames = {f.fid: f for f in knode.frames()}
        if self.kloc_allocator is not None:
            for frame in self.kloc_allocator.knode_frames(knode.knode_id):
                if frame.live:
                    frames.setdefault(frame.fid, frame)
        return list(frames.values())

    def downgrade_knode(self, knode: "Knode") -> int:
        """Move one cold knode's objects to slow memory (en masse)."""
        victims = [
            f for f in self.knode_frames(knode) if f.tier_name == self.fast_tier
        ]
        if not victims:
            return 0
        result = self.engine.migrate(victims, self.slow_tier, charge_time=False)
        if self.background_charge is not None:
            self.background_charge(result.cost_ns)
        self.downgraded_pages += result.moved
        return result.moved

    #: Upper bound on pages one upgrade pulls — keeps a huge reopened file
    #: from monopolizing the migration thread (reverse migrations are only
    #: 4-12% of traffic in the paper, §4.4). Individual hot pages beyond
    #: this come up through the reference-driven promote scan.
    UPGRADE_BATCH = 64

    def upgrade_knode(self, knode: "Knode", *, limit: Optional[int] = None) -> int:
        """Pull an active knode's slow-resident objects into fast memory,
        respecting the sys_kloc_memsize() capacity cap."""
        fast = self.topology.tier(self.fast_tier)
        budget_pages = int(fast.capacity_pages * self.spec.fast_capacity_fraction)
        kernel_used = self.topology.kernel_pages_in(self.fast_tier)
        batch = min(limit, self.UPGRADE_BATCH) if limit is not None else self.UPGRADE_BATCH
        headroom = min(budget_pages - kernel_used, fast.free_pages, batch)
        if headroom <= 0:
            return 0
        candidates = [
            f for f in self.knode_frames(knode) if f.tier_name == self.slow_tier
        ][:headroom]
        if not candidates:
            return 0
        result = self.engine.migrate(candidates, self.fast_tier, charge_time=False)
        if self.background_charge is not None:
            self.background_charge(result.cost_ns)
        self.upgraded_pages += result.moved
        return result.moved

    def mark_cold(self, knode: "Knode") -> None:
        """Queue a definitely-cold knode for the next daemon pass."""
        self.pending[knode.knode_id] = knode

    def unmark(self, knode_id: int) -> None:
        """Drop a queued knode (deleted, or reopened before the pass)."""
        self.pending.pop(knode_id, None)

    def fast_free_deficit(self) -> int:
        """Pages short of the free-watermark target (0 = no pressure)."""
        fast = self.topology.tier(self.fast_tier)
        target = int(fast.capacity_pages * self.free_target_frac)
        return max(0, target - fast.free_pages)

    def run(self, now_ns: int = 0) -> Dict[str, int]:
        """One daemon pass: age knodes, then reclaim under pressure.

        Downgrades sweep the *coldest* knodes first (closed before open,
        then by last access — the kmap's LRU order) and stop as soon as
        the fast tier's free watermark is restored, so a cold knode with
        no fast-resident pages costs nothing and hot knodes are never
        touched.
        """
        self.runs += 1
        moved_down = 0
        moved_up = 0
        for knode in self.manager.kmap.all_knodes():
            touched = knode.last_access >= self._last_run_ns
            if not touched:
                knode.tick_age()
            elif knode.inuse and knode.age == 0:
                moved_up += self.upgrade_knode(knode)

        deficit = self.fast_free_deficit()
        if deficit > 0:
            # Definitely-cold (closed) knodes first: the short-circuit.
            while self.pending and moved_down < deficit:
                _id, knode = self.pending.popitem(last=False)
                if not knode.inuse:
                    moved_down += self.downgrade_knode(knode)
            # Then likely-cold open knodes, coldest first.
            if moved_down < deficit:
                for knode in self.manager.kmap.get_lru_knodes(
                    cold_age=self.spec.cold_age_rounds
                ):
                    if moved_down >= deficit:
                        break
                    if knode.is_cold(self.spec.cold_age_rounds):
                        moved_down += self.downgrade_knode(knode)

        self._last_run_ns = now_ns or self.manager.clock.now()
        if self.manager.sanitizer is not None:
            # Scan boundary (REPRO_SANITIZE=1): cross-check the incremental
            # metadata counters against a full structure recomputation, and
            # the topology's indexes against the frame table. Read-only —
            # no clock or counter movement, so the pass's simulated
            # behavior is unchanged.
            self.manager.verify_counters()
            self.topology.check_invariants()
        return {"downgraded": moved_down, "upgraded": moved_up}

    def migration_mix(self) -> Dict[str, float]:
        """Fraction of migrations by direction (cf. §4.4's 88% / 12%)."""
        total = self.downgraded_pages + self.upgraded_pages
        if not total:
            return {"downgrade": 0.0, "upgrade": 0.0}
        return {
            "downgrade": self.downgraded_pages / total,
            "upgrade": self.upgraded_pages / total,
        }

    def __repr__(self) -> str:
        return (
            f"KlocMigrationDaemon(runs={self.runs}, "
            f"down={self.downgraded_pages}, up={self.upgraded_pages})"
        )
