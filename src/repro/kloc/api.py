"""Table 2's KLOC API, name for name.

The paper exposes two system calls to administrators and a handful of
kernel-internal functions to OS developers. This module provides the same
surface over :class:`~repro.kloc.manager.KlocManager`, so examples and
tests can be written against the paper's interface verbatim.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List, Optional

from repro.core.config import KLOCSpec
from repro.core.errors import ConfigError

if TYPE_CHECKING:
    from repro.alloc.base import KernelObject
    from repro.kloc.kmap import KMap
    from repro.kloc.knode import Knode
    from repro.kloc.manager import KlocManager
    from repro.vfs.inode import Inode


class KlocAPI:
    """Table 2, as callable methods."""

    def __init__(self, manager: "KlocManager") -> None:
        self.manager = manager
        self._enabled_for: set = set()

    # -- Admin-facing system calls -------------------------------------

    def sys_enable_kloc(self, app_name: str) -> bool:
        """System call to enable KLOC for an application (via the shared
        user-level library, §4.2.1). Idempotent per application."""
        if not app_name:
            raise ConfigError("application name required")
        fresh = app_name not in self._enabled_for
        self._enabled_for.add(app_name)
        return fresh

    def sys_kloc_memsize(self, memtype: str, size_fraction: float) -> None:
        """System call to limit KLOC's use of one memory type's capacity."""
        if memtype != "fast":
            raise ConfigError(f"only the fast tier is capped: {memtype!r}")
        if not 0.0 < size_fraction <= 1.0:
            raise ConfigError(f"fraction out of range: {size_fraction}")
        spec = self.manager.spec
        self.manager.spec = KLOCSpec(
            percpu_list_max=spec.percpu_list_max,
            migrate_period_ns=spec.migrate_period_ns,
            cold_age_rounds=spec.cold_age_rounds,
            fast_capacity_fraction=size_fraction,
        )

    # -- OS-developer functions -----------------------------------------

    def map_knode(self, inode: "Inode", *, cpu: int = 0) -> "Knode":
        """Map a new inode to a knode."""
        return self.manager.create_knode(inode, cpu=cpu)

    def knode_add_obj(self, knode: "Knode", obj: "KernelObject") -> None:
        """Add kernel object to a knode."""
        obj.knode_id = knode.knode_id
        knode.add_obj(obj)
        self.manager._tracked_objects += 1  # noqa: SLF001 - same accounting path

    def itr_knode_slab(self, knode: "Knode") -> Iterator["KernelObject"]:
        """Iterate knode's kernel objects in the slab tree."""
        return knode.iter_slab()

    def itr_knode_cache(self, knode: "Knode") -> Iterator["KernelObject"]:
        """Iterate knode's kernel objects in the page-cache tree."""
        return knode.iter_cache()

    def add_to_kmap(self, knode: "Knode") -> None:
        """Add knode to the global kmap."""
        self.manager.kmap.add(knode)

    def get_lru_knodes(self, kmap: Optional["KMap"] = None, limit: int = 32) -> List["Knode"]:
        """Get LRU knodes from kmap."""
        target = kmap if kmap is not None else self.manager.kmap
        return target.get_lru_knodes(limit)

    def find_cpu(self, knode: "Knode") -> Optional[int]:
        """Find CPU that last accessed a knode."""
        return self.manager.percpu.find_cpu(knode.knode_id)

    def __repr__(self) -> str:
        return f"KlocAPI(enabled_for={sorted(self._enabled_for)})"
