"""Allocation-site redirection registry.

§1/§4.2: "via systematic study, [we] are able to redirect 400+ allocation
sites to our interface." The registry records, per kernel object type,
whether its allocation sites are redirected to the KLOC allocation
interface (relocatable, knode-grouped) and whether the type participates
in KLOC tiering at all — the switch Fig 5c's incremental-coverage
experiment turns group by group.
"""

from __future__ import annotations

from typing import Dict, Iterable, Set

from repro.core.errors import ConfigError
from repro.core.objtypes import FIG5C_GROUPS, KernelObjectType

#: Approximate redirected call-site counts per type, from the paper's
#: "400+" spread over the ext4/net/block subsystems it lists in §5.
ALLOCATION_SITES: Dict[KernelObjectType, int] = {
    KernelObjectType.INODE: 35,
    KernelObjectType.BLOCK: 48,
    KernelObjectType.JOURNAL: 42,
    KernelObjectType.PAGE_CACHE: 66,
    KernelObjectType.DENTRY: 31,
    KernelObjectType.EXTENT: 27,
    KernelObjectType.BLK_MQ: 29,
    KernelObjectType.RADIX_NODE: 33,
    KernelObjectType.SOCK: 24,
    KernelObjectType.SKBUFF: 38,
    KernelObjectType.SKBUFF_DATA: 30,
    KernelObjectType.RX_BUF: 21,
}


class KlocRegistry:
    """Which object types are under KLOC management right now."""

    def __init__(self, covered: Iterable[KernelObjectType] = tuple(KernelObjectType)) -> None:
        self._covered: Set[KernelObjectType] = set(covered)

    @classmethod
    def none(cls) -> "KlocRegistry":
        """No coverage: every site keeps its legacy allocator."""
        return cls(covered=())

    @classmethod
    def groups(cls, *names: str) -> "KlocRegistry":
        """Coverage by Fig 5c group names, e.g. groups('page_cache', 'slab')."""
        registry = cls.none()
        for name in names:
            registry.enable_group(name)
        return registry

    def enable(self, otype: KernelObjectType) -> None:
        self._covered.add(otype)

    def disable(self, otype: KernelObjectType) -> None:
        self._covered.discard(otype)

    def enable_group(self, name: str) -> None:
        for otype in self._group(name):
            self._covered.add(otype)

    def disable_group(self, name: str) -> None:
        for otype in self._group(name):
            self._covered.discard(otype)

    @staticmethod
    def _group(name: str):
        try:
            return FIG5C_GROUPS[name]
        except KeyError:
            raise ConfigError(
                f"unknown KLOC object group {name!r}; "
                f"choose from {sorted(FIG5C_GROUPS)}"
            ) from None

    def covered(self, otype: KernelObjectType) -> bool:
        return otype in self._covered

    def covered_types(self) -> Set[KernelObjectType]:
        return set(self._covered)

    def redirected_sites(self) -> int:
        """How many kernel allocation call sites the current coverage
        redirects — full coverage exceeds the paper's 400."""
        # simlint: ok[hash-order] integer sum is order-independent
        return sum(ALLOCATION_SITES[t] for t in self._covered)

    def __repr__(self) -> str:
        return (
            f"KlocRegistry(types={len(self._covered)}, "
            f"sites={self.redirected_sites()})"
        )
