"""Page migration engine with Nimble-style parallel page copy.

§4.4: once cold KLOCs are identified, all kernel objects under the knode
subtree are migrated together. The cost of moving one page is one source
read + one destination write + a fixed remap overhead (page-table/radix
updates and TLB shootdown). Nimble parallelizes the copy across kernel
threads; the remap portion stays serialized.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.core.clock import Clock
from repro.core.config import MigrationSpec
from repro.core.errors import MigrationError
from repro.core.units import PAGE_SIZE
from repro.mem.frame import PageFrame
from repro.mem.topology import MemoryTopology


@dataclass
class MigrationResult:
    """Outcome of one migration batch."""

    moved: int = 0
    skipped_nonrelocatable: int = 0
    skipped_pinned: int = 0
    cost_ns: int = 0
    frames: List[PageFrame] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.moved > 0


class MigrationEngine:
    """Moves batches of page frames between tiers, charging virtual time."""

    def __init__(
        self,
        topology: MemoryTopology,
        clock: Clock,
        spec: Optional[MigrationSpec] = None,
    ) -> None:
        self.topology = topology
        self.clock = clock
        self.spec = spec or MigrationSpec()
        self.total_moved = 0
        self.total_cost_ns = 0

    def migrate(
        self,
        frames: Iterable[PageFrame],
        dst_tier_name: str,
        *,
        strict: bool = False,
        charge_time: bool = True,
    ) -> MigrationResult:
        """Migrate a batch of frames to ``dst_tier_name``.

        Non-relocatable (slab physical-address) frames are skipped — or, in
        ``strict`` mode, abort the batch with :class:`MigrationError`,
        modeling a kernel that never even attempts them. Frames pinned to
        fast memory by the ping-pong guard (§4.5 8-bit counters) are
        skipped when moving *away* from fast memory.

        ``charge_time=False`` models fully-asynchronous migration daemons
        whose copy work overlaps application progress; the bandwidth cost
        is still recorded in the engine's counters.
        """
        dst = self.topology.tier(dst_tier_name)
        result = MigrationResult()
        movable: List[PageFrame] = []
        for frame in frames:
            if not frame.live or frame.tier_name == dst_tier_name:
                continue
            if not frame.relocatable:
                if strict:
                    raise MigrationError(
                        f"frame {frame.fid} ({frame.obj_type or frame.owner.value}) "
                        "is slab-allocated and not relocatable"
                    )
                result.skipped_nonrelocatable += 1
                continue
            if frame.pinned_fast and dst_tier_name != "fast":
                result.skipped_pinned += 1
                continue
            movable.append(frame)

        if not movable:
            return result

        # The destination only fills up (nothing frees mid-batch), so the
        # per-frame has_room check collapses to a headroom prefix.
        headroom = dst.free_pages
        if headroom < len(movable):
            movable = movable[:headroom]

        # Batch-group the copies by source tier: the per-page cost is
        # state-independent within a batch, so one read-cost and one
        # write-cost computation per (src, dst) pair prices the whole
        # group — identical totals, O(tiers) instead of O(pages) calls.
        per_src: Dict[str, int] = {}
        for frame in movable:
            per_src[frame.tier_name] = per_src.get(frame.tier_name, 0) + 1
            self.topology.move_frame(frame, dst_tier_name)
            result.frames.append(frame)
        moved = len(movable)
        copy_ns = 0
        for src_name, count in per_src.items():
            src = self.topology.tier(src_name)
            copy_ns += src.bulk_access_cost_ns(PAGE_SIZE, count, write=False)
            copy_ns += dst.bulk_access_cost_ns(PAGE_SIZE, count, write=True)

        # Nimble-style parallel migration: both the page copies and the
        # per-page remap work (page tables, batched TLB shootdowns) are
        # spread across the migration threads. Huge pages (compound
        # groups) need only ONE remap per 2MB — the mechanism behind §5's
        # THP hypothesis.
        remap_units = len(
            {f.compound_id for f in result.frames if f.compound_id is not None}
        ) + sum(1 for f in result.frames if f.compound_id is None)
        parallel_copy_ns = copy_ns // self.spec.copy_threads
        remap_ns = remap_units * self.spec.remap_overhead_ns // self.spec.copy_threads
        result.cost_ns = parallel_copy_ns + remap_ns
        result.moved = moved

        self.total_moved += moved
        self.total_cost_ns += result.cost_ns
        if charge_time and result.cost_ns:
            self.clock.advance(result.cost_ns)
        return result

    def __repr__(self) -> str:
        return (
            f"MigrationEngine(moved={self.total_moved}, "
            f"cost={self.total_cost_ns}ns, threads={self.spec.copy_threads})"
        )
