"""Memory topology: the set of tiers plus frame allocation/free/accounting.

The topology is deliberately dumb about *policy*: callers (the kernel
facade and the tiering policies) decide which tier to try first and what
to do on pressure. The topology enforces capacity, tracks every live and
retired frame, and keeps the per-(tier, owner) counters that the
motivation and evaluation figures are built from.
"""

from __future__ import annotations

import os
from collections import defaultdict, deque
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from repro.core.errors import AllocationError, SimulationError
from repro.core.config import TierSpec
from repro.core.hotpath import hot, hotpath_enabled
from repro.core.sanitize import Sanitizer, call_site, sanitize_enabled
from repro.mem.frame import PageFrame, PageOwner
from repro.mem.tier import MemoryTier


def _by_fid(frame: PageFrame) -> int:
    return frame.fid


def frame_index_enabled() -> bool:  # simlint: config-site
    """Whether scanners should use the resident-frame indexes.

    ``REPRO_NO_FRAME_INDEX=1`` forces the brute-force global frame walk —
    results are bit-identical either way (guarded by the equivalence
    test); the knob exists for the scan benchmark's baseline and for
    bisecting suspected index bugs.
    """
    return not os.environ.get("REPRO_NO_FRAME_INDEX")


class MemoryTopology:
    """All memory tiers in a platform plus global frame bookkeeping.

    Besides the global ``frames`` table, the topology maintains
    **resident-frame indexes** so periodic scanners touch only their
    candidates instead of every live frame:

    * per-tier views (``resident_frames``) — fid-keyed dicts of the
      frames currently homed on one tier;
    * per-(tier, owner) views (``resident_frames_by_owner``);
    * a referenced-since-last-drain journal (``drain_referenced``), fed
      by :meth:`PageFrame.record_access` and by allocation (a fresh
      frame counts as touched, exactly as the brute-force scan's
      ``last_access >= last_scan`` predicate sees it).

    All three are updated at the three mutation points (`_make_frame`,
    `free`, `move_frame`) and cross-checked by :meth:`check_invariants`.
    """

    def __init__(
        self,
        tier_specs: Sequence[TierSpec],
        *,
        retired_limit: Optional[int] = None,
    ) -> None:
        if not tier_specs:
            raise ValueError("topology needs at least one tier")
        self.tiers: Dict[str, MemoryTier] = {}
        for spec in tier_specs:
            if spec.name in self.tiers:
                raise ValueError(f"duplicate tier name: {spec.name}")
            self.tiers[spec.name] = MemoryTier(spec)
        self._next_fid = 0
        #: Hot-path flag for :meth:`allocate`'s single-page shortcut;
        #: ``REPRO_NO_HOTPATH=1`` keeps the generic placement loop for
        #: every allocation (same result, legacy cost).
        self._single_fast = hotpath_enabled()
        #: The shared free-site ledger when ``REPRO_SANITIZE=1``; every
        #: allocator picks this up from the topology it is built on, and
        #: the kernel threads it into the KLOC manager — one coherent
        #: ledger per simulated machine. None when the mode is off.
        self.sanitizer: Optional[Sanitizer] = (
            Sanitizer() if sanitize_enabled() else None
        )
        self.frames: Dict[int, PageFrame] = {}
        #: Retired frames kept for lifetime analysis (Fig 2d).
        #: ``retired_limit=None`` keeps every freed frame (full-fidelity
        #: lifetime analysis); an integer keeps only the most recent N so
        #: long sweeps that never read lifetimes stay bounded.
        self.retired_limit = retired_limit
        self.retired = (
            [] if retired_limit is None else deque(maxlen=retired_limit)
        )
        # --- resident-frame indexes (see class docstring) ---
        self._tier_frames: Dict[str, Dict[int, PageFrame]] = {
            name: {} for name in self.tiers
        }
        self._tier_owner_frames: Dict[tuple, Dict[int, PageFrame]] = defaultdict(
            dict
        )
        self._referenced: Dict[int, PageFrame] = {}
        # --- counters the figures are built from ---
        #: pages ever allocated, keyed by (tier, owner)
        self.alloc_count: Dict[tuple, int] = defaultdict(int)
        #: live pages right now, keyed by (tier, owner)
        self.live_count: Dict[tuple, int] = defaultdict(int)
        #: pages migrated, keyed by (src_tier, dst_tier, owner)
        self.migration_count: Dict[tuple, int] = defaultdict(int)

    # ------------------------------------------------------------------
    # allocation / free
    # ------------------------------------------------------------------

    def allocate(
        self,
        npages: int,
        tier_order: Sequence[str],
        owner: PageOwner,
        *,
        node_id: int = 0,
        obj_type: Optional[str] = None,
        knode_id: Optional[int] = None,
        relocatable: bool = True,
        now_ns: int = 0,
    ) -> List[PageFrame]:
        """Allocate ``npages`` frames, trying tiers in ``tier_order``.

        A single allocation may span tiers (the first tier takes what it
        can, the rest spills to the next), mirroring a kernel falling back
        across zones. Raises :class:`AllocationError` if the order is
        exhausted — the kernel layer is expected to reclaim and retry.
        """
        if npages <= 0:
            raise ValueError(f"allocation must be positive: {npages}")
        if npages == 1 and self._single_fast:
            # Single page (the per-object common case): first tier with a
            # free page wins — no partial-placement machinery needed.
            tiers = self.tiers
            for tier_name in tier_order:
                tier = tiers.get(tier_name)
                if tier is None:
                    raise SimulationError(f"unknown tier: {tier_name!r}")
                if tier.used_pages < tier.capacity_pages:
                    return [
                        self._make_frame(
                            tier,
                            owner,
                            node_id=node_id,
                            obj_type=obj_type,
                            knode_id=knode_id,
                            relocatable=relocatable,
                            now_ns=now_ns,
                        )
                    ]
            raise AllocationError(
                f"cannot place 1 page (short 1) in tiers {list(tier_order)}"
            )
        placed: List[PageFrame] = []
        remaining = npages
        for tier_name in tier_order:
            tier = self._tier(tier_name)
            take = min(remaining, tier.free_pages)
            for _ in range(take):
                placed.append(
                    self._make_frame(
                        tier,
                        owner,
                        node_id=node_id,
                        obj_type=obj_type,
                        knode_id=knode_id,
                        relocatable=relocatable,
                        now_ns=now_ns,
                    )
                )
            remaining -= take
            if remaining == 0:
                return placed
        # Roll back the partial placement so failed allocations are atomic.
        for frame in placed:
            self.free(frame, now_ns=now_ns, retire=False)
            self.frames.pop(frame.fid, None)
        raise AllocationError(
            f"cannot place {npages} pages (short {remaining}) in tiers {list(tier_order)}"
        )

    def try_allocate(
        self, npages: int, tier_order: Sequence[str], owner: PageOwner, **kwargs
    ) -> Optional[List[PageFrame]]:
        """Like :meth:`allocate` but returns None instead of raising."""
        try:
            return self.allocate(npages, tier_order, owner, **kwargs)
        except AllocationError:
            return None

    @hot
    def _make_frame(
        self,
        tier: MemoryTier,
        owner: PageOwner,
        *,
        node_id: int,
        obj_type: Optional[str],
        knode_id: Optional[int],
        relocatable: bool,
        now_ns: int,
    ) -> PageFrame:
        # tier.reserve(1), inlined — every caller has already checked
        # capacity, so the over-commit guard cannot trip here.
        used = tier.used_pages + 1
        tier.used_pages = used
        tier.total_allocs += 1
        if used > tier.peak_pages:
            tier.peak_pages = used
        fid = self._next_fid
        self._next_fid += 1
        frame = PageFrame(
            fid,
            tier.name,
            owner,
            node_id=node_id,
            obj_type=obj_type,
            knode_id=knode_id,
            relocatable=relocatable,
            allocated_at=now_ns,
        )
        tname = tier.name
        key = (tname, owner)
        self.frames[fid] = frame
        self._tier_frames[tname][fid] = frame
        self._tier_owner_frames[key][fid] = frame
        # Allocation counts as a touch: the brute-force scan's predicate
        # (last_access >= last_scan, with last_access = allocated_at)
        # sees a freshly allocated frame as referenced.
        frame.journal = self._referenced
        self._referenced[fid] = frame
        self.alloc_count[key] += 1
        self.live_count[key] += 1
        return frame

    @hot
    def free(self, frame: PageFrame, *, now_ns: int, retire: bool = True) -> None:
        """Release a frame back to its tier.

        ``retire=True`` stores the dead frame for lifetime analysis
        (Fig 2d); internal rollbacks pass ``retire=False``.
        """
        san = self.sanitizer
        if san is not None:
            san.on_frame_free(frame, site=call_site(2))
        if not frame.live:
            raise SimulationError(f"double free of frame {frame.fid}")
        tname = frame.tier_name
        tier = self._tier(tname)
        # tier.release(1), inlined — a live frame always holds one
        # reservation, so the underflow guard cannot trip here.
        tier.used_pages -= 1
        tier.total_frees += 1
        frame.freed_at = now_ns
        key = (tname, frame.owner)
        self.live_count[key] -= 1
        fid = frame.fid
        del self.frames[fid]
        del self._tier_frames[tname][fid]
        del self._tier_owner_frames[key][fid]
        self._referenced.pop(fid, None)
        frame.journal = None
        if retire:
            self.retired.append(frame)

    def free_all(self, frames: Iterable[PageFrame], *, now_ns: int) -> None:
        for frame in list(frames):
            if frame.live:
                self.free(frame, now_ns=now_ns)

    # ------------------------------------------------------------------
    # migration accounting (the MigrationEngine drives this)
    # ------------------------------------------------------------------

    def move_frame(self, frame: PageFrame, dst_tier_name: str) -> None:
        """Re-home a live frame onto another tier (capacity-checked)."""
        if not frame.live:
            raise SimulationError(f"cannot move freed frame {frame.fid}")
        if frame.tier_name == dst_tier_name:
            return
        src = self._tier(frame.tier_name)
        dst = self._tier(dst_tier_name)
        if not dst.has_room(1):
            raise SimulationError(f"tier {dst_tier_name} full; migrate-evict first")
        src.release(1)
        dst.reserve(1)
        self.live_count[(src.name, frame.owner)] -= 1
        self.live_count[(dst.name, frame.owner)] += 1
        self.migration_count[(src.name, dst.name, frame.owner)] += 1
        fid = frame.fid
        del self._tier_frames[src.name][fid]
        del self._tier_owner_frames[(src.name, frame.owner)][fid]
        self._tier_frames[dst.name][fid] = frame
        self._tier_owner_frames[(dst.name, frame.owner)][fid] = frame
        frame.tier_name = dst_tier_name
        # Hotness state is per-residency: a just-promoted page must earn
        # its demotion age on the new tier from zero (and vice versa), not
        # inherit a stale streak/age from where it used to live.
        frame.lru_age = 0
        frame.scan_ref_streak = 0
        frame.record_migration()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def _tier(self, name: str) -> MemoryTier:
        try:
            return self.tiers[name]
        except KeyError:
            raise SimulationError(f"unknown tier: {name!r}") from None

    def tier(self, name: str) -> MemoryTier:
        """Public tier lookup."""
        return self._tier(name)

    def live_pages(self, tier_name: Optional[str] = None) -> int:
        if tier_name is None:
            return len(self.frames)
        return self.tiers[tier_name].used_pages

    def kernel_pages_in(self, tier_name: str) -> int:
        """Live kernel-object pages on one tier (everything but APP)."""
        return sum(
            count
            for (tier, owner), count in self.live_count.items()
            if tier == tier_name and owner.is_kernel
        )

    def live_pages_by_owner(self, owner: PageOwner) -> int:
        return sum(
            count for (tier, own), count in self.live_count.items() if own is owner
        )

    def allocated_pages_by_owner(self, owner: PageOwner) -> int:
        return sum(
            count for (tier, own), count in self.alloc_count.items() if own is owner
        )

    def total_allocated_pages(self) -> int:
        return sum(self.alloc_count.values())

    def migrations_between(self, src: str, dst: str) -> int:
        return sum(
            count
            for (s, d, _own), count in self.migration_count.items()
            if s == src and d == dst
        )

    def resident_frames(self, tier_name: str) -> Dict[int, PageFrame]:
        """The live frames homed on one tier, as a fid-keyed view.

        Insertion-ordered (allocation order, with migrated-in frames
        appended); callers that need the brute-force walk's fid order
        must sort — see :meth:`live_frames_in`.
        """
        self._tier(tier_name)  # raise on unknown tiers, like every query
        return self._tier_frames[tier_name]

    def resident_frames_by_owner(
        self, tier_name: str, owner: PageOwner
    ) -> Dict[int, PageFrame]:
        """Per-(tier, owner) resident view (same ordering caveat)."""
        self._tier(tier_name)
        return self._tier_owner_frames[(tier_name, owner)]

    def iter_frames_by_owner(self, owner: PageOwner) -> Iterator[PageFrame]:
        """All live frames of one owner, across every tier."""
        for tier_name in self.tiers:
            yield from self._tier_owner_frames[(tier_name, owner)].values()

    def drain_referenced(self) -> List[PageFrame]:
        """Frames touched (accessed or allocated) since the last drain.

        Clears the journal in place — the scan that drains it owns the
        window. Only live frames appear (frees drop their entry).
        """
        referenced = list(self._referenced.values())
        self._referenced.clear()
        return referenced

    def live_frames_in(self, tier_name: str) -> List[PageFrame]:
        """Live frames on a tier in fid order (the order the old global
        frame walk produced; scan-based policies' *modeled* cost is
        charged separately via the LRU engine)."""
        return sorted(self.resident_frames(tier_name).values(), key=_by_fid)

    def check_invariants(self) -> None:
        """Cross-check counters against the frame table (used by tests)."""
        per_tier: Dict[str, int] = defaultdict(int)
        for frame in self.frames.values():
            per_tier[frame.tier_name] += 1
        for name, tier in self.tiers.items():
            if per_tier[name] != tier.used_pages:
                raise SimulationError(
                    f"tier {name}: frame table has {per_tier[name]} frames, "
                    f"counter says {tier.used_pages}"
                )
        live_total = sum(self.live_count.values())
        if live_total != len(self.frames):
            raise SimulationError(
                f"live_count sum {live_total} != frame table {len(self.frames)}"
            )
        # The resident indexes must agree with the frame table exactly.
        index_total = 0
        for name, view in self._tier_frames.items():
            index_total += len(view)
            for fid, frame in view.items():
                if frame.tier_name != name or self.frames.get(fid) is not frame:
                    raise SimulationError(
                        f"tier index {name} out of sync for frame {fid}"
                    )
        if index_total != len(self.frames):
            raise SimulationError(
                f"tier indexes hold {index_total} frames, table {len(self.frames)}"
            )
        owner_total = 0
        for (tier_name, owner), view in self._tier_owner_frames.items():
            owner_total += len(view)
            for fid, frame in view.items():
                if (
                    frame.tier_name != tier_name
                    or frame.owner is not owner
                    or self.frames.get(fid) is not frame
                ):
                    raise SimulationError(
                        f"(tier, owner) index ({tier_name}, {owner}) out of "
                        f"sync for frame {fid}"
                    )
            if len(view) != self.live_count[(tier_name, owner)]:
                raise SimulationError(
                    f"(tier, owner) index ({tier_name}, {owner}) has "
                    f"{len(view)} frames, live_count says "
                    f"{self.live_count[(tier_name, owner)]}"
                )
        if owner_total != len(self.frames):
            raise SimulationError(
                f"(tier, owner) indexes hold {owner_total} frames, "
                f"table {len(self.frames)}"
            )
        for fid, frame in self._referenced.items():
            if not frame.live or self.frames.get(fid) is not frame:
                raise SimulationError(
                    f"referenced journal holds dead/unknown frame {fid}"
                )

    def __repr__(self) -> str:
        tiers = ", ".join(
            f"{t.name}:{t.used_pages}/{t.capacity_pages}" for t in self.tiers.values()
        )
        return f"MemoryTopology({tiers})"
