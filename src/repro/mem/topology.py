"""Memory topology: the set of tiers plus frame allocation/free/accounting.

The topology is deliberately dumb about *policy*: callers (the kernel
facade and the tiering policies) decide which tier to try first and what
to do on pressure. The topology enforces capacity, tracks every live and
retired frame, and keeps the per-(tier, owner) counters that the
motivation and evaluation figures are built from.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.errors import AllocationError, SimulationError
from repro.core.config import TierSpec
from repro.mem.frame import PageFrame, PageOwner
from repro.mem.tier import MemoryTier


class MemoryTopology:
    """All memory tiers in a platform plus global frame bookkeeping."""

    def __init__(self, tier_specs: Sequence[TierSpec]) -> None:
        if not tier_specs:
            raise ValueError("topology needs at least one tier")
        self.tiers: Dict[str, MemoryTier] = {}
        for spec in tier_specs:
            if spec.name in self.tiers:
                raise ValueError(f"duplicate tier name: {spec.name}")
            self.tiers[spec.name] = MemoryTier(spec)
        self._next_fid = 0
        self.frames: Dict[int, PageFrame] = {}
        #: Retired frames kept for lifetime analysis (Fig 2d). Bounded by
        #: the workload's total allocation count.
        self.retired: List[PageFrame] = []
        # --- counters the figures are built from ---
        #: pages ever allocated, keyed by (tier, owner)
        self.alloc_count: Dict[tuple, int] = defaultdict(int)
        #: live pages right now, keyed by (tier, owner)
        self.live_count: Dict[tuple, int] = defaultdict(int)
        #: pages migrated, keyed by (src_tier, dst_tier, owner)
        self.migration_count: Dict[tuple, int] = defaultdict(int)

    # ------------------------------------------------------------------
    # allocation / free
    # ------------------------------------------------------------------

    def allocate(
        self,
        npages: int,
        tier_order: Sequence[str],
        owner: PageOwner,
        *,
        node_id: int = 0,
        obj_type: Optional[str] = None,
        knode_id: Optional[int] = None,
        relocatable: bool = True,
        now_ns: int = 0,
    ) -> List[PageFrame]:
        """Allocate ``npages`` frames, trying tiers in ``tier_order``.

        A single allocation may span tiers (the first tier takes what it
        can, the rest spills to the next), mirroring a kernel falling back
        across zones. Raises :class:`AllocationError` if the order is
        exhausted — the kernel layer is expected to reclaim and retry.
        """
        if npages <= 0:
            raise ValueError(f"allocation must be positive: {npages}")
        placed: List[PageFrame] = []
        remaining = npages
        for tier_name in tier_order:
            tier = self._tier(tier_name)
            take = min(remaining, tier.free_pages)
            for _ in range(take):
                placed.append(
                    self._make_frame(
                        tier,
                        owner,
                        node_id=node_id,
                        obj_type=obj_type,
                        knode_id=knode_id,
                        relocatable=relocatable,
                        now_ns=now_ns,
                    )
                )
            remaining -= take
            if remaining == 0:
                return placed
        # Roll back the partial placement so failed allocations are atomic.
        for frame in placed:
            self.free(frame, now_ns=now_ns, retire=False)
            self.frames.pop(frame.fid, None)
        raise AllocationError(
            f"cannot place {npages} pages (short {remaining}) in tiers {list(tier_order)}"
        )

    def try_allocate(
        self, npages: int, tier_order: Sequence[str], owner: PageOwner, **kwargs
    ) -> Optional[List[PageFrame]]:
        """Like :meth:`allocate` but returns None instead of raising."""
        try:
            return self.allocate(npages, tier_order, owner, **kwargs)
        except AllocationError:
            return None

    def _make_frame(
        self,
        tier: MemoryTier,
        owner: PageOwner,
        *,
        node_id: int,
        obj_type: Optional[str],
        knode_id: Optional[int],
        relocatable: bool,
        now_ns: int,
    ) -> PageFrame:
        tier.reserve(1)
        fid = self._next_fid
        self._next_fid += 1
        frame = PageFrame(
            fid,
            tier.name,
            owner,
            node_id=node_id,
            obj_type=obj_type,
            knode_id=knode_id,
            relocatable=relocatable,
            allocated_at=now_ns,
        )
        self.frames[fid] = frame
        self.alloc_count[(tier.name, owner)] += 1
        self.live_count[(tier.name, owner)] += 1
        return frame

    def free(self, frame: PageFrame, *, now_ns: int, retire: bool = True) -> None:
        """Release a frame back to its tier.

        ``retire=True`` stores the dead frame for lifetime analysis
        (Fig 2d); internal rollbacks pass ``retire=False``.
        """
        if not frame.live:
            raise SimulationError(f"double free of frame {frame.fid}")
        tier = self._tier(frame.tier_name)
        tier.release(1)
        frame.freed_at = now_ns
        self.live_count[(tier.name, frame.owner)] -= 1
        del self.frames[frame.fid]
        if retire:
            self.retired.append(frame)

    def free_all(self, frames: Iterable[PageFrame], *, now_ns: int) -> None:
        for frame in list(frames):
            if frame.live:
                self.free(frame, now_ns=now_ns)

    # ------------------------------------------------------------------
    # migration accounting (the MigrationEngine drives this)
    # ------------------------------------------------------------------

    def move_frame(self, frame: PageFrame, dst_tier_name: str) -> None:
        """Re-home a live frame onto another tier (capacity-checked)."""
        if not frame.live:
            raise SimulationError(f"cannot move freed frame {frame.fid}")
        if frame.tier_name == dst_tier_name:
            return
        src = self._tier(frame.tier_name)
        dst = self._tier(dst_tier_name)
        if not dst.has_room(1):
            raise SimulationError(f"tier {dst_tier_name} full; migrate-evict first")
        src.release(1)
        dst.reserve(1)
        self.live_count[(src.name, frame.owner)] -= 1
        self.live_count[(dst.name, frame.owner)] += 1
        self.migration_count[(src.name, dst.name, frame.owner)] += 1
        frame.tier_name = dst_tier_name
        frame.record_migration()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def _tier(self, name: str) -> MemoryTier:
        try:
            return self.tiers[name]
        except KeyError:
            raise SimulationError(f"unknown tier: {name!r}") from None

    def tier(self, name: str) -> MemoryTier:
        """Public tier lookup."""
        return self._tier(name)

    def live_pages(self, tier_name: Optional[str] = None) -> int:
        if tier_name is None:
            return len(self.frames)
        return self.tiers[tier_name].used_pages

    def kernel_pages_in(self, tier_name: str) -> int:
        """Live kernel-object pages on one tier (everything but APP)."""
        return sum(
            count
            for (tier, owner), count in self.live_count.items()
            if tier == tier_name and owner.is_kernel
        )

    def live_pages_by_owner(self, owner: PageOwner) -> int:
        return sum(
            count for (tier, own), count in self.live_count.items() if own is owner
        )

    def allocated_pages_by_owner(self, owner: PageOwner) -> int:
        return sum(
            count for (tier, own), count in self.alloc_count.items() if own is owner
        )

    def total_allocated_pages(self) -> int:
        return sum(self.alloc_count.values())

    def migrations_between(self, src: str, dst: str) -> int:
        return sum(
            count
            for (s, d, _own), count in self.migration_count.items()
            if s == src and d == dst
        )

    def live_frames_in(self, tier_name: str) -> List[PageFrame]:
        """Live frames on a tier (linear scan; used by scan-based policies,
        whose *modeled* cost is charged separately via the LRU engine)."""
        return [f for f in self.frames.values() if f.tier_name == tier_name]

    def check_invariants(self) -> None:
        """Cross-check counters against the frame table (used by tests)."""
        per_tier: Dict[str, int] = defaultdict(int)
        for frame in self.frames.values():
            per_tier[frame.tier_name] += 1
        for name, tier in self.tiers.items():
            if per_tier[name] != tier.used_pages:
                raise SimulationError(
                    f"tier {name}: frame table has {per_tier[name]} frames, "
                    f"counter says {tier.used_pages}"
                )
        live_total = sum(self.live_count.values())
        if live_total != len(self.frames):
            raise SimulationError(
                f"live_count sum {live_total} != frame table {len(self.frames)}"
            )

    def __repr__(self) -> str:
        tiers = ", ".join(
            f"{t.name}:{t.used_pages}/{t.capacity_pages}" for t in self.tiers.values()
        )
        return f"MemoryTopology({tiers})"
