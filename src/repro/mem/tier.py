"""Runtime state of one memory tier (device)."""

from __future__ import annotations

from repro.core.config import TierSpec
from repro.core.errors import SimulationError
from repro.core.hotpath import hot
from repro.core.units import PAGE_SIZE


class MemoryTier:
    """A memory device with capacity, latency, bandwidth, and usage counters.

    The access-cost model is ``latency + bytes / effective_bandwidth``;
    *effective* bandwidth shrinks when interfering streams share the device
    (used by the Optane experiments, where a streaming co-runner contends
    for a socket's memory bandwidth — §6.2).
    """

    def __init__(self, spec: TierSpec) -> None:
        self.spec = spec
        # Identity fields as plain attributes: ``name`` alone is read
        # hundreds of thousands of times per run by the frame-accounting
        # paths, so a property forwarding to the spec is measurable.
        self.name = spec.name
        self.capacity_pages = spec.capacity_pages
        self.used_pages = 0
        self.peak_pages = 0
        self.total_allocs = 0
        self.total_frees = 0
        self.bytes_read = 0
        self.bytes_written = 0
        # Cost coefficients cached off the spec so the per-access hot
        # path does plain attribute loads instead of re-deriving them
        # through ``self.spec`` each call. The cost *expression* stays
        # ``latency + int(nbytes * slowdown / bw)`` — same operands, same
        # order — so results are bit-identical to the uncached form.
        self.read_latency_ns = spec.read_latency_ns
        self.write_latency_ns = spec.write_latency_ns
        self.read_bw = spec.read_bw_bytes_per_ns
        self.write_bw = spec.write_bw_bytes_per_ns
        self._contention_streams = 0
        #: ``1 + contention_streams``, refreshed whenever the stream count
        #: changes (interference experiments mutate it between phases,
        #: never inside an access).
        self.slowdown = 1

    @property
    def contention_streams(self) -> int:
        """Number of interfering bandwidth streams (0 = uncontended)."""
        return self._contention_streams

    @contention_streams.setter
    def contention_streams(self, value: int) -> None:
        self._contention_streams = value
        self.slowdown = 1 + value

    @property
    def free_pages(self) -> int:
        return self.capacity_pages - self.used_pages

    def has_room(self, npages: int = 1) -> bool:
        return self.free_pages >= npages

    def reserve(self, npages: int) -> None:
        """Account ``npages`` as allocated; callers must check capacity."""
        if npages < 0:
            raise ValueError(f"negative reservation: {npages}")
        if self.used_pages + npages > self.capacity_pages:
            raise SimulationError(
                f"tier {self.name} over-committed: "
                f"{self.used_pages} + {npages} > {self.capacity_pages}"
            )
        used = self.used_pages + npages
        self.used_pages = used
        self.total_allocs += npages
        if used > self.peak_pages:
            self.peak_pages = used

    def release(self, npages: int) -> None:
        if npages < 0:
            raise ValueError(f"negative release: {npages}")
        if npages > self.used_pages:
            raise SimulationError(
                f"tier {self.name} released more pages than in use: "
                f"{npages} > {self.used_pages}"
            )
        self.used_pages -= npages
        self.total_frees += npages

    @hot
    def access_cost_ns(self, nbytes: int, *, write: bool = False) -> int:
        """Cost of moving ``nbytes`` to/from this device, with contention."""
        if nbytes < 0:
            raise ValueError(f"negative access size: {nbytes}")
        if write:
            latency = self.write_latency_ns
            bw = self.write_bw
            self.bytes_written += nbytes
        else:
            latency = self.read_latency_ns
            bw = self.read_bw
            self.bytes_read += nbytes
        return latency + int(nbytes * self.slowdown / bw)

    def bulk_access_cost_ns(
        self, nbytes: int, count: int, *, write: bool = False
    ) -> int:
        """Cost of ``count`` independent ``nbytes`` accesses.

        Bit-identical to summing ``count`` calls of :meth:`access_cost_ns`
        (the unit cost is state-independent within a batch — contention
        can't change mid-batch in the single-threaded simulator), but
        prices the batch with one cost computation. Byte counters are
        charged for the full batch.
        """
        if count <= 0:
            return 0
        unit = self.access_cost_ns(nbytes, write=write)
        if count > 1:
            extra = nbytes * (count - 1)
            if write:
                self.bytes_written += extra
            else:
                self.bytes_read += extra
        return unit * count

    def utilization(self) -> float:
        return self.used_pages / self.capacity_pages

    def __repr__(self) -> str:
        return (
            f"MemoryTier({self.name}, {self.used_pages}/{self.capacity_pages} pages, "
            f"{PAGE_SIZE}B each)"
        )
