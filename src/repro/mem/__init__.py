"""Physical memory model: tiers, page frames, topology, access costs,
migration, and the Optane Memory-Mode hardware DRAM cache."""

from repro.mem.frame import PageFrame, PageOwner
from repro.mem.hwcache import HardwareDRAMCache
from repro.mem.migration import MigrationEngine, MigrationResult
from repro.mem.node import NumaNode
from repro.mem.tier import MemoryTier
from repro.mem.topology import MemoryTopology

__all__ = [
    "PageFrame",
    "PageOwner",
    "MemoryTier",
    "MemoryTopology",
    "MigrationEngine",
    "MigrationResult",
    "HardwareDRAMCache",
    "NumaNode",
]
