"""NUMA node model for the Optane Memory Mode platform.

Each socket owns a PMEM tier fronted by a hardware DRAM cache
(:class:`~repro.mem.hwcache.HardwareDRAMCache`). Accesses from a remote
socket cross the interconnect, paying extra latency and reduced bandwidth
— the asymmetry AutoNUMA exists to fix, and the asymmetry that strands
kernel objects when only application pages are migrated (§6.2, Fig 5a).
"""

from __future__ import annotations

from typing import Optional

from repro.core.units import NS
from repro.mem.hwcache import HardwareDRAMCache
from repro.mem.tier import MemoryTier

#: QPI/UPI hop cost added to every remote-socket access.
REMOTE_LATENCY_NS = 130 * NS
#: Cross-socket interconnect bandwidth (bytes/ns): transfers pay this on
#: top of the device service time.
INTERCONNECT_BW_BYTES_PER_NS = 12.0
#: Memory-Mode DRAM cache hit service time (local DRAM).
DRAM_HIT_LATENCY_NS = 90 * NS
DRAM_HIT_BW_BYTES_PER_NS = 30.0


class NumaNode:
    """One socket: a PMEM tier, its DRAM L4 cache, and contention state."""

    def __init__(
        self,
        node_id: int,
        tier: MemoryTier,
        hw_cache: Optional[HardwareDRAMCache] = None,
    ) -> None:
        self.node_id = node_id
        self.tier = tier
        self.hw_cache = hw_cache
        self.local_accesses = 0
        self.remote_accesses = 0

    def access_cost_ns(
        self, fid: int, nbytes: int, *, write: bool, from_node: int
    ) -> int:
        """Cost for CPU on ``from_node`` to touch ``nbytes`` of page ``fid``.

        The DRAM cache is consulted first (hardware manages it regardless
        of which socket issues the access); remote requests then pay the
        interconnect premium on top of the service cost.
        """
        remote = from_node != self.node_id
        if remote:
            self.remote_accesses += 1
        else:
            self.local_accesses += 1

        if self.hw_cache is not None and self.hw_cache.access(fid):
            slowdown = 1 + self.tier.contention_streams
            cost = DRAM_HIT_LATENCY_NS + int(
                nbytes * slowdown / DRAM_HIT_BW_BYTES_PER_NS
            )
        else:
            cost = self.tier.access_cost_ns(nbytes, write=write)

        if remote:
            cost += REMOTE_LATENCY_NS + int(nbytes / INTERCONNECT_BW_BYTES_PER_NS)
        return cost

    def local_ratio(self) -> float:
        total = self.local_accesses + self.remote_accesses
        return self.local_accesses / total if total else 1.0

    def __repr__(self) -> str:
        return f"NumaNode(id={self.node_id}, tier={self.tier.name})"
