"""Hardware-managed DRAM cache for Optane Memory Mode.

Table 4's second platform runs each socket's DRAM as a direct-managed L4
cache in front of persistent memory; data movement between DRAM and PMEM
is invisible to software. We simulate it as an inclusive page-granularity
LRU cache: a hit is served at DRAM cost, a miss at PMEM cost plus a fill.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.core.units import PAGE_SIZE


class HardwareDRAMCache:
    """Page-granularity LRU cache of PMEM-resident pages."""

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"cache capacity must be positive: {capacity_bytes}")
        self.capacity_pages = capacity_bytes // PAGE_SIZE
        self._resident: "OrderedDict[int, None]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def access(self, fid: int) -> bool:
        """Touch page ``fid``; returns True on a cache hit.

        Misses insert the page (allocate-on-miss, like Memory Mode's
        direct-mapped fill policy), evicting the LRU page if full.
        """
        if fid in self._resident:
            self._resident.move_to_end(fid)
            self.hits += 1
            return True
        self.misses += 1
        self._resident[fid] = None
        if len(self._resident) > self.capacity_pages:
            self._resident.popitem(last=False)
            self.evictions += 1
        return False

    def invalidate(self, fid: int) -> None:
        """Drop a page (e.g. after it is freed or migrated off-node)."""
        self._resident.pop(fid, None)

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._resident)

    def __repr__(self) -> str:
        return (
            f"HardwareDRAMCache({len(self)}/{self.capacity_pages} pages, "
            f"hit_rate={self.hit_rate():.2f})"
        )
