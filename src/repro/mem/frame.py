"""Page frames and their ownership taxonomy.

Every 4KB page in the simulator is a :class:`PageFrame` tagged with a
:class:`PageOwner` category. The categories follow Figure 2a's breakdown
(application pages vs page cache vs slab vs socket buffers ...) so the
motivation experiments can attribute footprint and references exactly.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.core.hotpath import hot
from repro.core.units import PAGE_SIZE


class PageOwner(enum.Enum):
    """Who a physical page belongs to (Figure 2a's attribution buckets)."""

    APP = "app"
    PAGE_CACHE = "page_cache"
    SLAB = "slab"
    JOURNAL = "journal"
    SOCKBUF = "sockbuf"
    BLOCK_IO = "block_io"
    KLOC_META = "kloc_meta"

    # Identity hash: members are singletons, so id() is a valid hash and
    # skips Enum's per-call name hashing on the access-accounting hot path
    # (PageOwner keys ~1M counter-dict lookups per run).
    __hash__ = object.__hash__

    @property
    def is_kernel(self) -> bool:
        """True for every category except application pages."""
        return self is not PageOwner.APP


#: Migration counter saturates at 255 — the paper uses 8-bit per-page
#: counters to detect ping-ponging pages and retain them in fast memory
#: (§4.5 "Updating LRU and AutoNUMA").
MIGRATE_COUNTER_MAX = 255


class PageFrame:
    """One 4KB physical page and its bookkeeping.

    ``relocatable`` encodes the paper's central mechanical constraint:
    slab-allocated pages are referenced by physical address and cannot be
    migrated (§3.3); pages from the buddy/vmalloc/KLOC allocation interface
    can be.
    """

    __slots__ = (
        "fid",
        "tier_name",
        "node_id",
        "owner",
        "obj_type",
        "knode_id",
        "relocatable",
        "dirty",
        "pinned_fast",
        "allocated_at",
        "freed_at",
        "last_access",
        "reads",
        "writes",
        "migrations",
        "lru_age",
        "scan_ref_streak",
        "scan_ref_round",
        "journal",
        "compound_id",
    )

    def __init__(
        self,
        fid: int,
        tier_name: str,
        owner: PageOwner,
        *,
        node_id: int = 0,
        obj_type: Optional[str] = None,
        knode_id: Optional[int] = None,
        relocatable: bool = True,
        allocated_at: int = 0,
    ) -> None:
        self.fid = fid
        self.tier_name = tier_name
        self.node_id = node_id
        self.owner = owner
        self.obj_type = obj_type
        self.knode_id = knode_id
        self.relocatable = relocatable
        self.dirty = False
        self.pinned_fast = False
        self.allocated_at = allocated_at
        self.freed_at: Optional[int] = None
        self.last_access = allocated_at
        self.reads = 0
        self.writes = 0
        self.migrations = 0
        self.lru_age = 0
        #: Consecutive scan windows in which this page was referenced —
        #: Linux's two-touch activation rule for promotion.
        self.scan_ref_streak = 0
        #: Scan round at which ``scan_ref_streak`` was last counted; lets
        #: the indexed scanner update streaks lazily (only when a frame is
        #: actually referenced) instead of resetting every slow frame.
        self.scan_ref_round = 0
        #: Referenced-since-last-scan journal (owned by the topology).
        #: Every ``record_access`` enrolls the frame, so promotion scans
        #: can consider only frames actually touched in the window.
        self.journal: Optional[dict] = None
        #: Transparent-huge-page membership: frames sharing a compound id
        #: form one 2MB THP and age/migrate as a unit (§5's future-work
        #: extension). None = ordinary 4KB page.
        self.compound_id: Optional[int] = None

    @property
    def live(self) -> bool:
        return self.freed_at is None

    @property
    def size_bytes(self) -> int:
        return PAGE_SIZE

    @hot
    def record_access(self, now_ns: int, *, write: bool) -> None:
        """Update access bookkeeping; resets the LRU age (the page is hot).

        Also enrolls the frame in the topology's referenced journal —
        any access path that should count toward scan-based promotion
        MUST come through here (the kernel's charged-access paths do).
        """
        self.last_access = now_ns
        self.lru_age = 0
        journal = self.journal
        if journal is not None:
            journal[self.fid] = self
        if write:
            self.writes += 1
            self.dirty = True
        else:
            self.reads += 1

    def record_migration(self) -> None:
        """Bump the saturating 8-bit migration counter (§4.5)."""
        if self.migrations < MIGRATE_COUNTER_MAX:
            self.migrations += 1

    def lifetime_ns(self, now_ns: int) -> int:
        """Time from allocation to free (or to ``now_ns`` if still live)."""
        end = self.freed_at if self.freed_at is not None else now_ns
        return end - self.allocated_at

    def __repr__(self) -> str:
        state = "live" if self.live else "freed"
        return (
            f"PageFrame(fid={self.fid}, tier={self.tier_name}, "
            f"owner={self.owner.value}, {state})"
        )
