"""Transparent huge pages — the §5 future-work extension.

"For applications that can use larger page sizes, the KLOC abstraction
relies on existing Linux LRU support ... KLOCs should provide higher
performance gains with THP, although this hypothesis needs to be tested
in future studies."

The simulator models a THP as a *compound group*: 512 consecutive 4KB
frames sharing a ``compound_id``. Groups age and migrate as units —
which buys one remap (page-table update + TLB shootdown) per 2MB instead
of per 4KB, and costs the classic THP downside: one hot member keeps the
whole 2MB hot. `benchmarks/bench_ablation_thp.py` tests the paper's
hypothesis.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from repro.mem.frame import PageFrame

#: 2MB huge pages of 4KB base pages.
THP_PAGES = 512


class CompoundRegistry:
    """Tracks THP membership: compound id → member frames."""

    def __init__(self, pages_per_compound: int = THP_PAGES) -> None:
        if pages_per_compound <= 1:
            raise ValueError(
                f"compounds need multiple base pages: {pages_per_compound}"
            )
        self.pages_per_compound = pages_per_compound
        self._members: Dict[int, List[PageFrame]] = {}
        self._next_id = 1

    def make_compounds(self, frames: List[PageFrame]) -> int:
        """Group ``frames`` into compounds of the configured size; returns
        the number of compounds formed. A trailing remainder smaller than
        a compound stays as ordinary base pages (as the kernel would)."""
        formed = 0
        for start in range(0, len(frames) - self.pages_per_compound + 1,
                           self.pages_per_compound):
            cid = self._next_id
            self._next_id += 1
            group = frames[start : start + self.pages_per_compound]
            for frame in group:
                frame.compound_id = cid
            self._members[cid] = list(group)
            formed += 1
        return formed

    def members(self, compound_id: int) -> List[PageFrame]:
        return [f for f in self._members.get(compound_id, ()) if f.live]

    def expand(self, frames: Iterable[PageFrame]) -> List[PageFrame]:
        """Expand a frame set to whole compounds (deduplicated): THPs move
        together or not at all."""
        out: List[PageFrame] = []
        seen_compounds: Set[int] = set()
        seen_frames: Set[int] = set()
        for frame in frames:
            cid = frame.compound_id
            if cid is None:
                if frame.fid not in seen_frames:
                    seen_frames.add(frame.fid)
                    out.append(frame)
            elif cid not in seen_compounds:
                seen_compounds.add(cid)
                for member in self.members(cid):
                    if member.fid not in seen_frames:
                        seen_frames.add(member.fid)
                        out.append(member)
        return out

    def group_recently_referenced(self, compound_id: int, since_ns: int) -> bool:
        """THP hotness: the group is hot if *any* member was referenced —
        the pollution downside of huge-page granularity."""
        return any(f.last_access >= since_ns for f in self.members(compound_id))

    def drop(self, frames: Iterable[PageFrame]) -> None:
        """Forget compound membership for freed frames."""
        for frame in frames:
            cid = frame.compound_id
            if cid is None:
                continue
            frame.compound_id = None
            members = self._members.get(cid)
            if members is not None:
                members[:] = [f for f in members if f.fid != frame.fid]
                if not members:
                    del self._members[cid]

    def compound_count(self) -> int:
        return len(self._members)

    def __repr__(self) -> str:
        return (
            f"CompoundRegistry(compounds={self.compound_count()}, "
            f"pages_per={self.pages_per_compound})"
        )
