"""Event tracing: a bounded, queryable log of simulator events.

Modeled on the kernel's tracepoints: subsystems emit typed events
(allocation, migration, knode lifecycle, reclaim) into a ring buffer
that tools and tests can filter. Tracing is off by default and costs one
predicate check per emit when disabled.

Usage::

    tracer = Tracer(capacity=10_000)
    tracer.enable("migration", "knode")
    kernel.tracer = tracer            # kernels emit if a tracer is set
    ...
    for event in tracer.query(category="migration"):
        print(event)
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, Iterator, Optional, Set, Tuple

#: Known event categories (free-form strings are allowed; these are the
#: ones the kernel emits).
CATEGORIES = (
    "alloc",
    "free",
    "migration",
    "knode",
    "reclaim",
    "io",
)


@dataclass(frozen=True)
class TraceEvent:
    """One traced event."""

    timestamp_ns: int
    category: str
    name: str
    fields: Tuple[Tuple[str, Any], ...] = ()

    def get(self, key: str, default: Any = None) -> Any:
        for k, v in self.fields:
            if k == key:
                return v
        return default

    def __repr__(self) -> str:
        kv = " ".join(f"{k}={v}" for k, v in self.fields)
        return f"[{self.timestamp_ns}ns] {self.category}:{self.name} {kv}".rstrip()


class Tracer:
    """Bounded ring buffer of :class:`TraceEvent`."""

    def __init__(self, capacity: int = 65_536) -> None:
        if capacity <= 0:
            raise ValueError(f"trace buffer needs capacity: {capacity}")
        self.capacity = capacity
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self._enabled: Set[str] = set()
        self.emitted = 0
        self.dropped = 0

    # ------------------------------------------------------------------
    # control
    # ------------------------------------------------------------------

    def enable(self, *categories: str) -> None:
        """Enable categories ('*' enables everything)."""
        if not categories:
            raise ValueError("name at least one category (or '*')")
        self._enabled.update(categories)

    def disable(self, *categories: str) -> None:
        for category in categories:
            self._enabled.discard(category)

    def enabled(self, category: str) -> bool:
        return "*" in self._enabled or category in self._enabled

    # ------------------------------------------------------------------
    # emit / query
    # ------------------------------------------------------------------

    def emit(self, timestamp_ns: int, category: str, name: str, **fields: Any) -> bool:
        """Record an event if its category is enabled; returns whether it
        was recorded."""
        if not self.enabled(category):
            return False
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(
            TraceEvent(timestamp_ns, category, name, tuple(fields.items()))
        )
        self.emitted += 1
        return True

    def query(
        self,
        *,
        category: Optional[str] = None,
        name: Optional[str] = None,
        since_ns: int = 0,
    ) -> Iterator[TraceEvent]:
        """Filter the buffer (oldest first)."""
        for event in self._events:
            if category is not None and event.category != category:
                continue
            if name is not None and event.name != name:
                continue
            if event.timestamp_ns < since_ns:
                continue
            yield event

    def counts_by_name(self, category: Optional[str] = None) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for event in self.query(category=category):
            out[event.name] = out.get(event.name, 0) + 1
        return out

    def clear(self) -> None:
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)

    def __repr__(self) -> str:
        return (
            f"Tracer(events={len(self)}/{self.capacity}, "
            f"enabled={sorted(self._enabled)})"
        )
