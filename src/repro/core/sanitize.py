"""KASAN/lockdep for the simulated kernel: the ``REPRO_SANITIZE=1`` mode.

The fast paths layered in over the last PRs (result cache, frame
indexes, O(1) incremental accounting) are bit-identical *by contract*:
freed objects are never touched again, every incremental counter matches
a recomputation, teardown finds the books balanced. The kernel the paper
patches enforces exactly these invariant classes mechanically — KASAN
poisons freed memory so use-after-free faults instead of corrupting,
lockdep cross-checks the locking model on every acquire. This module is
the simulator's equivalent.

With ``REPRO_SANITIZE=1``:

* every freed :class:`~repro.alloc.base.KernelObject` and
  :class:`~repro.mem.frame.PageFrame` is recorded with its free site
  (file:line), so a double free or a use-after-free raises
  :class:`~repro.core.errors.SanitizerError` naming the object, the
  faulting site, and where it was first freed;
* freed ``KernelObject`` handles are **poisoned**: their ``frame``
  pointer is replaced by a :class:`PoisonedRef` whose every attribute
  access raises — stale pointers fault loudly instead of silently
  reading dead bookkeeping (KASAN's redzone, in object form);
* the KLOC migration daemon cross-checks the incremental metadata
  counters (kmap population, tracked rb-pointers, per-CPU entries)
  against a full structure recomputation at every scan boundary;
* :meth:`Kernel teardown <repro.kernel.kernel.Kernel.sanitize_teardown>`
  audits the books — tier page counters vs the frame table, allocator
  alloc/free balances vs live structures, per-CPU entry counts — and
  reports any leak.

The mode is **behavior-preserving**: checks read state, they never
advance the clock or mutate counters, so a sanitized run's payload is
bit-identical to a plain run (enforced by
``tests/experiments/test_sanitize_equivalence.py``). It does force the
legacy (non-flat) charge paths so every access funnels through the
checked entry points; that, too, is bit-identical by the PR-3
equivalence guarantee. Like the other ``REPRO_*`` knobs, the flag is
read at construction time only.
"""

from __future__ import annotations

import os
import sys
from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple

from repro.core.errors import SanitizerError

if TYPE_CHECKING:
    from repro.alloc.base import KernelObject
    from repro.alloc.vmalloc import VmallocArea
    from repro.mem.frame import PageFrame


def sanitize_enabled() -> bool:  # simlint: config-site
    """True when ``REPRO_SANITIZE`` is set (read at construction time)."""
    return bool(os.environ.get("REPRO_SANITIZE"))


def call_site(depth: int = 2) -> str:
    """``file:line`` of the caller ``depth`` frames up — the "site" every
    sanitizer diagnostic names. Depth 2 skips this helper and the
    sanitizer method that wants its caller."""
    frame = sys._getframe(depth)  # noqa: SLF001 - diagnostic introspection
    filename = frame.f_code.co_filename
    # Trim to the repo-relative tail for stable, readable reports.
    for marker in ("src/repro/", "tests/"):
        idx = filename.rfind(marker)
        if idx != -1:
            filename = filename[idx:]
            break
    return f"{filename}:{frame.f_lineno}"


class PoisonedRef:
    """The tombstone installed over a freed object's ``frame`` pointer.

    Any attribute read through a stale handle raises
    :class:`SanitizerError` naming the freed object and both sites —
    the KASAN redzone fault, delivered as an exception.
    """

    __slots__ = ("_descr", "_free_site")

    def __init__(self, descr: str, free_site: str) -> None:
        object.__setattr__(self, "_descr", descr)
        object.__setattr__(self, "_free_site", free_site)

    def __getattr__(self, name: str) -> Any:
        descr = object.__getattribute__(self, "_descr")
        free_site = object.__getattribute__(self, "_free_site")
        raise SanitizerError(
            f"use-after-free: read of .{name} through poisoned {descr} "
            f"at {call_site()} (freed at {free_site})"
        )

    def __repr__(self) -> str:
        return f"<poisoned {object.__getattribute__(self, '_descr')}>"


class Sanitizer:
    """Shared free-site ledger + consistency checker for one kernel.

    One instance is created by :class:`~repro.mem.topology.MemoryTopology`
    when the mode is on and shared by every allocator (they all hold the
    topology); the :class:`~repro.kernel.kernel.Kernel` threads the same
    instance into the KLOC manager so teardown sees one coherent ledger.
    """

    def __init__(self) -> None:
        #: fid → free site of every frame ever freed.
        self.freed_frames: Dict[int, str] = {}
        #: (allocator family, oid) → free site. Oids are per-family.
        self.freed_objects: Dict[Tuple[str, int], str] = {}
        self.checks = 0
        self.cross_checks = 0

    # ------------------------------------------------------------------
    # free-path hooks (double-free detection + ledger upkeep)
    # ------------------------------------------------------------------

    def on_frame_free(self, frame: "PageFrame", site: Optional[str] = None) -> None:
        """Record a frame free; raise on the second free of the same fid."""
        self.checks += 1
        fid = frame.fid
        first = self.freed_frames.get(fid)
        if first is not None or frame.freed_at is not None:
            raise SanitizerError(
                f"double free of frame {fid} ({frame.owner.value}, "
                f"tier {frame.tier_name}) at {site or call_site()}; "
                f"first freed at {first or 'before sanitizer attach'}"
            )
        self.freed_frames[fid] = site or call_site()

    def on_object_free(
        self, obj: "KernelObject", family: str, site: Optional[str] = None
    ) -> None:
        """Record an object free; raise on the second free of the handle."""
        self.checks += 1
        key = (family, obj.oid)
        first = self.freed_objects.get(key)
        if first is not None or obj.freed_at is not None:
            raise SanitizerError(
                f"double free of {family} object #{obj.oid} "
                f"({obj.otype.name}) at {site or call_site()}; "
                f"first freed at {first or 'before sanitizer attach'}"
            )
        self.freed_objects[key] = site or call_site()

    def on_area_free(self, area: "VmallocArea", site: Optional[str] = None) -> None:
        """Record a vmalloc-area free; raise on the second vfree."""
        self.checks += 1
        key = ("vmalloc", area.area_id)
        first = self.freed_objects.get(key)
        if first is not None or not area.live:
            raise SanitizerError(
                f"double vfree of area {area.area_id} ({area.npages} pages) "
                f"at {site or call_site()}; "
                f"first freed at {first or 'before sanitizer attach'}"
            )
        self.freed_objects[key] = site or call_site()

    def poison_object(self, obj: "KernelObject") -> None:
        """Install the frame tombstone on a freed object handle."""
        site = self.freed_objects.get((obj.allocator, obj.oid), "unknown site")
        obj.frame = PoisonedRef(  # type: ignore[assignment]
            f"{obj.allocator} object #{obj.oid} ({obj.otype.name})", site
        )

    # ------------------------------------------------------------------
    # access-path checks (use-after-free)
    # ------------------------------------------------------------------

    def dead_frame_error(self, frame: "PageFrame") -> SanitizerError:
        """Build the UAF diagnostic for an access to a freed frame."""
        site = self.freed_frames.get(frame.fid, "before sanitizer attach")
        return SanitizerError(
            f"use-after-free: access to freed frame {frame.fid} "
            f"({frame.owner.value}, tier {frame.tier_name}) at "
            f"{call_site()}; freed at {site}"
        )

    def dead_object_error(self, obj: "KernelObject") -> SanitizerError:
        """Build the UAF diagnostic for an access to a freed object."""
        site = self.freed_objects.get(
            (obj.allocator, obj.oid), "before sanitizer attach"
        )
        return SanitizerError(
            f"use-after-free: access to freed {obj.allocator} object "
            f"#{obj.oid} ({obj.otype.name}) at {call_site()}; freed at {site}"
        )

    # ------------------------------------------------------------------
    # counter cross-checks (scan boundaries + teardown)
    # ------------------------------------------------------------------

    def expect(self, what: str, incremental: int, recomputed: int) -> None:
        """Fail if an incrementally maintained counter drifted from the
        ground-truth recomputation."""
        self.cross_checks += 1
        if incremental != recomputed:
            raise SanitizerError(
                f"counter drift in {what}: incremental value {incremental} "
                f"!= recomputed {recomputed} (checked at {call_site()})"
            )

    def report(self) -> Dict[str, int]:
        """Summary counters, for tests and teardown logging."""
        return {
            "frames_freed": len(self.freed_frames),
            "objects_freed": len(self.freed_objects),
            "checks": self.checks,
            "cross_checks": self.cross_checks,
        }

    def __repr__(self) -> str:
        return (
            f"Sanitizer(frames={len(self.freed_frames)}, "
            f"objects={len(self.freed_objects)}, checks={self.checks})"
        )
