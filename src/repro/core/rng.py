"""Deterministic random number generation.

All stochastic behaviour in the simulator — key distributions, file
selection, request interleaving — flows through :class:`DeterministicRNG`
so that a (seed, stream-name) pair fully determines every experiment.
"""

from __future__ import annotations

import math
import random
import zlib
from typing import List, Sequence, TypeVar

T = TypeVar("T")


class DeterministicRNG:
    """A seeded RNG with named sub-streams.

    Sub-streams (:meth:`stream`) let independent components draw random
    numbers without perturbing each other: adding a draw to the workload
    generator must not change what the interference generator sees.
    """

    def __init__(self, seed: int = 42) -> None:
        self._seed = seed
        self._random = random.Random(seed)

    @property
    def seed(self) -> int:
        return self._seed

    def stream(self, name: str) -> "DeterministicRNG":
        """Derive an independent, reproducible sub-stream.

        Uses CRC32 rather than ``hash()``: Python randomizes string
        hashing per process, which would silently break cross-process
        reproducibility of every experiment.
        """
        child_seed = zlib.crc32(f"{self._seed}:{name}".encode()) & 0x7FFFFFFF
        return DeterministicRNG(child_seed)

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in [lo, hi] inclusive."""
        return self._random.randint(lo, hi)

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._random.random()

    def choice(self, seq: Sequence[T]) -> T:
        return self._random.choice(seq)

    def shuffle(self, seq: List[T]) -> None:
        self._random.shuffle(seq)

    def expovariate(self, rate: float) -> float:
        return self._random.expovariate(rate)

    def zipf(self, n: int, theta: float = 0.99) -> int:
        """Zipfian draw in [0, n), YCSB-style skew parameter ``theta``.

        Uses the rejection-free inverse-CDF approximation from Gray et al.
        ("Quickly generating billion-record synthetic databases"), the same
        construction YCSB uses, so Cassandra/RocksDB key streams match the
        paper's workload generators in shape.
        """
        if n <= 0:
            raise ValueError(f"zipf needs a positive universe, got {n}")
        if n == 1:
            return 0
        zetan = self._zeta(n, theta)
        alpha = 1.0 / (1.0 - theta)
        eta = (1 - (2.0 / n) ** (1 - theta)) / (1 - self._zeta(2, theta) / zetan)
        u = self._random.random()
        uz = u * zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** theta:
            return 1
        return int(n * ((eta * u) - eta + 1) ** alpha)

    _zeta_cache: dict = {}

    @classmethod
    def _zeta(cls, n: int, theta: float) -> float:
        key = (n, theta)
        if key not in cls._zeta_cache:
            cls._zeta_cache[key] = sum(1.0 / (i ** theta) for i in range(1, n + 1))
        return cls._zeta_cache[key]

    def pareto_bytes(self, mean_bytes: float, shape: float = 1.5) -> int:
        """Heavy-tailed size draw with the given mean (request/file sizes)."""
        if mean_bytes <= 0:
            raise ValueError(f"mean must be positive: {mean_bytes}")
        scale = mean_bytes * (shape - 1) / shape
        u = self._random.random()
        return max(1, int(scale / math.pow(1 - u, 1 / shape)))

    def __repr__(self) -> str:
        return f"DeterministicRNG(seed={self._seed})"
