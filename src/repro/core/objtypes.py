"""Kernel object taxonomy — the paper's Table 1, as code.

Every kernel object the simulator allocates carries a
:class:`KernelObjectType`, which fixes its subsystem (FS / Network /
both), its approximate size (taken from Linux 4.17 slab cache sizes), the
allocator family that creates it, and the :class:`~repro.mem.frame.PageOwner`
bucket used by the Figure 2 footprint attribution.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.units import KB, PAGE_SIZE
from repro.mem.frame import PageOwner


class Subsystem(enum.Enum):
    FS = "fs"
    NETWORK = "network"
    BOTH = "fs/network"


class AllocatorKind(enum.Enum):
    """Which allocation family creates objects of a type (§3.3).

    SLAB objects are physically addressed and non-relocatable; PAGE
    objects (page cache, journal buffers, rx rings) come from the page
    allocator and can be moved; the KLOC allocation interface (§4.2 /
    §4.4) gives slab-speed *relocatable* allocations and is what the
    paper's 400+ redirected call sites use.
    """

    SLAB = "slab"
    PAGE = "page"
    VMALLOC = "vmalloc"


@dataclass(frozen=True)
class ObjectSpec:
    """Static attributes of one kernel object type."""

    size_bytes: int
    subsystem: Subsystem
    allocator: AllocatorKind
    owner: PageOwner


class KernelObjectType(enum.Enum):
    """Table 1: the kernel objects that form the basis of this work."""

    # Identity hash, mirroring PageOwner: registry coverage checks hash a
    # type on every allocation; id() is valid for singleton members.
    __hash__ = object.__hash__

    #: Per-file inode (ext4_inode_cache is ~1KB in Linux 4.17).
    INODE = ObjectSpec(1 * KB, Subsystem.BOTH, AllocatorKind.SLAB, PageOwner.SLAB)
    #: Block I/O structure (bio) for conversion of metadata to disk blocks.
    BLOCK = ObjectSpec(256, Subsystem.FS, AllocatorKind.SLAB, PageOwner.BLOCK_IO)
    #: Filesystem journal buffers (jbd2 journal head + data, page-backed).
    JOURNAL = ObjectSpec(PAGE_SIZE, Subsystem.FS, AllocatorKind.PAGE, PageOwner.JOURNAL)
    #: Buffer-cache page.
    PAGE_CACHE = ObjectSpec(
        PAGE_SIZE, Subsystem.FS, AllocatorKind.PAGE, PageOwner.PAGE_CACHE
    )
    #: Name resolution entry for each file.
    DENTRY = ObjectSpec(192, Subsystem.FS, AllocatorKind.SLAB, PageOwner.SLAB)
    #: Structure grouping contiguous disk blocks (extent_status).
    EXTENT = ObjectSpec(64, Subsystem.FS, AllocatorKind.SLAB, PageOwner.SLAB)
    #: Block layer multi-queue request for parallel dispatch.
    BLK_MQ = ObjectSpec(384, Subsystem.FS, AllocatorKind.SLAB, PageOwner.BLOCK_IO)
    #: Page-cache radix-tree interior node (radix_tree_node cache, 576B).
    RADIX_NODE = ObjectSpec(576, Subsystem.FS, AllocatorKind.SLAB, PageOwner.SLAB)
    #: Socket object for packet buffers.
    SOCK = ObjectSpec(2 * KB, Subsystem.NETWORK, AllocatorKind.SLAB, PageOwner.SLAB)
    #: Header for packet buffer.
    SKBUFF = ObjectSpec(256, Subsystem.NETWORK, AllocatorKind.SLAB, PageOwner.SLAB)
    #: Data buffer for packet (skbuff->data).
    SKBUFF_DATA = ObjectSpec(
        2 * KB, Subsystem.NETWORK, AllocatorKind.PAGE, PageOwner.SOCKBUF
    )
    #: Network receive driver buffer (rx ring entry).
    RX_BUF = ObjectSpec(
        PAGE_SIZE, Subsystem.NETWORK, AllocatorKind.PAGE, PageOwner.SOCKBUF
    )

    def __init__(self, spec: ObjectSpec) -> None:
        # Plain instance attributes rather than properties: these fields
        # are read on every allocation and charge, and a property routes
        # each read through the enum's descriptor machinery (``.value``
        # is a DynamicClassAttribute). Same values, set once per member.
        self.spec = spec
        self.size_bytes = spec.size_bytes
        self.subsystem = spec.subsystem
        self.allocator = spec.allocator
        self.owner = spec.owner
        self.is_slab = spec.allocator is AllocatorKind.SLAB


#: Fig 5c's incremental KLOC-coverage groups, in the order the paper adds
#: them: page caches, then journals, then slab objects, then socket
#: buffers, then block I/O.
FIG5C_GROUPS = {
    "page_cache": (KernelObjectType.PAGE_CACHE,),
    "journal": (KernelObjectType.JOURNAL,),
    "slab": (
        KernelObjectType.INODE,
        KernelObjectType.DENTRY,
        KernelObjectType.EXTENT,
        KernelObjectType.RADIX_NODE,
        KernelObjectType.SOCK,
        KernelObjectType.SKBUFF,
    ),
    "sockbuf": (KernelObjectType.SKBUFF_DATA, KernelObjectType.RX_BUF),
    "block_io": (KernelObjectType.BLOCK, KernelObjectType.BLK_MQ),
}
