"""Virtual nanosecond clock shared by every simulated component.

The simulator is discrete-time: kernel actions (page accesses, tree
operations, migrations, device I/O) advance a single global clock by their
modeled cost. Wall-clock never enters the picture, so runs are exactly
reproducible.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

from repro.core.hotpath import hot
from repro.core.units import SEC


class Clock:
    """Monotonic virtual clock in nanoseconds.

    Components call :meth:`advance` to account for work they perform and
    :meth:`now` to read the current virtual time. Periodic daemons (LRU
    scanner, writeback, KLOC migration threads) register callbacks via
    :meth:`schedule_periodic`; the clock fires every callback whose period
    elapsed whenever time advances past its next deadline.
    """

    #: Sentinel deadline meaning "no periodic work registered".
    _NEVER = float("inf")

    def __init__(self, start_ns: int = 0) -> None:
        if start_ns < 0:
            raise ValueError(f"clock cannot start in the past: {start_ns}")
        self._now = start_ns
        # (next_deadline, period, callback) — small list, scanned linearly,
        # but only when the cached minimum deadline is actually due.
        self._periodic: List[Tuple[int, int, Callable[[int], None]]] = []
        self._firing = False
        # Cached min deadline across _periodic; advance() compares against
        # this instead of scanning the daemon list on every call.
        self._next_deadline = Clock._NEVER

    def now(self) -> int:
        """Current virtual time in nanoseconds."""
        return self._now

    def now_seconds(self) -> float:
        """Current virtual time in seconds (for reporting only)."""
        return self._now / SEC

    @property
    def next_deadline_ns(self) -> float:
        """Earliest pending periodic deadline (``inf`` when none).

        Public read-only view of the cached minimum used by
        :meth:`advance`'s fast path. Batched charge paths compare a run's
        total cost against this to decide whether a single deferred
        advance can stand in for per-item advances: while
        ``now + total < next_deadline_ns`` no daemon can fire, so the
        per-item and batched executions are indistinguishable.
        """
        return self._next_deadline

    @hot
    def advance(self, delta_ns: int) -> int:
        """Advance the clock by ``delta_ns`` and fire any due periodic work.

        Returns the new virtual time. Negative deltas are rejected —
        simulated time never flows backwards.
        """
        if delta_ns < 0:
            raise ValueError(f"cannot advance clock by negative delta: {delta_ns}")
        now = self._now + delta_ns
        self._now = now
        # Fast path: nothing due. Two comparisons, no daemon scan.
        if now >= self._next_deadline:
            self._fire_due()
        return now

    def schedule_periodic(
        self, period_ns: int, callback: Callable[[int], None], *, phase_ns: int = 0
    ) -> None:
        """Register ``callback(now_ns)`` to fire every ``period_ns``.

        ``phase_ns`` offsets the first firing; daemons with the same period
        can be staggered this way. Callbacks run synchronously during
        :meth:`advance` (after the time update), mirroring kernel daemons
        that wake on timer ticks.
        """
        if period_ns <= 0:
            raise ValueError(f"period must be positive: {period_ns}")
        first = self._now + period_ns + phase_ns
        self._periodic.append((first, period_ns, callback))
        if first < self._next_deadline:
            self._next_deadline = first

    def _fire_due(self) -> None:
        # Re-entrancy guard: a callback may advance the clock (its own work
        # costs time); we do not re-dispatch from inside a callback, the
        # outer dispatch loop picks up anything newly due.
        if self._firing:
            return
        self._firing = True
        try:
            fired = True
            while fired:
                fired = False
                for i, (deadline, period, cb) in enumerate(self._periodic):
                    if self._now >= deadline:
                        # Skip ahead if we overshot several periods: daemons
                        # coalesce missed ticks into one run, like real
                        # kernel deferred work.
                        missed = (self._now - deadline) // period
                        self._periodic[i] = (
                            deadline + (missed + 1) * period,
                            period,
                            cb,
                        )
                        cb(self._now)
                        fired = True
        finally:
            self._firing = False
            self._next_deadline = min(
                (deadline for deadline, _period, _cb in self._periodic),
                default=Clock._NEVER,
            )

    def __repr__(self) -> str:
        return f"Clock(now={self._now}ns, daemons={len(self._periodic)})"
