"""Configuration dataclasses shared across the simulator.

These encode the paper's Table 4 platforms and §6.2 methodology as data,
so experiments can sweep them (Fig 6 varies fast-memory capacity and the
fast:slow bandwidth ratio).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.errors import ConfigError
from repro.core.units import GB, MB, NS, PAGE_SIZE


@dataclass(frozen=True)
class TierSpec:
    """Static description of one memory tier/device.

    Bandwidth is stored in bytes/ns (== GB/s numerically) to keep the
    access-cost arithmetic integer-friendly.
    """

    name: str
    capacity_bytes: int
    read_latency_ns: int
    write_latency_ns: int
    read_bw_bytes_per_ns: float
    write_bw_bytes_per_ns: float

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ConfigError(f"tier {self.name}: capacity must be positive")
        if self.capacity_bytes % PAGE_SIZE:
            raise ConfigError(
                f"tier {self.name}: capacity must be page-aligned "
                f"({self.capacity_bytes} % {PAGE_SIZE} != 0)"
            )
        if self.read_latency_ns < 0 or self.write_latency_ns < 0:
            raise ConfigError(f"tier {self.name}: latency cannot be negative")
        if self.read_bw_bytes_per_ns <= 0 or self.write_bw_bytes_per_ns <= 0:
            raise ConfigError(f"tier {self.name}: bandwidth must be positive")

    @property
    def capacity_pages(self) -> int:
        return self.capacity_bytes // PAGE_SIZE


def fast_dram_spec(capacity_bytes: int = 8 * GB, bandwidth_gbps: float = 30.0) -> TierSpec:
    """The paper's fast tier: high-bandwidth DRAM, 8GB @ 30GB/s (Table 4)."""
    return TierSpec(
        name="fast",
        capacity_bytes=capacity_bytes,
        read_latency_ns=80 * NS,
        write_latency_ns=80 * NS,
        read_bw_bytes_per_ns=bandwidth_gbps,
        write_bw_bytes_per_ns=bandwidth_gbps,
    )


def slow_dram_spec(
    capacity_bytes: int = 80 * GB, bandwidth_gbps: float = 30.0 / 8
) -> TierSpec:
    """The paper's slow tier: bandwidth-throttled DRAM (default 1:8 ratio).

    §2's device survey: slower tiers see 2-3x higher read latency and the
    bandwidth reduction configured via throttling; defaults follow the
    paper's headline 1:8 configuration.
    """
    return TierSpec(
        name="slow",
        capacity_bytes=capacity_bytes,
        read_latency_ns=200 * NS,
        write_latency_ns=300 * NS,
        read_bw_bytes_per_ns=bandwidth_gbps,
        write_bw_bytes_per_ns=bandwidth_gbps,
    )


def pmem_spec(capacity_bytes: int = 128 * GB) -> TierSpec:
    """Optane DC persistent memory DIMM (Table 4, Memory Mode backing)."""
    return TierSpec(
        name="pmem",
        capacity_bytes=capacity_bytes,
        read_latency_ns=300 * NS,
        write_latency_ns=500 * NS,
        read_bw_bytes_per_ns=6.0,
        write_bw_bytes_per_ns=2.0,
    )


@dataclass(frozen=True)
class StorageSpec:
    """NVMe block device (Table 4): sequential/random bandwidth + latency."""

    name: str = "nvme"
    seq_bw_bytes_per_ns: float = 1.2
    rand_bw_bytes_per_ns: float = 0.412
    latency_ns: int = 20_000 * NS

    def __post_init__(self) -> None:
        if self.seq_bw_bytes_per_ns <= 0 or self.rand_bw_bytes_per_ns <= 0:
            raise ConfigError("storage bandwidth must be positive")


@dataclass(frozen=True)
class MigrationSpec:
    """Cost model for page migration (§4.4, Nimble's parallel page copy)."""

    #: Fixed per-page remap cost: page-table/radix-tree updates + TLB
    #: shootdown, ~3us per 4KB page in Linux (Nimble, ASPLOS'19).
    remap_overhead_ns: int = 3000 * NS
    #: Number of kernel threads copying pages concurrently.
    copy_threads: int = 4

    def __post_init__(self) -> None:
        if self.copy_threads <= 0:
            raise ConfigError("copy_threads must be positive")
        if self.remap_overhead_ns < 0:
            raise ConfigError("remap overhead cannot be negative")


@dataclass(frozen=True)
class LRUSpec:
    """LRU page-scan engine parameters (§3.3).

    The paper measures ~2 seconds to scan one million pages on their Xeon,
    i.e. 500K pages/sec; the scan period bounds how quickly hotness changes
    are observed — the structural reason Nimble++ cannot track 36ms slab
    lifetimes.
    """

    scan_pages_per_second: int = 500_000
    scan_period_ns: int = 100 * 1000 * 1000  # 100ms between scan rounds
    #: Pages whose age exceeds this many scan rounds are cold.
    cold_age_rounds: int = 2

    def __post_init__(self) -> None:
        if self.scan_pages_per_second <= 0:
            raise ConfigError("scan rate must be positive")
        if self.scan_period_ns <= 0:
            raise ConfigError("scan period must be positive")


@dataclass(frozen=True)
class KLOCSpec:
    """KLOC mechanism parameters (§4/§5)."""

    #: Per-CPU knode fast-path list length cap (§4.3: "restricting their
    #: sizes ensures they can be traversed fast").
    percpu_list_max: int = 64
    #: Period of the asynchronous KLOC migration daemon (§5: dedicated
    #: kernel threads migrate objects between fast and slow memory).
    migrate_period_ns: int = 10 * 1000 * 1000  # 10ms
    #: knode age (in daemon rounds without access) after which an *open*
    #: file's KLOC is considered cold (§3.2: relative ages infer likely-cold
    #: files that have not been closed yet).
    cold_age_rounds: int = 4
    #: Memory-capacity cap for KLOC use of fast memory, as a fraction of
    #: the fast tier; mirrors sys_kloc_memsize() (Table 2). §4.2.2: "KLOCs
    #: prioritize application pages" — capping the kernel-object share
    #: keeps hot application pages from being displaced by kernel bursts.
    fast_capacity_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.percpu_list_max <= 0:
            raise ConfigError("percpu_list_max must be positive")
        if not 0.0 < self.fast_capacity_fraction <= 1.0:
            raise ConfigError("fast_capacity_fraction must be in (0, 1]")


@dataclass(frozen=True)
class PlatformSpec:
    """A complete evaluation platform (Table 4)."""

    name: str
    fast: TierSpec
    slow: TierSpec
    storage: StorageSpec = field(default_factory=StorageSpec)
    migration: MigrationSpec = field(default_factory=MigrationSpec)
    lru: LRUSpec = field(default_factory=LRUSpec)
    kloc: KLOCSpec = field(default_factory=KLOCSpec)
    num_cpus: int = 16
    #: Optane Memory Mode: per-node DRAM L4 cache capacity (0 = no cache).
    hw_cache_bytes: int = 0
    #: Writeback/journal-commit daemon period.
    writeback_period_ns: int = 50 * 1000 * 1000  # 50ms

    def __post_init__(self) -> None:
        if self.num_cpus <= 0:
            raise ConfigError("num_cpus must be positive")
        if self.hw_cache_bytes < 0:
            raise ConfigError("hw_cache_bytes cannot be negative")


def two_tier_platform_spec(
    fast_capacity_bytes: int = 256 * MB,
    bandwidth_ratio: int = 8,
    slow_capacity_bytes: Optional[int] = None,
    num_cpus: int = 16,
) -> PlatformSpec:
    """Scaled-down version of the paper's two-tier platform.

    The paper uses 8GB fast / 80GB slow with 40GB working sets; the
    simulator preserves the *ratios* (fast:slow capacity 1:10, fast-capacity
    vs working-set, bandwidth 1:``bandwidth_ratio``) at MB scale so a full
    workload run takes seconds of host time.

    Time is compressed alongside space: daemon periods and the LRU scan
    rate shrink by roughly the same ~512x factor as the dataset, so the
    relationships the paper's argument rests on are preserved — the
    scan-based detection latency (period x cold rounds + scan time) stays
    *longer* than kernel-object lifetimes and *shorter* than application
    page lifetimes.
    """
    if slow_capacity_bytes is None:
        slow_capacity_bytes = 10 * fast_capacity_bytes
    return PlatformSpec(
        name=f"two-tier(fast={fast_capacity_bytes // MB}MB,1:{bandwidth_ratio})",
        fast=fast_dram_spec(capacity_bytes=fast_capacity_bytes),
        slow=slow_dram_spec(
            capacity_bytes=slow_capacity_bytes,
            bandwidth_gbps=30.0 / bandwidth_ratio,
        ),
        lru=LRUSpec(
            scan_pages_per_second=256_000_000,
            scan_period_ns=4_000_000,  # 4ms: detection latency ~8-12ms,
            cold_age_rounds=2,  # comparable to fast-capacity fill time
        ),
        kloc=KLOCSpec(
            migrate_period_ns=1_000_000,  # 1ms daemon cadence
            cold_age_rounds=16,  # open knodes idle ~16ms are likely-cold
        ),
        writeback_period_ns=500_000,  # 500us (paper: seconds)
        num_cpus=num_cpus,
    )
