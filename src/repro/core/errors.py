"""Exception hierarchy for the KLOC reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch the whole family with one clause while tests can assert
on the specific subclasses.
"""


class ReproError(Exception):
    """Base class for all errors raised by the kloc-repro package."""


class ConfigError(ReproError):
    """A configuration value is missing, out of range, or inconsistent."""


class SimulationError(ReproError):
    """The simulation reached a state that violates its own invariants."""


class SanitizerError(SimulationError):
    """The ``REPRO_SANITIZE=1`` runtime sanitizer caught a memory-safety
    or accounting bug: double free, use-after-free through a poisoned
    reference, incremental-counter drift, or a teardown leak.

    Subclasses :class:`SimulationError` so existing invariant handlers
    still catch it; the message always names the object and the site
    (file:line) that triggered — and, for frees, the site of the first
    free. See :mod:`repro.core.sanitize`.
    """


class AllocationError(ReproError):
    """A memory allocation could not be satisfied by any tier."""


class MigrationError(ReproError):
    """A page or kernel object could not be migrated.

    Raised, for example, when a caller asks to relocate a slab-allocated
    object: slab allocations are referenced by physical address and are
    non-relocatable by construction (paper §3.3 / §4.4).
    """


class VFSError(ReproError):
    """Filesystem-level failure (missing file, bad path, closed handle)."""


class NetworkError(ReproError):
    """Network-stack failure (unknown socket, closed connection)."""
