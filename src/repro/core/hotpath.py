"""Feature gate and registry for the O(1) hot-path accounting fast paths.

The per-operation accounting rework (incremental KLOC metadata, the
flattened charge path, batched region touches) is a pure host-side
optimization: simulated behavior is bit-identical by construction, and
``tests/experiments/test_hotpath_equivalence.py`` enforces payload
equality between both modes over full measured cells.

``REPRO_NO_HOTPATH=1`` restores the legacy per-call paths — the escape
hatch for debugging and the baseline ``scripts/op_bench.py`` times
against. The flag is read when a component is constructed (kernel,
per-CPU list set), not per call, so flipping it mid-run has no effect on
existing instances.

Hot-function registry
---------------------

Functions whose bodies were hand-flattened for the hot path are marked
with the :func:`hot` decorator. The decorator is a zero-cost no-op at
runtime (it records the qualname and returns the function unchanged);
its purpose is static: ``simlint``'s ``hotpath`` rule
(:mod:`repro.analysis.simlint`) walks every ``@hot``-marked function and
rejects allocation-building constructs (closures, lambdas,
comprehensions, generator expressions), self-recursion, and calls to
anything outside :data:`HOT_CALLEE_WHITELIST` — pinning the discipline
the hand-flattening established so later edits cannot silently
reintroduce per-call overhead.

To mark a new function hot: decorate it with ``@hot``, then extend the
whitelist with any callees it legitimately needs (each addition is a
reviewed, grep-able decision).
"""

from __future__ import annotations

import os
from typing import Callable, Set, TypeVar

F = TypeVar("F", bound=Callable)

#: Qualnames of every function registered via :func:`hot`, for
#: introspection and the lint rule's "is anything registered?" check.
HOT_FUNCTIONS: Set[str] = set()

#: Callees a ``@hot`` function may invoke. Bare names cover builtins and
#: in-module constructors on the allocation paths; attribute names cover
#: the method calls the flattened bodies still make (other registered
#: hot functions, O(1) container operations, and the accounting hooks).
#: The ``simlint`` ``hotpath`` rule imports this set — extending it is
#: the explicit act of admitting a call onto the hot path. Calls inside
#: ``raise`` statements (error constructors) are always allowed.
HOT_CALLEE_WHITELIST: Set[str] = {
    # builtins / constructors (bare-name calls)
    "len",
    "int",
    "min",
    "max",
    "isinstance",
    "KernelObject",
    "PageFrame",
    "_SlabPage",
    "_KlocPage",
    # clock
    "advance",
    "_fire_due",
    "now",
    # O(1) container operations
    "get",
    "pop",
    "popitem",
    "append",
    "add",
    "discard",
    "remove",
    "insert",
    "delete",
    "setdefault",
    "move_to_end",
    "fits",
    # registered hot functions / same-layer accounting calls
    "access_frame",
    "access_cost_ns",
    "allocate",
    "free",
    "free_object",
    "record",
    "record_access",
    "record_migration",
    "lookup",
    "_kmap_get",
    "get_uncounted",
    "note_access",
    "_note_metadata",
    "metadata_bytes",
    "knode_for_inode",
    "add_obj",
    "remove_obj",
    "covered",
    "touch",
    "lifetime_ns",
    "_charge_access",
    "_tier",
    "_cache",
    "_make_frame",
    "_check_cpu",
    "_drop_holder",
    # sanitizer hooks (no-ops unless REPRO_SANITIZE=1; see repro.core.sanitize)
    "on_object_free",
    "on_frame_free",
    "on_area_free",
    "call_site",
    "check_object",
    "check_frame",
    "poison_object",
    "dead_object_error",
    "dead_frame_error",
}


def hot(fn: F) -> F:
    """Mark ``fn`` as a hot-path function (statically checked, zero cost).

    Returns ``fn`` unchanged — no wrapper frame, no indirection — after
    recording its qualname in :data:`HOT_FUNCTIONS`.
    """
    HOT_FUNCTIONS.add(fn.__qualname__)
    return fn


def hotpath_enabled() -> bool:  # simlint: config-site
    """True unless ``REPRO_NO_HOTPATH`` is set (to anything non-empty)."""
    return not os.environ.get("REPRO_NO_HOTPATH")
