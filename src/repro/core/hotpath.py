"""Feature gate for the O(1) hot-path accounting fast paths.

The per-operation accounting rework (incremental KLOC metadata, the
flattened charge path, batched region touches) is a pure host-side
optimization: simulated behavior is bit-identical by construction, and
``tests/experiments/test_hotpath_equivalence.py`` enforces payload
equality between both modes over full measured cells.

``REPRO_NO_HOTPATH=1`` restores the legacy per-call paths — the escape
hatch for debugging and the baseline ``scripts/op_bench.py`` times
against. The flag is read when a component is constructed (kernel,
per-CPU list set), not per call, so flipping it mid-run has no effect on
existing instances.
"""

from __future__ import annotations

import os


def hotpath_enabled() -> bool:
    """True unless ``REPRO_NO_HOTPATH`` is set (to anything non-empty)."""
    return not os.environ.get("REPRO_NO_HOTPATH")
