"""Size and time units used throughout the simulator.

Sizes are plain integers in bytes; times are plain integers in
nanoseconds. Keeping both as ints makes the simulation deterministic and
cheap — no float drift in the virtual clock.
"""

# --- sizes (bytes) ---
KB = 1024
MB = 1024 * KB
GB = 1024 * MB

#: The simulator models 4KB pages exclusively (paper §5: "most Linux
#: kernel-level objects like page cache and slab pages are allocated using
#: 4KB pages").
PAGE_SIZE = 4 * KB

# --- times (nanoseconds) ---
NS = 1
US = 1000 * NS
MS = 1000 * US
SEC = 1000 * MS


def pages_for(nbytes: int) -> int:
    """Number of 4KB pages needed to hold ``nbytes`` (ceiling division)."""
    if nbytes < 0:
        raise ValueError(f"negative size: {nbytes}")
    return -(-nbytes // PAGE_SIZE)


def bytes_to_human(nbytes: int) -> str:
    """Render a byte count as a short human-readable string."""
    if nbytes >= GB:
        return f"{nbytes / GB:.1f}GB"
    if nbytes >= MB:
        return f"{nbytes / MB:.1f}MB"
    if nbytes >= KB:
        return f"{nbytes / KB:.1f}KB"
    return f"{nbytes}B"


def ns_to_human(ns: int) -> str:
    """Render a nanosecond duration as a short human-readable string."""
    if ns >= SEC:
        return f"{ns / SEC:.2f}s"
    if ns >= MS:
        return f"{ns / MS:.2f}ms"
    if ns >= US:
        return f"{ns / US:.2f}us"
    return f"{ns}ns"
