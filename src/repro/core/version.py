"""The simulator behavior version tag.

Lives in ``repro.core`` (a leaf package) so that both the result cache
(:mod:`repro.experiments.cache`) and the snapshot store
(:mod:`repro.snapshot.store`) can key on it without importing each
other: result-cache keys and snapshot setup keys must invalidate
together whenever simulated behavior changes.
"""

from __future__ import annotations

#: Simulator behavior version. Bump on ANY change that alters simulated
#: results (cost models, policy logic, daemon scheduling, workloads);
#: leave alone for pure refactors/performance work. Stale cache entries
#: and snapshots are ignored automatically because the tag is part of
#: every content hash.
#: History: "2" = reset_reference_counters now also zeroes the
#: access-time decomposition, and migration resets per-frame hotness
#: state (lru_age / scan_ref_streak) on tier change. The resident-frame
#: index refactor, the O(1) hot-path accounting, the REPRO_SANITIZE
#: observer mode, and the phase-keyed snapshot/restore path are all
#: bit-identical by construction (each has an equivalence suite) and did
#: NOT bump this.
SIM_VERSION = "2"
