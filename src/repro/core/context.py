"""The kernel-context protocol: the seam between subsystems and policy.

The filesystem and network stacks do not decide *where* memory comes from
or what a reference costs — they ask the kernel, which consults the
active tiering policy and the KLOC machinery. This protocol is that
interface; :class:`repro.kernel.kernel.Kernel` is the one real
implementation, and tests use lightweight fakes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Protocol

if TYPE_CHECKING:
    from repro.alloc.base import KernelObject
    from repro.core.clock import Clock
    from repro.core.objtypes import KernelObjectType
    from repro.mem.frame import PageFrame
    from repro.vfs.inode import Inode


class KernelContext(Protocol):
    """Services the kernel provides to its subsystems (VFS, net, block)."""

    clock: "Clock"
    num_cpus: int

    # -- kernel object lifecycle ---------------------------------------
    def alloc_object(
        self,
        otype: "KernelObjectType",
        inode: Optional["Inode"] = None,
        *,
        cpu: int = 0,
    ) -> "KernelObject":
        """Allocate a kernel object, route it through the allocator family
        the active configuration picks (slab vs KLOC interface vs page),
        place it per the tiering policy, and — when KLOCs are enabled —
        attach it to the inode's knode."""
        ...

    def free_object(self, obj: "KernelObject", *, cpu: int = 0) -> None:
        """Release a kernel object (and its knode membership)."""
        ...

    # -- references ------------------------------------------------------
    def access_object(
        self,
        obj: "KernelObject",
        nbytes: Optional[int] = None,
        *,
        write: bool = False,
        cpu: int = 0,
    ) -> int:
        """One reference to a kernel object: charge the tier cost to the
        virtual clock, attribute it in the metrics, refresh hotness.
        Returns the charged cost in ns."""
        ...

    def access_frame(
        self, frame: "PageFrame", nbytes: int, *, write: bool = False, cpu: int = 0
    ) -> int:
        """One reference to a raw frame (application pages)."""
        ...

    # -- application memory ----------------------------------------------
    def alloc_app_pages(self, npages: int, *, cpu: int = 0) -> List["PageFrame"]:
        ...

    def free_app_pages(self, frames: List["PageFrame"]) -> None:
        ...

    # -- storage -----------------------------------------------------------
    def storage_io(
        self, nbytes: int, *, write: bool, sequential: bool, background: bool = False
    ) -> int:
        """Block-device transfer; ``background`` work is amortized across
        CPUs instead of stalling the foreground op."""
        ...

    # -- inode / KLOC lifecycle hooks ---------------------------------------
    def on_inode_create(self, inode: "Inode", *, cpu: int = 0) -> None:
        ...

    def on_inode_open(self, inode: "Inode", *, cpu: int = 0) -> None:
        ...

    def on_inode_close(self, inode: "Inode", *, cpu: int = 0) -> None:
        ...

    def on_inode_unlink(self, inode: "Inode", *, cpu: int = 0) -> None:
        ...
