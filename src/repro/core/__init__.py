"""Simulation core: virtual clock, units, deterministic RNG, config, errors."""

from repro.core.clock import Clock
from repro.core.errors import (
    AllocationError,
    ConfigError,
    MigrationError,
    ReproError,
    SimulationError,
)
from repro.core.rng import DeterministicRNG
from repro.core.units import GB, KB, MB, MS, NS, PAGE_SIZE, SEC, US

__all__ = [
    "Clock",
    "DeterministicRNG",
    "ReproError",
    "AllocationError",
    "MigrationError",
    "SimulationError",
    "ConfigError",
    "PAGE_SIZE",
    "KB",
    "MB",
    "GB",
    "NS",
    "US",
    "MS",
    "SEC",
]
