"""Cross-module property-based tests on core invariants.

These drive random operation sequences through the allocators, the
topology, and the knode machinery, asserting the conservation laws the
whole simulation rests on: no page is leaked or double-accounted, tier
counters always match the frame table, and knode membership mirrors
object lifetimes.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.clock import Clock
from repro.core.config import fast_dram_spec, slow_dram_spec
from repro.core.objtypes import KernelObjectType
from repro.core.units import MB
from repro.alloc.kloc_alloc import KlocAllocator
from repro.alloc.slab import SlabAllocator
from repro.kloc.knode import Knode
from repro.mem.frame import PageOwner
from repro.mem.topology import MemoryTopology

SLAB_TYPES = [
    KernelObjectType.DENTRY,
    KernelObjectType.INODE,
    KernelObjectType.EXTENT,
    KernelObjectType.RADIX_NODE,
    KernelObjectType.SKBUFF,
]


def fresh_topology():
    return MemoryTopology(
        [fast_dram_spec(capacity_bytes=4 * MB), slow_dram_spec(capacity_bytes=16 * MB)]
    )


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    st.lists(
        st.tuples(
            st.booleans(),  # alloc vs free
            st.integers(min_value=0, max_value=len(SLAB_TYPES) - 1),
            st.integers(min_value=0, max_value=7),  # knode id
        ),
        max_size=200,
    )
)
def test_slab_conservation(ops):
    """Slab alloc/free sequences never leak pages or break counters."""
    topo = fresh_topology()
    slab = SlabAllocator(topo, Clock())
    live = []
    for do_alloc, type_idx, knode in ops:
        if do_alloc or not live:
            live.append(
                slab.alloc(SLAB_TYPES[type_idx], ["fast", "slow"], knode_id=knode)
            )
        else:
            slab.free(live.pop(len(live) // 2))
    topo.check_invariants()
    assert slab.stats.live_objects == len(live)
    for obj in live:
        slab.free(obj)
    topo.check_invariants()
    assert topo.live_pages() == 0
    assert slab.live_pages() == 0


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    st.lists(
        st.tuples(
            st.booleans(),
            st.integers(min_value=0, max_value=len(SLAB_TYPES) - 1),
            st.integers(min_value=0, max_value=5),
        ),
        max_size=200,
    )
)
def test_kloc_allocator_conservation(ops):
    """The KLOC interface keeps per-knode page indexes consistent."""
    topo = fresh_topology()
    kalloc = KlocAllocator(topo, Clock())
    live = []
    for do_alloc, type_idx, knode in ops:
        if do_alloc or not live:
            live.append(
                kalloc.alloc(SLAB_TYPES[type_idx], ["fast", "slow"], knode_id=knode)
            )
        else:
            kalloc.free(live.pop(0))
    topo.check_invariants()
    # Every knode's frame list contains only live frames.
    for knode_id in range(6):
        for frame in kalloc.knode_frames(knode_id):
            assert frame.live
    for obj in live:
        kalloc.free(obj)
    assert topo.live_pages() == 0
    for knode_id in range(6):
        assert kalloc.knode_frames(knode_id) == []


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["alloc", "free", "move"]),
            st.integers(min_value=0, max_value=3),
        ),
        max_size=150,
    )
)
def test_topology_counters_track_frame_table(ops):
    """alloc/free/move interleavings keep live_count == frame table."""
    topo = fresh_topology()
    live = []
    owners = [PageOwner.APP, PageOwner.PAGE_CACHE, PageOwner.SLAB, PageOwner.JOURNAL]
    for action, idx in ops:
        if action == "alloc" or not live:
            live += topo.allocate(idx + 1, ["fast", "slow"], owners[idx])
        elif action == "free":
            topo.free(live.pop(0), now_ns=1)
        else:
            frame = live[idx % len(live)]
            target = "slow" if frame.tier_name == "fast" else "fast"
            if topo.tier(target).has_room(1):
                topo.move_frame(frame, target)
    topo.check_invariants()
    assert topo.live_pages() == len(live)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(st.booleans(), st.integers(min_value=0, max_value=30)),
        max_size=120,
    )
)
def test_knode_membership_mirrors_adds_and_removes(ops):
    """knode_add_obj/remove_obj keep the trees exactly in sync."""
    topo = fresh_topology()
    slab = SlabAllocator(topo, Clock())
    knode = Knode(1, ino=1)
    tracked = {}
    for add, key in ops:
        if add:
            obj = slab.alloc(SLAB_TYPES[key % len(SLAB_TYPES)], ["fast", "slow"])
            knode.add_obj(obj)
            tracked[obj.oid] = obj
        elif tracked:
            oid, obj = next(iter(tracked.items()))
            assert knode.remove_obj(obj)
            del tracked[oid]
    assert knode.object_count == len(tracked)
    assert {o.oid for o in knode.iter_all()} == set(tracked)
    knode.rbtree_cache.check_invariants()
    knode.rbtree_slab.check_invariants()


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=1, max_value=400), st.integers(min_value=0, max_value=10**6))
def test_lifetime_accounting_nonnegative(n_objects, advance_ns):
    """Lifetimes recorded by the ledgers are consistent with the clock."""
    topo = fresh_topology()
    clock = Clock()
    slab = SlabAllocator(topo, clock)
    objs = [slab.alloc(KernelObjectType.DENTRY, ["fast", "slow"]) for _ in range(n_objects)]
    clock.advance(advance_ns)
    for obj in objs:
        slab.free(obj)
    mean = slab.stats.lifetimes.mean_ns(KernelObjectType.DENTRY)
    assert mean is not None
    assert mean >= advance_ns  # alloc costs only add to the lifetime
