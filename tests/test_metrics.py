"""Tests for the metrics package (footprint/reference/lifetime/report)."""

import pytest

from repro.core.units import MB
from repro.metrics.footprint import footprint_snapshot
from repro.metrics.lifetime import lifetime_report
from repro.metrics.references import reference_report
from repro.metrics.report import format_table
from repro.core.objtypes import KernelObjectType
from repro.mem.frame import PageOwner
from tests.kernel.test_kernel import make_kernel


class TestFootprint:
    def test_attribution(self):
        kernel = make_kernel()
        kernel.alloc_app_pages(4)
        obj = kernel.alloc_object(KernelObjectType.PAGE_CACHE)
        snap = footprint_snapshot(kernel.topology)
        assert snap.app_allocated == 4
        assert snap.kernel_allocated == 1
        assert snap.kernel_fraction() == pytest.approx(0.2)
        assert snap.breakdown()["page_cache"] == pytest.approx(0.2)

    def test_cumulative_includes_freed(self):
        kernel = make_kernel()
        obj = kernel.alloc_object(KernelObjectType.PAGE_CACHE)
        kernel.free_object(obj)
        snap = footprint_snapshot(kernel.topology)
        assert snap.kernel_allocated == 1
        assert snap.live.get(PageOwner.PAGE_CACHE, 0) == 0

    def test_empty(self):
        kernel = make_kernel()
        snap = footprint_snapshot(kernel.topology)
        assert snap.kernel_fraction() == 0.0


class TestReferences:
    def test_report_mirrors_kernel_counters(self):
        kernel = make_kernel()
        obj = kernel.alloc_object(KernelObjectType.JOURNAL)
        app = kernel.alloc_app_pages(1)[0]
        kernel.access_object(obj, 64)
        kernel.access_object(obj, 64)
        kernel.access_frame(app, 64)
        report = reference_report(kernel)
        assert report.kernel_refs == 2
        assert report.app_refs == 1
        assert report.kernel_fraction() == pytest.approx(2 / 3)
        assert report.owner_fraction(PageOwner.JOURNAL) == pytest.approx(2 / 3)


class TestLifetimes:
    def test_ordering_detection(self):
        kernel = make_kernel()
        # Short-lived slab object.
        dentry = kernel.alloc_object(KernelObjectType.DENTRY)
        kernel.clock.advance(1000)
        kernel.free_object(dentry)
        # Longer-lived cache page.
        page = kernel.alloc_object(KernelObjectType.PAGE_CACHE)
        kernel.clock.advance(50_000)
        kernel.free_object(page)
        # App pages live to the end.
        kernel.alloc_app_pages(2)
        kernel.clock.advance(10_000_000)
        report = lifetime_report(kernel)
        assert report.ordering_holds()
        assert report.samples["DENTRY"] == 1

    def test_empty_report(self):
        kernel = make_kernel()
        report = lifetime_report(kernel)
        assert not report.ordering_holds()
        assert report.app_mean_ns is None


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["xyz", 10]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_ragged_row_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])
