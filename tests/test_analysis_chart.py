"""Tests for the analysis package and terminal charts."""

import pytest

from repro.analysis.expectations import PAPER_EXPECTATIONS, Band
from repro.analysis.results import load_results, save_results
from repro.analysis.verdict import Verdict, check_fig4
from repro.experiments.fig4 import Fig4Report
from repro.metrics.chart import bar_chart, grouped_bar_chart, sparkline


class TestBand:
    def test_contains(self):
        band = Band(1.0, 2.0, paper_value=1.5)
        assert band.contains(1.0) and band.contains(2.0)
        assert not band.contains(0.99)

    def test_expectations_are_well_formed(self):
        for (exp, metric), band in PAPER_EXPECTATIONS.items():
            assert band.lo < band.hi, (exp, metric)
            if band.paper_value is not None:
                assert band.source, (exp, metric)


class TestVerdict:
    def _fig4(self, klocs=2.0, naive=1.3, nimble=1.5, nomig=1.6, nimblepp=1.7):
        return Fig4Report(
            speedups={
                "rocksdb": {
                    "klocs": klocs, "naive": naive, "nimble": nimble,
                    "klocs_nomigration": nomig, "nimble++": nimblepp,
                    "all_slow": 1.0,
                },
                "redis": {
                    "klocs": klocs, "naive": naive, "nimble": nimble,
                    "klocs_nomigration": nomig, "nimble++": nimblepp,
                    "all_slow": 1.0,
                },
                "cassandra": {
                    "klocs": klocs, "naive": naive, "nimble": nimble,
                    "klocs_nomigration": nomig, "nimble++": nimblepp * 1.2,
                    "all_slow": 1.0,
                },
            }
        )

    def test_passing_report(self):
        verdict = check_fig4(self._fig4())
        assert verdict.ok
        assert "PASS" in verdict.format_report()

    def test_failing_report_flagged(self):
        verdict = check_fig4(self._fig4(klocs=1.0))  # klocs == naive-ish
        assert not verdict.ok
        assert "MISS" in verdict.format_report()

    def test_add_unknown_metric_rejected(self):
        with pytest.raises(KeyError):
            Verdict().add("fig4", "not_a_metric", 1.0)


class TestResultsIO:
    def test_roundtrip(self, tmp_path):
        report = self_report = Fig4Report(speedups={"rocksdb": {"klocs": 1.9}})
        path = save_results(
            report,
            tmp_path / "out" / "fig4.json",
            experiment="fig4",
            config={"scale": 1024},
        )
        loaded = load_results(path)
        assert loaded["experiment"] == "fig4"
        assert loaded["config"]["scale"] == 1024
        assert loaded["report"]["speedups"]["rocksdb"]["klocs"] == 1.9

    def test_enum_and_tuple_keys_flattened(self, tmp_path):
        from repro.experiments.prefetch import PrefetchReport

        report = PrefetchReport(ratios={("rocksdb", "klocs"): 1.2})
        path = save_results(report, tmp_path / "p.json", experiment="prefetch")
        loaded = load_results(path)
        assert loaded["report"]["ratios"]["rocksdb/klocs"] == 1.2

    def test_load_rejects_foreign_json(self, tmp_path):
        p = tmp_path / "x.json"
        p.write_text("{}")
        with pytest.raises(ValueError):
            load_results(p)


class TestCharts:
    def test_bar_chart_scales_to_max(self):
        chart = bar_chart({"a": 1.0, "b": 2.0}, width=10, unit="x")
        lines = chart.splitlines()
        assert lines[1].count("█") == 10  # b is the max → full width
        assert 4 <= lines[0].count("█") <= 6

    def test_bar_chart_title(self):
        assert bar_chart({"a": 1.0}, title="T").splitlines()[0] == "T"

    def test_grouped_chart(self):
        chart = grouped_bar_chart(
            {"rocksdb": {"naive": 1.3, "klocs": 1.9}},
            title="Fig4",
        )
        assert "-- rocksdb --" in chart
        assert "klocs" in chart

    def test_sparkline(self):
        line = sparkline([1, 2, 3, 4])
        assert len(line) == 4
        assert line[0] == "▁" and line[-1] == "█"

    def test_sparkline_downsamples(self):
        assert len(sparkline(list(range(100)), width=10)) == 10

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({})
        with pytest.raises(ValueError):
            sparkline([])
        with pytest.raises(ValueError):
            grouped_bar_chart({})
