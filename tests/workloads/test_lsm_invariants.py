"""Deeper RocksDB-model invariants: the LSM bookkeeping must stay sane
under long op streams (compactions, handle cache, file population)."""

import pytest

from repro.workloads.rocksdb import (
    COMPACTION_FANIN,
    HANDLE_CACHE_SIZE,
    SST_BYTES,
)
from tests.workloads.test_workloads import make


class TestLSMBookkeeping:
    def test_population_tracks_filesystem(self):
        kernel, wl = make("rocksdb")
        wl.run(1200)
        # Every tracked SST exists in the namespace; nothing leaked.
        for name in wl._sst_names:
            assert kernel.fs.exists(name), name
        # And the FS holds only SSTs (plus nothing else for this model).
        assert kernel.fs.file_count() == len(wl._sst_names)

    def test_handle_cache_bounded_and_open(self):
        kernel, wl = make("rocksdb")
        wl.run(1200)
        assert len(wl._handles) <= HANDLE_CACHE_SIZE
        for name, handle in wl._handles.items():
            assert not handle.closed
            assert handle.path == name

    def test_file_sizes_within_lsm_bounds(self):
        """Every live SST is either a flush output (one SST unit) or a
        compaction output (FANIN units) — nothing truncated or inflated."""
        kernel, wl = make("rocksdb")
        wl.run(1500)
        if wl.compactions == 0:
            pytest.skip("op budget too small to reach a compaction")
        sizes = {
            kernel.fs.dcache.lookup(n).inode.size_bytes for n in wl._sst_names
        }
        assert sizes <= {SST_BYTES, SST_BYTES * COMPACTION_FANIN}
        assert SST_BYTES in sizes  # fresh flush outputs exist
        assert SST_BYTES * COMPACTION_FANIN in sizes  # merged outputs too

    def test_dataset_roughly_stable(self):
        _, wl = make("rocksdb")
        wl.setup()
        initial = wl.live_ssts
        wl.run(2000)
        # Compaction prevents unbounded growth (net -3 files per cycle
        # against +8 flushed, so the population drifts slowly, not 2x).
        assert wl.live_ssts < initial * 2

    def test_memtable_flush_cadence(self):
        _, wl = make("rocksdb")
        wl.setup()
        flushes_before = wl.flushes
        wl.run(2000)
        from repro.workloads.rocksdb import WRITES_PER_FLUSH

        expected = 2000 * 0.5 / WRITES_PER_FLUSH
        assert wl.flushes - flushes_before == pytest.approx(expected, rel=0.4)
