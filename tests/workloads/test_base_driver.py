"""Tests for the workload base driver mechanics."""

import pytest

from repro.core.errors import ConfigError
from repro.core.units import SEC
from repro.workloads.base import Workload, WorkloadConfig, WorkloadResult
from tests.workloads.test_workloads import make_kernel


class _CountingWorkload(Workload):
    """Minimal workload recording which CPU each op ran on."""

    def __init__(self, kernel, config):
        super().__init__(kernel, config)
        self.cpus_seen = []
        self.setup_calls = 0

    def _setup(self):
        self.setup_calls += 1

    def run_op(self, op_index, cpu):
        self.cpus_seen.append(cpu)
        self.kernel.clock.advance(1000)


def make_counting(num_threads=4):
    kernel = make_kernel()
    cfg = WorkloadConfig(name="counting", num_threads=num_threads, scale_factor=8192)
    return _CountingWorkload(kernel, cfg)


class TestDriver:
    def test_ops_spread_across_thread_cpus(self):
        wl = make_counting(num_threads=4)
        wl.run(8)
        assert wl.cpus_seen == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_setup_runs_once(self):
        wl = make_counting()
        wl.run(2)
        wl.run(2)
        assert wl.setup_calls == 1

    def test_result_math(self):
        wl = make_counting()
        result = wl.run(10)
        assert result.ops == 10
        assert result.elapsed_ns == 10 * 1000
        assert result.throughput_ops_per_sec == pytest.approx(
            10 / (result.elapsed_ns / SEC)
        )

    def test_zero_elapsed_guard(self):
        result = WorkloadResult(name="x", ops=5, elapsed_ns=0)
        assert result.throughput_ops_per_sec == 0.0

    def test_invalid_ops(self):
        wl = make_counting()
        with pytest.raises(ConfigError):
            wl.run(0)
