"""Tests for the workload models: signatures, phases, and invariants.

These use a large scale factor (small datasets) so each test runs in
well under a second; the behavioural assertions are scale-independent.
"""

import pytest

from repro.core.config import two_tier_platform_spec
from repro.core.errors import ConfigError
from repro.core.units import GB, MB
from repro.kernel.kernel import Kernel
from repro.mem.frame import PageOwner
from repro.policies import NaivePolicy
from repro.workloads import WORKLOADS
from repro.workloads.base import WorkloadConfig

SCALE = 8192  # tiny datasets for unit tests


def make_kernel():
    spec = two_tier_platform_spec(
        fast_capacity_bytes=8 * GB // SCALE * 4,  # roomy: behavior tests only
        slow_capacity_bytes=80 * GB // SCALE * 4,
    )
    kernel = Kernel(spec, NaivePolicy(), seed=11)
    kernel.start()
    return kernel


def make(name, kernel=None):
    kernel = kernel or make_kernel()
    cls = WORKLOADS[name]
    probe = cls(kernel, None).config
    cfg = type(probe)(
        name=probe.name,
        dataset_bytes=probe.dataset_bytes,
        scale_factor=SCALE,
        num_threads=probe.num_threads,
        value_bytes=probe.value_bytes,
        extra=probe.extra,
    )
    return kernel, cls(kernel, cfg)


class TestConfig:
    def test_scaling(self):
        cfg = WorkloadConfig(name="x", dataset_bytes=40 * GB, scale_factor=1024)
        assert cfg.sim_dataset_bytes == 40 * MB
        assert cfg.scaled(8 * GB) == 8 * MB

    def test_small_variant(self):
        cfg = WorkloadConfig(name="x", dataset_bytes=40 * GB)
        assert cfg.small().dataset_bytes == 10 * GB

    def test_invalid(self):
        with pytest.raises(ConfigError):
            WorkloadConfig(name="x", scale_factor=0)
        with pytest.raises(ConfigError):
            WorkloadConfig(name="x", dataset_bytes=0)


class TestRegistry:
    def test_all_five_present(self):
        assert set(WORKLOADS) == {
            "rocksdb", "redis", "filebench", "cassandra", "spark"
        }

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_runs_and_teardown_clean(self, name):
        kernel, wl = make(name)
        result = wl.run(60)
        assert result.ops == 60
        assert result.elapsed_ns > 0
        assert result.throughput_ops_per_sec > 0
        wl.teardown()
        kernel.topology.check_invariants()

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_deterministic(self, name):
        _, wl1 = make(name)
        _, wl2 = make(name)
        r1 = wl1.run(40)
        r2 = wl2.run(40)
        assert r1.elapsed_ns == r2.elapsed_ns

    def test_invalid_ops(self):
        _, wl = make("rocksdb")
        with pytest.raises(ConfigError):
            wl.run(0)


class TestRocksDB:
    def test_lsm_churn(self):
        kernel, wl = make("rocksdb")
        wl.run(800)
        assert wl.flushes > 0
        assert kernel.fs.ops["create"] > 0
        # Compaction deletes files.
        if wl.compactions:
            assert kernel.fs.ops["unlink"] >= wl.compactions

    def test_kernel_object_mix(self):
        kernel, wl = make("rocksdb")
        wl.run(400)
        alloc = kernel.topology.alloc_count
        owners = {owner for (_t, owner) in alloc}
        assert PageOwner.PAGE_CACHE in owners
        assert PageOwner.JOURNAL in owners
        assert PageOwner.SLAB in owners
        assert PageOwner.APP in owners


class TestRedis:
    def test_network_dominated(self):
        kernel, wl = make("redis")
        wl.run(300)
        assert kernel.net.tcp.ingress_packets >= 300
        assert kernel.topology.allocated_pages_by_owner(PageOwner.SOCKBUF) > 0

    def test_checkpoint_rotates_dumps(self):
        kernel, wl = make("redis")
        import repro.workloads.redis as R

        wl.run(R.OPS_PER_CHECKPOINT * 2 + 10)
        assert wl.checkpoints >= 2
        assert kernel.fs.ops["unlink"] >= 1  # old dump deleted


class TestFilebench:
    def test_most_kernel_intensive(self):
        kernel, wl = make("filebench")
        wl.setup()
        kernel.reset_reference_counters()
        wl.run(300)
        assert kernel.kernel_ref_fraction() > 0.75  # paper: 86% in-OS time


class TestCassandra:
    def test_app_cache_absorbs_reads(self):
        kernel, wl = make("cassandra")
        wl.setup()
        kernel.reset_reference_counters()
        wl.run(300)
        # The heavy JVM/app-cache path keeps the kernel share low.
        assert kernel.kernel_ref_fraction() < 0.5

    def test_commitlog_appends(self):
        kernel, wl = make("cassandra")
        wl.run(300)
        assert kernel.fs.ops["write"] > 0


class TestSpark:
    def test_phase_machine_completes(self):
        kernel, wl = make("spark")
        wl.setup()
        wl.run(wl.ops_to_complete() + 5)
        assert wl.done
        assert len(wl._outputs) > 0
        # Inputs and spills were deleted (checkpoint-and-delete).
        assert kernel.fs.ops["unlink"] >= 2 * len(wl._outputs)

    def test_phases_in_order(self):
        _, wl = make("spark")
        wl.setup()
        assert wl.phase == "generate"
        wl.run(wl._total_chunks)
        assert wl.phase == "shuffle"


class TestReferenceCalibration:
    """Fig 2c's bands, asserted loosely at tiny scale."""

    def test_filebench_most_kernel_intensive(self):
        """Fig 2c's extreme: Filebench is overwhelmingly in-kernel; the
        cache-heavy JVM workload is the least. (The full RocksDB/Redis
        bands are asserted at experiment scale in the fig2 benchmark —
        tiny unit-test datasets compress the middle of the ordering.)"""
        fractions = {}
        for name in ("filebench", "cassandra"):
            kernel, wl = make(name)
            wl.setup()
            kernel.reset_reference_counters()
            wl.run(300)
            fractions[name] = kernel.kernel_ref_fraction()
        assert fractions["filebench"] > 0.7
        assert fractions["cassandra"] < 0.5
        assert fractions["filebench"] > fractions["cassandra"]
