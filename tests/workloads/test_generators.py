"""Tests for key distributions and the YCSB generator."""

import pytest

from repro.core.rng import DeterministicRNG
from repro.workloads.keydist import UniformKeys, ZipfKeys
from repro.workloads.ycsb import YCSBGenerator, YCSBOp


class TestKeyDistributions:
    def test_zipf_range_and_skew(self):
        keys = ZipfKeys(DeterministicRNG(1), universe=10_000)
        draws = [keys.next_key() for _ in range(5000)]
        assert all(0 <= k < 10_000 for k in draws)
        head = sum(1 for k in draws if k < 100)
        assert head / len(draws) > 0.3

    def test_uniform_range(self):
        keys = UniformKeys(DeterministicRNG(1), universe=100)
        draws = [keys.next_key() for _ in range(2000)]
        assert all(0 <= k < 100 for k in draws)
        # Roughly flat: every decile hit.
        assert len({k // 10 for k in draws}) == 10

    def test_invalid_universe(self):
        with pytest.raises(ValueError):
            ZipfKeys(DeterministicRNG(1), universe=0)
        with pytest.raises(ValueError):
            UniformKeys(DeterministicRNG(1), universe=-1)


class TestYCSB:
    def test_mix_ratio(self):
        gen = YCSBGenerator(DeterministicRNG(2), num_keys=1000, read_fraction=0.5)
        ops = [gen.next_request().op for _ in range(4000)]
        reads = sum(1 for op in ops if op is YCSBOp.READ)
        assert 0.45 < reads / len(ops) < 0.55

    def test_read_only(self):
        gen = YCSBGenerator(DeterministicRNG(2), num_keys=10, read_fraction=1.0)
        assert all(
            gen.next_request().op is YCSBOp.READ for _ in range(50)
        )

    def test_keys_in_range(self):
        gen = YCSBGenerator(DeterministicRNG(2), num_keys=100)
        assert all(0 <= gen.next_request().key < 100 for _ in range(500))

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            YCSBGenerator(DeterministicRNG(2), num_keys=10, read_fraction=1.5)

    def test_deterministic(self):
        a = YCSBGenerator(DeterministicRNG(3), num_keys=100)
        b = YCSBGenerator(DeterministicRNG(3), num_keys=100)
        assert [a.next_request() for _ in range(20)] == [
            b.next_request() for _ in range(20)
        ]
