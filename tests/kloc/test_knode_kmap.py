"""Tests for knodes and the global kmap."""

import pytest

from repro.core.errors import SimulationError
from repro.core.objtypes import KernelObjectType
from repro.kloc.kmap import KMap
from repro.kloc.knode import KNODE_STRUCT_BYTES, RB_POINTER_BYTES, Knode
from tests.fakes import FakeKernel


@pytest.fixture
def kernel():
    return FakeKernel()


def make_obj(kernel, otype=KernelObjectType.DENTRY):
    return kernel.alloc_object(otype)


class TestKnodeMembership:
    def test_slab_objects_go_to_slab_tree(self, kernel):
        knode = Knode(1, ino=10)
        obj = make_obj(kernel, KernelObjectType.DENTRY)
        knode.add_obj(obj)
        assert len(knode.rbtree_slab) == 1
        assert len(knode.rbtree_cache) == 0
        assert list(knode.iter_slab()) == [obj]

    def test_page_objects_go_to_cache_tree(self, kernel):
        knode = Knode(1, ino=10)
        obj = make_obj(kernel, KernelObjectType.PAGE_CACHE)
        knode.add_obj(obj)
        assert len(knode.rbtree_cache) == 1
        assert list(knode.iter_cache()) == [obj]

    def test_remove_obj(self, kernel):
        knode = Knode(1, ino=10)
        obj = make_obj(kernel)
        knode.add_obj(obj)
        assert knode.remove_obj(obj) is True
        assert knode.remove_obj(obj) is False
        assert knode.object_count == 0

    def test_iter_all_spans_both_trees(self, kernel):
        knode = Knode(1, ino=10)
        knode.add_obj(make_obj(kernel, KernelObjectType.DENTRY))
        knode.add_obj(make_obj(kernel, KernelObjectType.PAGE_CACHE))
        assert len(list(knode.iter_all())) == 2

    def test_frames_deduplicates_shared_slab_pages(self, kernel):
        """Many dentries share one slab page → one frame to migrate."""
        knode = Knode(1, ino=10)
        for _ in range(5):
            knode.add_obj(make_obj(kernel, KernelObjectType.DENTRY))
        assert len(knode.frames()) == 1

    def test_frames_skips_freed(self, kernel):
        knode = Knode(1, ino=10)
        obj = make_obj(kernel, KernelObjectType.PAGE_CACHE)
        knode.add_obj(obj)
        kernel.free_object(obj)
        assert knode.frames() == []


class TestKnodeHotness:
    def test_touch_resets_age(self):
        knode = Knode(1, ino=10)
        knode.age = 5
        knode.touch(now_ns=100)
        assert knode.age == 0
        assert knode.last_access == 100

    def test_closed_knode_is_definitely_cold(self):
        knode = Knode(1, ino=10)
        knode.inuse = False
        assert knode.is_cold(cold_age=99)

    def test_open_knode_cold_only_when_aged(self):
        knode = Knode(1, ino=10)
        knode.inuse = True
        assert not knode.is_cold(cold_age=2)
        knode.tick_age()
        knode.tick_age()
        assert knode.is_cold(cold_age=2)

    def test_metadata_bytes(self, kernel):
        knode = Knode(1, ino=10)
        for _ in range(3):
            knode.add_obj(make_obj(kernel))
        assert knode.metadata_bytes() == KNODE_STRUCT_BYTES + 3 * RB_POINTER_BYTES


class TestKMap:
    def test_add_lookup_remove(self):
        kmap = KMap()
        knode = Knode(1, ino=10)
        kmap.add(knode)
        assert kmap.lookup(1) is knode
        assert 1 in kmap
        assert kmap.remove(1) is True
        assert kmap.lookup(1) is None

    def test_duplicate_add_rejected(self):
        kmap = KMap()
        kmap.add(Knode(1, ino=10))
        with pytest.raises(SimulationError):
            kmap.add(Knode(1, ino=11))

    def test_rbtree_access_counting(self):
        kmap = KMap()
        kmap.add(Knode(1, ino=10))
        kmap.lookup(1)
        kmap.lookup(2)
        assert kmap.rbtree_accesses == 2

    def test_lru_ordering_closed_first(self):
        kmap = KMap()
        hot = Knode(1, ino=1)
        hot.inuse = True
        hot.last_access = 100
        cold_closed = Knode(2, ino=2)
        cold_closed.inuse = False
        cold_closed.last_access = 500
        kmap.add(hot)
        kmap.add(cold_closed)
        lru = kmap.get_lru_knodes()
        assert lru[0] is cold_closed  # closed beats recently-accessed open

    def test_lru_cold_age_filter(self):
        kmap = KMap()
        young = Knode(1, ino=1)
        young.inuse = True
        young.age = 0
        aged = Knode(2, ino=2)
        aged.inuse = True
        aged.age = 5
        kmap.add(young)
        kmap.add(aged)
        lru = kmap.get_lru_knodes(cold_age=3)
        assert lru == [aged]

    def test_lru_limit(self):
        kmap = KMap()
        for i in range(10):
            kmap.add(Knode(i + 1, ino=i))
        assert len(kmap.get_lru_knodes(limit=4)) == 4

    def test_total_metadata(self):
        kmap = KMap()
        kmap.add(Knode(1, ino=1))
        kmap.add(Knode(2, ino=2))
        assert kmap.total_metadata_bytes() == 2 * KNODE_STRUCT_BYTES
