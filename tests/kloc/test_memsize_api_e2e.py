"""End-to-end: sys_kloc_memsize() actually bounds the kernel share."""

import pytest

from repro.core.units import KB
from repro.kloc.api import KlocAPI
from repro.platforms.twotier import build_two_tier_kernel

SCALE = 4096


class TestMemsizeEndToEnd:
    def test_cap_limits_daemon_upgrades(self):
        kernel, _ = build_two_tier_kernel("klocs", scale_factor=SCALE)
        api = KlocAPI(kernel.kloc_manager)
        api.sys_kloc_memsize("fast", 0.05)
        # The daemon reads the spec through the manager: new cap applies.
        assert kernel.kloc_manager.spec.fast_capacity_fraction == 0.05

        fh = kernel.fs.create("/big")
        kernel.fs.write(fh, 0, 256 * KB)
        knode = kernel.kloc_manager.knode_for_inode(fh.inode)
        kernel.kloc_daemon.free_target_frac = 1.0
        kernel.kloc_daemon.downgrade_knode(knode)
        # Try to pull everything back: the 5% budget must bound it.
        kernel.kloc_daemon.spec = kernel.kloc_manager.spec
        moved = kernel.kloc_daemon.upgrade_knode(knode, limit=10_000)
        fast = kernel.topology.tier("fast")
        budget = int(fast.capacity_pages * 0.05)
        assert kernel.topology.kernel_pages_in("fast") <= budget + 1

    def test_placement_respects_tightened_cap(self):
        kernel, policy = build_two_tier_kernel("klocs", scale_factor=SCALE)
        api = KlocAPI(kernel.kloc_manager)
        api.sys_kloc_memsize("fast", 0.01)
        # Policy reads the platform spec; mirror the syscall there too
        # (the kernel-facade path used by tier_order_kernel).
        object.__setattr__(kernel.platform.kloc, "fast_capacity_fraction", 0.01)
        fh = kernel.fs.create("/f")
        kernel.fs.write(fh, 0, 512 * KB)
        fast = kernel.topology.tier("fast")
        cap = int(fast.capacity_pages * 0.01)
        from repro.mem.frame import PageOwner

        cache_fast = kernel.topology.live_count.get(
            ("fast", PageOwner.PAGE_CACHE), 0
        )
        # The non-transient kernel share stays near the tightened cap
        # (transient journal/bio objects are exempt by design).
        assert cache_fast <= cap + kernel.policy.APP_GROWTH_MARGIN
