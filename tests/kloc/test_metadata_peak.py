"""Peak-metadata regression tests, in both accounting modes.

Table 6's peak figure is sampled at every metadata *growth* site (knode
creation, object tracking, per-CPU list recording); shrink sites and
cache-hit refreshes cannot raise the live size, so the hot path legally
skips sampling there. These tests pin that contract — the peak must
capture growth through every site, never decay, and the incremental
counters must always agree with a from-scratch recomputation — under
both the O(1) counter accounting and the ``REPRO_NO_HOTPATH=1`` walks.
"""

import pytest

from repro.core.objtypes import KernelObjectType
from repro.kloc.knode import KNODE_STRUCT_BYTES, RB_POINTER_BYTES
from repro.kloc.manager import KlocManager
from repro.vfs.inode import Inode
from tests.fakes import FakeKernel

#: id + age + links per per-CPU list entry (percpu_cache.metadata_bytes).
PERCPU_ENTRY_BYTES = 24


@pytest.fixture(params=["hot", "legacy"])
def mode(request, monkeypatch):
    if request.param == "legacy":
        monkeypatch.setenv("REPRO_NO_HOTPATH", "1")
    else:
        monkeypatch.delenv("REPRO_NO_HOTPATH", raising=False)
    return request.param


@pytest.fixture
def kernel(mode):
    # Built after the env toggle: the accounting flag is construction-time.
    return FakeKernel()


@pytest.fixture
def manager(kernel):
    return KlocManager(kernel.clock, num_cpus=4)


def recomputed_bytes(manager):
    """Table 6 accounting from first principles — no incremental state."""
    knodes = manager.kmap.all_knodes()
    objects = sum(k.object_count for k in knodes)
    entries = sum(
        len(manager.percpu.lists.entries(c))
        for c in range(manager.percpu.lists.num_cpus)
    )
    return (
        KNODE_STRUCT_BYTES * len(knodes)
        + RB_POINTER_BYTES * objects
        + PERCPU_ENTRY_BYTES * entries
    )


class TestPeakCapture:
    def test_knode_creation_growth_captured(self, manager):
        inodes = [Inode(i) for i in range(1, 11)]
        for inode in inodes:
            manager.create_knode(inode)
        high = manager.metadata_bytes()
        assert manager.peak_metadata_bytes >= high
        peak = manager.peak_metadata_bytes
        for inode in inodes:
            manager.delete_knode(inode)
        assert manager.metadata_bytes() < high
        assert manager.peak_metadata_bytes == peak

    def test_object_tracking_growth_captured(self, kernel, manager):
        inode = Inode(1)
        manager.create_knode(inode)
        objs = [kernel.alloc_object(KernelObjectType.DENTRY) for _ in range(5)]
        for obj in objs:
            manager.add_object(inode, obj)
            # Every growth site samples, so the peak tracks the live size
            # step for step.
            assert manager.peak_metadata_bytes >= manager.metadata_bytes()
        peak = manager.peak_metadata_bytes
        assert peak >= KNODE_STRUCT_BYTES + RB_POINTER_BYTES * 5
        for obj in objs:
            manager.remove_object(obj)
        assert manager.peak_metadata_bytes == peak

    def test_percpu_list_growth_captured(self, kernel, manager):
        inode = Inode(1)
        manager.create_knode(inode)
        obj = kernel.alloc_object(KernelObjectType.DENTRY)
        manager.add_object(inode, obj)
        base_entries = manager.percpu.lists.total_entries
        for cpu in range(4):
            manager.note_access(obj, cpu=cpu)
            assert manager.peak_metadata_bytes >= manager.metadata_bytes()
        grown = manager.percpu.lists.total_entries - base_entries
        assert grown > 0
        assert manager.peak_metadata_bytes >= (
            KNODE_STRUCT_BYTES
            + RB_POINTER_BYTES
            + PERCPU_ENTRY_BYTES * manager.percpu.lists.total_entries
        )

    def test_hit_path_refresh_does_not_change_peak(self, kernel, manager):
        inode = Inode(1)
        manager.create_knode(inode)
        obj = kernel.alloc_object(KernelObjectType.DENTRY)
        manager.add_object(inode, obj)
        manager.note_access(obj, cpu=0)
        peak = manager.peak_metadata_bytes
        for _ in range(20):  # pure per-CPU hits: no growth, no sampling need
            manager.note_access(obj, cpu=0)
        assert manager.peak_metadata_bytes == peak
        assert manager.peak_metadata_bytes >= manager.metadata_bytes()


class TestIncrementalInvariants:
    def _churn(self, kernel, manager):
        inodes = [Inode(i) for i in range(1, 9)]
        by_inode = {}
        objs = []
        for i, inode in enumerate(inodes):
            manager.create_knode(inode)
            mine = []
            for _ in range(i % 3 + 1):
                obj = kernel.alloc_object(KernelObjectType.DENTRY)
                manager.add_object(inode, obj)
                mine.append(obj)
            by_inode[inode] = mine
            objs.extend(mine)
        for cpu in range(4):
            for obj in objs[:: cpu + 1]:
                manager.note_access(obj, cpu=cpu)
        # Subsystems free their objects at unlink, then the knode goes
        # (§3.2) — tracked objects never outlive their knode here.
        removed = []
        for inode in inodes[:3]:
            for obj in by_inode[inode]:
                manager.remove_object(obj)
                removed.append(obj)
            manager.delete_knode(inode)
        for obj in by_inode[inodes[5]][::2]:
            manager.remove_object(obj)
            removed.append(obj)
        live = [o for o in objs if o not in removed]
        return inodes[3:], live

    def test_counters_match_recomputation(self, kernel, manager):
        self._churn(kernel, manager)
        assert manager.knodes_created - manager.knodes_deleted == len(manager.kmap)
        assert manager.metadata_bytes() == recomputed_bytes(manager)
        assert manager._tracked_objects == sum(  # noqa: SLF001
            k.object_count for k in manager.kmap.all_knodes()
        )

    def test_peak_dominates_live_size_throughout(self, kernel, manager):
        live_inodes, live_objs = self._churn(kernel, manager)
        assert manager.peak_metadata_bytes >= manager.metadata_bytes()
        # Empty everything: the peak is a high-water mark, not live state.
        for obj in live_objs:
            manager.remove_object(obj)
        for inode in live_inodes:
            manager.delete_knode(inode)
        assert manager.metadata_bytes() == 0
        assert manager.peak_metadata_bytes > 0
