"""Tests for the KLOC migration daemon and the Table 2 API."""

import pytest

from repro.core.config import KLOCSpec, MigrationSpec
from repro.core.errors import ConfigError
from repro.core.objtypes import KernelObjectType
from repro.alloc.kloc_alloc import KlocAllocator
from repro.kloc.api import KlocAPI
from repro.kloc.manager import KlocManager
from repro.kloc.migrationd import KlocMigrationDaemon
from repro.mem.migration import MigrationEngine
from repro.vfs.inode import Inode
from tests.fakes import FakeKernel


@pytest.fixture
def kernel():
    return FakeKernel(fast_bytes=1024 * 1024, slow_bytes=8 * 1024 * 1024)


@pytest.fixture
def manager(kernel):
    return KlocManager(kernel.clock, num_cpus=4)


@pytest.fixture
def daemon(kernel, manager):
    engine = MigrationEngine(kernel.topology, kernel.clock, MigrationSpec())
    daemon = KlocMigrationDaemon(
        manager, engine, kernel.topology, spec=KLOCSpec(cold_age_rounds=2)
    )
    # The daemon reclaims only under memory pressure; tests exercise its
    # mechanics directly, so treat fast memory as permanently pressured.
    daemon.free_target_frac = 1.0
    return daemon


def open_file_with_pages(kernel, manager, ino, npages):
    inode = Inode(ino)
    manager.create_knode(inode)
    inode.open()
    manager.open_knode(inode)
    objs = []
    for _ in range(npages):
        obj = kernel.alloc_object(KernelObjectType.PAGE_CACHE)
        manager.add_object(inode, obj)
        objs.append(obj)
    return inode, objs


class TestDowngrade:
    def test_closed_knode_downgraded_en_masse(self, kernel, manager, daemon):
        inode, objs = open_file_with_pages(kernel, manager, 1, 10)
        assert all(o.frame.tier_name == "fast" for o in objs)
        inode.close()
        manager.close_knode(inode)
        stats = daemon.run()
        assert stats["downgraded"] == 10
        assert all(o.frame.tier_name == "slow" for o in objs)

    def test_open_hot_knode_not_downgraded(self, kernel, manager, daemon):
        _inode, objs = open_file_with_pages(kernel, manager, 1, 4)
        daemon.run()
        assert all(o.frame.tier_name == "fast" for o in objs)

    def test_open_aged_knode_downgraded(self, kernel, manager, daemon):
        inode, objs = open_file_with_pages(kernel, manager, 1, 4)
        knode = manager.knode_for_inode(inode)
        # Three daemon rounds with no accesses: age crosses threshold 2.
        for _ in range(3):
            kernel.clock.advance(1)
            daemon.run()
        assert knode.age >= 2
        assert all(o.frame.tier_name == "slow" for o in objs)

    def test_kloc_allocator_pages_ride_along(self, kernel, manager):
        """Small objects from the KLOC interface migrate with the knode."""
        kalloc = KlocAllocator(kernel.topology, kernel.clock)
        engine = MigrationEngine(kernel.topology, kernel.clock, MigrationSpec())
        daemon = KlocMigrationDaemon(
            manager, engine, kernel.topology, kloc_allocator=kalloc
        )
        daemon.free_target_frac = 1.0
        inode = Inode(1)
        knode = manager.create_knode(inode)
        for _ in range(10):
            obj = kalloc.alloc(
                KernelObjectType.DENTRY, ["fast"], knode_id=knode.knode_id
            )
            manager.add_object(inode, obj)
        # knode never opened → inactive → cold.
        stats = daemon.run()
        assert stats["downgraded"] >= 1
        assert all(f.tier_name == "slow" for f in kalloc.knode_frames(knode.knode_id))


class TestUpgrade:
    def test_active_knode_pulled_back_to_fast(self, kernel, manager, daemon):
        inode, objs = open_file_with_pages(kernel, manager, 1, 6)
        inode.close()
        manager.close_knode(inode)
        daemon.run()  # downgrade
        assert all(o.frame.tier_name == "slow" for o in objs)
        inode.open()
        manager.open_knode(inode)
        manager.note_access(objs[0])
        daemon.run()
        assert all(o.frame.tier_name == "fast" for o in objs)
        assert daemon.upgraded_pages == 6

    def test_capacity_cap_respected(self, kernel, manager):
        engine = MigrationEngine(kernel.topology, kernel.clock, MigrationSpec())
        capped = KlocMigrationDaemon(
            manager,
            engine,
            kernel.topology,
            spec=KLOCSpec(fast_capacity_fraction=0.01),
        )
        capped.free_target_frac = 1.0
        inode, objs = open_file_with_pages(kernel, manager, 1, 6)
        inode.close()
        manager.close_knode(inode)
        capped.run()
        inode.open()
        manager.open_knode(inode)
        cap_pages = int(kernel.topology.tier("fast").capacity_pages * 0.01)
        capped.run()
        assert kernel.topology.tier("fast").used_pages <= cap_pages

    def test_migration_mix_reporting(self, kernel, manager, daemon):
        inode, objs = open_file_with_pages(kernel, manager, 1, 10)
        inode.close()
        manager.close_knode(inode)
        daemon.run()
        mix = daemon.migration_mix()
        assert mix["downgrade"] == 1.0
        assert mix["upgrade"] == 0.0


class TestDaemonScheduling:
    def test_start_registers_periodic(self, kernel, manager, daemon):
        daemon.start()
        daemon.start()  # idempotent
        kernel.clock.advance(manager.spec.migrate_period_ns + 1)
        assert daemon.runs >= 1

    def test_empty_run(self, daemon):
        stats = daemon.run()
        assert stats == {"downgraded": 0, "upgraded": 0}
        assert daemon.migration_mix() == {"downgrade": 0.0, "upgrade": 0.0}


class TestKlocAPI:
    def test_sys_enable_kloc(self, manager):
        api = KlocAPI(manager)
        assert api.sys_enable_kloc("rocksdb") is True
        assert api.sys_enable_kloc("rocksdb") is False
        with pytest.raises(ConfigError):
            api.sys_enable_kloc("")

    def test_sys_kloc_memsize(self, manager):
        api = KlocAPI(manager)
        api.sys_kloc_memsize("fast", 0.5)
        assert manager.spec.fast_capacity_fraction == 0.5
        with pytest.raises(ConfigError):
            api.sys_kloc_memsize("slow", 0.5)
        with pytest.raises(ConfigError):
            api.sys_kloc_memsize("fast", 0.0)

    def test_map_and_add(self, kernel, manager):
        api = KlocAPI(manager)
        inode = Inode(10)
        knode = api.map_knode(inode)
        obj = kernel.alloc_object(KernelObjectType.PAGE_CACHE)
        api.knode_add_obj(knode, obj)
        assert list(api.itr_knode_cache(knode)) == [obj]
        assert list(api.itr_knode_slab(knode)) == []

    def test_get_lru_and_find_cpu(self, kernel, manager):
        api = KlocAPI(manager)
        inode = Inode(10)
        knode = api.map_knode(inode, cpu=3)
        assert knode in api.get_lru_knodes()
        assert api.find_cpu(knode) == 3
