"""Tests for the KLOC manager, per-CPU fast paths, and registry."""

import pytest

from repro.core.clock import Clock
from repro.core.errors import ConfigError, SimulationError
from repro.core.objtypes import KernelObjectType
from repro.kloc.manager import KlocManager
from repro.kloc.registry import KlocRegistry
from repro.vfs.inode import Inode
from tests.fakes import FakeKernel


@pytest.fixture
def kernel():
    return FakeKernel()


@pytest.fixture
def manager(kernel):
    return KlocManager(kernel.clock, num_cpus=4)


class TestLifecycle:
    def test_create_knode_binds_inode(self, manager):
        inode = Inode(10)
        knode = manager.create_knode(inode)
        assert inode.knode_id == knode.knode_id
        assert manager.kmap.lookup(knode.knode_id) is knode

    def test_double_create_rejected(self, manager):
        inode = Inode(10)
        manager.create_knode(inode)
        with pytest.raises(SimulationError):
            manager.create_knode(inode)

    def test_open_marks_inuse_and_fires_active(self, manager):
        fired = []
        manager.on_knode_active = fired.append
        inode = Inode(10)
        knode = manager.create_knode(inode)
        inode.open()
        manager.open_knode(inode)
        assert knode.inuse
        assert fired == [knode]

    def test_close_last_opener_fires_inactive(self, manager):
        fired = []
        manager.on_knode_inactive = fired.append
        inode = Inode(10)
        knode = manager.create_knode(inode)
        inode.open()
        manager.open_knode(inode)
        inode.close()
        manager.close_knode(inode)
        assert not knode.inuse
        assert fired == [knode]

    def test_close_with_other_openers_stays_active(self, manager):
        fired = []
        manager.on_knode_inactive = fired.append
        inode = Inode(10)
        knode = manager.create_knode(inode)
        inode.open()
        inode.open()
        manager.open_knode(inode)
        inode.close()
        manager.close_knode(inode)
        assert knode.inuse
        assert fired == []

    def test_delete_removes_from_kmap_and_percpu(self, manager):
        inode = Inode(10)
        knode = manager.create_knode(inode)
        manager.delete_knode(inode)
        assert inode.knode_id is None
        assert manager.kmap.lookup(knode.knode_id) is None
        assert manager.percpu.find_cpu(knode.knode_id) is None

    def test_hooks_tolerate_missing_knode(self, manager):
        inode = Inode(10)  # never given a knode
        assert manager.open_knode(inode) is None
        assert manager.close_knode(inode) is None
        assert manager.delete_knode(inode) is None


class TestObjectMembership:
    def test_add_object_attaches_to_knode(self, kernel, manager):
        inode = Inode(10)
        knode = manager.create_knode(inode)
        obj = kernel.alloc_object(KernelObjectType.DENTRY)
        assert manager.add_object(inode, obj) is True
        assert obj.knode_id == knode.knode_id
        assert knode.has_obj(obj)

    def test_uncovered_type_not_tracked(self, kernel):
        manager = KlocManager(
            kernel.clock, num_cpus=2, registry=KlocRegistry.none()
        )
        inode = Inode(10)
        manager.create_knode(inode)
        obj = kernel.alloc_object(KernelObjectType.DENTRY)
        assert manager.add_object(inode, obj) is False
        assert obj.knode_id is None

    def test_remove_object(self, kernel, manager):
        inode = Inode(10)
        manager.create_knode(inode)
        obj = kernel.alloc_object(KernelObjectType.DENTRY)
        manager.add_object(inode, obj)
        assert manager.remove_object(obj) is True
        assert manager.remove_object(obj) is False

    def test_access_refreshes_hotness(self, kernel, manager):
        inode = Inode(10)
        knode = manager.create_knode(inode)
        obj = kernel.alloc_object(KernelObjectType.DENTRY)
        manager.add_object(inode, obj)
        knode.age = 7
        kernel.clock.advance(500)
        manager.note_access(obj, cpu=1)
        assert knode.age == 0
        assert knode.last_access == kernel.clock.now()

    def test_metadata_accounting(self, kernel, manager):
        inode = Inode(10)
        manager.create_knode(inode)
        base = manager.metadata_bytes()
        obj = kernel.alloc_object(KernelObjectType.DENTRY)
        manager.add_object(inode, obj)
        assert manager.metadata_bytes() == base + 8
        assert manager.peak_metadata_bytes >= base + 8
        manager.remove_object(obj)
        assert manager.metadata_bytes() == base


class TestPerCPUFastPath:
    def test_fast_path_absorbs_repeat_lookups(self, manager):
        inode = Inode(10)
        knode = manager.create_knode(inode, cpu=0)
        before = manager.kmap.rbtree_accesses
        for _ in range(10):
            manager.percpu.lookup(knode.knode_id, cpu=0)
        # create_knode seeded cpu 0's list, so all ten hits are fast.
        assert manager.kmap.rbtree_accesses == before
        assert manager.percpu.rbtree_access_reduction() == 1.0

    def test_other_cpu_misses_then_caches(self, manager):
        inode = Inode(10)
        knode = manager.create_knode(inode, cpu=0)
        before = manager.kmap.rbtree_accesses
        manager.percpu.lookup(knode.knode_id, cpu=3)  # miss → rbtree
        manager.percpu.lookup(knode.knode_id, cpu=3)  # hit
        assert manager.kmap.rbtree_accesses == before + 1

    def test_find_cpu(self, manager):
        inode = Inode(10)
        knode = manager.create_knode(inode, cpu=2)
        assert manager.percpu.find_cpu(knode.knode_id) == 2

    def test_inactive_invalidation(self, manager):
        inode = Inode(10)
        knode = manager.create_knode(inode, cpu=1)
        inode.open()
        manager.open_knode(inode, cpu=1)
        inode.close()
        manager.close_knode(inode, cpu=1)
        assert manager.percpu.find_cpu(knode.knode_id) is None


class TestRegistry:
    def test_full_coverage_exceeds_400_sites(self):
        assert KlocRegistry().redirected_sites() > 400

    def test_group_coverage(self):
        registry = KlocRegistry.groups("page_cache")
        assert registry.covered(KernelObjectType.PAGE_CACHE)
        assert not registry.covered(KernelObjectType.DENTRY)

    def test_incremental_groups_monotonic(self):
        """Fig 5c's incremental adds grow the covered site count."""
        groups = ["page_cache", "journal", "slab", "sockbuf", "block_io"]
        registry = KlocRegistry.none()
        last = 0
        for group in groups:
            registry.enable_group(group)
            count = registry.redirected_sites()
            assert count > last
            last = count

    def test_disable(self):
        registry = KlocRegistry()
        registry.disable(KernelObjectType.DENTRY)
        assert not registry.covered(KernelObjectType.DENTRY)
        registry.disable_group("journal")
        assert not registry.covered(KernelObjectType.JOURNAL)

    def test_unknown_group_rejected(self):
        with pytest.raises(ConfigError):
            KlocRegistry.none().enable_group("nope")
