"""Clock edge cases for the batched charge windows.

``Kernel.access_frames`` defers per-frame ``Clock.advance`` calls only
while ``now + pending + cost < next_deadline_ns`` — strictly *less than*,
because a batch that lands exactly on a deadline must fire the daemon at
that instant, exactly as the per-frame loop would. These tests pin the
boundary semantics the window proof relies on, plus the staggering and
re-advancing behaviors the batch must not disturb.
"""

from repro.core.clock import Clock
from repro.core.config import two_tier_platform_spec
from repro.core.units import MB, PAGE_SIZE
from repro.kernel.kernel import Kernel
from repro.policies import NaivePolicy


def make_kernel(**kwargs):
    spec = two_tier_platform_spec(
        fast_capacity_bytes=4 * MB, slow_capacity_bytes=40 * MB
    )
    return Kernel(spec, NaivePolicy(), seed=3, **kwargs)


class TestDeadlineBoundary:
    def test_advance_ending_exactly_on_deadline_fires(self):
        """`now == deadline` is due, not deferred — the window test must
        therefore use strict `<`."""
        clock = Clock()
        fires = []
        clock.schedule_periodic(100, fires.append)
        clock.advance(99)
        assert fires == []
        clock.advance(1)
        assert fires == [100]

    def test_batch_ending_exactly_on_deadline_fires_daemon(self):
        """A batched run whose total cost lands exactly on a deadline
        takes the per-frame fallback and fires the daemon at the same
        virtual instant the legacy loop would."""
        kernel = make_kernel()
        frames = kernel.alloc_app_pages(8)
        # Per-frame cost is deterministic: charge one frame to learn it.
        probe_cost = kernel.access_frame(frames[0], PAGE_SIZE)
        fires = []
        start = kernel.clock.now()
        # Three frames in the batch; deadline exactly at the batch's end.
        kernel.clock.schedule_periodic(3 * probe_cost, fires.append)
        total = kernel.access_frames(frames[1:4], 3 * PAGE_SIZE)
        assert total == 3 * probe_cost
        assert fires == [start + 3 * probe_cost]

    def test_batch_strictly_inside_window_defers_nothing_observable(self):
        kernel = make_kernel()
        frames = kernel.alloc_app_pages(8)
        probe_cost = kernel.access_frame(frames[0], PAGE_SIZE)
        fires = []
        kernel.clock.schedule_periodic(3 * probe_cost + 1, fires.append)
        kernel.access_frames(frames[1:4], 3 * PAGE_SIZE)
        assert fires == []
        kernel.clock.advance(1)
        assert len(fires) == 1


class TestCallbackReAdvance:
    def test_callback_advancing_past_second_daemon_deadline(self):
        """A daemon whose work pushes time past another daemon's deadline
        does not fire it recursively; the outer dispatch loop does, in
        registration order — batched advances must preserve this."""
        clock = Clock()
        order = []

        def worker(now):
            order.append(("worker", now))
            clock.advance(7)  # crosses the observer's t=15 deadline

        clock.schedule_periodic(10, worker)
        clock.schedule_periodic(15, lambda t: order.append(("observer", t)))
        clock.advance(10)
        # worker fires at 10, its work moves time to 17; the outer loop
        # then dispatches the observer at now=17 (not recursively at 15).
        assert order == [("worker", 10), ("observer", 17)]
        assert clock.now() == 17


class TestPhaseStagger:
    def test_phase_ns_offsets_first_firing(self):
        clock = Clock()
        fires = []
        clock.schedule_periodic(100, lambda t: fires.append(("a", t)))
        clock.schedule_periodic(100, lambda t: fires.append(("b", t)), phase_ns=30)
        clock.advance(100)
        assert fires == [("a", 100)]
        clock.advance(30)
        assert fires == [("a", 100), ("b", 130)]
        # Subsequent periods keep the stagger.
        clock.advance(70)
        assert fires[-1] == ("a", 200)
        clock.advance(30)
        assert fires[-1] == ("b", 230)

    def test_staggered_deadline_seeds_fast_path_cache(self):
        clock = Clock()
        clock.schedule_periodic(100, lambda t: None, phase_ns=30)
        assert clock.next_deadline_ns == 130


class TestBatchedMatchesPerFrame:
    def _drive(self, batched: bool):
        """One run: daemon records fire times while frames are charged."""
        kernel = make_kernel()
        frames = kernel.alloc_app_pages(32)
        fires = []
        kernel.clock.schedule_periodic(1500, fires.append)
        total = 0
        for _round in range(10):
            if batched:
                total += kernel.access_frames(frames[:8], 8 * PAGE_SIZE)
            else:
                for frame in frames[:8]:
                    total += kernel.access_frame(frame, PAGE_SIZE)
        return total, fires, kernel.clock.now()

    def test_firing_times_and_costs_identical(self):
        """The batched path crosses the daemon's deadline repeatedly;
        fire times, total cost, and final clock must match the per-frame
        loop exactly."""
        per_frame = self._drive(batched=False)
        batched = self._drive(batched=True)
        assert batched == per_frame
        assert per_frame[1], "deadlines were never crossed — test is vacuous"
