"""Tests for the tracing facility and its kernel wiring."""

import pytest

from repro.core.objtypes import KernelObjectType
from repro.core.trace import TraceEvent, Tracer
from repro.policies import KlocsPolicy
from tests.kernel.test_kernel import make_kernel


class TestTracer:
    def test_disabled_by_default(self):
        tracer = Tracer()
        assert tracer.emit(0, "alloc", "X") is False
        assert len(tracer) == 0

    def test_enable_category(self):
        tracer = Tracer()
        tracer.enable("alloc")
        assert tracer.emit(5, "alloc", "DENTRY", tier="fast") is True
        assert tracer.emit(6, "free", "DENTRY") is False
        (event,) = tracer.query()
        assert event.timestamp_ns == 5
        assert event.get("tier") == "fast"
        assert event.get("missing", 42) == 42

    def test_wildcard(self):
        tracer = Tracer()
        tracer.enable("*")
        assert tracer.emit(0, "anything", "x")

    def test_ring_buffer_bounded(self):
        tracer = Tracer(capacity=4)
        tracer.enable("*")
        for i in range(10):
            tracer.emit(i, "c", "n")
        assert len(tracer) == 4
        assert tracer.dropped == 6
        assert [e.timestamp_ns for e in tracer.query()] == [6, 7, 8, 9]

    def test_query_filters(self):
        tracer = Tracer()
        tracer.enable("*")
        tracer.emit(1, "a", "x")
        tracer.emit(2, "b", "x")
        tracer.emit(3, "a", "y")
        assert len(list(tracer.query(category="a"))) == 2
        assert len(list(tracer.query(name="x"))) == 2
        assert len(list(tracer.query(since_ns=3))) == 1

    def test_counts_and_clear(self):
        tracer = Tracer()
        tracer.enable("*")
        tracer.emit(0, "a", "x")
        tracer.emit(0, "a", "x")
        tracer.emit(0, "a", "y")
        assert tracer.counts_by_name("a") == {"x": 2, "y": 1}
        tracer.clear()
        assert len(tracer) == 0

    def test_disable(self):
        tracer = Tracer()
        tracer.enable("a", "b")
        tracer.disable("a")
        assert not tracer.enabled("a")
        assert tracer.enabled("b")

    def test_invalid(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)
        with pytest.raises(ValueError):
            Tracer().enable()

    def test_event_repr(self):
        event = TraceEvent(10, "alloc", "INODE", (("tier", "fast"),))
        assert "alloc:INODE" in repr(event)
        assert "tier=fast" in repr(event)


class TestKernelWiring:
    def test_alloc_free_knode_events(self):
        kernel = make_kernel(KlocsPolicy())
        tracer = Tracer()
        tracer.enable("*")
        kernel.tracer = tracer
        fh = kernel.fs.create("/traced")
        kernel.fs.write(fh, 0, 8192)
        kernel.fs.close(fh)
        kernel.fs.unlink("/traced")

        allocs = tracer.counts_by_name("alloc")
        assert allocs.get("INODE") == 1
        assert allocs.get("PAGE_CACHE", 0) >= 2
        assert any(e.name == "create" for e in tracer.query(category="knode"))
        frees = tracer.counts_by_name("free")
        assert frees.get("PAGE_CACHE", 0) >= 2

    def test_tracing_off_changes_nothing(self):
        kernel = make_kernel()
        fh = kernel.fs.create("/x")
        kernel.fs.write(fh, 0, 4096)  # no tracer set: must simply work
        assert kernel.tracer is None
