"""Regression tests for the cached-next-deadline clock fast path.

``Clock.advance`` must behave exactly as the original scan-every-daemon
dispatch did: same firing order, same coalescing of missed ticks, same
re-entrancy semantics — the cached minimum deadline is purely an
optimization that skips the daemon scan while nothing is due.
"""

import pytest

from repro.core.clock import Clock
from repro.core.units import MS, US


class TestFastPathInvariant:
    def test_cache_starts_unset(self):
        clock = Clock()
        assert clock._next_deadline == Clock._NEVER

    def test_cache_tracks_min_deadline(self):
        clock = Clock()
        clock.schedule_periodic(100, lambda t: None)
        clock.schedule_periodic(40, lambda t: None)
        assert clock._next_deadline == 40
        clock.advance(40)  # fires the 40ns daemon, next at 80
        assert clock._next_deadline == 80

    def test_cache_never_exceeds_real_min(self):
        """The invariant the fast path relies on: cached deadline is the
        true minimum after every mutation."""
        clock = Clock()
        clock.schedule_periodic(7, lambda t: None)
        clock.schedule_periodic(13, lambda t: None, phase_ns=2)
        for step in (3, 5, 1, 20, 2, 40):
            clock.advance(step)
            real = min(d for d, _p, _cb in clock._periodic)
            assert clock._next_deadline == real

    def test_advance_below_deadline_skips_scan(self):
        clock = Clock()
        fires = []
        clock.schedule_periodic(1000, fires.append)
        for _ in range(999):
            clock.advance(1)
        assert fires == []
        clock.advance(1)
        assert fires == [1000]


class TestFiringOrderUnchanged:
    def test_interleaved_daemons_fire_in_list_order_when_both_due(self):
        """Two daemons due on the same advance fire in registration order,
        exactly as the original linear scan dispatched them."""
        clock = Clock()
        order = []
        clock.schedule_periodic(10, lambda t: order.append(("a", t)))
        clock.schedule_periodic(10, lambda t: order.append(("b", t)))
        clock.advance(10)
        assert order == [("a", 10), ("b", 10)]

    def test_staggered_daemons_fire_at_their_own_deadlines(self):
        clock = Clock()
        order = []
        clock.schedule_periodic(10, lambda t: order.append(("fast", t)))
        clock.schedule_periodic(25, lambda t: order.append(("slow", t)))
        for _ in range(6):
            clock.advance(5)
        assert order == [("fast", 10), ("fast", 20), ("slow", 25), ("fast", 30)]

    def test_callback_scheduling_new_daemon_updates_cache(self):
        clock = Clock()
        fires = []

        def parent(now):
            fires.append(("parent", now))
            clock.schedule_periodic(5, lambda t: fires.append(("child", t)))

        clock.schedule_periodic(10, parent)
        clock.advance(10)  # parent fires, child scheduled for 15
        assert clock._next_deadline == 15
        clock.advance(5)
        assert fires == [("parent", 10), ("child", 15)]


class TestCoalescingUnchanged:
    def test_missed_ticks_coalesce_into_one_firing(self):
        clock = Clock()
        fires = []
        clock.schedule_periodic(10, fires.append)
        clock.advance(1000)
        assert fires == [1000]

    def test_deadline_after_coalesce_is_phase_aligned(self):
        clock = Clock()
        fires = []
        clock.schedule_periodic(10, fires.append)
        clock.advance(25)  # fires once; next deadline snaps to 30
        assert clock._next_deadline == 30
        clock.advance(5)
        assert fires == [25, 30]

    def test_callback_advancing_clock_does_not_recurse(self):
        clock = Clock()
        fires = []

        def daemon(now):
            fires.append(now)
            clock.advance(3 * US)  # its own work; must not re-dispatch

        clock.schedule_periodic(1 * MS, daemon)
        clock.advance(1 * MS)
        assert len(fires) == 1
        assert clock.now() == 1 * MS + 3 * US

    def test_callback_overrunning_own_period_fires_again_from_outer_loop(self):
        """A daemon whose work overruns its own period is re-dispatched by
        the outer while-loop (not recursively) — original semantics."""
        clock = Clock()
        fires = []

        def daemon(now):
            fires.append(now)
            if len(fires) < 3:
                clock.advance(15)  # overruns the 10ns period

        clock.schedule_periodic(10, daemon)
        clock.advance(10)
        # 10 → work to 25 → outer loop sees deadline 20 due → fires at 25
        # → work to 40 → deadline 30 due → fires at 40 → stops.
        assert fires == [10, 25, 40]
        assert clock._next_deadline == 50
