"""Tests for unit helpers."""

import pytest

from repro.core.units import (
    GB,
    KB,
    MB,
    MS,
    PAGE_SIZE,
    SEC,
    US,
    bytes_to_human,
    ns_to_human,
    pages_for,
)


class TestConstants:
    def test_size_ladder(self):
        assert KB == 1024
        assert MB == 1024 * KB
        assert GB == 1024 * MB

    def test_page_size_is_4kb(self):
        assert PAGE_SIZE == 4096

    def test_time_ladder(self):
        assert US == 1000
        assert MS == 1000 * US
        assert SEC == 1000 * MS


class TestPagesFor:
    def test_exact_page(self):
        assert pages_for(PAGE_SIZE) == 1

    def test_rounds_up(self):
        assert pages_for(PAGE_SIZE + 1) == 2

    def test_zero_bytes(self):
        assert pages_for(0) == 0

    def test_sub_page(self):
        assert pages_for(1) == 1

    def test_large(self):
        assert pages_for(1 * GB) == GB // PAGE_SIZE

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            pages_for(-1)


class TestHumanRendering:
    @pytest.mark.parametrize(
        "nbytes,expected",
        [(512, "512B"), (2 * KB, "2.0KB"), (3 * MB, "3.0MB"), (4 * GB, "4.0GB")],
    )
    def test_bytes(self, nbytes, expected):
        assert bytes_to_human(nbytes) == expected

    @pytest.mark.parametrize(
        "ns,expected",
        [(500, "500ns"), (2 * US, "2.00us"), (36 * MS, "36.00ms"), (2 * SEC, "2.00s")],
    )
    def test_ns(self, ns, expected):
        assert ns_to_human(ns) == expected
