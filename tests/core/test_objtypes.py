"""Tests for the Table 1 kernel-object taxonomy."""

from repro.core.objtypes import (
    FIG5C_GROUPS,
    AllocatorKind,
    KernelObjectType,
    Subsystem,
)
from repro.core.units import PAGE_SIZE
from repro.mem.frame import PageOwner


class TestTable1Coverage:
    def test_all_eleven_table1_rows_present(self):
        """Table 1 lists 11 structures (plus radix nodes from §3.1)."""
        names = {t.name for t in KernelObjectType}
        assert {
            "INODE", "BLOCK", "JOURNAL", "PAGE_CACHE", "DENTRY", "EXTENT",
            "BLK_MQ", "SOCK", "SKBUFF", "SKBUFF_DATA", "RX_BUF", "RADIX_NODE",
        } == names

    def test_inode_spans_both_subsystems(self):
        assert KernelObjectType.INODE.subsystem is Subsystem.BOTH

    def test_network_types(self):
        for t in (KernelObjectType.SOCK, KernelObjectType.SKBUFF,
                  KernelObjectType.SKBUFF_DATA, KernelObjectType.RX_BUF):
            assert t.subsystem is Subsystem.NETWORK

    def test_slab_family_flags(self):
        assert KernelObjectType.DENTRY.is_slab
        assert not KernelObjectType.PAGE_CACHE.is_slab
        assert KernelObjectType.PAGE_CACHE.allocator is AllocatorKind.PAGE

    def test_sizes_sane(self):
        for t in KernelObjectType:
            assert 0 < t.size_bytes <= PAGE_SIZE

    def test_owner_mapping(self):
        assert KernelObjectType.PAGE_CACHE.owner is PageOwner.PAGE_CACHE
        assert KernelObjectType.JOURNAL.owner is PageOwner.JOURNAL
        assert KernelObjectType.BLOCK.owner is PageOwner.BLOCK_IO
        assert KernelObjectType.RX_BUF.owner is PageOwner.SOCKBUF
        assert KernelObjectType.DENTRY.owner is PageOwner.SLAB


class TestFig5cGroups:
    def test_groups_partition_all_types(self):
        grouped = [t for types in FIG5C_GROUPS.values() for t in types]
        assert sorted(t.name for t in grouped) == sorted(
            t.name for t in KernelObjectType
        )
        assert len(grouped) == len(set(grouped))

    def test_paper_group_order(self):
        assert list(FIG5C_GROUPS) == [
            "page_cache", "journal", "slab", "sockbuf", "block_io"
        ]
