"""Tests for the deterministic RNG."""

import pytest

from repro.core.rng import DeterministicRNG


class TestDeterminism:
    def test_same_seed_same_sequence(self):
        a = DeterministicRNG(seed=7)
        b = DeterministicRNG(seed=7)
        assert [a.randint(0, 100) for _ in range(20)] == [
            b.randint(0, 100) for _ in range(20)
        ]

    def test_different_seeds_diverge(self):
        a = DeterministicRNG(seed=1)
        b = DeterministicRNG(seed=2)
        assert [a.randint(0, 10**9) for _ in range(5)] != [
            b.randint(0, 10**9) for _ in range(5)
        ]

    def test_streams_are_reproducible(self):
        a = DeterministicRNG(seed=7).stream("workload")
        b = DeterministicRNG(seed=7).stream("workload")
        assert a.randint(0, 10**9) == b.randint(0, 10**9)

    def test_streams_are_independent(self):
        root = DeterministicRNG(seed=7)
        s1 = root.stream("workload")
        # Drawing from one stream must not perturb a sibling.
        _ = [s1.random() for _ in range(100)]
        s2 = root.stream("interference")
        fresh = DeterministicRNG(seed=7).stream("interference")
        assert s2.randint(0, 10**9) == fresh.randint(0, 10**9)


class TestZipf:
    def test_range(self):
        rng = DeterministicRNG(seed=3)
        draws = [rng.zipf(1000) for _ in range(2000)]
        assert min(draws) >= 0
        assert max(draws) < 1000

    def test_skew(self):
        """The head of the distribution should dominate."""
        rng = DeterministicRNG(seed=3)
        draws = [rng.zipf(10_000, theta=0.99) for _ in range(5000)]
        head = sum(1 for d in draws if d < 100)
        assert head / len(draws) > 0.3  # heavy skew toward hot keys

    def test_single_element_universe(self):
        rng = DeterministicRNG(seed=3)
        assert rng.zipf(1) == 0

    def test_invalid_universe(self):
        with pytest.raises(ValueError):
            DeterministicRNG().zipf(0)


class TestPareto:
    def test_positive(self):
        rng = DeterministicRNG(seed=5)
        assert all(rng.pareto_bytes(4096) >= 1 for _ in range(100))

    def test_mean_roughly_respected(self):
        rng = DeterministicRNG(seed=5)
        draws = [rng.pareto_bytes(4096, shape=2.5) for _ in range(20_000)]
        mean = sum(draws) / len(draws)
        assert 0.5 * 4096 < mean < 2.0 * 4096

    def test_invalid_mean(self):
        with pytest.raises(ValueError):
            DeterministicRNG().pareto_bytes(0)
