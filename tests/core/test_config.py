"""Tests for configuration dataclasses."""

import pytest

from repro.core.config import (
    KLOCSpec,
    LRUSpec,
    MigrationSpec,
    PlatformSpec,
    StorageSpec,
    TierSpec,
    fast_dram_spec,
    pmem_spec,
    slow_dram_spec,
    two_tier_platform_spec,
)
from repro.core.errors import ConfigError
from repro.core.units import GB, MB, PAGE_SIZE


class TestTierSpec:
    def test_capacity_pages(self):
        spec = fast_dram_spec(capacity_bytes=8 * GB)
        assert spec.capacity_pages == 8 * GB // PAGE_SIZE

    def test_rejects_unaligned_capacity(self):
        with pytest.raises(ConfigError):
            TierSpec("x", PAGE_SIZE + 1, 10, 10, 1.0, 1.0)

    def test_rejects_zero_capacity(self):
        with pytest.raises(ConfigError):
            TierSpec("x", 0, 10, 10, 1.0, 1.0)

    def test_rejects_negative_latency(self):
        with pytest.raises(ConfigError):
            TierSpec("x", PAGE_SIZE, -1, 10, 1.0, 1.0)

    def test_rejects_zero_bandwidth(self):
        with pytest.raises(ConfigError):
            TierSpec("x", PAGE_SIZE, 10, 10, 0.0, 1.0)

    def test_frozen(self):
        spec = fast_dram_spec()
        with pytest.raises(AttributeError):
            spec.capacity_bytes = 1


class TestDeviceBands:
    """§2's survey: the default specs must respect the paper's bands."""

    def test_slow_tier_has_higher_read_latency(self):
        fast, slow = fast_dram_spec(), slow_dram_spec()
        assert 2 <= slow.read_latency_ns / fast.read_latency_ns <= 3

    def test_slow_tier_write_latency_worse_than_read(self):
        slow = slow_dram_spec()
        assert slow.write_latency_ns > slow.read_latency_ns

    def test_default_bandwidth_ratio_is_8(self):
        fast, slow = fast_dram_spec(), slow_dram_spec()
        assert fast.read_bw_bytes_per_ns / slow.read_bw_bytes_per_ns == pytest.approx(8)

    def test_pmem_write_bandwidth_below_read(self):
        spec = pmem_spec()
        assert spec.write_bw_bytes_per_ns < spec.read_bw_bytes_per_ns


class TestGuards:
    def test_migration_threads_positive(self):
        with pytest.raises(ConfigError):
            MigrationSpec(copy_threads=0)

    def test_lru_rate_positive(self):
        with pytest.raises(ConfigError):
            LRUSpec(scan_pages_per_second=0)

    def test_kloc_fraction_range(self):
        with pytest.raises(ConfigError):
            KLOCSpec(fast_capacity_fraction=0.0)
        with pytest.raises(ConfigError):
            KLOCSpec(fast_capacity_fraction=1.5)

    def test_storage_bandwidth_positive(self):
        with pytest.raises(ConfigError):
            StorageSpec(seq_bw_bytes_per_ns=0.0)

    def test_platform_cpus_positive(self):
        with pytest.raises(ConfigError):
            PlatformSpec("x", fast_dram_spec(), slow_dram_spec(), num_cpus=0)


class TestTwoTierFactory:
    def test_default_slow_is_10x_fast(self):
        spec = two_tier_platform_spec(fast_capacity_bytes=256 * MB)
        assert spec.slow.capacity_bytes == 10 * 256 * MB

    def test_bandwidth_ratio_applied(self):
        spec = two_tier_platform_spec(bandwidth_ratio=4)
        assert spec.fast.read_bw_bytes_per_ns / spec.slow.read_bw_bytes_per_ns == (
            pytest.approx(4)
        )

    def test_name_encodes_config(self):
        spec = two_tier_platform_spec(fast_capacity_bytes=128 * MB, bandwidth_ratio=2)
        assert "128MB" in spec.name and "1:2" in spec.name
