"""Tests for the virtual clock."""

import pytest

from repro.core.clock import Clock
from repro.core.units import MS, SEC, US


class TestClockBasics:
    def test_starts_at_zero(self):
        assert Clock().now() == 0

    def test_custom_start(self):
        assert Clock(start_ns=500).now() == 500

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            Clock(start_ns=-1)

    def test_advance_accumulates(self):
        clock = Clock()
        clock.advance(10)
        clock.advance(5)
        assert clock.now() == 15

    def test_advance_returns_new_time(self):
        clock = Clock()
        assert clock.advance(7) == 7

    def test_zero_advance_allowed(self):
        clock = Clock()
        clock.advance(0)
        assert clock.now() == 0

    def test_negative_advance_rejected(self):
        clock = Clock()
        with pytest.raises(ValueError):
            clock.advance(-1)

    def test_now_seconds(self):
        clock = Clock()
        clock.advance(2 * SEC + 500 * MS)
        assert clock.now_seconds() == pytest.approx(2.5)

    def test_repr_mentions_time(self):
        assert "now=0" in repr(Clock())


class TestPeriodicCallbacks:
    def test_fires_once_per_period(self):
        clock = Clock()
        fires = []
        clock.schedule_periodic(100, fires.append)
        clock.advance(99)
        assert fires == []
        clock.advance(1)
        assert fires == [100]

    def test_coalesces_missed_ticks(self):
        """A huge jump fires the callback once, not once per missed period."""
        clock = Clock()
        fires = []
        clock.schedule_periodic(10, fires.append)
        clock.advance(1000)
        assert len(fires) == 1

    def test_next_deadline_after_coalesce(self):
        clock = Clock()
        fires = []
        clock.schedule_periodic(10, fires.append)
        clock.advance(25)  # fires at 25, next deadline 30
        clock.advance(5)  # fires at 30
        assert len(fires) == 2

    def test_multiple_daemons_independent(self):
        clock = Clock()
        a, b = [], []
        clock.schedule_periodic(10, a.append)
        clock.schedule_periodic(25, b.append)
        clock.advance(30)
        assert len(a) == 1  # coalesced
        assert len(b) == 1

    def test_phase_offsets_first_firing(self):
        clock = Clock()
        fires = []
        clock.schedule_periodic(10, fires.append, phase_ns=5)
        clock.advance(14)
        assert fires == []
        clock.advance(1)
        assert fires == [15]

    def test_invalid_period_rejected(self):
        clock = Clock()
        with pytest.raises(ValueError):
            clock.schedule_periodic(0, lambda t: None)

    def test_callback_may_advance_clock(self):
        """Daemons cost virtual time themselves; no infinite recursion."""
        clock = Clock()
        fires = []

        def daemon(now):
            fires.append(now)
            clock.advance(3 * US)  # the daemon's own work

        clock.schedule_periodic(1 * MS, daemon)
        clock.advance(1 * MS)
        assert len(fires) == 1
        assert clock.now() == 1 * MS + 3 * US
