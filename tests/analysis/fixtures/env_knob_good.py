"""Fixture: environment knobs read only at sanctioned sites."""

import os

_AT_IMPORT = os.environ.get("REPRO_FIXTURE_FLAG")


class Component:
    def __init__(self) -> None:
        self.flag = bool(os.environ.get("REPRO_FIXTURE_FLAG"))


def fixture_knob():  # simlint: config-site
    return os.getenv("REPRO_FIXTURE_FLAG")
