"""Fixture: environment knobs read mid-run (cache-poisoning bugs)."""

import os


def poll_flag():
    return os.environ.get("REPRO_FIXTURE_FLAG")


def getenv_midrun():
    return os.getenv("REPRO_FIXTURE_FLAG")
