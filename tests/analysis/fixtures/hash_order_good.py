"""Fixture: set consumption behind a sort — order is deterministic."""

from typing import Set


class Tracker:
    def __init__(self) -> None:
        self.members: Set[int] = set()

    def ordered(self):
        return sorted(self.members)

    def contains(self, m) -> bool:
        return m in self.members
