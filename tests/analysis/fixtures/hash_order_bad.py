"""Fixture: hash-order-dependent constructs feeding ordered results."""

from typing import Dict, Set


class Tracker:
    def __init__(self) -> None:
        self.members: Set[int] = set()
        self.index: Dict[str, Set[int]] = {}

    def ordered(self):
        out = []
        for m in self.members:
            out.append(m)
        return out

    def snapshot(self):
        return list(self.members)

    def by_key(self, key):
        found = self.index.get(key)
        return [x for x in found]

    def ranked(self, items):
        return sorted(items, key=id)
