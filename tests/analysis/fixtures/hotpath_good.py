"""Fixture: a @hot function that keeps to the whitelist, iteratively."""


def hot(fn):
    return fn


@hot
def charge(xs):
    total = 0
    for x in xs:
        total += len(x)
    return total


@hot
def guard(n):
    if n < 0:
        raise ValueError(f"negative: {n}")
    return n
