"""Fixture: violations silenced by ``# simlint: ok[...]`` markers."""

from typing import Set

MEMBERS: Set[int] = set()


def snapshot():
    # simlint: ok[hash-order] fixture: marker on the line above
    return list(MEMBERS)


def snapshot_inline():
    return list(MEMBERS)  # simlint: ok[hash-order] fixture: inline marker
