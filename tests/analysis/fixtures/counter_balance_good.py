"""Fixture: balanced counters with a peak watermark at the growth site."""


class Pool:
    def __init__(self) -> None:
        self.total_allocs = 0
        self.total_frees = 0
        self.used_pages = 0
        self.peak_pages = 0

    def grab(self):
        self.total_allocs += 1
        self.used_pages += 1
        if self.used_pages > self.peak_pages:
            self.peak_pages = self.used_pages

    def put(self):
        self.total_frees += 1
        self.used_pages -= 1
