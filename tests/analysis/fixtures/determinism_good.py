"""Fixture: randomness drawn through the injected deterministic RNG."""


def draw(rng):
    return rng.randint(0, 10)


def stamp(clock):
    return clock.now()
