"""Fixture: ad-hoc serialization outside the blessed snapshot path."""

import marshal
import pickle
from copy import deepcopy


def stash(kernel):
    return pickle.dumps(kernel)


def stash_code(blob):
    return marshal.dumps(blob)


def fork_state(kernel):
    twin = deepcopy(kernel)
    return twin


def fork_state_qualified(kernel):
    import copy

    return copy.deepcopy(kernel)
