"""Fixture: @hot functions violating the allocation-free discipline."""


def hot(fn):
    return fn


@hot
def charge(items):
    total = 0
    squares = [i * i for i in items]
    for s in squares:
        total += mystery(s)
    return total


@hot
def deferred(x):
    return lambda: x


@hot
def spin(n):
    if n:
        return spin(n - 1)
    return 0


def mystery(s):
    return s
