"""Fixture: determinism violations (banned imports + banned calls)."""

import os
import random
import time


def jitter():
    time.sleep(0.01)
    return random.random()


def token():
    return os.urandom(8)
