"""Fixture: unbalanced incremental counters."""


class Pool:
    def __init__(self) -> None:
        self.total_allocs = 0
        self.total_frees = 0
        self.used_pages = 0

    def grab(self):
        self.total_allocs += 1
        self.used_pages += 1
