"""Fixture: serialization routed through repro.snapshot's surface.

Shallow ``copy.copy`` stays legal — only deep copies split the shared
references a snapshot must preserve.
"""

import copy


def stash(store, key, kernel, workload):
    store.save(key, kernel, workload)


def unstash(store, key):
    return store.load(key)


def shallow_view(config):
    return copy.copy(config)
