"""Fixture-driven tests for the simlint rules, suppression, and CLI.

Each rule has a bad/good fixture pair under ``fixtures/``: the bad file
must trip the rule (and only sensible rules), the good file must lint
clean. Fixtures live outside ``src/`` so ``python -m repro.analysis src``
stays clean while every rule provably still fires.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.simlint import DEFAULT_RULES, lint_paths, lint_source
from repro.analysis.simlint.engine import format_report, iter_python_files

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]
RULE_IDS = [rule.id for rule in DEFAULT_RULES]

PAIRS = [
    ("determinism", "determinism_bad.py", "determinism_good.py"),
    ("hash-order", "hash_order_bad.py", "hash_order_good.py"),
    ("env-knob", "env_knob_bad.py", "env_knob_good.py"),
    ("hotpath", "hotpath_bad.py", "hotpath_good.py"),
    ("counter-balance", "counter_balance_bad.py", "counter_balance_good.py"),
    ("snapshot-path", "snapshot_path_bad.py", "snapshot_path_good.py"),
]


def rules_hit(path: Path):
    return {v.rule for v in lint_paths([str(path)])}


def test_registry_covers_all_six_rules():
    assert RULE_IDS == [
        "determinism",
        "hash-order",
        "env-knob",
        "hotpath",
        "counter-balance",
        "snapshot-path",
    ]


@pytest.mark.parametrize("rule_id,bad,good", PAIRS)
def test_bad_fixture_trips_rule(rule_id, bad, good):
    assert rule_id in rules_hit(FIXTURES / bad)


@pytest.mark.parametrize("rule_id,bad,good", PAIRS)
def test_good_fixture_is_clean(rule_id, bad, good):
    violations = lint_paths([str(FIXTURES / good)])
    assert violations == [], format_report(violations)


def test_every_rule_has_a_failing_fixture():
    """Acceptance: each rule demonstrably fires on at least one fixture."""
    hit = set()
    for _, bad, _good in PAIRS:
        hit |= rules_hit(FIXTURES / bad)
    assert hit >= set(RULE_IDS)


def test_snapshot_module_is_exempt_from_snapshot_path():
    """repro.snapshot.state imports pickle by design — the rule must
    recognize it as the blessed path, not flag it."""
    violations = lint_paths(
        [str(REPO_ROOT / "src" / "repro" / "snapshot" / "state.py")]
    )
    assert [v for v in violations if v.rule == "snapshot-path"] == []


def test_violation_carries_location_and_message():
    (violation,) = [
        v
        for v in lint_paths([str(FIXTURES / "hash_order_bad.py")])
        if "sorted" in v.message or "id()" in v.message
    ]
    assert violation.rule == "hash-order"
    assert violation.line > 0
    assert violation.path.endswith("hash_order_bad.py")
    assert f":{violation.line}:" in violation.format()


# ----------------------------------------------------------------------
# suppression comments
# ----------------------------------------------------------------------


def test_suppressed_fixture_is_clean():
    assert lint_paths([str(FIXTURES / "suppressed.py")]) == []


def test_suppression_is_line_scoped():
    text = FIXTURES.joinpath("suppressed.py").read_text()
    stripped = text.replace("# simlint: ok[hash-order]", "# marker removed")
    violations = lint_source(stripped, rules=DEFAULT_RULES)
    assert {v.rule for v in violations} == {"hash-order"}
    assert len(violations) == 2  # both list(MEMBERS) sites resurface


def test_wrong_rule_id_does_not_suppress():
    text = (
        "from typing import Set\n"
        "MEMBERS: Set[int] = set()\n"
        "def snapshot():\n"
        "    return list(MEMBERS)  # simlint: ok[determinism] wrong rule\n"
    )
    violations = lint_source(text, rules=DEFAULT_RULES)
    assert [v.rule for v in violations] == ["hash-order"]


def test_multiple_ids_in_one_marker():
    text = (
        "import time  # simlint: ok[determinism, env-knob] fixture\n"
        "def stamp():\n"
        "    return time.monotonic()  # simlint: ok[determinism]\n"
    )
    assert lint_source(text, rules=DEFAULT_RULES) == []


# ----------------------------------------------------------------------
# engine plumbing
# ----------------------------------------------------------------------


def test_iter_python_files_rejects_non_python():
    with pytest.raises(FileNotFoundError):
        list(iter_python_files([str(FIXTURES / "missing.txt")]))


def test_source_tree_is_clean():
    """The shipped simulator sources must lint clean — the CI gate."""
    violations = lint_paths([str(REPO_ROOT / "src")])
    assert violations == [], format_report(violations)


# ----------------------------------------------------------------------
# CLI (python -m repro.analysis)
# ----------------------------------------------------------------------


def run_cli(*args):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(REPO_ROOT),
    )


def test_cli_clean_file_exits_zero():
    proc = run_cli(str(FIXTURES / "determinism_good.py"))
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "clean" in proc.stdout


def test_cli_bad_file_exits_one_with_report():
    proc = run_cli(str(FIXTURES / "determinism_bad.py"))
    assert proc.returncode == 1
    assert "[determinism]" in proc.stdout
    assert "violation(s)" in proc.stderr


def test_cli_select_narrows_rules():
    proc = run_cli("--select", "hotpath", str(FIXTURES / "determinism_bad.py"))
    assert proc.returncode == 0  # determinism findings filtered out


def test_cli_unknown_rule_exits_two():
    proc = run_cli("--select", "no-such-rule", str(FIXTURES))
    assert proc.returncode == 2
    assert "unknown rule" in proc.stderr


def test_cli_list_rules():
    proc = run_cli("--list-rules")
    assert proc.returncode == 0
    for rule_id in RULE_IDS:
        assert rule_id in proc.stdout
