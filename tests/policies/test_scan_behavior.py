"""Behavioral tests for the periodic scanners, in both scan modes.

These pin down the decision rules the resident-frame indexes must
preserve exactly: watermark-gated demotion, two-touch promotion with
streak reset, and AutoNUMA's batch-limited wakeups. Every test runs
against the indexed path and the brute-force walk (``use_index`` toggled
directly), so a regression in either mode — or a divergence between
them — fails loudly.
"""

import pytest

from repro.core.config import two_tier_platform_spec
from repro.core.units import MB
from repro.kernel.kernel import Kernel
from repro.mem.frame import PageOwner
from repro.platforms.optane import build_optane_kernel
from repro.policies.nimble import NimblePolicy


def make_kernel(fast_mb=4):
    spec = two_tier_platform_spec(
        fast_capacity_bytes=fast_mb * MB, slow_capacity_bytes=40 * MB
    )
    kernel = Kernel(spec, NimblePolicy(), seed=3)
    kernel.start()
    return kernel


@pytest.fixture(params=[True, False], ids=["indexed", "brute"])
def use_index(request):
    return request.param


class TestWatermarkGatedDemotion:
    def test_cold_pages_stay_put_without_pressure(self, use_index):
        kernel = make_kernel()
        lru = kernel.policy.lru
        lru.use_index = use_index
        frames = kernel.alloc_app_pages(64)  # fast tier is mostly free
        now = 0
        for _ in range(kernel.platform.lru.cold_age_rounds + 2):
            now += kernel.platform.lru.scan_period_ns
            lru.scan(now)
        # Every frame aged past cold_age_rounds, yet none were demoted:
        # free memory sits above the kswapd watermark.
        assert all(f.lru_age >= kernel.platform.lru.cold_age_rounds for f in frames)
        assert lru.demoted == 0
        assert all(f.tier_name == "fast" for f in frames)

    def test_pressure_demotes_to_restore_watermark(self, use_index):
        kernel = make_kernel()
        lru = kernel.policy.lru
        lru.use_index = use_index
        fast = kernel.topology.tier("fast")
        kernel.alloc_app_pages(fast.capacity_pages)  # exhaust fast memory
        now = 0
        for _ in range(kernel.platform.lru.cold_age_rounds + 2):
            now += kernel.platform.lru.scan_period_ns
            lru.scan(now)
        watermark = int(fast.capacity_pages * lru.free_watermark_frac)
        assert lru.demoted >= watermark
        assert fast.free_pages >= watermark


class TestTwoTouchPromotion:
    def _slow_app_frames(self, kernel, n):
        return kernel.topology.allocate(n, ["slow"], PageOwner.APP)

    def test_single_touches_never_promote(self, use_index):
        kernel = make_kernel()
        lru = kernel.policy.lru
        lru.use_index = use_index
        (frame,) = self._slow_app_frames(kernel, 1)
        period = kernel.platform.lru.scan_period_ns
        lru.scan(period)      # allocation touch: streak 1
        lru.scan(2 * period)  # untouched window: streak back to 0
        frame.record_access(2 * period + 10, write=False)
        lru.scan(3 * period)  # touched again, but streak restarts at 1
        assert lru.promoted == 0
        assert frame.tier_name == "slow"
        assert frame.scan_ref_streak <= 1

    def test_consecutive_touches_promote(self, use_index):
        kernel = make_kernel()
        lru = kernel.policy.lru
        lru.use_index = use_index
        (frame,) = self._slow_app_frames(kernel, 1)
        period = kernel.platform.lru.scan_period_ns
        lru.scan(period)  # allocation counts as the first touch
        frame.record_access(period + 10, write=False)
        lru.scan(2 * period)  # second consecutive window: promote
        assert lru.promoted == 1
        assert frame.tier_name == "fast"

    def test_streak_reset_matches_between_modes(self):
        """Same touch schedule, both modes: identical promote decisions."""
        outcomes = {}
        for use_index in (True, False):
            kernel = make_kernel()
            lru = kernel.policy.lru
            lru.use_index = use_index
            frames = self._slow_app_frames(kernel, 8)
            period = kernel.platform.lru.scan_period_ns
            for round_no in range(1, 7):
                now = round_no * period
                for i, frame in enumerate(frames):
                    # Frame i is touched in rounds where round_no % (i+1) == 0:
                    # frame 0 every round (promotes), frame 7 rarely (never).
                    if round_no % (i + 1) == 0:
                        frame.record_access(now - 50, write=False)
                lru.scan(now)
            outcomes[use_index] = (
                lru.promoted,
                [f.tier_name for f in frames],
                [f.scan_ref_streak for f in frames],
            )
        assert outcomes[True][:2] == outcomes[False][:2]


class TestAutoNumaBatchLimit:
    def _away_kernel(self, pages):
        kernel, pol = build_optane_kernel("autonuma", scale_factor=8192)
        frames = kernel.alloc_app_pages(pages)
        kernel.set_task_node(1)  # every frame is now away from home
        return kernel, pol, frames

    def test_wakeup_moves_at_most_batch(self, use_index):
        kernel, pol, frames = self._away_kernel(pol_batch_plus := 600)
        pol.use_index = use_index
        pol._scan()
        assert pol.migrated_app == pol.batch < pol_batch_plus
        # Earliest-allocated (lowest-fid) frames move first, matching the
        # global walk's encounter order.
        moved = sorted(f.fid for f in frames if f.tier_name == "node1")
        assert moved == sorted(f.fid for f in frames)[: pol.batch]

    def test_repeated_wakeups_drain_the_away_set(self, use_index):
        kernel, pol, frames = self._away_kernel(600)
        pol.use_index = use_index
        for _ in range(4):
            pol._scan()
        assert pol.migrated_app == 600
        assert all(f.tier_name == "node1" for f in frames)
        # Settled: further wakeups find nothing to do.
        pol._scan()
        assert pol.migrated_app == 600
