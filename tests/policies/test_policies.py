"""Tests for the tiering policies' placement rules and daemons."""

import pytest

from repro.core.config import two_tier_platform_spec
from repro.core.objtypes import KernelObjectType
from repro.core.units import MB
from repro.kernel.kernel import Kernel
from repro.mem.frame import PageOwner
from repro.policies import (
    AllFastMem,
    AllSlowMem,
    KlocsFineGrainedPolicy,
    KlocsNoMigrationPolicy,
    KlocsPolicy,
    NaivePolicy,
    NimblePlusPlusPolicy,
    NimblePolicy,
    OPTANE_POLICIES,
    TWO_TIER_POLICIES,
)


def make_kernel(policy, fast_mb=4):
    spec = two_tier_platform_spec(
        fast_capacity_bytes=fast_mb * MB, slow_capacity_bytes=40 * MB
    )
    kernel = Kernel(spec, policy, seed=3)
    kernel.start()
    return kernel


class TestRegistries:
    def test_two_tier_registry_complete(self):
        assert set(TWO_TIER_POLICIES) == {
            "all_fast", "all_slow", "naive", "nimble", "nimble++",
            "klocs_nomigration", "klocs", "klocs_fine",
        }

    def test_optane_registry_complete(self):
        assert set(OPTANE_POLICIES) == {
            "all_local", "all_remote", "autonuma", "nimble", "klocs"
        }

    def test_policy_flags(self):
        assert not NaivePolicy.uses_kloc
        assert not NimblePolicy.migrates_kernel_objects
        assert NimblePlusPlusPolicy.migrates_kernel_objects
        assert KlocsPolicy.uses_kloc and KlocsPolicy.uses_kloc_interface
        assert KlocsPolicy.migrates_kernel_objects
        assert KlocsNoMigrationPolicy.uses_kloc
        assert not KlocsNoMigrationPolicy.migrates_kernel_objects


class TestPlacementRules:
    def test_all_slow_orders(self):
        policy = AllSlowMem()
        assert policy.tier_order_app() == ["slow"]
        assert policy.tier_order_kernel(
            KernelObjectType.PAGE_CACHE, None, covered=False
        ) == ["slow"]

    def test_naive_greedy(self):
        policy = NaivePolicy()
        assert policy.tier_order_app() == ["fast", "slow"]
        assert policy.tier_order_kernel(
            KernelObjectType.PAGE_CACHE, None, covered=False
        ) == ["fast", "slow"]

    def test_nimble_pins_kernel_to_slow(self):
        policy = NimblePolicy()
        assert policy.tier_order_kernel(
            KernelObjectType.PAGE_CACHE, None, covered=False
        )[0] == "slow"
        assert policy.tier_order_app()[0] == "fast"

    def test_klocs_places_by_knode_activity(self):
        kernel = make_kernel(KlocsPolicy())
        policy = kernel.policy
        fh = kernel.fs.create("/f")  # open → knode active
        order_active = policy.tier_order_kernel(
            KernelObjectType.PAGE_CACHE, fh.inode, covered=True
        )
        assert order_active[0] == "fast"
        kernel.fs.close(fh)
        order_inactive = policy.tier_order_kernel(
            KernelObjectType.PAGE_CACHE, fh.inode, covered=True
        )
        assert order_inactive[0] == "slow"

    def test_klocs_transient_types_always_fast(self):
        kernel = make_kernel(KlocsPolicy())
        policy = kernel.policy
        fh = kernel.fs.create("/f")
        kernel.fs.close(fh)  # knode inactive
        order = policy.tier_order_kernel(
            KernelObjectType.BLOCK, fh.inode, covered=True
        )
        assert order[0] == "fast"

    def test_klocs_kernel_share_cap(self):
        kernel = make_kernel(KlocsPolicy(), fast_mb=1)
        policy = kernel.policy
        # Fill the fast tier with kernel pages beyond any entitlement.
        kernel.topology.allocate(
            kernel.topology.tier("fast").capacity_pages,
            ["fast"],
            PageOwner.PAGE_CACHE,
        )
        fh = kernel.fs.create("/f")
        order = policy.tier_order_kernel(
            KernelObjectType.PAGE_CACHE, fh.inode, covered=True
        )
        assert order[0] == "slow"


class TestScanEngineOwnership:
    def test_nimble_scans_app_only(self):
        kernel = make_kernel(NimblePolicy())
        lru = kernel.policy.lru
        assert lru.promote_owners == {PageOwner.APP}
        assert lru.demote_owners == {PageOwner.APP}

    def test_nimblepp_scans_everything(self):
        kernel = make_kernel(NimblePlusPlusPolicy())
        lru = kernel.policy.lru
        assert lru.promote_owners is None
        assert lru.demote_owners is None

    def test_klocs_full_lru_plus_knode_path(self):
        kernel = make_kernel(KlocsPolicy())
        lru = kernel.policy.lru
        assert lru.promote_owners is None
        assert lru.demote_owners is None

    def test_klocs_nomigration_demotes_app_only(self):
        kernel = make_kernel(KlocsNoMigrationPolicy())
        lru = kernel.policy.lru
        assert lru.demote_owners == {PageOwner.APP}


class TestEndToEndBehaviors:
    def test_klocs_downgrades_closed_file_under_pressure(self):
        kernel = make_kernel(KlocsPolicy(), fast_mb=1)
        kernel.kloc_daemon.free_target_frac = 1.0  # force pressure
        fh = kernel.fs.create("/f")
        kernel.fs.write(fh, 0, 64 * 4096)
        cache = kernel.fs.cache_mgr.cache_for(fh.inode.ino)
        kernel.fs.close(fh)
        kernel.kloc_daemon.run()
        fast_pages = [p for p in cache.pages() if p.obj.frame.tier_name == "fast"]
        assert fast_pages == []

    def test_naive_never_migrates(self):
        kernel = make_kernel(NaivePolicy(), fast_mb=1)
        fh = kernel.fs.create("/f")
        kernel.fs.write(fh, 0, 512 * 4096)
        kernel.fs.close(fh)
        kernel.clock.advance(100_000_000)
        assert kernel.topology.migrations_between("fast", "slow") == 0
        assert kernel.topology.migrations_between("slow", "fast") == 0

    def test_nimble_scan_registered(self):
        kernel = make_kernel(NimblePolicy())
        fh = kernel.fs.create("/f")
        kernel.fs.write(fh, 0, 16 * 4096)
        for _ in range(3):  # the clock coalesces ticks within one jump
            kernel.clock.advance(kernel.platform.lru.scan_period_ns)
        assert kernel.policy.lru.scans >= 2

    def test_slab_pages_never_move_under_nimblepp(self):
        """The §3.3 constraint shows up end to end."""
        kernel = make_kernel(NimblePlusPlusPolicy(), fast_mb=1)
        fh = kernel.fs.create("/f")
        kernel.fs.write(fh, 0, 600 * 4096)  # force pressure + scans
        kernel.fs.close(fh)
        kernel.clock.advance(kernel.platform.lru.scan_period_ns * 4)
        moved_slab = sum(
            count
            for (src, dst, owner), count in kernel.topology.migration_count.items()
            if owner is PageOwner.SLAB
        )
        assert moved_slab == 0

    def test_fine_grained_variant_never_sweeps_knodes(self):
        """§4.4 future-work extension: no en-masse knode migration."""
        kernel = make_kernel(KlocsFineGrainedPolicy(), fast_mb=1)
        fh = kernel.fs.create("/f")
        kernel.fs.write(fh, 0, 8 * 4096)
        kernel.fs.close(fh)
        assert kernel.kloc_daemon.pending == {}  # close not marked
        kernel.kloc_daemon.run()  # manual run still safe
        assert kernel.kloc_daemon.runs == 1

    def test_klocs_can_move_slab_replacement_pages(self):
        kernel = make_kernel(KlocsPolicy(), fast_mb=1)
        kernel.kloc_daemon.free_target_frac = 1.0
        fh = kernel.fs.create("/f")
        kernel.fs.write(fh, 0, 8 * 4096)
        kernel.fs.close(fh)
        kernel.kloc_daemon.run()
        moved_kernel = kernel.topology.migrations_between("fast", "slow")
        assert moved_kernel > 0
