"""Focused tests for the Optane/NUMA policy family."""

import pytest

from repro.core.objtypes import KernelObjectType
from repro.core.units import KB
from repro.mem.frame import PageOwner
from repro.platforms.optane import build_optane_kernel

SCALE = 4096


def advance_scans(kernel, n=3):
    from repro.policies.autonuma import NUMA_SCAN_PERIOD_NS

    for _ in range(n):
        kernel.clock.advance(NUMA_SCAN_PERIOD_NS)


class TestPlacement:
    def test_allocations_follow_task_node(self):
        kernel, _ = build_optane_kernel("autonuma", scale_factor=SCALE)
        assert kernel.alloc_app_pages(1)[0].tier_name == "node0"
        kernel.set_task_node(1)
        assert kernel.alloc_app_pages(1)[0].tier_name == "node1"

    def test_kernel_objects_allocated_local(self):
        kernel, _ = build_optane_kernel("autonuma", scale_factor=SCALE)
        obj = kernel.alloc_object(KernelObjectType.PAGE_CACHE)
        assert obj.frame.tier_name == "node0"

    def test_all_remote_always_crosses(self):
        kernel, _ = build_optane_kernel("all_remote", scale_factor=SCALE)
        assert kernel.alloc_app_pages(1)[0].tier_name == "node1"
        kernel.set_task_node(1)
        assert kernel.alloc_app_pages(1)[0].tier_name == "node0"


class TestMigrationAfterMove:
    def test_autonuma_moves_app_not_kernel(self):
        kernel, policy = build_optane_kernel("autonuma", scale_factor=SCALE)
        app = kernel.alloc_app_pages(8)
        fh = kernel.fs.create("/f")
        kernel.fs.write(fh, 0, 32 * KB)
        kernel.set_task_node(1)
        advance_scans(kernel)
        assert all(f.tier_name == "node1" for f in app if f.live)
        assert policy.migrated_app > 0
        assert policy.migrated_kernel == 0
        cache = kernel.fs.cache_mgr.cache_for(fh.inode.ino)
        assert all(p.obj.frame.tier_name == "node0" for p in cache.pages())

    def test_klocs_moves_kernel_objects_of_active_knodes(self):
        kernel, policy = build_optane_kernel("klocs", scale_factor=SCALE)
        fh = kernel.fs.create("/f")
        kernel.fs.write(fh, 0, 32 * KB)  # knode active (open)
        kernel.set_task_node(1)
        advance_scans(kernel)
        assert policy.migrated_kernel > 0
        cache = kernel.fs.cache_mgr.cache_for(fh.inode.ino)
        moved = sum(1 for p in cache.pages() if p.obj.frame.tier_name == "node1")
        assert moved > 0

    def test_klocs_leaves_inactive_knodes_alone(self):
        kernel, policy = build_optane_kernel("klocs", scale_factor=SCALE)
        fh = kernel.fs.create("/cold")
        kernel.fs.write(fh, 0, 16 * KB)
        kernel.fs.close(fh)  # inactive → not worth moving
        inode = fh.inode
        kernel.set_task_node(1)
        advance_scans(kernel)
        cache = kernel.fs.cache_mgr.cache_for(inode.ino)
        assert all(p.obj.frame.tier_name == "node0" for p in cache.pages())

    def test_nimble_moves_bigger_batches(self):
        from repro.policies.autonuma import AUTONUMA_BATCH, NIMBLE_BATCH

        assert NIMBLE_BATCH > AUTONUMA_BATCH

    def test_node_ids_updated_after_migration(self):
        kernel, _ = build_optane_kernel("autonuma", scale_factor=SCALE)
        app = kernel.alloc_app_pages(4)
        kernel.set_task_node(1)
        advance_scans(kernel)
        assert all(f.node_id == 1 for f in app if f.live)


class TestAccessCosts:
    def test_remote_access_costlier_than_local(self):
        kernel, _ = build_optane_kernel("autonuma", scale_factor=SCALE)
        frame = kernel.alloc_app_pages(1)[0]
        kernel.access_frame(frame, 4096)  # warm the DRAM cache
        local = kernel.access_frame(frame, 4096)
        kernel.set_task_node(1)
        remote = kernel.access_frame(frame, 4096)
        assert remote > local

    def test_interference_raises_cost(self):
        from repro.workloads.interference import StreamingInterferer

        kernel, _ = build_optane_kernel("all_local", scale_factor=SCALE)
        frame = kernel.alloc_app_pages(1)[0]
        base = kernel.access_frame(frame, 4096)
        base = kernel.access_frame(frame, 4096)  # cache-warm baseline
        interferer = StreamingInterferer(kernel, "node0", streams=4)
        interferer.start()
        contended = kernel.access_frame(frame, 4096)
        interferer.stop()
        assert contended > base
