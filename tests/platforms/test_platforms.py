"""Tests for the platform builders."""

import pytest

from repro.core.errors import ConfigError
from repro.core.units import GB
from repro.platforms.optane import build_optane_kernel, optane_platform_spec
from repro.platforms.twotier import (
    PAPER_FAST_BYTES,
    PAPER_SLOW_BYTES,
    build_two_tier_kernel,
    two_tier_spec_scaled,
)


class TestTwoTier:
    def test_scaled_capacities(self):
        spec = two_tier_spec_scaled(scale_factor=1024)
        assert spec.fast.capacity_bytes == PAPER_FAST_BYTES // 1024
        assert spec.slow.capacity_bytes == PAPER_SLOW_BYTES // 1024

    def test_bandwidth_ratio(self):
        spec = two_tier_spec_scaled(scale_factor=1024, bandwidth_ratio=4)
        assert spec.fast.read_bw_bytes_per_ns / spec.slow.read_bw_bytes_per_ns == (
            pytest.approx(4)
        )

    def test_build_known_policy(self):
        kernel, policy = build_two_tier_kernel("klocs", scale_factor=4096)
        assert policy.name == "klocs"
        assert kernel.kloc_manager is not None

    def test_all_fast_gets_big_fast_tier(self):
        kernel, _ = build_two_tier_kernel("all_fast", scale_factor=4096)
        assert (
            kernel.topology.tier("fast").capacity_pages
            == kernel.topology.tier("slow").capacity_pages
        )

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigError):
            build_two_tier_kernel("wishful")


class TestOptane:
    def test_spec_has_two_symmetric_nodes(self):
        spec = optane_platform_spec(scale_factor=1024)
        assert spec.fast.name == "node0"
        assert spec.slow.name == "node1"
        assert spec.fast.capacity_bytes == spec.slow.capacity_bytes
        assert spec.hw_cache_bytes == 16 * GB // 1024

    def test_build_wires_hw_caches(self):
        kernel, _ = build_optane_kernel("autonuma", scale_factor=4096)
        assert kernel.numa_mode
        assert kernel.nodes["node0"].hw_cache is not None
        assert kernel.nodes["node1"].hw_cache is not None

    def test_task_move_hooks(self):
        kernel, policy = build_optane_kernel("all_local", scale_factor=4096)
        frames = kernel.alloc_app_pages(4)
        assert all(f.tier_name == "node0" for f in frames)
        kernel.set_task_node(1)
        # The ideal policy teleports existing data to the new home node.
        assert all(f.tier_name == "node1" for f in frames)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigError):
            build_optane_kernel("wishful")

    def test_dram_cache_absorbs_repeat_access(self):
        kernel, _ = build_optane_kernel("autonuma", scale_factor=4096)
        obj_frames = kernel.alloc_app_pages(1)
        cold = kernel.access_frame(obj_frames[0], 4096)
        warm = kernel.access_frame(obj_frames[0], 4096)
        assert warm < cold  # second touch hits the L4 DRAM cache
