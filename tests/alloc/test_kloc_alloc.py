"""Tests for the KLOC allocation interface — the relocatable, knode-grouped
allocator at the heart of §4.4's migration support."""

import pytest

from repro.core.clock import Clock
from repro.core.config import MigrationSpec, fast_dram_spec, slow_dram_spec
from repro.core.errors import SimulationError
from repro.core.objtypes import KernelObjectType
from repro.core.units import MB, PAGE_SIZE
from repro.alloc.base import ALLOC_COSTS
from repro.alloc.kloc_alloc import KlocAllocator
from repro.alloc.slab import SlabAllocator
from repro.mem.migration import MigrationEngine
from repro.mem.topology import MemoryTopology


@pytest.fixture
def topo():
    return MemoryTopology(
        [fast_dram_spec(capacity_bytes=2 * MB), slow_dram_spec(capacity_bytes=8 * MB)]
    )


@pytest.fixture
def clock():
    return Clock()


@pytest.fixture
def kalloc(topo, clock):
    return KlocAllocator(topo, clock)


class TestKnodeGrouping:
    def test_same_knode_shares_page(self, kalloc):
        a = kalloc.alloc(KernelObjectType.DENTRY, ["fast"], knode_id=1)
        b = kalloc.alloc(KernelObjectType.DENTRY, ["fast"], knode_id=1)
        assert a.frame.fid == b.frame.fid

    def test_different_knodes_use_different_pages(self, kalloc):
        a = kalloc.alloc(KernelObjectType.DENTRY, ["fast"], knode_id=1)
        b = kalloc.alloc(KernelObjectType.DENTRY, ["fast"], knode_id=2)
        assert a.frame.fid != b.frame.fid

    def test_knode_frames_lookup(self, kalloc):
        # Mixed types of one knode pack onto shared pages (a typical
        # file's metadata fits one page); distinct knodes never share.
        kalloc.alloc(KernelObjectType.DENTRY, ["fast"], knode_id=1)
        kalloc.alloc(KernelObjectType.INODE, ["fast"], knode_id=1)
        kalloc.alloc(KernelObjectType.DENTRY, ["fast"], knode_id=2)
        assert len(kalloc.knode_frames(1)) == 1
        assert len(kalloc.knode_frames(2)) == 1
        assert kalloc.knode_frames(99) == []

    def test_knode_page_overflow_grabs_new_page(self, kalloc):
        # 4 inodes (1KB each) fill a page; the 5th starts a new one.
        for _ in range(5):
            kalloc.alloc(KernelObjectType.INODE, ["fast"], knode_id=1)
        assert len(kalloc.knode_frames(1)) == 2

    def test_page_tagged_with_knode(self, kalloc):
        obj = kalloc.alloc(KernelObjectType.EXTENT, ["fast"], knode_id=7)
        assert obj.frame.knode_id == 7


class TestRelocatability:
    def test_pages_are_relocatable(self, kalloc):
        obj = kalloc.alloc(KernelObjectType.DENTRY, ["fast"], knode_id=1)
        assert obj.frame.relocatable is True

    def test_knode_objects_can_migrate_en_masse(self, topo, clock, kalloc):
        """The whole point: a cold knode's objects move in one batch."""
        for _ in range(30):
            kalloc.alloc(KernelObjectType.DENTRY, ["fast"], knode_id=1)
        engine = MigrationEngine(topo, clock, MigrationSpec())
        result = engine.migrate(kalloc.knode_frames(1), "slow")
        assert result.moved == len(kalloc.knode_frames(1))
        assert all(f.tier_name == "slow" for f in kalloc.knode_frames(1))

    def test_slab_equivalent_cannot_migrate(self, topo, clock):
        """Contrast case used throughout the paper."""
        slab = SlabAllocator(topo, clock)
        obj = slab.alloc(KernelObjectType.DENTRY, ["fast"], knode_id=1)
        engine = MigrationEngine(topo, clock, MigrationSpec())
        result = engine.migrate([obj.frame], "slow")
        assert result.moved == 0
        assert result.skipped_nonrelocatable == 1


class TestFree:
    def test_empty_page_returned(self, kalloc, topo):
        obj = kalloc.alloc(KernelObjectType.INODE, ["fast"], knode_id=1)
        kalloc.free(obj)
        assert kalloc.live_pages() == 0
        assert kalloc.knode_frames(1) == []
        assert topo.tier("fast").used_pages == 0

    def test_double_free_rejected(self, kalloc):
        obj = kalloc.alloc(KernelObjectType.INODE, ["fast"], knode_id=1)
        kalloc.free(obj)
        with pytest.raises(SimulationError):
            kalloc.free(obj)

    def test_full_page_then_new_page_same_knode(self, kalloc):
        per_page = PAGE_SIZE // KernelObjectType.DENTRY.size_bytes
        for _ in range(per_page + 1):
            kalloc.alloc(KernelObjectType.DENTRY, ["fast"], knode_id=1)
        assert len(kalloc.knode_frames(1)) == 2

    def test_free_releases_page_bytes_for_reuse(self, kalloc):
        objs = [
            kalloc.alloc(KernelObjectType.INODE, ["fast"], knode_id=1)
            for _ in range(4)
        ]
        kalloc.free(objs[0])
        # Freed bytes reopen space on the same page.
        again = kalloc.alloc(KernelObjectType.INODE, ["fast"], knode_id=1)
        assert again.frame.fid == objs[1].frame.fid
        assert len(kalloc.knode_frames(1)) == 1


class TestCostModel:
    def test_kloc_costlier_than_slab_but_close(self):
        assert ALLOC_COSTS["slab"] < ALLOC_COSTS["kloc"] < ALLOC_COSTS["page"]

    def test_alloc_charges_clock(self, kalloc, clock):
        kalloc.alloc(KernelObjectType.DENTRY, ["fast"], knode_id=1)
        assert clock.now() >= ALLOC_COSTS["kloc"]
