"""Tests for the slab allocator."""

import pytest

from repro.core.clock import Clock
from repro.core.config import fast_dram_spec, slow_dram_spec
from repro.core.errors import SimulationError
from repro.core.objtypes import KernelObjectType
from repro.core.units import MB, PAGE_SIZE
from repro.alloc.slab import SlabAllocator
from repro.mem.topology import MemoryTopology


@pytest.fixture
def topo():
    return MemoryTopology(
        [fast_dram_spec(capacity_bytes=2 * MB), slow_dram_spec(capacity_bytes=8 * MB)]
    )


@pytest.fixture
def clock():
    return Clock()


@pytest.fixture
def slab(topo, clock):
    return SlabAllocator(topo, clock)


class TestPacking:
    def test_small_objects_share_a_page(self, slab, topo):
        per_page = PAGE_SIZE // KernelObjectType.DENTRY.size_bytes
        objs = [
            slab.alloc(KernelObjectType.DENTRY, ["fast"]) for _ in range(per_page)
        ]
        assert slab.live_pages() == 1
        assert len({o.frame.fid for o in objs}) == 1

    def test_overflow_grabs_new_page(self, slab):
        per_page = PAGE_SIZE // KernelObjectType.DENTRY.size_bytes
        for _ in range(per_page + 1):
            slab.alloc(KernelObjectType.DENTRY, ["fast"])
        assert slab.live_pages() == 2

    def test_different_types_never_share_pages(self, slab):
        a = slab.alloc(KernelObjectType.DENTRY, ["fast"])
        b = slab.alloc(KernelObjectType.EXTENT, ["fast"])
        assert a.frame.fid != b.frame.fid

    def test_inode_packing_density(self, slab):
        """1KB inodes → 4 per page."""
        objs = [slab.alloc(KernelObjectType.INODE, ["fast"]) for _ in range(4)]
        assert slab.live_pages() == 1
        slab.alloc(KernelObjectType.INODE, ["fast"])
        assert slab.live_pages() == 2
        assert all(o.live for o in objs)


class TestRelocatability:
    def test_slab_pages_not_relocatable(self, slab):
        obj = slab.alloc(KernelObjectType.DENTRY, ["fast"])
        assert obj.frame.relocatable is False
        assert obj.relocatable is False

    def test_owner_attribution(self, slab):
        obj = slab.alloc(KernelObjectType.BLOCK, ["fast"])
        assert obj.frame.owner.value == "block_io"
        obj2 = slab.alloc(KernelObjectType.DENTRY, ["fast"])
        assert obj2.frame.owner.value == "slab"


class TestFree:
    def test_free_empties_page_back_to_pool(self, slab, topo):
        obj = slab.alloc(KernelObjectType.INODE, ["fast"])
        before = topo.tier("fast").used_pages
        slab.free(obj)
        assert topo.tier("fast").used_pages == before - 1
        assert slab.live_pages() == 0

    def test_partial_page_kept(self, slab):
        a = slab.alloc(KernelObjectType.INODE, ["fast"])
        b = slab.alloc(KernelObjectType.INODE, ["fast"])
        slab.free(a)
        assert slab.live_pages() == 1
        assert b.live

    def test_double_free_rejected(self, slab):
        obj = slab.alloc(KernelObjectType.INODE, ["fast"])
        slab.free(obj)
        with pytest.raises(SimulationError):
            slab.free(obj)

    def test_full_page_returns_to_partial_on_free(self, slab):
        objs = [slab.alloc(KernelObjectType.INODE, ["fast"]) for _ in range(4)]
        slab.free(objs[0])
        # Next alloc reuses the now-partial page instead of a new one.
        slab.alloc(KernelObjectType.INODE, ["fast"])
        assert slab.live_pages() == 1

    def test_lifetime_recorded(self, slab, clock):
        obj = slab.alloc(KernelObjectType.DENTRY, ["fast"])
        clock.advance(1000)
        slab.free(obj)
        mean = slab.stats.lifetimes.mean_ns(KernelObjectType.DENTRY)
        assert mean is not None and mean >= 1000


class TestCosts:
    def test_alloc_charges_clock(self, slab, clock):
        before = clock.now()
        slab.alloc(KernelObjectType.DENTRY, ["fast"])
        assert clock.now() > before

    def test_knode_tag_propagates(self, slab):
        obj = slab.alloc(KernelObjectType.DENTRY, ["fast"], knode_id=17)
        assert obj.knode_id == 17

    def test_stats_counters(self, slab):
        objs = [slab.alloc(KernelObjectType.EXTENT, ["fast"]) for _ in range(3)]
        for o in objs:
            slab.free(o)
        assert slab.stats.allocs == 3
        assert slab.stats.frees == 3
        assert slab.stats.live_objects == 0
