"""Tests for the page allocator and vmalloc."""

import pytest

from repro.core.clock import Clock
from repro.core.config import fast_dram_spec, slow_dram_spec
from repro.core.errors import SimulationError
from repro.core.objtypes import KernelObjectType
from repro.core.units import MB, PAGE_SIZE
from repro.alloc.buddy import PageAllocator
from repro.alloc.vmalloc import VmallocAllocator
from repro.mem.frame import PageOwner
from repro.mem.topology import MemoryTopology


@pytest.fixture
def topo():
    return MemoryTopology(
        [fast_dram_spec(capacity_bytes=2 * MB), slow_dram_spec(capacity_bytes=8 * MB)]
    )


@pytest.fixture
def clock():
    return Clock()


class TestPageAllocator:
    def test_alloc_frames_relocatable(self, topo, clock):
        pa = PageAllocator(topo, clock)
        frames = pa.alloc_frames(4, ["fast"], PageOwner.APP)
        assert len(frames) == 4
        assert all(f.relocatable for f in frames)

    def test_alloc_object_owns_frame(self, topo, clock):
        pa = PageAllocator(topo, clock)
        obj = pa.alloc_object(KernelObjectType.PAGE_CACHE, ["fast"], knode_id=3)
        assert obj.frame.owner is PageOwner.PAGE_CACHE
        assert obj.frame.knode_id == 3
        assert obj.frame.relocatable

    def test_free_object(self, topo, clock):
        pa = PageAllocator(topo, clock)
        obj = pa.alloc_object(KernelObjectType.JOURNAL, ["fast"])
        pa.free_object(obj)
        assert not obj.live
        assert topo.tier("fast").used_pages == 0

    def test_double_free_object_rejected(self, topo, clock):
        pa = PageAllocator(topo, clock)
        obj = pa.alloc_object(KernelObjectType.JOURNAL, ["fast"])
        pa.free_object(obj)
        with pytest.raises(SimulationError):
            pa.free_object(obj)

    def test_free_frames(self, topo, clock):
        pa = PageAllocator(topo, clock)
        frames = pa.alloc_frames(4, ["fast"], PageOwner.APP)
        pa.free_frames(frames)
        assert topo.tier("fast").used_pages == 0

    def test_order_histogram(self, topo, clock):
        pa = PageAllocator(topo, clock)
        pa.alloc_frames(1, ["fast"], PageOwner.APP)
        pa.alloc_frames(8, ["fast"], PageOwner.APP)
        assert pa.order_histogram[0] == 1
        assert pa.order_histogram[3] == 1

    def test_spill_to_slow(self, topo, clock):
        pa = PageAllocator(topo, clock)
        cap = topo.tier("fast").capacity_pages
        frames = pa.alloc_frames(cap + 2, ["fast", "slow"], PageOwner.APP)
        assert sum(1 for f in frames if f.tier_name == "slow") == 2

    def test_clock_charged(self, topo, clock):
        pa = PageAllocator(topo, clock)
        pa.alloc_frames(2, ["fast"], PageOwner.APP)
        assert clock.now() > 0


class TestVmalloc:
    def test_area_spans_pages(self, topo, clock):
        vm = VmallocAllocator(topo, clock)
        area = vm.alloc(3 * PAGE_SIZE + 1, ["fast"])
        assert area.npages == 4
        assert area.live

    def test_relocatable_frames(self, topo, clock):
        vm = VmallocAllocator(topo, clock)
        area = vm.alloc(PAGE_SIZE, ["fast"])
        assert all(f.relocatable for f in area.frames)

    def test_free_releases_everything(self, topo, clock):
        vm = VmallocAllocator(topo, clock)
        area = vm.alloc(4 * PAGE_SIZE, ["fast"])
        vm.free(area)
        assert not area.live
        assert topo.tier("fast").used_pages == 0
        assert vm.live_bytes() == 0

    def test_double_free_rejected(self, topo, clock):
        vm = VmallocAllocator(topo, clock)
        area = vm.alloc(PAGE_SIZE, ["fast"])
        vm.free(area)
        with pytest.raises(SimulationError):
            vm.free(area)

    def test_zero_size_rejected(self, topo, clock):
        vm = VmallocAllocator(topo, clock)
        with pytest.raises(ValueError):
            vm.alloc(0, ["fast"])

    def test_vmalloc_slower_than_page_alloc(self, topo, clock):
        """§3.3: vmalloc pays page-table setup per page."""
        vm = VmallocAllocator(topo, clock)
        t0 = clock.now()
        vm.alloc(PAGE_SIZE, ["fast"])
        vm_cost = clock.now() - t0
        pa = PageAllocator(topo, clock)
        t0 = clock.now()
        pa.alloc_frames(1, ["fast"], PageOwner.APP)
        pa_cost = clock.now() - t0
        assert vm_cost > pa_cost

    def test_live_bytes(self, topo, clock):
        vm = VmallocAllocator(topo, clock)
        vm.alloc(2 * PAGE_SIZE, ["fast"])
        assert vm.live_bytes() == 2 * PAGE_SIZE
