"""Tests for the Kernel facade: wiring, routing, accounting."""

import pytest

from repro.core.config import two_tier_platform_spec
from repro.core.errors import SimulationError
from repro.core.objtypes import KernelObjectType
from repro.core.units import MB, PAGE_SIZE
from repro.kernel.kernel import Kernel
from repro.kloc.registry import KlocRegistry
from repro.mem.frame import PageOwner
from repro.policies import (
    AllSlowMem,
    KlocsPolicy,
    NaivePolicy,
    NimblePolicy,
    NumaKlocsPolicy,
)


def make_kernel(policy=None, **kwargs):
    spec = two_tier_platform_spec(fast_capacity_bytes=4 * MB, slow_capacity_bytes=40 * MB)
    return Kernel(spec, policy or NaivePolicy(), seed=3, **kwargs)


class TestWiring:
    def test_policy_attached(self):
        kernel = make_kernel()
        assert kernel.policy.kernel is kernel

    def test_kloc_machinery_only_for_kloc_policies(self):
        assert make_kernel(NaivePolicy()).kloc_manager is None
        assert make_kernel(KlocsPolicy()).kloc_manager is not None
        assert make_kernel(KlocsPolicy()).kloc_daemon is not None

    def test_early_demux_follows_policy(self):
        assert make_kernel(NaivePolicy()).net.driver.early_demux is False
        assert make_kernel(KlocsPolicy()).net.driver.early_demux is True

    def test_numa_mode_builds_nodes(self):
        from repro.platforms.optane import optane_platform_spec

        spec = optane_platform_spec(scale_factor=4096)
        kernel = Kernel(spec, NumaKlocsPolicy(), seed=1)
        assert set(kernel.nodes) == {"node0", "node1"}
        assert kernel.nodes["node0"].hw_cache is not None

    def test_set_task_node_requires_numa(self):
        kernel = make_kernel()
        with pytest.raises(SimulationError):
            kernel.set_task_node(1)


class TestObjectRouting:
    def test_slab_types_use_slab_allocator_without_kloc(self):
        kernel = make_kernel(NaivePolicy())
        obj = kernel.alloc_object(KernelObjectType.DENTRY)
        assert obj.allocator == "slab"
        assert not obj.frame.relocatable

    def test_covered_slab_types_use_kloc_interface(self):
        kernel = make_kernel(KlocsPolicy())
        fh = kernel.fs.create("/f")
        obj = kernel.alloc_object(KernelObjectType.DENTRY, fh.inode)
        assert obj.allocator == "kloc"
        assert obj.frame.relocatable
        assert obj.knode_id == fh.inode.knode_id

    def test_uncovered_types_fall_back_to_slab(self):
        kernel = make_kernel(KlocsPolicy(), registry=KlocRegistry.none())
        fh = kernel.fs.create("/f")
        obj = kernel.alloc_object(KernelObjectType.DENTRY, fh.inode)
        assert obj.allocator == "slab"
        assert obj.knode_id is None

    def test_page_types_use_page_allocator(self):
        kernel = make_kernel(KlocsPolicy())
        fh = kernel.fs.create("/f")
        obj = kernel.alloc_object(KernelObjectType.PAGE_CACHE, fh.inode)
        assert obj.allocator == "page"

    def test_all_slow_places_everything_slow(self):
        kernel = make_kernel(AllSlowMem())
        obj = kernel.alloc_object(KernelObjectType.PAGE_CACHE)
        frames = kernel.alloc_app_pages(2)
        assert obj.frame.tier_name == "slow"
        assert all(f.tier_name == "slow" for f in frames)

    def test_free_object_routes_by_allocator(self):
        kernel = make_kernel(KlocsPolicy())
        fh = kernel.fs.create("/f")
        for otype in (KernelObjectType.DENTRY, KernelObjectType.PAGE_CACHE):
            obj = kernel.alloc_object(otype, fh.inode)
            kernel.free_object(obj)
            assert not obj.live


class TestAccounting:
    def test_reference_attribution(self):
        kernel = make_kernel()
        obj = kernel.alloc_object(KernelObjectType.PAGE_CACHE)
        app = kernel.alloc_app_pages(1)[0]
        kernel.access_object(obj, 100)
        kernel.access_frame(app, 100)
        assert kernel.kernel_refs == 1
        assert kernel.app_refs == 1
        assert kernel.kernel_ref_fraction() == pytest.approx(0.5)

    def test_access_freed_object_rejected(self):
        kernel = make_kernel()
        obj = kernel.alloc_object(KernelObjectType.PAGE_CACHE)
        kernel.free_object(obj)
        with pytest.raises(SimulationError):
            kernel.access_object(obj)

    def test_fast_ref_fraction(self):
        kernel = make_kernel(NaivePolicy())
        obj = kernel.alloc_object(KernelObjectType.PAGE_CACHE)
        kernel.access_object(obj)
        assert kernel.fast_ref_fraction() == 1.0

    def test_reset_reference_counters(self):
        kernel = make_kernel()
        obj = kernel.alloc_object(KernelObjectType.PAGE_CACHE)
        kernel.access_object(obj)
        kernel.reset_reference_counters()
        assert kernel.kernel_refs == 0
        assert kernel.fast_ref_fraction() == 0.0

    def test_reset_clears_time_decomposition(self):
        """The access-time split must cover the same window as the
        reference split — resetting one but not the other silently mixed
        load-phase time into steady-state reports."""
        kernel = make_kernel()
        obj = kernel.alloc_object(KernelObjectType.PAGE_CACHE)
        kernel.access_object(obj)
        assert kernel.access_ns_by  # the access was attributed
        kernel.reset_reference_counters()
        assert kernel.access_ns_by == {}

    def test_background_work_amortized(self):
        kernel = make_kernel()
        before = kernel.clock.now()
        kernel.background_cpu_work(16_000)
        assert kernel.clock.now() - before == 16_000 // kernel.num_cpus

    def test_storage_background_cheaper(self):
        kernel = make_kernel()
        fg = kernel.storage_io(1 << 20, write=False, sequential=True)
        bg = kernel.storage_io(1 << 20, write=False, sequential=True, background=True)
        assert bg < fg


class TestPressure:
    def test_emergency_reclaim_on_exhaustion(self):
        spec = two_tier_platform_spec(
            fast_capacity_bytes=1 * MB, slow_capacity_bytes=2 * MB
        )
        kernel = Kernel(spec, NaivePolicy(), seed=3, page_cache_max_pages=10_000)
        fh = kernel.fs.create("/big")
        # Write more than total memory: reclaim must kick in, not crash.
        kernel.fs.write(fh, 0, 2 * MB)
        kernel.topology.check_invariants()
        assert kernel.fs.cache_mgr.total_pages <= kernel.topology.live_pages()


class TestLifecycleHooks:
    def test_fs_create_builds_knode(self):
        kernel = make_kernel(KlocsPolicy())
        fh = kernel.fs.create("/f")
        assert fh.inode.knode_id is not None
        knode = kernel.kloc_manager.kmap.lookup(fh.inode.knode_id)
        assert knode.inuse

    def test_close_marks_pending_cold(self):
        kernel = make_kernel(KlocsPolicy())
        fh = kernel.fs.create("/f")
        knode_id = fh.inode.knode_id
        kernel.fs.close(fh)
        assert knode_id in kernel.kloc_daemon.pending

    def test_unlink_unmarks_and_deletes(self):
        kernel = make_kernel(KlocsPolicy())
        fh = kernel.fs.create("/f")
        knode_id = fh.inode.knode_id
        kernel.fs.close(fh)
        kernel.fs.unlink("/f")
        assert knode_id not in kernel.kloc_daemon.pending
        assert kernel.kloc_manager.kmap.lookup(knode_id) is None
