"""Tests for the process model and syscall layer."""

import pytest

from repro.core.errors import SimulationError, VFSError
from repro.core.units import KB, MB, PAGE_SIZE
from repro.kernel.process import Process
from repro.kernel.syscalls import SyscallInterface
from repro.kernel.cpu import CpuSet
from tests.kernel.test_kernel import make_kernel


@pytest.fixture
def kernel():
    return make_kernel()


class TestProcess:
    def test_region_lifecycle(self, kernel):
        proc = Process(kernel, "app")
        pages = proc.alloc_region("heap", 1 * MB)
        assert pages == 1 * MB // PAGE_SIZE
        assert proc.has_region("heap")
        assert proc.total_pages() == pages
        assert proc.free_region("heap") == pages
        assert not proc.has_region("heap")

    def test_duplicate_region_rejected(self, kernel):
        proc = Process(kernel, "app")
        proc.alloc_region("heap", PAGE_SIZE)
        with pytest.raises(SimulationError):
            proc.alloc_region("heap", PAGE_SIZE)

    def test_extend_region(self, kernel):
        proc = Process(kernel, "app")
        proc.alloc_region("heap", PAGE_SIZE)
        proc.extend_region("heap", 3 * PAGE_SIZE)
        assert proc.region_pages("heap") == 4

    def test_extend_missing_rejected(self, kernel):
        proc = Process(kernel, "app")
        with pytest.raises(SimulationError):
            proc.extend_region("nope", PAGE_SIZE)

    def test_touch_charges_and_attributes(self, kernel):
        proc = Process(kernel, "app")
        proc.alloc_region("heap", 4 * PAGE_SIZE)
        cost = proc.touch("heap", 2 * PAGE_SIZE, write=True)
        assert cost > 0
        assert kernel.app_refs == 2

    def test_touch_wraps_around(self, kernel):
        proc = Process(kernel, "app")
        proc.alloc_region("heap", 2 * PAGE_SIZE)
        proc.touch("heap", 4 * PAGE_SIZE, page_hint=1)  # wraps twice
        assert kernel.app_refs == 4

    def test_touch_missing_region_rejected(self, kernel):
        proc = Process(kernel, "app")
        with pytest.raises(SimulationError):
            proc.touch("ghost", 100)

    def test_teardown_frees_everything(self, kernel):
        proc = Process(kernel, "app")
        proc.alloc_region("a", PAGE_SIZE)
        proc.alloc_region("b", PAGE_SIZE)
        proc.teardown()
        assert proc.total_pages() == 0
        kernel.topology.check_invariants()


class TestCpuSet:
    def test_round_robin(self):
        cpus = CpuSet(4)
        assert [cpus.next_cpu() for _ in range(6)] == [0, 1, 2, 3, 0, 1]

    def test_thread_pinning(self):
        cpus = CpuSet(4)
        assert cpus.cpu_for_thread(0) == 0
        assert cpus.cpu_for_thread(5) == 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            CpuSet(0)


class TestSyscalls:
    def test_file_path_roundtrip(self, kernel):
        sys = SyscallInterface(kernel)
        fh = sys.creat("/x")
        sys.write(fh, 0, 4 * KB)
        assert sys.read(fh, 0, 4 * KB) == 4 * KB
        sys.fsync(fh)
        sys.close(fh)
        sys.unlink("/x")
        assert sys.counts == {
            "creat": 1, "write": 1, "read": 1, "fsync": 1, "close": 1, "unlink": 1
        }
        assert sys.total_syscalls() == 6

    def test_socket_path_roundtrip(self, kernel):
        sys = SyscallInterface(kernel)
        sock = sys.socket(80)
        kernel.net.deliver(80, 500)
        assert sys.recv(sock) == 500
        assert sys.send(sock, 500) >= 1
        sys.close_socket(sock)
        assert sys.counts["socket"] == 1

    def test_syscalls_charge_entry_cost(self, kernel):
        sys = SyscallInterface(kernel)
        before = kernel.clock.now()
        sys.creat("/y")
        assert kernel.clock.now() > before

    def test_errors_propagate(self, kernel):
        sys = SyscallInterface(kernel)
        with pytest.raises(VFSError):
            sys.open("/missing")
