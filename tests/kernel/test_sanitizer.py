"""Inject-and-detect tests for the REPRO_SANITIZE runtime sanitizer.

Each test plants a real bug — a double free, a retained stale handle, a
corrupted incremental counter — and asserts the sanitizer converts it
into a loud :class:`~repro.core.errors.SanitizerError` naming the object
and the faulting site, instead of the silent corruption (or generic
``SimulationError``) a plain run would produce.

``REPRO_SANITIZE`` is read at construction time, so every test sets the
env var *before* building its kernel.
"""

from __future__ import annotations

import pytest

from repro.core.errors import SanitizerError, SimulationError
from repro.core.objtypes import KernelObjectType
from repro.experiments.runner import make_workload
from repro.mem.frame import PageOwner
from repro.platforms.twotier import build_two_tier_kernel

SCALE = 4096
TIERS = ("fast", "slow")


@pytest.fixture()
def sankernel(monkeypatch):
    """A klocs-policy kernel built with the sanitizer attached."""
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    kernel, _ = build_two_tier_kernel("klocs", scale_factor=SCALE)
    return kernel


@pytest.fixture()
def plainkernel(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    kernel, _ = build_two_tier_kernel("klocs", scale_factor=SCALE)
    return kernel


def test_sanitizer_attached_only_when_enabled(sankernel, plainkernel):
    assert sankernel.topology.sanitizer is not None
    assert sankernel.slab._san is sankernel.topology.sanitizer
    assert sankernel.kloc_manager.sanitizer is sankernel.topology.sanitizer
    assert plainkernel.topology.sanitizer is None
    assert plainkernel.sanitize_teardown() is None


# ----------------------------------------------------------------------
# Injected bug 1: double free of a slab object
# ----------------------------------------------------------------------


def test_slab_double_free_names_object_and_site(sankernel):
    obj = sankernel.slab.alloc(KernelObjectType.DENTRY, TIERS)
    sankernel.slab.free(obj)
    with pytest.raises(SanitizerError) as exc:
        sankernel.slab.free(obj)
    msg = str(exc.value)
    assert "double free" in msg
    assert f"#{obj.oid}" in msg
    assert "DENTRY" in msg
    # Both the faulting site and the first-free site are our lines.
    assert msg.count("tests/kernel/test_sanitizer.py") == 2


def test_double_free_without_sanitizer_is_generic(plainkernel):
    obj = plainkernel.slab.alloc(KernelObjectType.DENTRY, TIERS)
    plainkernel.slab.free(obj)
    with pytest.raises(SimulationError) as exc:
        plainkernel.slab.free(obj)
    assert not isinstance(exc.value, SanitizerError)


def test_frame_double_free_detected(sankernel):
    (frame,) = sankernel.topology.allocate(1, TIERS, PageOwner.APP)
    sankernel.topology.free(frame, now_ns=0)
    with pytest.raises(SanitizerError) as exc:
        sankernel.topology.free(frame, now_ns=0)
    msg = str(exc.value)
    assert "double free" in msg and f"frame {frame.fid}" in msg
    assert "tests/kernel/test_sanitizer.py" in msg


def test_vmalloc_double_vfree_detected(sankernel):
    area = sankernel.vmalloc.alloc(4096 * 3, TIERS)
    sankernel.vmalloc.free(area)
    with pytest.raises(SanitizerError) as exc:
        sankernel.vmalloc.free(area)
    msg = str(exc.value)
    assert "double vfree" in msg and f"area {area.area_id}" in msg
    assert "tests/kernel/test_sanitizer.py" in msg


# ----------------------------------------------------------------------
# Injected bug 2: use-after-free through a retained handle
# ----------------------------------------------------------------------


def test_frame_uaf_through_access_frame(sankernel):
    (frame,) = sankernel.topology.allocate(1, TIERS, PageOwner.APP)
    sankernel.access_frame(frame, 64)  # live: fine
    sankernel.topology.free(frame, now_ns=sankernel.clock.now())
    with pytest.raises(SanitizerError) as exc:
        sankernel.access_frame(frame, 64)
    msg = str(exc.value)
    assert "use-after-free" in msg
    assert f"frame {frame.fid}" in msg
    assert "freed at tests/kernel/test_sanitizer.py" in msg


def test_object_uaf_through_access_object(sankernel):
    obj = sankernel.alloc_object(KernelObjectType.SOCK)
    sankernel.access_object(obj)  # live: fine
    sankernel.free_object(obj)
    with pytest.raises(SanitizerError) as exc:
        sankernel.access_object(obj)
    msg = str(exc.value)
    assert "use-after-free" in msg
    assert f"#{obj.oid}" in msg and "SOCK" in msg


def test_poisoned_handle_faults_on_any_read(sankernel):
    obj = sankernel.slab.alloc(KernelObjectType.EXTENT, TIERS)
    sankernel.slab.free(obj)
    with pytest.raises(SanitizerError) as exc:
        _ = obj.frame.tier_name  # stale pointer chase
    msg = str(exc.value)
    assert "poisoned" in msg and ".tier_name" in msg
    assert f"#{obj.oid}" in msg


def test_plain_run_does_not_poison(plainkernel):
    obj = plainkernel.slab.alloc(KernelObjectType.EXTENT, TIERS)
    frame = obj.frame
    plainkernel.slab.free(obj)
    assert obj.frame is frame  # handle left intact when sanitize is off


# ----------------------------------------------------------------------
# Injected bug 3: incremental counter drift
# ----------------------------------------------------------------------


def _populate(kernel, ops=200):
    wl = make_workload(kernel, "rocksdb", scale_factor=SCALE)
    wl.setup()
    wl.run(ops)
    return wl


def test_kloc_counter_drift_detected(sankernel):
    _populate(sankernel)
    mgr = sankernel.kloc_manager
    mgr.verify_counters()  # books balanced after honest work
    mgr._tracked_objects += 1  # inject the drift a lost decrement would leave
    with pytest.raises(SanitizerError) as exc:
        mgr.verify_counters()
    msg = str(exc.value)
    assert "counter drift" in msg and "_tracked_objects" in msg


def test_percpu_entry_drift_detected(sankernel):
    _populate(sankernel)
    lists = sankernel.kloc_manager.percpu.lists
    lists.total_entries += 3
    with pytest.raises(SanitizerError) as exc:
        sankernel.kloc_manager.verify_counters()
    assert "PerCPUListSet.total_entries" in str(exc.value)


def test_drift_surfaces_at_scan_boundary(sankernel):
    """The migration daemon's scan is the production checkpoint."""
    _populate(sankernel)
    sankernel.kloc_manager._tracked_objects -= 1
    with pytest.raises(SanitizerError, match="counter drift"):
        sankernel.kloc_daemon.run(sankernel.clock.now())


def test_tier_alloc_drift_detected_at_teardown(sankernel):
    _populate(sankernel)
    sankernel.topology.tier("fast").total_allocs += 1  # a lost alloc count
    with pytest.raises(SanitizerError, match="counter drift"):
        sankernel.sanitize_teardown()


# ----------------------------------------------------------------------
# Clean run: the audit passes and reports its coverage
# ----------------------------------------------------------------------


def test_clean_run_teardown_report(sankernel):
    wl = _populate(sankernel, ops=300)
    wl.teardown()
    report = sankernel.sanitize_teardown()
    assert report is not None
    assert report["checks"] > 0
    assert report["cross_checks"] > 0
    assert report["frames_freed"] > 0
    assert report["objects_freed"] > 0
