"""Lightweight KernelContext fake used by substrate tests.

Routes every allocation through the real allocators on a real topology
but applies a trivial placement rule (fast first, spill to slow) and
records hooks so tests can assert on the lifecycle traffic without
standing up the full kernel.
"""

from __future__ import annotations

from typing import List, Optional

from repro.alloc.base import KernelObject
from repro.alloc.buddy import PageAllocator
from repro.alloc.slab import SlabAllocator
from repro.core.clock import Clock
from repro.core.config import StorageSpec, fast_dram_spec, slow_dram_spec
from repro.core.objtypes import AllocatorKind, KernelObjectType
from repro.core.units import MB, PAGE_SIZE
from repro.mem.frame import PageFrame, PageOwner
from repro.mem.topology import MemoryTopology
from repro.vfs.storage import NVMeDevice


class FakeKernel:
    """Minimal, real-allocator-backed KernelContext implementation."""

    def __init__(
        self,
        fast_bytes: int = 8 * MB,
        slow_bytes: int = 64 * MB,
        num_cpus: int = 4,
    ) -> None:
        self.clock = Clock()
        self.num_cpus = num_cpus
        self.topology = MemoryTopology(
            [
                fast_dram_spec(capacity_bytes=fast_bytes),
                slow_dram_spec(capacity_bytes=slow_bytes),
            ]
        )
        self.slab = SlabAllocator(self.topology, self.clock)
        self.pages = PageAllocator(self.topology, self.clock)
        self.storage = NVMeDevice(StorageSpec())
        self.tier_order = ["fast", "slow"]
        # Hook logs for assertions.
        self.created_inodes: List = []
        self.opened_inodes: List = []
        self.closed_inodes: List = []
        self.unlinked_inodes: List = []
        self.freed_objects: List[KernelObject] = []
        self.references = 0
        self.kernel_ref_bytes = 0
        self.app_ref_bytes = 0

    # -- kernel object lifecycle ---------------------------------------

    def alloc_object(
        self,
        otype: KernelObjectType,
        inode=None,
        *,
        cpu: int = 0,
    ) -> KernelObject:
        knode_id = getattr(inode, "knode_id", None) if inode is not None else None
        if otype.allocator is AllocatorKind.SLAB:
            return self.slab.alloc(otype, self.tier_order, knode_id=knode_id)
        return self.pages.alloc_object(otype, self.tier_order, knode_id=knode_id)

    def free_object(self, obj: KernelObject, *, cpu: int = 0) -> None:
        self.freed_objects.append(obj)
        if obj.allocator == "slab":
            self.slab.free(obj)
        else:
            self.pages.free_object(obj)

    # -- references ------------------------------------------------------

    def access_object(
        self,
        obj: KernelObject,
        nbytes: Optional[int] = None,
        *,
        write: bool = False,
        cpu: int = 0,
    ) -> int:
        size = nbytes if nbytes is not None else obj.size_bytes
        tier = self.topology.tier(obj.frame.tier_name)
        cost = tier.access_cost_ns(size, write=write)
        obj.frame.record_access(self.clock.now(), write=write)
        self.references += 1
        self.kernel_ref_bytes += size
        self.clock.advance(cost)
        return cost

    def access_frame(
        self, frame: PageFrame, nbytes: int, *, write: bool = False, cpu: int = 0
    ) -> int:
        tier = self.topology.tier(frame.tier_name)
        cost = tier.access_cost_ns(nbytes, write=write)
        frame.record_access(self.clock.now(), write=write)
        self.references += 1
        self.app_ref_bytes += nbytes
        self.clock.advance(cost)
        return cost

    # -- application memory ----------------------------------------------

    def alloc_app_pages(self, npages: int, *, cpu: int = 0) -> List[PageFrame]:
        return self.pages.alloc_frames(npages, self.tier_order, PageOwner.APP)

    def free_app_pages(self, frames: List[PageFrame]) -> None:
        self.pages.free_frames(frames)

    # -- storage -----------------------------------------------------------

    def storage_io(
        self, nbytes: int, *, write: bool, sequential: bool, background: bool = False
    ) -> int:
        cost = self.storage.io_cost_ns(nbytes, write=write, sequential=sequential)
        charged = cost // self.num_cpus if background else cost
        self.clock.advance(charged)
        return charged

    # -- inode / KLOC lifecycle hooks ---------------------------------------

    def on_inode_create(self, inode, *, cpu: int = 0) -> None:
        self.created_inodes.append(inode)

    def on_inode_open(self, inode, *, cpu: int = 0) -> None:
        self.opened_inodes.append(inode)

    def on_inode_close(self, inode, *, cpu: int = 0) -> None:
        self.closed_inodes.append(inode)

    def on_inode_unlink(self, inode, *, cpu: int = 0) -> None:
        self.unlinked_inodes.append(inode)
