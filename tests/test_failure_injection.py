"""Failure injection and adversarial-condition tests.

The simulator's error paths must fail loudly and leave state consistent:
exhausted memory, destination-full migrations, reclaim with nothing to
reclaim, daemons firing during teardown, and workload abuse of the
syscall surface.
"""

import pytest

from repro.core.clock import Clock
from repro.core.config import (
    MigrationSpec,
    fast_dram_spec,
    slow_dram_spec,
    two_tier_platform_spec,
)
from repro.core.errors import AllocationError, NetworkError, SimulationError, VFSError
from repro.core.objtypes import KernelObjectType
from repro.core.units import KB, MB, PAGE_SIZE
from repro.kernel.kernel import Kernel
from repro.mem.frame import PageOwner
from repro.mem.migration import MigrationEngine
from repro.mem.topology import MemoryTopology
from repro.policies import KlocsPolicy, NaivePolicy


def tiny_kernel(policy=None, fast_kb=64, slow_kb=256, **kwargs):
    spec = two_tier_platform_spec(
        fast_capacity_bytes=fast_kb * KB, slow_capacity_bytes=slow_kb * KB
    )
    return Kernel(spec, policy or NaivePolicy(), seed=5, **kwargs)


class TestMemoryExhaustion:
    def test_exhaustion_with_unreclaimable_memory_raises(self):
        kernel = tiny_kernel()
        with pytest.raises(AllocationError):
            kernel.alloc_app_pages(10_000)
        kernel.topology.check_invariants()

    def test_exhaustion_reclaims_page_cache_first(self):
        kernel = tiny_kernel(page_cache_max_pages=10_000)
        fh = kernel.fs.create("/f")
        kernel.fs.write(fh, 0, 200 * KB)  # page cache fills most memory
        # This allocation only fits if reclaim evicts cache pages.
        frames = kernel.alloc_app_pages(20)
        assert len(frames) == 20
        kernel.topology.check_invariants()

    def test_partial_spill_is_not_a_failure(self):
        kernel = tiny_kernel()
        frames = kernel.alloc_app_pages(40)  # exceeds the 16-page fast tier
        tiers = {f.tier_name for f in frames}
        assert tiers == {"fast", "slow"}


class TestMigrationEdges:
    def test_migration_to_full_destination_moves_what_fits(self):
        topo = MemoryTopology(
            [
                fast_dram_spec(capacity_bytes=16 * PAGE_SIZE),
                slow_dram_spec(capacity_bytes=64 * PAGE_SIZE),
            ]
        )
        engine = MigrationEngine(topo, Clock(), MigrationSpec())
        topo.allocate(14, ["fast"], PageOwner.APP)
        slow_frames = topo.allocate(10, ["slow"], PageOwner.PAGE_CACHE)
        result = engine.migrate(slow_frames, "fast")
        assert result.moved == 2
        topo.check_invariants()

    def test_migrating_empty_batch(self):
        topo = MemoryTopology([fast_dram_spec(capacity_bytes=4 * PAGE_SIZE)])
        engine = MigrationEngine(topo, Clock())
        result = engine.migrate([], "fast")
        assert result.moved == 0 and result.cost_ns == 0

    def test_daemon_on_torn_down_workload_is_safe(self):
        kernel = tiny_kernel(KlocsPolicy())
        kernel.start()
        fh = kernel.fs.create("/f")
        kernel.fs.write(fh, 0, 8 * KB)
        kernel.fs.close(fh)
        kernel.fs.unlink("/f")
        # Daemon fires after everything is gone: must not blow up.
        kernel.kloc_daemon.run()
        kernel.kloc_daemon.run()
        kernel.topology.check_invariants()


class TestVFSAbuse:
    def test_interleaved_handles_same_inode(self):
        kernel = tiny_kernel(page_cache_max_pages=64)
        a = kernel.fs.create("/f")
        b = kernel.fs.open("/f")
        kernel.fs.write(a, 0, 4 * KB)
        assert kernel.fs.read(b, 0, 4 * KB) == 4 * KB
        kernel.fs.close(a)
        assert b.inode.is_open  # still held by b
        kernel.fs.close(b)
        assert not b.inode.is_open

    def test_write_read_write_offsets_disjoint(self):
        kernel = tiny_kernel(page_cache_max_pages=128)
        fh = kernel.fs.create("/f")
        kernel.fs.write(fh, 100 * PAGE_SIZE, PAGE_SIZE)  # sparse write
        assert fh.inode.size_bytes == 101 * PAGE_SIZE
        assert kernel.fs.read(fh, 0, PAGE_SIZE) == PAGE_SIZE  # hole read

    def test_reuse_path_after_unlink(self):
        kernel = tiny_kernel()
        fh = kernel.fs.create("/f")
        kernel.fs.close(fh)
        kernel.fs.unlink("/f")
        fh2 = kernel.fs.create("/f")
        assert fh2.inode.ino != fh.inode.ino

    def test_unlink_while_open_then_retry(self):
        kernel = tiny_kernel()
        fh = kernel.fs.create("/f")
        with pytest.raises(VFSError):
            kernel.fs.unlink("/f")
        kernel.fs.close(fh)
        kernel.fs.unlink("/f")


class TestNetworkAbuse:
    def test_burst_beyond_ring_capacity(self):
        kernel = tiny_kernel(fast_kb=1024, slow_kb=8192)
        sock = kernel.net.socket(80)
        # Deliver far more packets than the rx ring holds: the driver
        # must keep replenishing rather than wedging.
        kernel.net.deliver(80, 400 * 1500)
        assert sock.rx_backlog == 400
        assert kernel.net.recv(sock) == 400 * 1500
        kernel.net.close(sock)
        kernel.net.driver.drain_ring()
        kernel.topology.check_invariants()

    def test_close_with_backlog_frees_buffers(self):
        kernel = tiny_kernel(fast_kb=512, slow_kb=2048)
        sock = kernel.net.socket(80)
        kernel.net.deliver(80, 20 * 1500)
        live_before = kernel.topology.live_pages()
        kernel.net.close(sock)
        assert kernel.topology.live_pages() < live_before

    def test_deliver_to_closed_socket_rejected(self):
        kernel = tiny_kernel(fast_kb=512, slow_kb=2048)
        sock = kernel.net.socket(80)
        kernel.net.close(sock)
        with pytest.raises(NetworkError):
            kernel.net.deliver(80, 100)


class TestDeterminismUnderConcurrentDaemons:
    def test_same_seed_same_final_state(self):
        def run():
            kernel = tiny_kernel(KlocsPolicy(), fast_kb=256, slow_kb=1024)
            kernel.start()
            fh = kernel.fs.create("/f")
            for i in range(30):
                kernel.fs.write(fh, i * 4 * KB, 4 * KB)
                kernel.fs.read(fh, (i // 2) * 4 * KB, 2 * KB)
            kernel.fs.fsync(fh)
            kernel.fs.close(fh)
            return (
                kernel.clock.now(),
                kernel.topology.live_pages(),
                kernel.kernel_refs,
                kernel.topology.migrations_between("fast", "slow"),
            )

        assert run() == run()
