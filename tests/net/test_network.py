"""Tests for the network substrate: driver, TCP layer, sockets, stack."""

import pytest

from repro.core.errors import NetworkError
from repro.core.objtypes import KernelObjectType
from repro.net.driver import NICDriver
from repro.net.skbuff import MTU_BYTES
from repro.net.stack import NetworkStack
from tests.fakes import FakeKernel


@pytest.fixture
def kernel():
    return FakeKernel()


@pytest.fixture
def net(kernel):
    return NetworkStack(kernel, rx_ring_size=16)


class TestDriver:
    def test_ring_fill(self, kernel):
        driver = NICDriver(kernel, ring_size=8)
        assert driver.fill_ring() == 8
        assert driver.ring_level == 8

    def test_receive_replenishes_ring(self, kernel, net):
        net.socket(80)
        net.driver.fill_ring()
        level = net.driver.ring_level
        net.driver.receive(80, 500)
        assert net.driver.ring_level == level  # consumed one, refilled one

    def test_receive_builds_skbuff_from_ring_buffer(self, kernel, net):
        net.socket(80)
        skb = net.driver.receive(80, 500)
        assert skb.data.otype is KernelObjectType.RX_BUF  # zero copy
        assert skb.header.otype is KernelObjectType.SKBUFF
        assert skb.nbytes == 500

    def test_no_early_demux_leaves_hint_empty(self, kernel, net):
        net.socket(80)
        skb = net.driver.receive(80, 100)
        assert skb.sock_hint is None

    def test_early_demux_fills_hint(self, kernel):
        net = NetworkStack(kernel, early_demux=True)
        sock = net.socket(80)
        skb = net.driver.receive(80, 100)
        assert skb.sock_hint == sock.inode.ino

    def test_invalid_packet_rejected(self, kernel, net):
        with pytest.raises(NetworkError):
            net.driver.receive(80, 0)

    def test_bad_ring_size(self, kernel):
        with pytest.raises(NetworkError):
            NICDriver(kernel, ring_size=0)

    def test_drain_ring_frees_buffers(self, kernel):
        driver = NICDriver(kernel, ring_size=4)
        driver.fill_ring()
        driver.drain_ring()
        assert driver.ring_level == 0
        freed = [o for o in kernel.freed_objects if o.otype is KernelObjectType.RX_BUF]
        assert len(freed) == 4


class TestTCP:
    def test_ingress_queues_on_socket(self, kernel, net):
        sock = net.socket(80)
        net.deliver(80, 100)
        assert sock.rx_backlog == 1

    def test_ingress_unknown_port_rejected(self, kernel, net):
        with pytest.raises(NetworkError):
            net.deliver(99, 100)

    def test_late_demux_charged_without_kloc(self, kernel, net):
        net.socket(80)
        net.deliver(80, 100)
        assert net.tcp.late_demuxes == 1

    def test_early_demux_elides_late_extraction(self, kernel):
        net = NetworkStack(kernel, early_demux=True)
        net.socket(80)
        net.deliver(80, 100)
        assert net.tcp.late_demuxes == 0

    def test_duplicate_bind_rejected(self, kernel, net):
        net.socket(80)
        with pytest.raises(NetworkError):
            net.socket(80)


class TestSocketDataPath:
    def test_deliver_splits_at_mtu(self, kernel, net):
        sock = net.socket(80)
        packets = net.deliver(80, 2 * MTU_BYTES + 1)
        assert packets == 3
        assert sock.rx_backlog == 3

    def test_recv_consumes_and_frees(self, kernel, net):
        sock = net.socket(80)
        net.deliver(80, 1000)
        kernel.freed_objects.clear()
        consumed = net.recv(sock)
        assert consumed == 1000
        assert sock.rx_backlog == 0
        freed_types = {o.otype for o in kernel.freed_objects}
        assert KernelObjectType.SKBUFF in freed_types
        assert KernelObjectType.RX_BUF in freed_types  # the zero-copy payload

    def test_recv_empty_returns_zero(self, kernel, net):
        sock = net.socket(80)
        assert net.recv(sock) == 0

    def test_send_allocates_and_frees_buffers(self, kernel, net):
        sock = net.socket(80)
        kernel.freed_objects.clear()
        packets = net.send(sock, 3000)
        assert packets == 2
        freed_types = {o.otype for o in kernel.freed_objects}
        assert KernelObjectType.SKBUFF in freed_types
        assert KernelObjectType.SKBUFF_DATA in freed_types
        assert sock.bytes_sent == 3000

    def test_send_invalid(self, kernel, net):
        sock = net.socket(80)
        with pytest.raises(NetworkError):
            net.send(sock, 0)


class TestSocketLifecycle:
    def test_socket_gets_inode_and_knode_hooks(self, kernel, net):
        sock = net.socket(80)
        assert sock.inode.is_socket
        assert kernel.created_inodes[-1] is sock.inode
        assert kernel.opened_inodes[-1] is sock.inode

    def test_close_drains_and_frees(self, kernel, net):
        sock = net.socket(80)
        net.deliver(80, 500)
        net.close(sock)
        assert sock.closed
        assert net.live_sockets() == 0
        assert kernel.closed_inodes[-1] is sock.inode
        assert kernel.unlinked_inodes[-1] is sock.inode
        freed_types = {o.otype for o in kernel.freed_objects}
        assert KernelObjectType.SOCK in freed_types

    def test_double_close_rejected(self, kernel, net):
        sock = net.socket(80)
        net.close(sock)
        with pytest.raises(NetworkError):
            net.close(sock)

    def test_closed_socket_rejects_traffic(self, kernel, net):
        sock = net.socket(80)
        net.close(sock)
        with pytest.raises(NetworkError):
            net.send(sock, 10)
        with pytest.raises(NetworkError):
            net.deliver(80, 10)

    def test_port_reusable_after_close(self, kernel, net):
        sock = net.socket(80)
        net.close(sock)
        sock2 = net.socket(80)
        assert sock2.sid != sock.sid

    def test_memory_fully_returned(self, kernel, net):
        sock = net.socket(80)
        net.deliver(80, 5000)
        net.recv(sock)
        net.send(sock, 5000)
        net.close(sock)
        net.driver.drain_ring()
        kernel.topology.check_invariants()
        assert kernel.topology.live_pages() == 0
