"""Unit tests for skbuff and socket primitives not covered elsewhere."""

import pytest

from repro.core.errors import NetworkError
from repro.core.objtypes import KernelObjectType
from repro.net.skbuff import MTU_BYTES, SKBuff
from repro.net.socket import Socket
from repro.vfs.inode import Inode
from tests.fakes import FakeKernel


@pytest.fixture
def kernel():
    return FakeKernel()


def make_skb(kernel, nbytes=500):
    header = kernel.alloc_object(KernelObjectType.SKBUFF)
    data = kernel.alloc_object(KernelObjectType.SKBUFF_DATA)
    return SKBuff(header=header, data=data, nbytes=nbytes)


class TestSKBuff:
    def test_live_tracks_both_objects(self, kernel):
        skb = make_skb(kernel)
        assert skb.live
        kernel.free_object(skb.data)
        assert not skb.live

    def test_repr_direction(self, kernel):
        skb = make_skb(kernel)
        assert "rx" in repr(skb)
        skb.ingress = False
        assert "tx" in repr(skb)

    def test_mtu_is_ethernet(self):
        assert MTU_BYTES == 1500


class TestSocketQueue:
    def _socket(self, kernel):
        sock_obj = kernel.alloc_object(KernelObjectType.SOCK)
        return Socket(1, 80, Inode(5, is_socket=True), sock_obj)

    def test_fifo_order(self, kernel):
        sock = self._socket(kernel)
        a, b = make_skb(kernel, 100), make_skb(kernel, 200)
        sock.enqueue(a)
        sock.enqueue(b)
        assert sock.dequeue() is a
        assert sock.dequeue() is b
        assert sock.dequeue() is None

    def test_counters(self, kernel):
        sock = self._socket(kernel)
        sock.enqueue(make_skb(kernel, 100))
        sock.enqueue(make_skb(kernel, 150))
        assert sock.packets_received == 2
        assert sock.bytes_received == 250
        assert sock.rx_backlog == 2

    def test_closed_socket_rejects_queue_ops(self, kernel):
        sock = self._socket(kernel)
        sock.closed = True
        with pytest.raises(NetworkError):
            sock.enqueue(make_skb(kernel))
        with pytest.raises(NetworkError):
            sock.dequeue()
