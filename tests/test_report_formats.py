"""Report-formatting coverage: every experiment report renders cleanly."""

import pytest

from repro.experiments.fig2 import Fig2Report, Fig2Result
from repro.experiments.fig4 import Fig4Report
from repro.experiments.fig5 import Fig5aReport, Fig5bReport, Fig5cReport
from repro.experiments.fig6 import Fig6Cell, Fig6Report
from repro.experiments.prefetch import PrefetchReport
from repro.experiments.table6 import Table6Report
from repro.metrics.footprint import FootprintSnapshot
from repro.metrics.lifetime import LifetimeReport
from repro.metrics.references import ReferenceReport
from repro.mem.frame import PageOwner


def test_fig2_report_renders_all_sections():
    row = Fig2Result(
        workload="rocksdb",
        footprint=FootprintSnapshot(
            allocated={PageOwner.APP: 50, PageOwner.PAGE_CACHE: 40,
                       PageOwner.SLAB: 10},
        ),
        references=ReferenceReport(kernel_refs=55, app_refs=45),
        lifetimes=LifetimeReport(
            app_mean_ns=1e9, slab_mean_ns=1e5, page_cache_mean_ns=1e6
        ),
    )
    report = Fig2Report(rows=[row], scaling={"rocksdb": {"small": 0.4, "large": 0.5}})
    text = report.format_report()
    for marker in ("Fig 2a", "Fig 2b", "Fig 2c", "Fig 2d", "rocksdb"):
        assert marker in text
    assert row.lifetimes.ordering_holds()


def test_fig4_report_handles_missing_policies():
    report = Fig4Report(speedups={"redis": {"all_slow": 1.0, "klocs": 2.0}})
    text = report.format_report()
    assert "redis" in text
    assert report.ratio("redis", "klocs", "all_slow") == pytest.approx(2.0)


def test_fig5_reports_render():
    a = Fig5aReport(speedups={"redis": {p: 1.0 for p in
                    ("all_remote", "autonuma", "nimble", "klocs", "all_local")}})
    assert "Fig 5a" in a.format_report()
    c = Fig5cReport(speedups={"redis": {g: 1.0 for g in
                    ("none", "page_cache", "journal", "slab", "sockbuf", "block_io")}})
    assert "app-only" in c.format_report()
    b = Fig5bReport()
    assert "Fig 5b" in b.format_report()


def test_fig6_report_and_lookup():
    cell = Fig6Cell(capacity_gb=8, ratio=8, policy="klocs", avg=1.8, lo=1.7, hi=1.9)
    report = Fig6Report(cells=[cell])
    assert report.cell(8, 8, "klocs") is cell
    assert "1:8" in report.format_report()


def test_table6_scaling_math():
    report = Table6Report(metadata_bytes={"rocksdb": 100 * 1024}, scale_factor=1024)
    assert report.paper_equivalent_mb("rocksdb") == pytest.approx(100.0)
    assert 0 < report.fraction_of_memory("rocksdb") < 1
    assert "Table 6" in report.format_report()


def test_prefetch_report():
    report = PrefetchReport(ratios={("rocksdb", "klocs"): 1.2})
    assert report.ratio("rocksdb", "klocs") == pytest.approx(1.2)
    assert "readahead" in report.format_report()
