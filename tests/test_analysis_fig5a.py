"""Tests for the Fig 5a verdict checker (completing analysis coverage)."""

import pytest

from repro.analysis.verdict import check_fig5a
from repro.experiments.fig5 import Fig5aReport


def report(all_local=1.6, klocs=1.5, autonuma=1.2, nimble=1.3):
    return Fig5aReport(
        speedups={
            "rocksdb": {
                "all_remote": 1.0,
                "all_local": all_local,
                "klocs": klocs,
                "autonuma": autonuma,
                "nimble": nimble,
            }
        }
    )


class TestFig5aVerdict:
    def test_paper_like_numbers_pass(self):
        verdict = check_fig5a(report())
        assert verdict.ok, verdict.format_report()
        assert len(verdict.checks) == 3

    def test_klocs_no_better_than_autonuma_fails(self):
        verdict = check_fig5a(report(klocs=1.2))
        assert not verdict.ok
        misses = [c for c in verdict.checks if not c.ok]
        assert any("klocs_over_autonuma" == c.metric for c in misses)

    def test_absurd_ideal_flagged(self):
        verdict = check_fig5a(report(all_local=6.0))
        assert not verdict.ok

    def test_multiple_workloads_all_checked(self):
        r = report()
        r.speedups["redis"] = dict(r.speedups["rocksdb"])
        verdict = check_fig5a(r)
        assert len(verdict.checks) == 6
