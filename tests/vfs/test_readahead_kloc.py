"""Integration tests: readahead x KLOC interplay (§4.4's prefetch hook)."""

import pytest

from repro.core.config import two_tier_platform_spec
from repro.core.units import KB, MB, PAGE_SIZE
from repro.kernel.kernel import Kernel
from repro.policies import KlocsPolicy, NaivePolicy


def make_kernel(policy=None, fast_mb=4, **kwargs):
    spec = two_tier_platform_spec(
        fast_capacity_bytes=fast_mb * MB, slow_capacity_bytes=40 * MB
    )
    kernel = Kernel(spec, policy or NaivePolicy(), seed=3, **kwargs)
    kernel.start()
    return kernel


def sequential_read_after_drop(kernel, nbytes=64 * PAGE_SIZE):
    """Write a file, drop its cache, and stream it back sequentially."""
    fh = kernel.fs.create("/ra")
    kernel.fs.write(fh, 0, nbytes)
    kernel.fs.fsync(fh)
    cache = kernel.fs.cache_mgr.cache_for(fh.inode.ino)
    for page in cache.pages():
        kernel.fs.cache_mgr.note_remove(page)
        cache.remove(page.index)
        kernel.free_object(page.obj)
    for i in range(nbytes // PAGE_SIZE):
        kernel.fs.read(fh, i * PAGE_SIZE, PAGE_SIZE)
    return fh


class TestPrefetchHook:
    def test_policy_notified_on_prefetch(self):
        kernel = make_kernel(KlocsPolicy())
        seen = []
        original = kernel.policy.on_prefetch
        kernel.policy.on_prefetch = lambda inode, n: seen.append((inode.ino, n))
        fh = sequential_read_after_drop(kernel)
        assert seen, "sequential stream must trigger readahead"
        assert all(ino == fh.inode.ino for ino, _n in seen)
        # The FS notifies only for pages it actually fetched (within EOF
        # and not already cached), so notified <= the tracker's count.
        notified = sum(n for _i, n in seen)
        assert 0 < notified <= fh.readahead.prefetched

    def test_prefetched_pages_mostly_consumed(self):
        kernel = make_kernel(NaivePolicy())
        fh = sequential_read_after_drop(kernel)
        assert fh.readahead.useful_fraction() > 0.6

    def test_readahead_reduces_foreground_storage_reads(self):
        def foreground_reads(readahead):
            kernel = make_kernel(
                NaivePolicy(), readahead_enabled=readahead
            )
            sequential_read_after_drop(kernel)
            # Foreground = non-background bios; approximate via counts:
            # with readahead, misses collapse into few sequential bios.
            return kernel.storage.reads

        assert foreground_reads(True) < foreground_reads(False)

    def test_kloc_prefetch_promotes_knode_objects(self):
        kernel = make_kernel(KlocsPolicy(), fast_mb=1)
        fh = kernel.fs.create("/warm")
        kernel.fs.write(fh, 0, 24 * PAGE_SIZE)
        # Push the knode's objects to slow memory, then drop the cached
        # data pages so a sequential stream actually prefetches.
        kernel.kloc_daemon.free_target_frac = 1.0
        knode = kernel.kloc_manager.knode_for_inode(fh.inode)
        kernel.kloc_daemon.downgrade_knode(knode)
        cache = kernel.fs.cache_mgr.cache_for(fh.inode.ino)
        for page in cache.pages():
            kernel.fs.cache_mgr.note_remove(page)
            cache.remove(page.index)
            kernel.free_object(page.obj)
        slow_before = sum(
            1 for f in kernel.kloc_daemon.knode_frames(knode)
            if f.tier_name == "slow"
        )
        assert slow_before > 0  # the knode's metadata pages stayed slow
        # Sequential reads trigger readahead → on_prefetch pulls the
        # knode's surviving slow-resident objects up alongside the data.
        for i in range(8):
            kernel.fs.read(fh, i * PAGE_SIZE, PAGE_SIZE)
        assert fh.readahead.prefetched > 0
        slow_after = sum(
            1 for f in kernel.kloc_daemon.knode_frames(knode)
            if f.tier_name == "slow"
        )
        assert slow_after < slow_before
