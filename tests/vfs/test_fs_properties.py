"""Property-based tests over the filesystem: random valid op sequences
must preserve accounting invariants and never corrupt state."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.units import KB, PAGE_SIZE
from repro.vfs.filesystem import Filesystem
from tests.fakes import FakeKernel


class _Driver:
    """Interprets a random op tape against the FS, tracking a shadow."""

    def __init__(self):
        self.kernel = FakeKernel(fast_bytes=8 * 1024 * 1024, slow_bytes=64 * 1024 * 1024)
        self.fs = Filesystem(self.kernel, page_cache_max_pages=2048)
        self.open_handles = []
        self.closed_paths = []
        self.next_file = 0

    def step(self, op: int, arg: int) -> None:
        kind = op % 5
        if kind == 0:  # create
            path = f"/p{self.next_file}"
            self.next_file += 1
            self.open_handles.append(self.fs.create(path))
        elif kind == 1 and self.open_handles:  # write
            fh = self.open_handles[arg % len(self.open_handles)]
            self.fs.write(fh, (arg % 64) * PAGE_SIZE, (1 + arg % 4) * KB)
        elif kind == 2 and self.open_handles:  # read
            fh = self.open_handles[arg % len(self.open_handles)]
            if fh.inode.size_bytes:
                self.fs.read(fh, 0, min(fh.inode.size_bytes, 8 * KB))
        elif kind == 3 and self.open_handles:  # close
            fh = self.open_handles.pop(arg % len(self.open_handles))
            self.fs.close(fh)
            self.closed_paths.append(fh.path)
        elif kind == 4 and self.closed_paths:  # unlink or reopen
            path = self.closed_paths.pop(arg % len(self.closed_paths))
            if self.fs.exists(path):
                if arg % 2:
                    self.fs.unlink(path)
                else:
                    self.open_handles.append(self.fs.open(path))

    def finish(self) -> None:
        for fh in self.open_handles:
            self.fs.close(fh)
        self.kernel.topology.check_invariants()
        # Caches and counters agree.
        assert self.fs.cache_mgr.total_pages == sum(
            len(c.pages())
            for ino in [i.ino for i in self.fs.inodes.live_inodes()]
            if (c := self.fs.cache_mgr.cache_for(ino)) is not None
        )
        assert self.fs.cache_mgr.total_pages <= self.fs.cache_mgr.max_pages


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=4),
            st.integers(min_value=0, max_value=1000),
        ),
        max_size=120,
    )
)
def test_random_vfs_sequences_keep_invariants(tape):
    driver = _Driver()
    for op, arg in tape:
        driver.step(op, arg)
    driver.finish()


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=199), st.booleans()),
        min_size=1,
        max_size=80,
    )
)
def test_sparse_write_read_consistency(accesses):
    """Writes at arbitrary page offsets are always readable afterward and
    size tracking is exactly the max extent written."""
    kernel = FakeKernel(fast_bytes=8 * 1024 * 1024, slow_bytes=64 * 1024 * 1024)
    fs = Filesystem(kernel, page_cache_max_pages=4096)
    fh = fs.create("/sparse")
    max_end = 0
    for page_idx, small in accesses:
        nbytes = 100 if small else PAGE_SIZE
        fs.write(fh, page_idx * PAGE_SIZE, nbytes)
        max_end = max(max_end, page_idx * PAGE_SIZE + nbytes)
    assert fh.inode.size_bytes == max_end
    assert fs.read(fh, 0, max_end) == max_end
    fs.close(fh)
    fs.unlink("/sparse")
    fs.journal.commit()
    kernel.topology.check_invariants()
    assert kernel.topology.live_pages() == 0
