"""Tests for the adaptive readahead window."""

from repro.vfs.readahead import INITIAL_WINDOW, MAX_WINDOW, ReadaheadState


class TestSequentialDetection:
    def test_no_prefetch_on_first_reads(self):
        ra = ReadaheadState()
        assert ra.update(0) == []
        assert ra.update(1) == []

    def test_prefetch_after_streak(self):
        ra = ReadaheadState()
        ra.update(0)
        ra.update(1)
        pages = ra.update(2)
        assert pages == list(range(3, 3 + INITIAL_WINDOW))

    def test_window_doubles(self):
        ra = ReadaheadState()
        for i in range(3):
            ra.update(i)
        first = len(ra.update(3))
        assert first <= 2 * INITIAL_WINDOW
        assert ra.window <= MAX_WINDOW

    def test_window_capped(self):
        ra = ReadaheadState()
        for i in range(64):
            ra.update(i)
        assert ra.window <= MAX_WINDOW

    def test_random_access_resets(self):
        ra = ReadaheadState()
        ra.update(0)
        ra.update(1)
        ra.update(2)
        assert ra.window > INITIAL_WINDOW
        assert ra.update(100) == []  # jump resets
        assert ra.window == INITIAL_WINDOW
        assert ra.streak == 0

    def test_no_duplicate_prefetch(self):
        ra = ReadaheadState()
        ra.update(0)
        ra.update(1)
        first = set(ra.update(2))
        second = set(ra.update(3))
        assert not (first & second)

    def test_useful_fraction(self):
        ra = ReadaheadState()
        ra.update(0)
        ra.update(1)
        prefetched = ra.update(2)
        assert prefetched
        for idx in prefetched:
            ra.update(idx)
        assert ra.useful_fraction() > 0

    def test_useful_fraction_empty(self):
        assert ReadaheadState().useful_fraction() == 0.0
