"""Tests for inodes, the inode table, and the dentry cache."""

import pytest

from repro.core.errors import VFSError
from repro.vfs.dentry import Dentry, DentryCache
from repro.vfs.inode import Inode, InodeTable


class TestInode:
    def test_open_close_refcounting(self):
        inode = Inode(1)
        inode.open()
        inode.open()
        assert inode.open_count == 2
        inode.close()
        assert inode.is_open
        inode.close()
        assert not inode.is_open

    def test_close_unopened_rejected(self):
        with pytest.raises(VFSError):
            Inode(1).close()

    def test_open_deleted_rejected(self):
        inode = Inode(1)
        inode.deleted = True
        with pytest.raises(VFSError):
            inode.open()

    def test_socket_inode_flag(self):
        assert Inode(1, is_socket=True).is_socket
        assert "sock" in repr(Inode(2, is_socket=True))


class TestInodeTable:
    def test_unique_inos(self):
        table = InodeTable()
        a = table.create()
        b = table.create()
        assert a.ino != b.ino

    def test_get(self):
        table = InodeTable()
        inode = table.create()
        assert table.get(inode.ino) is inode

    def test_get_missing(self):
        with pytest.raises(VFSError):
            InodeTable().get(99)

    def test_drop(self):
        table = InodeTable()
        inode = table.create()
        table.drop(inode.ino)
        with pytest.raises(VFSError):
            table.get(inode.ino)
        with pytest.raises(VFSError):
            table.drop(inode.ino)

    def test_live_inodes(self):
        table = InodeTable()
        table.create()
        table.create(is_socket=True)
        assert len(table.live_inodes()) == 2
        assert len(table) == 2


class _FakeObj:
    pass


class TestDentryCache:
    def _dentry(self, path, ino=1):
        return Dentry(path, Inode(ino), _FakeObj())

    def test_miss_then_hit(self):
        cache = DentryCache()
        assert cache.lookup("/a") is None
        cache.insert(self._dentry("/a"))
        assert cache.lookup("/a") is not None
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate() == pytest.approx(0.5)

    def test_duplicate_insert_rejected(self):
        cache = DentryCache()
        cache.insert(self._dentry("/a"))
        with pytest.raises(VFSError):
            cache.insert(self._dentry("/a"))

    def test_lru_shrink_returns_victims(self):
        cache = DentryCache(max_entries=2)
        cache.insert(self._dentry("/a", 1))
        cache.insert(self._dentry("/b", 2))
        evicted = cache.insert(self._dentry("/c", 3))
        assert [d.path for d in evicted] == ["/a"]
        assert "/a" not in cache
        assert len(cache) == 2

    def test_lookup_refreshes_recency(self):
        cache = DentryCache(max_entries=2)
        cache.insert(self._dentry("/a", 1))
        cache.insert(self._dentry("/b", 2))
        cache.lookup("/a")
        evicted = cache.insert(self._dentry("/c", 3))
        assert [d.path for d in evicted] == ["/b"]

    def test_remove(self):
        cache = DentryCache()
        cache.insert(self._dentry("/a"))
        assert cache.remove("/a") is not None
        assert cache.remove("/a") is None

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            DentryCache(max_entries=0)
