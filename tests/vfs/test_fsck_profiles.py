"""Tests for the fsck-style consistency checker and Filebench profiles."""

import pytest

from repro.core.errors import ConfigError, VFSError
from repro.core.units import KB, PAGE_SIZE
from repro.workloads import WORKLOADS
from repro.workloads.base import WorkloadConfig
from tests.fakes import FakeKernel
from tests.workloads.test_workloads import SCALE, make_kernel
from repro.vfs.filesystem import Filesystem


@pytest.fixture
def fs():
    kernel = FakeKernel(fast_bytes=8 * 1024 * 1024, slow_bytes=64 * 1024 * 1024)
    return Filesystem(kernel, page_cache_max_pages=4096)


class TestConsistencyChecker:
    def test_clean_fs_passes(self, fs):
        fh = fs.create("/a")
        fs.write(fh, 0, 8 * PAGE_SIZE)
        fs.read(fh, 0, 4 * PAGE_SIZE)
        fs.check_consistency()
        fs.close(fh)
        fs.check_consistency()

    def test_detects_page_beyond_eof(self, fs):
        fh = fs.create("/a")
        fs.write(fh, 0, 2 * PAGE_SIZE)
        fh.inode.size_bytes = PAGE_SIZE  # simulate a broken truncate
        with pytest.raises(VFSError):
            fs.check_consistency()

    def test_detects_freed_cached_page(self, fs):
        fh = fs.create("/a")
        fs.write(fh, 0, PAGE_SIZE)
        page = fs.cache_mgr.cache_for(fh.inode.ino).lookup(0)
        fs.ctx.free_object(page.obj)  # freed behind the cache's back
        with pytest.raises(VFSError):
            fs.check_consistency()

    def test_detects_lru_count_drift(self, fs):
        fh = fs.create("/a")
        fs.write(fh, 0, PAGE_SIZE)
        page = fs.cache_mgr.cache_for(fh.inode.ino).lookup(0)
        fs.cache_mgr.note_remove(page)  # LRU and cache now disagree
        with pytest.raises(VFSError):
            fs.check_consistency()

    def test_detects_stale_handle(self, fs):
        fh = fs.create("/a")
        fh.inode.open_count = 0  # handle says open, inode says closed
        with pytest.raises(VFSError):
            fs.check_consistency()


def make_filebench(profile):
    kernel = make_kernel()
    cfg = WorkloadConfig(
        name="filebench",
        scale_factor=SCALE,
        num_threads=4,
        extra={"profile": profile},
    )
    return kernel, WORKLOADS["filebench"](kernel, cfg)


class TestFilebenchProfiles:
    def test_unknown_profile_rejected(self):
        with pytest.raises(ConfigError):
            make_filebench("mailserver")

    def test_varmail_churns_inodes(self):
        kernel, wl = make_filebench("varmail")
        wl.setup()
        creates_before = kernel.fs.ops["create"]
        wl.run(400)
        # Heavy namespace churn: creates, unlinks, and fsyncs all fire.
        assert kernel.fs.ops["create"] > creates_before + 50
        assert kernel.fs.ops["unlink"] > 20
        assert kernel.fs.ops["fsync"] > 50
        kernel.fs.check_consistency()
        wl.teardown()
        kernel.topology.check_invariants()

    def test_varmail_knode_churn_under_klocs(self):
        from repro.core.config import two_tier_platform_spec
        from repro.core.units import GB
        from repro.kernel.kernel import Kernel
        from repro.policies import KlocsPolicy

        spec = two_tier_platform_spec(
            fast_capacity_bytes=8 * GB // SCALE * 4,
            slow_capacity_bytes=80 * GB // SCALE * 4,
        )
        kernel = Kernel(spec, KlocsPolicy(), seed=11)
        kernel.start()
        cfg = WorkloadConfig(
            name="filebench", scale_factor=SCALE, num_threads=4,
            extra={"profile": "varmail"},
        )
        wl = WORKLOADS["filebench"](kernel, cfg)
        wl.run(400)
        manager = kernel.kloc_manager
        # Every mail file's lifecycle created and deleted knodes.
        assert manager.knodes_deleted > 20
        wl.teardown()

    def test_webserver_read_dominated(self):
        kernel, wl = make_filebench("webserver")
        wl.setup()
        kernel.reset_reference_counters()
        reads_before = kernel.fs.ops["read"]
        wl.run(300)
        assert kernel.fs.ops["read"] - reads_before == 300
        assert kernel.fs.ops["open"] >= 300  # open-read-close per hit
        kernel.fs.check_consistency()
        wl.teardown()

    def test_fileserver_unchanged_default(self):
        kernel, wl = make_filebench("fileserver")
        wl.run(100)
        assert wl.profile == "fileserver"
        assert wl._file_bytes > 0
        wl.teardown()
        kernel.topology.check_invariants()
