"""Integration tests for the Filesystem facade."""

import pytest

from repro.core.errors import VFSError
from repro.core.objtypes import KernelObjectType
from repro.core.units import KB, PAGE_SIZE
from repro.vfs.filesystem import Filesystem
from repro.vfs.writeback import WritebackDaemon
from tests.fakes import FakeKernel


@pytest.fixture
def kernel():
    return FakeKernel(fast_bytes=8 * 1024 * 1024, slow_bytes=64 * 1024 * 1024)


@pytest.fixture
def fs(kernel):
    return Filesystem(kernel, page_cache_max_pages=4096)


class TestNamespace:
    def test_create_open_close(self, fs, kernel):
        fh = fs.create("/a")
        assert fs.exists("/a")
        assert fh.inode.is_open
        fs.close(fh)
        assert not fh.inode.is_open
        assert kernel.created_inodes and kernel.closed_inodes

    def test_create_duplicate_rejected(self, fs):
        fs.create("/a")
        with pytest.raises(VFSError):
            fs.create("/a")

    def test_open_missing_rejected(self, fs):
        with pytest.raises(VFSError):
            fs.open("/nope")

    def test_reopen(self, fs):
        fh = fs.create("/a")
        fs.close(fh)
        fh2 = fs.open("/a")
        assert fh2.inode is fh.inode
        assert fh2.fd != fh.fd

    def test_double_close_rejected(self, fs):
        fh = fs.create("/a")
        fs.close(fh)
        with pytest.raises(VFSError):
            fs.close(fh)

    def test_unlink_removes_everything(self, fs, kernel):
        fh = fs.create("/a")
        fs.write(fh, 0, 8 * PAGE_SIZE)
        fs.close(fh)
        fs.unlink("/a")
        assert not fs.exists("/a")
        assert kernel.unlinked_inodes
        freed_types = {o.otype for o in kernel.freed_objects}
        assert KernelObjectType.PAGE_CACHE in freed_types
        assert KernelObjectType.EXTENT in freed_types
        assert KernelObjectType.DENTRY in freed_types
        assert KernelObjectType.INODE in freed_types

    def test_unlink_open_file_rejected(self, fs):
        fs.create("/a")
        with pytest.raises(VFSError):
            fs.unlink("/a")

    def test_unlink_missing_rejected(self, fs):
        with pytest.raises(VFSError):
            fs.unlink("/ghost")

    def test_unlink_returns_all_memory(self, fs, kernel):
        fh = fs.create("/a")
        fs.write(fh, 0, 64 * PAGE_SIZE)
        fs.close(fh)
        fs.journal.commit()
        fs.unlink("/a")
        fs.journal.commit()
        kernel.topology.check_invariants()
        assert kernel.topology.live_pages() == 0


class TestDataPath:
    def test_write_populates_page_cache(self, fs):
        fh = fs.create("/a")
        fs.write(fh, 0, 10 * PAGE_SIZE)
        assert fs.cache_mgr.total_pages == 10
        assert fh.inode.size_bytes == 10 * PAGE_SIZE

    def test_write_allocates_table1_objects(self, fs, kernel):
        fh = fs.create("/a")
        fs.write(fh, 0, PAGE_SIZE)
        live_types = set()
        for frame in kernel.topology.frames.values():
            if frame.obj_type:
                live_types.add(frame.obj_type)
        assert "PAGE_CACHE" in live_types
        assert "INODE" in live_types
        assert "DENTRY" in live_types
        assert "EXTENT" in live_types
        assert "JOURNAL" in live_types

    def test_partial_page_write(self, fs):
        fh = fs.create("/a")
        fs.write(fh, 100, 50)
        assert fs.cache_mgr.total_pages == 1
        assert fh.inode.size_bytes == 150

    def test_read_hits_cache(self, fs):
        fh = fs.create("/a")
        fs.write(fh, 0, 4 * PAGE_SIZE)
        n = fs.read(fh, 0, 4 * PAGE_SIZE)
        assert n == 4 * PAGE_SIZE
        assert fs.cache_hits == 4
        assert fs.cache_misses == 0

    def test_read_truncated_at_eof(self, fs):
        fh = fs.create("/a")
        fs.write(fh, 0, 100)
        assert fs.read(fh, 0, PAGE_SIZE) == 100
        assert fs.read(fh, 200, 10) == 0

    def test_read_miss_goes_to_disk(self, fs, kernel):
        """Evicted pages must be re-fetched through blk-mq."""
        fh = fs.create("/a")
        fs.write(fh, 0, 2 * PAGE_SIZE)
        # Manually evict page 0 (as reclaim would).
        cache = fs.cache_mgr.cache_for(fh.inode.ino)
        page = cache.lookup(0)
        fs.cache_mgr.note_remove(page)
        cache.remove(0)
        kernel.free_object(page.obj)
        reads_before = kernel.storage.reads
        fs.read(fh, 0, PAGE_SIZE, )
        assert kernel.storage.reads > reads_before
        assert fs.cache_misses == 1

    def test_fsync_flushes_and_commits(self, fs, kernel):
        fh = fs.create("/a")
        fs.write(fh, 0, 8 * PAGE_SIZE)
        dirty_before = fs.dirty_page_count()
        assert dirty_before == 8
        written_before = kernel.storage.bytes_written
        flushed = fs.fsync(fh)
        assert flushed == 8
        assert fs.dirty_page_count() == 0
        assert kernel.storage.bytes_written > written_before
        assert fs.journal.commits >= 1

    def test_write_on_closed_handle_rejected(self, fs):
        fh = fs.create("/a")
        fs.close(fh)
        with pytest.raises(VFSError):
            fs.write(fh, 0, 10)

    def test_invalid_sizes_rejected(self, fs):
        fh = fs.create("/a")
        with pytest.raises(ValueError):
            fs.write(fh, 0, 0)
        with pytest.raises(ValueError):
            fs.read(fh, 0, 0)

    def test_extent_allocated_per_span(self, fs, kernel):
        fh = fs.create("/a")
        fs.write(fh, 0, 256 * KB)  # exactly one extent span
        fs.write(fh, 256 * KB, 1)  # second span
        extents = fs._extents[fh.inode.ino]
        assert len(extents) == 2


class TestReadahead:
    def test_sequential_read_prefetches(self, fs, kernel):
        fh = fs.create("/a")
        fs.write(fh, 0, 64 * PAGE_SIZE)
        fs.fsync(fh)
        # Drop the cache to force misses.
        cache = fs.cache_mgr.cache_for(fh.inode.ino)
        for page in cache.pages():
            fs.cache_mgr.note_remove(page)
            cache.remove(page.index)
            kernel.free_object(page.obj)
        for i in range(6):
            fs.read(fh, i * PAGE_SIZE, PAGE_SIZE)
        assert fh.readahead.prefetched > 0
        # Later sequential reads hit prefetched pages.
        assert fs.cache_hits > 0

    def test_readahead_disabled(self, kernel):
        fs = Filesystem(kernel, readahead_enabled=False)
        fh = fs.create("/a")
        fs.write(fh, 0, 16 * PAGE_SIZE)
        for i in range(8):
            fs.read(fh, i * PAGE_SIZE, PAGE_SIZE)
        assert fh.readahead.prefetched == 0


class TestReclaim:
    def test_cache_cap_enforced(self, kernel):
        fs = Filesystem(kernel, page_cache_max_pages=32)
        fh = fs.create("/a")
        fs.write(fh, 0, 64 * PAGE_SIZE)
        assert fs.cache_mgr.total_pages <= 32
        assert fs.cache_mgr.evicted >= 32

    def test_dirty_victims_written_back(self, kernel):
        fs = Filesystem(kernel, page_cache_max_pages=16)
        fh = fs.create("/a")
        written_before = kernel.storage.bytes_written
        fs.write(fh, 0, 64 * PAGE_SIZE)
        assert kernel.storage.bytes_written > written_before


class TestWriteback:
    def test_daemon_flushes_on_timer(self, fs, kernel):
        daemon = WritebackDaemon(fs, period_ns=10**9, batch_pages=64)
        daemon.start()
        fh = fs.create("/a")
        fs.write(fh, 0, 8 * PAGE_SIZE)
        assert fs.dirty_page_count() > 0
        kernel.clock.advance(10**9)
        assert daemon.wakeups >= 1
        assert fs.dirty_page_count() == 0

    def test_daemon_commits_journal(self, fs, kernel):
        daemon = WritebackDaemon(fs, period_ns=1000)
        daemon.start()
        fh = fs.create("/a")
        fs.write(fh, 0, PAGE_SIZE)
        kernel.clock.advance(10_000)
        assert fs.journal.txn_pages == 0

    def test_start_idempotent(self, fs):
        daemon = WritebackDaemon(fs, period_ns=1000)
        daemon.start()
        daemon.start()

    def test_invalid_config(self, fs):
        with pytest.raises(ValueError):
            WritebackDaemon(fs, period_ns=0)
        with pytest.raises(ValueError):
            WritebackDaemon(fs, batch_pages=0)
