"""Tests for the journal, blk-mq block layer, NVMe model, and extents."""

import pytest

from repro.core.config import StorageSpec
from repro.core.objtypes import KernelObjectType
from repro.core.units import PAGE_SIZE
from repro.vfs.extent import EXTENT_SPAN_PAGES, ExtentTree
from repro.vfs.inode import Inode
from repro.vfs.journal import RECORDS_PER_PAGE, Journal
from repro.vfs.blkmq import BlockMQ
from repro.vfs.storage import NVMeDevice
from tests.fakes import FakeKernel


@pytest.fixture
def kernel():
    return FakeKernel()


class TestNVMe:
    def test_sequential_faster_than_random(self):
        dev = NVMeDevice(StorageSpec())
        seq = dev.io_cost_ns(1 << 20, write=False, sequential=True)
        rand = dev.io_cost_ns(1 << 20, write=False, sequential=False)
        assert seq < rand

    def test_counters(self):
        dev = NVMeDevice()
        dev.io_cost_ns(100, write=True, sequential=True)
        dev.io_cost_ns(50, write=False, sequential=False)
        assert dev.writes == 1 and dev.reads == 1
        assert dev.bytes_written == 100 and dev.bytes_read == 50

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            NVMeDevice().io_cost_ns(-1, write=False, sequential=True)


class TestJournal:
    def test_records_pack_into_pages(self, kernel):
        journal = Journal(kernel)
        journal.log_metadata(None, RECORDS_PER_PAGE)
        assert journal.txn_pages == 1
        journal.log_metadata(None, 1)
        assert journal.txn_pages == 2

    def test_commit_frees_buffers(self, kernel):
        journal = Journal(kernel)
        journal.log_metadata(None, 5)
        committed = journal.commit()
        assert committed == 1
        assert journal.txn_pages == 0
        assert any(
            o.otype is KernelObjectType.JOURNAL for o in kernel.freed_objects
        )

    def test_empty_commit_is_noop(self, kernel):
        journal = Journal(kernel)
        assert journal.commit() == 0
        assert journal.commits == 0

    def test_full_transaction_autocommits(self, kernel):
        journal = Journal(kernel, max_txn_pages=2)
        journal.log_metadata(None, 2 * RECORDS_PER_PAGE)
        assert journal.commits == 1
        assert journal.txn_pages == 0

    def test_commit_writes_to_storage(self, kernel):
        journal = Journal(kernel)
        journal.log_metadata(None, 3)
        before = kernel.storage.bytes_written
        journal.commit()
        assert kernel.storage.bytes_written == before + PAGE_SIZE

    def test_invalid_args(self, kernel):
        with pytest.raises(ValueError):
            Journal(kernel, max_txn_pages=0)
        with pytest.raises(ValueError):
            Journal(kernel).log_metadata(None, 0)


class TestBlockMQ:
    def test_submit_allocates_and_frees_bio_and_request(self, kernel):
        blk = BlockMQ(kernel)
        blk.submit(PAGE_SIZE, write=True, sequential=True)
        types = {o.otype for o in kernel.freed_objects}
        assert KernelObjectType.BLOCK in types
        assert KernelObjectType.BLK_MQ in types
        assert blk.submitted == 1

    def test_per_cpu_dispatch(self, kernel):
        blk = BlockMQ(kernel)
        blk.submit(PAGE_SIZE, write=False, sequential=False, cpu=2)
        assert blk.per_cpu_dispatch[2] == 1

    def test_submit_pages(self, kernel):
        blk = BlockMQ(kernel)
        result = blk.submit_pages(3, write=True, sequential=True)
        assert result.nbytes == 3 * PAGE_SIZE

    def test_zero_bytes_rejected(self, kernel):
        with pytest.raises(ValueError):
            BlockMQ(kernel).submit(0, write=False, sequential=False)

    def test_background_io_cheaper(self, kernel):
        blk = BlockMQ(kernel)
        fg = blk.submit(1 << 20, write=False, sequential=True).cost_ns
        bg = blk.submit(1 << 20, write=False, sequential=True, background=True).cost_ns
        assert bg < fg


class TestExtentTree:
    def test_span_mapping(self):
        assert ExtentTree.span_for_page(0) == 0
        assert ExtentTree.span_for_page(EXTENT_SPAN_PAGES - 1) == 0
        assert ExtentTree.span_for_page(EXTENT_SPAN_PAGES) == 1

    def test_lookup_insert(self, kernel):
        tree = ExtentTree()
        assert tree.lookup(0) is None
        extent = kernel.alloc_object(KernelObjectType.EXTENT)
        tree.insert(0, extent)
        assert tree.lookup(EXTENT_SPAN_PAGES - 1) is extent
        assert tree.lookup(EXTENT_SPAN_PAGES) is None
        assert len(tree) == 1

    def test_remove_all(self, kernel):
        tree = ExtentTree()
        for span in range(3):
            tree.insert(span * EXTENT_SPAN_PAGES, kernel.alloc_object(KernelObjectType.EXTENT))
        extents = tree.remove_all()
        assert len(extents) == 3
        assert len(tree) == 0
