"""Tests for the per-inode page cache and the global manager."""

import pytest

from repro.core.errors import SimulationError
from repro.core.objtypes import KernelObjectType
from repro.vfs.pagecache import CachePage, PageCache, PageCacheManager
from tests.fakes import FakeKernel


@pytest.fixture
def kernel():
    return FakeKernel()


def make_cache(kernel, ino=1):
    return PageCache(
        ino,
        alloc_node=lambda: kernel.alloc_object(KernelObjectType.RADIX_NODE),
        free_node=kernel.free_object,
    )


def make_page(kernel, cache, index):
    obj = kernel.alloc_object(KernelObjectType.PAGE_CACHE)
    page = CachePage(obj, cache.ino, index)
    cache.insert(page)
    return page


class TestPageCache:
    def test_insert_lookup(self, kernel):
        cache = make_cache(kernel)
        page = make_page(kernel, cache, 5)
        assert cache.lookup(5) is page
        assert cache.lookup(6) is None

    def test_duplicate_insert_rejected(self, kernel):
        cache = make_cache(kernel)
        make_page(kernel, cache, 5)
        with pytest.raises(SimulationError):
            make_page(kernel, cache, 5)

    def test_radix_nodes_are_kernel_objects(self, kernel):
        cache = make_cache(kernel)
        before = kernel.slab.stats.allocs
        make_page(kernel, cache, 0)
        assert kernel.slab.stats.allocs > before  # interior node(s) created

    def test_remove_frees_radix_nodes(self, kernel):
        cache = make_cache(kernel)
        make_page(kernel, cache, 0)
        kernel.freed_objects.clear()
        removed = cache.remove(0)
        assert removed is not None
        # Radix interior nodes freed back through the kernel.
        assert any(
            o.otype is KernelObjectType.RADIX_NODE for o in kernel.freed_objects
        )

    def test_dirty_pages(self, kernel):
        cache = make_cache(kernel)
        a = make_page(kernel, cache, 0)
        b = make_page(kernel, cache, 1)
        a.obj.frame.dirty = True
        assert cache.dirty_pages() == [a]
        a.clean()
        assert cache.dirty_pages() == []

    def test_pages_listing(self, kernel):
        cache = make_cache(kernel)
        for i in [3, 1, 2]:
            make_page(kernel, cache, i)
        assert [p.index for p in cache.pages()] == [1, 2, 3]


class TestPageCacheManager:
    def test_register_duplicate_rejected(self, kernel):
        mgr = PageCacheManager(max_pages=10)
        mgr.register(make_cache(kernel, ino=1))
        with pytest.raises(SimulationError):
            mgr.register(make_cache(kernel, ino=1))

    def test_pressure_accounting(self, kernel):
        mgr = PageCacheManager(max_pages=2)
        cache = make_cache(kernel, ino=1)
        mgr.register(cache)
        for i in range(2):
            mgr.note_insert(make_page(kernel, cache, i))
        assert mgr.over_pressure() == 1
        assert mgr.over_pressure(incoming=0) == 0

    def test_eviction_victims_cold_first(self, kernel):
        mgr = PageCacheManager(max_pages=10)
        cache = make_cache(kernel, ino=1)
        mgr.register(cache)
        pages = [make_page(kernel, cache, i) for i in range(3)]
        for p in pages:
            mgr.note_insert(p)
        mgr.note_access(pages[0])  # promote → survives
        victims = [p for _c, p in mgr.eviction_victims(2)]
        assert pages[0] not in victims
        assert len(victims) == 2

    def test_note_remove(self, kernel):
        mgr = PageCacheManager(max_pages=10)
        cache = make_cache(kernel, ino=1)
        mgr.register(cache)
        page = make_page(kernel, cache, 0)
        mgr.note_insert(page)
        mgr.note_remove(page)
        assert mgr.total_pages == 0

    def test_victims_skip_unregistered_caches(self, kernel):
        mgr = PageCacheManager(max_pages=10)
        cache = make_cache(kernel, ino=1)
        mgr.register(cache)
        page = make_page(kernel, cache, 0)
        mgr.note_insert(page)
        mgr.unregister(1)
        assert mgr.eviction_victims(1) == []

    def test_zero_cap_rejected(self):
        with pytest.raises(ValueError):
            PageCacheManager(max_pages=0)
