"""Tests for the topology's resident-frame indexes and referenced journal.

The PR-2 scanners (LRU engine, AutoNUMA family) consult these instead of
walking the global frame table, so index maintenance must be airtight at
every frame lifecycle event: allocation, free, and cross-tier migration.
"""

import pytest

from repro.core.config import fast_dram_spec, slow_dram_spec
from repro.core.units import MB
from repro.mem.frame import PageOwner
from repro.mem.topology import MemoryTopology, frame_index_enabled


@pytest.fixture
def topo():
    return MemoryTopology(
        [
            fast_dram_spec(capacity_bytes=1 * MB),
            slow_dram_spec(capacity_bytes=4 * MB),
        ]
    )


class TestResidentIndex:
    def test_allocation_lands_in_tier_index(self, topo):
        frames = topo.allocate(6, ["fast"], PageOwner.APP)
        resident = topo.resident_frames("fast")
        assert sorted(resident) == sorted(f.fid for f in frames)
        assert topo.resident_frames("slow") == {}

    def test_owner_view_is_disjoint_by_owner(self, topo):
        app = topo.allocate(3, ["fast"], PageOwner.APP)
        slab = topo.allocate(2, ["fast"], PageOwner.SLAB)
        by_app = topo.resident_frames_by_owner("fast", PageOwner.APP)
        by_slab = topo.resident_frames_by_owner("fast", PageOwner.SLAB)
        assert sorted(by_app) == sorted(f.fid for f in app)
        assert sorted(by_slab) == sorted(f.fid for f in slab)

    def test_free_removes_from_all_indexes(self, topo):
        frames = topo.allocate(4, ["fast"], PageOwner.APP)
        topo.free(frames[0], now_ns=0)
        assert frames[0].fid not in topo.resident_frames("fast")
        assert frames[0].fid not in topo.resident_frames_by_owner(
            "fast", PageOwner.APP
        )
        topo.check_invariants()

    def test_move_frame_switches_index_tier(self, topo):
        (frame,) = topo.allocate(1, ["fast"], PageOwner.APP)
        topo.move_frame(frame, "slow")
        assert frame.fid not in topo.resident_frames("fast")
        assert frame.fid in topo.resident_frames("slow")
        assert frame.fid in topo.resident_frames_by_owner("slow", PageOwner.APP)
        topo.check_invariants()

    def test_unknown_tier_rejected(self, topo):
        with pytest.raises(Exception):
            topo.resident_frames("hbm")

    def test_iter_frames_by_owner_spans_tiers(self, topo):
        fast = topo.allocate(2, ["fast"], PageOwner.APP)
        slow = topo.allocate(3, ["slow"], PageOwner.APP)
        topo.allocate(2, ["fast"], PageOwner.SLAB)
        seen = {f.fid for f in topo.iter_frames_by_owner(PageOwner.APP)}
        assert seen == {f.fid for f in fast + slow}

    def test_live_frames_in_matches_index(self, topo):
        frames = topo.allocate(5, ["fast"], PageOwner.PAGE_CACHE)
        topo.free(frames[2], now_ns=0)
        listed = topo.live_frames_in("fast")
        assert [f.fid for f in listed] == sorted(
            f.fid for f in frames if f.live
        )

    def test_invariants_after_churn(self, topo):
        frames = topo.allocate(20, ["fast", "slow"], PageOwner.APP)
        for f in frames[::3]:
            topo.free(f, now_ns=0)
        for f in frames:
            if f.live and f.tier_name == "fast" and topo.tier("slow").has_room(1):
                topo.move_frame(f, "slow")
        topo.check_invariants()


class TestReferencedJournal:
    def test_allocation_counts_as_touch(self, topo):
        frames = topo.allocate(3, ["fast"], PageOwner.APP)
        drained = topo.drain_referenced()
        assert {f.fid for f in drained} == {f.fid for f in frames}

    def test_drain_clears_window(self, topo):
        topo.allocate(2, ["fast"], PageOwner.APP)
        topo.drain_referenced()
        assert topo.drain_referenced() == []

    def test_access_reenrolls(self, topo):
        (frame,) = topo.allocate(1, ["fast"], PageOwner.APP)
        topo.drain_referenced()
        frame.record_access(1_000, write=False)
        assert [f.fid for f in topo.drain_referenced()] == [frame.fid]

    def test_freed_frame_drops_out(self, topo):
        frames = topo.allocate(2, ["fast"], PageOwner.APP)
        topo.free(frames[0], now_ns=0)
        drained = topo.drain_referenced()
        assert [f.fid for f in drained] == [frames[1].fid]

    def test_freed_frame_never_reenrolls(self, topo):
        (frame,) = topo.allocate(1, ["fast"], PageOwner.APP)
        topo.free(frame, now_ns=0)
        frame.record_access(5_000, write=False)  # stale pointer touch: no journal
        assert topo.drain_referenced() == []


class TestMoveResetsHotness:
    """PR-2 behavior change: hotness state is per-residency (SIM_VERSION 2)."""

    def test_move_frame_resets_lru_age_and_streak(self, topo):
        (frame,) = topo.allocate(1, ["fast"], PageOwner.APP)
        frame.lru_age = 7
        frame.scan_ref_streak = 3
        topo.move_frame(frame, "slow")
        assert frame.lru_age == 0
        assert frame.scan_ref_streak == 0


class TestRetiredLimit:
    def specs(self):
        return [
            fast_dram_spec(capacity_bytes=1 * MB),
            slow_dram_spec(capacity_bytes=4 * MB),
        ]

    def test_default_keeps_every_retired_frame(self):
        topo = MemoryTopology(self.specs())
        frames = topo.allocate(10, ["fast"], PageOwner.APP)
        for f in frames:
            topo.free(f, now_ns=0)
        assert len(topo.retired) == 10

    def test_cap_bounds_the_log(self):
        topo = MemoryTopology(self.specs(), retired_limit=4)
        frames = topo.allocate(10, ["fast"], PageOwner.APP)
        for f in frames:
            topo.free(f, now_ns=0)
        assert len(topo.retired) == 4
        # The newest retirees are the ones kept.
        assert [f.fid for f in topo.retired] == [f.fid for f in frames[-4:]]

    def test_zero_cap_disables_retention(self):
        topo = MemoryTopology(self.specs(), retired_limit=0)
        frames = topo.allocate(5, ["fast"], PageOwner.APP)
        for f in frames:
            topo.free(f, now_ns=0)
        assert len(topo.retired) == 0


class TestEnvKnob:
    def test_index_disabled_by_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_FRAME_INDEX", "1")
        assert not frame_index_enabled()

    def test_index_default_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_NO_FRAME_INDEX", raising=False)
        assert frame_index_enabled()
