"""Tests for transparent-huge-page (compound group) support."""

import pytest

from repro.core.clock import Clock
from repro.core.config import MigrationSpec, fast_dram_spec, slow_dram_spec
from repro.core.units import MB, PAGE_SIZE
from repro.mem.frame import PageOwner
from repro.mem.migration import MigrationEngine
from repro.mem.thp import CompoundRegistry
from repro.mem.topology import MemoryTopology
from repro.policies import KlocsPolicy, NimblePolicy
from tests.kernel.test_kernel import make_kernel


@pytest.fixture
def topo():
    return MemoryTopology(
        [fast_dram_spec(capacity_bytes=16 * MB), slow_dram_spec(capacity_bytes=64 * MB)]
    )


class TestCompoundRegistry:
    def test_grouping(self, topo):
        registry = CompoundRegistry(pages_per_compound=4)
        frames = topo.allocate(10, ["fast"], PageOwner.APP)
        formed = registry.make_compounds(frames)
        assert formed == 2  # 8 pages grouped, 2 left as base pages
        assert frames[0].compound_id is not None
        assert frames[0].compound_id == frames[3].compound_id
        assert frames[4].compound_id != frames[0].compound_id
        assert frames[8].compound_id is None

    def test_expand_whole_groups(self, topo):
        registry = CompoundRegistry(pages_per_compound=4)
        frames = topo.allocate(8, ["fast"], PageOwner.APP)
        registry.make_compounds(frames)
        expanded = registry.expand([frames[0], frames[5]])
        assert len(expanded) == 8  # both whole groups

    def test_expand_mixes_base_pages(self, topo):
        registry = CompoundRegistry(pages_per_compound=4)
        frames = topo.allocate(5, ["fast"], PageOwner.APP)
        registry.make_compounds(frames)
        expanded = registry.expand([frames[4], frames[1]])
        assert len(expanded) == 5

    def test_group_hotness(self, topo):
        registry = CompoundRegistry(pages_per_compound=4)
        frames = topo.allocate(4, ["fast"], PageOwner.APP)
        registry.make_compounds(frames)
        cid = frames[0].compound_id
        assert not registry.group_recently_referenced(cid, since_ns=10)
        frames[2].record_access(50, write=False)
        assert registry.group_recently_referenced(cid, since_ns=10)

    def test_drop(self, topo):
        registry = CompoundRegistry(pages_per_compound=4)
        frames = topo.allocate(4, ["fast"], PageOwner.APP)
        registry.make_compounds(frames)
        registry.drop(frames)
        assert registry.compound_count() == 0
        assert all(f.compound_id is None for f in frames)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            CompoundRegistry(pages_per_compound=1)


class TestTHPMigrationCost:
    def test_one_remap_per_compound(self, topo):
        """The §5 hypothesis mechanism: 2MB moves with a single remap."""
        spec = MigrationSpec(remap_overhead_ns=1_000_000, copy_threads=1)
        engine = MigrationEngine(topo, Clock(), spec)
        registry = CompoundRegistry(pages_per_compound=8)

        base = topo.allocate(8, ["fast"], PageOwner.APP)
        cost_base = engine.migrate(base, "slow", charge_time=False).cost_ns

        huge = topo.allocate(8, ["fast"], PageOwner.APP)
        registry.make_compounds(huge)
        cost_huge = engine.migrate(huge, "slow", charge_time=False).cost_ns

        # 8 remaps vs 1: the huge batch is dominated by copy cost only.
        assert cost_huge < cost_base / 4


class TestKernelIntegration:
    def test_huge_region_allocation(self):
        kernel = make_kernel()
        frames = kernel.alloc_app_pages(1024, huge=True)
        compounds = {f.compound_id for f in frames if f.compound_id is not None}
        assert len(compounds) == 2  # 1024 pages / 512 per THP
        kernel.free_app_pages(frames)
        assert kernel.thp.compound_count() == 0
        kernel.topology.check_invariants()

    def test_scan_moves_whole_groups(self):
        kernel = make_kernel(NimblePolicy())
        kernel.thp.pages_per_compound = 8
        lru = kernel.policy.lru
        lru.free_watermark_frac = 1.0  # always demote cold app pages
        frames = kernel.alloc_app_pages(8, huge=True)
        lru.scan()
        lru.scan()
        lru.scan()
        tiers = {f.tier_name for f in frames}
        assert tiers == {"slow"}  # all or nothing

    def test_hot_member_pins_group(self):
        kernel = make_kernel(NimblePolicy())
        kernel.thp.pages_per_compound = 8
        lru = kernel.policy.lru
        lru.free_watermark_frac = 1.0
        frames = kernel.alloc_app_pages(8, huge=True)
        for _ in range(4):
            kernel.access_frame(frames[3], 64)  # one hot member
            lru.scan()
        # The hot member keeps the whole THP in fast memory.
        assert {f.tier_name for f in frames} == {"fast"}
