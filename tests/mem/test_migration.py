"""Tests for the migration engine: cost model, relocatability, pinning."""

import pytest

from repro.core.clock import Clock
from repro.core.config import MigrationSpec, fast_dram_spec, slow_dram_spec
from repro.core.errors import MigrationError
from repro.core.units import MB
from repro.mem.frame import PageOwner
from repro.mem.migration import MigrationEngine
from repro.mem.topology import MemoryTopology


@pytest.fixture
def topo():
    return MemoryTopology(
        [
            fast_dram_spec(capacity_bytes=1 * MB),
            slow_dram_spec(capacity_bytes=4 * MB),
        ]
    )


@pytest.fixture
def clock():
    return Clock()


@pytest.fixture
def engine(topo, clock):
    return MigrationEngine(topo, clock, MigrationSpec(copy_threads=4))


class TestBasicMigration:
    def test_moves_frames(self, topo, engine):
        frames = topo.allocate(10, ["fast"], PageOwner.PAGE_CACHE)
        result = engine.migrate(frames, "slow")
        assert result.moved == 10
        assert all(f.tier_name == "slow" for f in frames)

    def test_charges_virtual_time(self, topo, engine, clock):
        frames = topo.allocate(10, ["fast"], PageOwner.PAGE_CACHE)
        engine.migrate(frames, "slow")
        assert clock.now() > 0

    def test_async_mode_does_not_charge_caller(self, topo, engine, clock):
        frames = topo.allocate(10, ["fast"], PageOwner.PAGE_CACHE)
        result = engine.migrate(frames, "slow", charge_time=False)
        assert clock.now() == 0
        assert result.cost_ns > 0  # still accounted in the result

    def test_remap_overhead_scales_with_pages(self, topo, clock):
        spec = MigrationSpec(remap_overhead_ns=10**9, copy_threads=1)
        engine = MigrationEngine(topo, clock, spec)
        frames = topo.allocate(5, ["fast"], PageOwner.APP)
        result = engine.migrate(frames, "slow")
        # Remap dominates at this setting: one unit per page, serialized
        # on a single migration thread.
        assert result.cost_ns >= 5 * 10**9
        assert result.cost_ns < 6 * 10**9

    def test_parallel_copy_divides_transfer(self, topo, clock):
        frames = topo.allocate(20, ["fast"], PageOwner.APP)
        serial = MigrationEngine(topo, Clock(), MigrationSpec(copy_threads=1))
        cost_serial = _dry_run_cost(topo, frames, serial)
        # Re-allocate fresh frames for the parallel run.
        topo2 = MemoryTopology(
            [fast_dram_spec(capacity_bytes=1 * MB), slow_dram_spec(capacity_bytes=4 * MB)]
        )
        frames2 = topo2.allocate(20, ["fast"], PageOwner.APP)
        parallel = MigrationEngine(topo2, Clock(), MigrationSpec(copy_threads=4))
        cost_parallel = _dry_run_cost(topo2, frames2, parallel)
        assert cost_parallel < cost_serial

    def test_already_there_not_counted(self, topo, engine):
        frames = topo.allocate(3, ["slow"], PageOwner.APP)
        result = engine.migrate(frames, "slow")
        assert result.moved == 0
        assert result.cost_ns == 0


def _dry_run_cost(topo, frames, engine):
    return engine.migrate(frames, "slow", charge_time=False).cost_ns


class TestRelocatability:
    def test_slab_frames_skipped(self, topo, engine):
        frames = topo.allocate(4, ["fast"], PageOwner.SLAB, relocatable=False)
        result = engine.migrate(frames, "slow")
        assert result.moved == 0
        assert result.skipped_nonrelocatable == 4
        assert all(f.tier_name == "fast" for f in frames)

    def test_strict_mode_raises(self, topo, engine):
        frames = topo.allocate(1, ["fast"], PageOwner.SLAB, relocatable=False)
        with pytest.raises(MigrationError):
            engine.migrate(frames, "slow", strict=True)

    def test_mixed_batch_moves_only_relocatable(self, topo, engine):
        slab = topo.allocate(2, ["fast"], PageOwner.SLAB, relocatable=False)
        cache = topo.allocate(3, ["fast"], PageOwner.PAGE_CACHE)
        result = engine.migrate(slab + cache, "slow")
        assert result.moved == 3
        assert result.skipped_nonrelocatable == 2


class TestPinning:
    def test_pinned_frames_stay_in_fast(self, topo, engine):
        frames = topo.allocate(2, ["fast"], PageOwner.PAGE_CACHE)
        frames[0].pinned_fast = True
        result = engine.migrate(frames, "slow")
        assert result.moved == 1
        assert result.skipped_pinned == 1
        assert frames[0].tier_name == "fast"

    def test_pinned_frames_may_move_to_fast(self, topo, engine):
        frames = topo.allocate(1, ["slow"], PageOwner.PAGE_CACHE)
        frames[0].pinned_fast = True
        result = engine.migrate(frames, "fast")
        assert result.moved == 1


class TestCapacityEdge:
    def test_stops_when_destination_full(self, topo, engine):
        fast_cap = topo.tier("fast").capacity_pages
        topo.allocate(fast_cap - 2, ["fast"], PageOwner.APP)  # leave 2 slots
        frames = topo.allocate(5, ["slow"], PageOwner.PAGE_CACHE)
        result = engine.migrate(frames, "fast")
        assert result.moved == 2
        assert topo.tier("fast").free_pages == 0

    def test_freed_frames_ignored(self, topo, engine):
        frames = topo.allocate(3, ["fast"], PageOwner.PAGE_CACHE)
        topo.free(frames[0], now_ns=0)
        result = engine.migrate(frames, "slow")
        assert result.moved == 2
