"""Tests for MemoryTier accounting and access-cost model."""

import pytest

from repro.core.config import fast_dram_spec, slow_dram_spec
from repro.core.errors import SimulationError
from repro.core.units import MB, PAGE_SIZE
from repro.mem.tier import MemoryTier


@pytest.fixture
def fast():
    return MemoryTier(fast_dram_spec(capacity_bytes=1 * MB))


@pytest.fixture
def slow():
    return MemoryTier(slow_dram_spec(capacity_bytes=1 * MB))


class TestCapacityAccounting:
    def test_initially_empty(self, fast):
        assert fast.used_pages == 0
        assert fast.free_pages == fast.capacity_pages

    def test_reserve_release_roundtrip(self, fast):
        fast.reserve(10)
        assert fast.used_pages == 10
        fast.release(10)
        assert fast.used_pages == 0

    def test_peak_tracks_high_water(self, fast):
        fast.reserve(20)
        fast.release(15)
        fast.reserve(1)
        assert fast.peak_pages == 20

    def test_overcommit_rejected(self, fast):
        with pytest.raises(SimulationError):
            fast.reserve(fast.capacity_pages + 1)

    def test_over_release_rejected(self, fast):
        fast.reserve(1)
        with pytest.raises(SimulationError):
            fast.release(2)

    def test_has_room(self, fast):
        fast.reserve(fast.capacity_pages)
        assert not fast.has_room(1)
        assert fast.has_room(0)

    def test_utilization(self, fast):
        fast.reserve(fast.capacity_pages // 2)
        assert fast.utilization() == pytest.approx(0.5)


class TestAccessCost:
    def test_cost_includes_latency_and_transfer(self, fast):
        cost = fast.access_cost_ns(PAGE_SIZE)
        expected = fast.spec.read_latency_ns + int(
            PAGE_SIZE / fast.spec.read_bw_bytes_per_ns
        )
        assert cost == expected

    def test_slow_tier_costs_more(self, fast, slow):
        assert slow.access_cost_ns(PAGE_SIZE) > fast.access_cost_ns(PAGE_SIZE)

    def test_write_uses_write_parameters(self, slow):
        read = slow.access_cost_ns(PAGE_SIZE, write=False)
        write = slow.access_cost_ns(PAGE_SIZE, write=True)
        assert write > read  # slow tier writes are costlier (§2 NVM bands)

    def test_contention_inflates_cost(self, fast):
        base = fast.access_cost_ns(PAGE_SIZE)
        fast.contention_streams = 1
        contended = fast.access_cost_ns(PAGE_SIZE)
        assert contended > base

    def test_bytes_counters(self, fast):
        fast.access_cost_ns(100, write=False)
        fast.access_cost_ns(50, write=True)
        assert fast.bytes_read == 100
        assert fast.bytes_written == 50

    def test_negative_size_rejected(self, fast):
        with pytest.raises(ValueError):
            fast.access_cost_ns(-1)

    def test_zero_byte_access_is_latency_only(self, fast):
        assert fast.access_cost_ns(0) == fast.spec.read_latency_ns
