"""Tests for the Optane hardware DRAM cache and NUMA node model."""

import pytest

from repro.core.config import pmem_spec
from repro.core.units import MB, PAGE_SIZE
from repro.mem.hwcache import HardwareDRAMCache
from repro.mem.node import NumaNode
from repro.mem.tier import MemoryTier


class TestHardwareDRAMCache:
    def test_miss_then_hit(self):
        cache = HardwareDRAMCache(1 * MB)
        assert cache.access(1) is False
        assert cache.access(1) is True

    def test_lru_eviction(self):
        cache = HardwareDRAMCache(2 * PAGE_SIZE)  # 2 pages
        cache.access(1)
        cache.access(2)
        cache.access(3)  # evicts 1
        assert cache.access(1) is False
        assert cache.evictions >= 1

    def test_hit_refreshes_recency(self):
        cache = HardwareDRAMCache(2 * PAGE_SIZE)
        cache.access(1)
        cache.access(2)
        cache.access(1)  # 2 becomes LRU
        cache.access(3)  # evicts 2
        assert cache.access(1) is True

    def test_invalidate(self):
        cache = HardwareDRAMCache(1 * MB)
        cache.access(7)
        cache.invalidate(7)
        assert cache.access(7) is False

    def test_invalidate_missing_is_noop(self):
        HardwareDRAMCache(1 * MB).invalidate(42)

    def test_hit_rate(self):
        cache = HardwareDRAMCache(1 * MB)
        cache.access(1)
        cache.access(1)
        assert cache.hit_rate() == pytest.approx(0.5)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            HardwareDRAMCache(0)


class TestNumaNode:
    @pytest.fixture
    def node(self):
        tier = MemoryTier(pmem_spec(capacity_bytes=16 * MB))
        return NumaNode(0, tier, HardwareDRAMCache(4 * MB))

    def test_cache_hit_cheaper_than_miss(self, node):
        miss = node.access_cost_ns(1, PAGE_SIZE, write=False, from_node=0)
        hit = node.access_cost_ns(1, PAGE_SIZE, write=False, from_node=0)
        assert hit < miss

    def test_remote_access_costs_more(self, node):
        node.access_cost_ns(5, PAGE_SIZE, write=False, from_node=0)  # warm cache
        local = node.access_cost_ns(5, PAGE_SIZE, write=False, from_node=0)
        remote = node.access_cost_ns(5, PAGE_SIZE, write=False, from_node=1)
        assert remote > local

    def test_access_attribution(self, node):
        node.access_cost_ns(1, 64, write=False, from_node=0)
        node.access_cost_ns(2, 64, write=False, from_node=1)
        assert node.local_accesses == 1
        assert node.remote_accesses == 1
        assert node.local_ratio() == pytest.approx(0.5)

    def test_node_without_cache_uses_tier_cost(self):
        tier = MemoryTier(pmem_spec(capacity_bytes=16 * MB))
        node = NumaNode(1, tier, hw_cache=None)
        cost = node.access_cost_ns(1, PAGE_SIZE, write=False, from_node=1)
        assert cost == tier.spec.read_latency_ns + int(
            PAGE_SIZE / tier.spec.read_bw_bytes_per_ns
        )
