"""Tests for MemoryTopology allocation, spill, free, and counters."""

import pytest

from repro.core.config import fast_dram_spec, slow_dram_spec
from repro.core.errors import AllocationError, SimulationError
from repro.core.units import MB
from repro.mem.frame import PageOwner
from repro.mem.topology import MemoryTopology

FAST_MB = 1
SLOW_MB = 4


@pytest.fixture
def topo():
    return MemoryTopology(
        [
            fast_dram_spec(capacity_bytes=FAST_MB * MB),
            slow_dram_spec(capacity_bytes=SLOW_MB * MB),
        ]
    )


class TestAllocation:
    def test_prefers_first_tier(self, topo):
        frames = topo.allocate(4, ["fast", "slow"], PageOwner.APP)
        assert all(f.tier_name == "fast" for f in frames)

    def test_spills_to_second_tier(self, topo):
        fast_cap = topo.tier("fast").capacity_pages
        frames = topo.allocate(fast_cap + 3, ["fast", "slow"], PageOwner.APP)
        slow_frames = [f for f in frames if f.tier_name == "slow"]
        assert len(slow_frames) == 3

    def test_exhaustion_raises(self, topo):
        total = topo.tier("fast").capacity_pages + topo.tier("slow").capacity_pages
        with pytest.raises(AllocationError):
            topo.allocate(total + 1, ["fast", "slow"], PageOwner.APP)

    def test_failed_alloc_is_atomic(self, topo):
        total = topo.tier("fast").capacity_pages + topo.tier("slow").capacity_pages
        with pytest.raises(AllocationError):
            topo.allocate(total + 1, ["fast", "slow"], PageOwner.APP)
        assert topo.live_pages() == 0
        topo.check_invariants()

    def test_try_allocate_returns_none(self, topo):
        assert topo.try_allocate(10**9, ["fast"], PageOwner.APP) is None

    def test_zero_pages_rejected(self, topo):
        with pytest.raises(ValueError):
            topo.allocate(0, ["fast"], PageOwner.APP)

    def test_frame_ids_unique(self, topo):
        frames = topo.allocate(50, ["fast", "slow"], PageOwner.SLAB)
        assert len({f.fid for f in frames}) == 50

    def test_metadata_propagates(self, topo):
        (frame,) = topo.allocate(
            1,
            ["fast"],
            PageOwner.SLAB,
            obj_type="dentry",
            knode_id=9,
            relocatable=False,
            now_ns=123,
        )
        assert frame.obj_type == "dentry"
        assert frame.knode_id == 9
        assert not frame.relocatable
        assert frame.allocated_at == 123

    def test_unknown_tier_raises(self, topo):
        with pytest.raises(SimulationError):
            topo.allocate(1, ["nope"], PageOwner.APP)


class TestFree:
    def test_free_returns_capacity(self, topo):
        frames = topo.allocate(5, ["fast"], PageOwner.APP)
        topo.free_all(frames, now_ns=10)
        assert topo.tier("fast").used_pages == 0

    def test_double_free_rejected(self, topo):
        (frame,) = topo.allocate(1, ["fast"], PageOwner.APP)
        topo.free(frame, now_ns=1)
        with pytest.raises(SimulationError):
            topo.free(frame, now_ns=2)

    def test_freed_frame_retired_with_lifetime(self, topo):
        (frame,) = topo.allocate(1, ["fast"], PageOwner.PAGE_CACHE, now_ns=100)
        topo.free(frame, now_ns=350)
        assert topo.retired[-1] is frame
        assert frame.lifetime_ns(now_ns=999) == 250

    def test_free_all_skips_already_freed(self, topo):
        frames = topo.allocate(3, ["fast"], PageOwner.APP)
        topo.free(frames[0], now_ns=1)
        topo.free_all(frames, now_ns=2)  # must not raise
        assert topo.live_pages() == 0


class TestCounters:
    def test_alloc_count_by_tier_and_owner(self, topo):
        topo.allocate(3, ["fast"], PageOwner.APP)
        topo.allocate(2, ["slow"], PageOwner.SLAB)
        assert topo.alloc_count[("fast", PageOwner.APP)] == 3
        assert topo.alloc_count[("slow", PageOwner.SLAB)] == 2

    def test_live_count_tracks_frees(self, topo):
        frames = topo.allocate(3, ["fast"], PageOwner.APP)
        topo.free(frames[0], now_ns=1)
        assert topo.live_count[("fast", PageOwner.APP)] == 2

    def test_live_pages_by_owner(self, topo):
        topo.allocate(3, ["fast"], PageOwner.APP)
        topo.allocate(2, ["slow"], PageOwner.APP)
        assert topo.live_pages_by_owner(PageOwner.APP) == 5

    def test_allocated_pages_by_owner_includes_freed(self, topo):
        frames = topo.allocate(3, ["fast"], PageOwner.JOURNAL)
        topo.free_all(frames, now_ns=1)
        assert topo.allocated_pages_by_owner(PageOwner.JOURNAL) == 3

    def test_invariants_hold_through_churn(self, topo):
        live = []
        for i in range(10):
            live += topo.allocate(7, ["fast", "slow"], PageOwner.PAGE_CACHE, now_ns=i)
            if i % 3 == 0:
                for frame in live[:5]:
                    topo.free(frame, now_ns=i)
                live = live[5:]
        topo.check_invariants()


class TestMoveFrame:
    def test_move_updates_tiers_and_counters(self, topo):
        (frame,) = topo.allocate(1, ["fast"], PageOwner.PAGE_CACHE)
        topo.move_frame(frame, "slow")
        assert frame.tier_name == "slow"
        assert topo.tier("fast").used_pages == 0
        assert topo.tier("slow").used_pages == 1
        assert topo.migrations_between("fast", "slow") == 1
        topo.check_invariants()

    def test_move_to_same_tier_is_noop(self, topo):
        (frame,) = topo.allocate(1, ["fast"], PageOwner.APP)
        topo.move_frame(frame, "fast")
        assert topo.migrations_between("fast", "fast") == 0

    def test_move_to_full_tier_rejected(self, topo):
        cap = topo.tier("fast").capacity_pages
        topo.allocate(cap, ["fast"], PageOwner.APP)
        (frame,) = topo.allocate(1, ["slow"], PageOwner.APP)
        with pytest.raises(SimulationError):
            topo.move_frame(frame, "fast")

    def test_move_freed_frame_rejected(self, topo):
        (frame,) = topo.allocate(1, ["fast"], PageOwner.APP)
        topo.free(frame, now_ns=1)
        with pytest.raises(SimulationError):
            topo.move_frame(frame, "slow")

    def test_migration_bumps_frame_counter(self, topo):
        (frame,) = topo.allocate(1, ["fast"], PageOwner.APP)
        topo.move_frame(frame, "slow")
        topo.move_frame(frame, "fast")
        assert frame.migrations == 2
