"""Second property-test batch: clock scheduling, migration engine, the
per-CPU lists, and the page-cache manager under random op tapes."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.clock import Clock
from repro.core.config import MigrationSpec, fast_dram_spec, slow_dram_spec
from repro.core.units import MB
from repro.ds.percpu import PerCPUListSet
from repro.mem.frame import PageOwner
from repro.mem.migration import MigrationEngine
from repro.mem.topology import MemoryTopology


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.integers(min_value=1, max_value=10_000), min_size=1, max_size=50),
    st.integers(min_value=1, max_value=1000),
)
def test_periodic_fires_bounded_by_elapsed_over_period(advances, period):
    """A periodic callback fires at least once per jump past its deadline
    and never more than elapsed/period + 1 times in total."""
    clock = Clock()
    fires = []
    clock.schedule_periodic(period, fires.append)
    for delta in advances:
        clock.advance(delta)
    elapsed = sum(advances)
    assert len(fires) <= elapsed // period + 1
    # Firing times are strictly increasing and respect deadlines.
    assert fires == sorted(fires)
    if elapsed >= period:
        assert fires, "must fire at least once after a full period"


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    st.lists(st.booleans(), min_size=1, max_size=60),
    st.integers(min_value=1, max_value=4),
)
def test_migration_roundtrips_preserve_accounting(directions, threads):
    """Random ping-pong migration keeps tier counters exact and the
    engine's totals equal to the topology's migration counts."""
    topo = MemoryTopology(
        [fast_dram_spec(capacity_bytes=1 * MB), slow_dram_spec(capacity_bytes=4 * MB)]
    )
    engine = MigrationEngine(topo, Clock(), MigrationSpec(copy_threads=threads))
    frames = topo.allocate(32, ["fast"], PageOwner.PAGE_CACHE)
    for to_slow in directions:
        engine.migrate(frames, "slow" if to_slow else "fast", charge_time=False)
    topo.check_invariants()
    total = topo.migrations_between("fast", "slow") + topo.migrations_between(
        "slow", "fast"
    )
    assert total == engine.total_moved
    tier = frames[0].tier_name
    assert all(f.tier_name == tier for f in frames)  # batches move together


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3),  # cpu
            st.integers(min_value=0, max_value=20),  # item
            st.booleans(),  # record vs invalidate
        ),
        max_size=200,
    ),
    st.integers(min_value=1, max_value=8),
)
def test_percpu_lists_never_exceed_cap_and_stay_coherent(ops, cap):
    lists = PerCPUListSet(num_cpus=4, max_per_cpu=cap)
    for cpu, item, record in ops:
        if record:
            lists.record(cpu, item)
        else:
            lists.invalidate(item)
            assert lists.find_cpus(item) == []
    for cpu in range(4):
        entries = lists.entries(cpu)
        assert len(entries) <= cap
        assert len(entries) == len(set(entries))


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.data())
def test_pagecache_manager_never_evicts_hot_before_cold(data):
    """Eviction candidates always come from the inactive tail before any
    active (twice-touched) page is offered."""
    from repro.vfs.pagecache import CachePage, PageCache, PageCacheManager
    from tests.fakes import FakeKernel
    from repro.core.objtypes import KernelObjectType

    kernel = FakeKernel()
    mgr = PageCacheManager(max_pages=1000)
    cache = PageCache(
        1,
        alloc_node=lambda: kernel.alloc_object(KernelObjectType.RADIX_NODE),
        free_node=kernel.free_object,
    )
    mgr.register(cache)
    n = data.draw(st.integers(min_value=4, max_value=40))
    pages = []
    for i in range(n):
        obj = kernel.alloc_object(KernelObjectType.PAGE_CACHE)
        page = CachePage(obj, 1, i)
        cache.insert(page)
        mgr.note_insert(page)
        pages.append(page)
    hot_indexes = set(
        data.draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1), unique=True, max_size=n // 2
            )
        )
    )
    for i in hot_indexes:
        mgr.note_access(pages[i])  # promotes to active
    want = data.draw(st.integers(min_value=1, max_value=n))
    victims = [p.index for _c, p in mgr.eviction_victims(want)]
    cold = [i for i in range(n) if i not in hot_indexes]
    # Every cold page must be offered before any hot page.
    if len(victims) <= len(cold):
        assert set(victims).issubset(set(cold))
    else:
        assert set(cold).issubset(set(victims))
