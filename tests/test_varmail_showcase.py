"""Varmail under the tiering policies: the churn-heaviest KLOC showcase.

Varmail's create/fsync/read/delete cycle is the purest version of the
file-lifecycle phases KLOCs exploits (§3.2: closed files are definitely
cold; deleted files free, never migrate). These are shape tests at small
scale; the Fig 4 benches cover the paper's own configuration.
"""

import pytest

from repro.core.config import two_tier_platform_spec
from repro.core.units import GB
from repro.kernel.kernel import Kernel
from repro.policies import TWO_TIER_POLICIES
from repro.workloads import WORKLOADS
from repro.workloads.base import WorkloadConfig

SCALE = 2048
OPS = 2500


def run_policy(policy_name):
    fast = 80 * GB // SCALE if policy_name == "all_fast" else 8 * GB // SCALE
    spec = two_tier_platform_spec(
        fast_capacity_bytes=fast, slow_capacity_bytes=80 * GB // SCALE
    )
    kernel = Kernel(spec, TWO_TIER_POLICIES[policy_name](), seed=13)
    kernel.start()
    cfg = WorkloadConfig(
        name="filebench", scale_factor=SCALE, num_threads=8,
        extra={"profile": "varmail"},
    )
    wl = WORKLOADS["filebench"](kernel, cfg)
    wl.setup()
    kernel.reset_reference_counters()
    result = wl.run(OPS)
    stats = {
        "tput": result.throughput_ops_per_sec,
        "fastref": kernel.fast_ref_fraction(),
        "knodes_deleted": (
            kernel.kloc_manager.knodes_deleted if kernel.kloc_manager else 0
        ),
    }
    wl.teardown()
    kernel.topology.check_invariants()
    return stats


@pytest.fixture(scope="module")
def results():
    return {name: run_policy(name) for name in ("all_slow", "naive", "klocs")}


class TestVarmailShapes:
    def test_klocs_beats_bounds_ordering(self, results):
        assert results["klocs"]["tput"] > results["all_slow"]["tput"]
        assert results["naive"]["tput"] > results["all_slow"]["tput"]

    def test_klocs_competitive_despite_tracking_overhead(self, results):
        """Varmail is fsync-bound (every delivery commits to the device
        in the foreground), so tiering policies converge — the meaningful
        check is that KLOC bookkeeping on this knode-churn-maximal
        workload costs almost nothing relative to Naive."""
        assert results["klocs"]["tput"] > results["naive"]["tput"] * 0.95

    def test_kloc_lifecycle_exercised(self, results):
        # Every expunged mail file deleted its knode.
        assert results["klocs"]["knodes_deleted"] > 100

    def test_placement_quality_ordering(self, results):
        assert results["klocs"]["fastref"] > results["naive"]["fastref"]
