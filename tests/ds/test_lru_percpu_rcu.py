"""Tests for the two-list LRU, per-CPU lists, and RCU model."""

import pytest

from repro.ds.lru import ActiveInactiveLRU
from repro.ds.percpu import PerCPUListSet
from repro.ds.rcu import RCUDomain


class TestActiveInactiveLRU:
    def test_new_items_enter_inactive(self):
        lru = ActiveInactiveLRU()
        lru.insert("a")
        assert not lru.is_active("a")
        assert lru.inactive_count == 1

    def test_second_touch_promotes(self):
        lru = ActiveInactiveLRU()
        lru.insert("a")
        lru.touch("a")
        assert lru.is_active("a")
        assert lru.promotions == 1

    def test_touch_unknown_inserts(self):
        lru = ActiveInactiveLRU()
        lru.touch("ghost")
        assert "ghost" in lru
        assert not lru.is_active("ghost")

    def test_balance_demotes_cold_active(self):
        lru = ActiveInactiveLRU(active_ratio=0.5)
        for i in range(10):
            lru.insert(i)
            lru.touch(i)  # promote everything
        # Active can be at most half of the total population.
        assert lru.active_count <= len(lru) * 0.5 + 1
        assert lru.demotions > 0

    def test_eviction_candidates_coldest_first(self):
        lru = ActiveInactiveLRU()
        for i in range(5):
            lru.insert(i)
        lru.touch(0)  # 0 becomes active → not an early candidate
        candidates = lru.eviction_candidates(2)
        assert candidates == [1, 2]

    def test_eviction_candidates_fall_back_to_active(self):
        lru = ActiveInactiveLRU()
        lru.insert("a")
        lru.touch("a")
        assert lru.eviction_candidates(1) == ["a"]

    def test_remove(self):
        lru = ActiveInactiveLRU()
        lru.insert("a")
        assert lru.remove("a") is True
        assert lru.remove("a") is False
        assert len(lru) == 0

    def test_reinsert_after_touch_is_noop_insert(self):
        lru = ActiveInactiveLRU()
        lru.insert("a")
        lru.insert("a")
        assert len(lru) == 1

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            ActiveInactiveLRU(active_ratio=1.0)


class TestPerCPUListSet:
    def test_miss_then_hit(self):
        lists = PerCPUListSet(num_cpus=2, max_per_cpu=4)
        assert lists.lookup(0, "k1") is False
        lists.record(0, "k1")
        assert lists.lookup(0, "k1") is True

    def test_cpu_isolation(self):
        lists = PerCPUListSet(num_cpus=2, max_per_cpu=4)
        lists.record(0, "k1")
        assert lists.lookup(1, "k1") is False

    def test_bounded_size_evicts_lru(self):
        lists = PerCPUListSet(num_cpus=1, max_per_cpu=2)
        lists.record(0, "a")
        lists.record(0, "b")
        evicted = lists.record(0, "c")
        assert evicted == "a"
        assert lists.entries(0) == ["b", "c"]

    def test_same_item_on_multiple_cpus(self):
        lists = PerCPUListSet(num_cpus=3, max_per_cpu=4)
        lists.record(0, "k")
        lists.record(2, "k")
        assert lists.find_cpus("k") == [0, 2]

    def test_invalidate_coherence(self):
        lists = PerCPUListSet(num_cpus=3, max_per_cpu=4)
        lists.record(0, "k")
        lists.record(1, "k")
        assert lists.invalidate("k") == 2
        assert lists.find_cpus("k") == []

    def test_invalidate_absent(self):
        lists = PerCPUListSet(num_cpus=1, max_per_cpu=1)
        assert lists.invalidate("nope") == 0
        assert lists.invalidations == 0

    def test_all_entries_dedup(self):
        lists = PerCPUListSet(num_cpus=2, max_per_cpu=4)
        lists.record(0, "k")
        lists.record(1, "k")
        lists.record(1, "j")
        assert sorted(lists.all_entries()) == ["j", "k"]

    def test_hit_rate(self):
        lists = PerCPUListSet(num_cpus=1, max_per_cpu=4)
        lists.lookup(0, "x")
        lists.record(0, "x")
        lists.lookup(0, "x")
        assert lists.hit_rate() == pytest.approx(0.5)

    def test_bad_cpu_rejected(self):
        lists = PerCPUListSet(num_cpus=2, max_per_cpu=2)
        with pytest.raises(IndexError):
            lists.lookup(2, "x")

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            PerCPUListSet(num_cpus=0, max_per_cpu=1)
        with pytest.raises(ValueError):
            PerCPUListSet(num_cpus=1, max_per_cpu=0)


class TestRCUDomain:
    def test_reads_cheaper_than_writes(self):
        rcu = RCUDomain("kmap")
        assert rcu.read() < rcu.write()

    def test_counters(self):
        rcu = RCUDomain("kmap")
        rcu.read()
        rcu.read()
        rcu.write()
        assert rcu.reads == 2
        assert rcu.writes == 1
        assert rcu.write_fraction() == pytest.approx(1 / 3)

    def test_write_fraction_empty(self):
        assert RCUDomain("x").write_fraction() == 0.0
