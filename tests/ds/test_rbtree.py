"""Tests for the red-black tree, including property-based invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ds.rbtree import RedBlackTree


class TestBasics:
    def test_empty(self):
        tree = RedBlackTree()
        assert len(tree) == 0
        assert 5 not in tree
        assert tree.get(5) is None
        assert tree.min_key() is None

    def test_insert_and_get(self):
        tree = RedBlackTree()
        assert tree.insert(3, "a") is True
        assert tree.get(3) == "a"
        assert 3 in tree

    def test_insert_updates_existing(self):
        tree = RedBlackTree()
        tree.insert(3, "a")
        assert tree.insert(3, "b") is False
        assert tree.get(3) == "b"
        assert len(tree) == 1

    def test_get_default(self):
        assert RedBlackTree().get(1, "dflt") == "dflt"

    def test_delete(self):
        tree = RedBlackTree()
        tree.insert(1, "x")
        assert tree.delete(1) is True
        assert 1 not in tree
        assert len(tree) == 0

    def test_delete_missing(self):
        assert RedBlackTree().delete(42) is False

    def test_inorder_iteration_sorted(self):
        tree = RedBlackTree()
        for key in [5, 1, 9, 3, 7]:
            tree.insert(key, key * 10)
        assert list(tree.keys()) == [1, 3, 5, 7, 9]
        assert list(tree.values()) == [10, 30, 50, 70, 90]

    def test_min_key(self):
        tree = RedBlackTree()
        for key in [5, 2, 8]:
            tree.insert(key, None)
        assert tree.min_key() == 2

    def test_pop_min(self):
        tree = RedBlackTree()
        for key in [5, 2, 8]:
            tree.insert(key, str(key))
        assert tree.pop_min() == (2, "2")
        assert len(tree) == 2
        assert RedBlackTree().pop_min() is None

    def test_search_hop_accounting(self):
        tree = RedBlackTree()
        for key in range(100):
            tree.insert(key, None)
        tree.searches = tree.search_hops = 0
        tree.get(99)
        assert tree.searches == 1
        # ~log2(100) ≈ 7; a valid RB tree is at most 2x the optimal height.
        assert 1 <= tree.search_hops <= 15
        assert tree.mean_search_hops() == tree.search_hops

    def test_large_sequential_insert_balanced(self):
        """Sequential inserts (worst case for a naive BST) stay logarithmic."""
        tree = RedBlackTree()
        for key in range(4096):
            tree.insert(key, None)
        tree.check_invariants()
        tree.searches = tree.search_hops = 0
        tree.get(4095)
        assert tree.search_hops <= 2 * 13  # 2*log2(4096) + slack


class TestInvariants:
    def test_invariants_after_mixed_ops(self):
        tree = RedBlackTree()
        for key in range(0, 200, 2):
            tree.insert(key, key)
        for key in range(0, 200, 6):
            tree.delete(key)
        tree.check_invariants()
        expected = sorted(set(range(0, 200, 2)) - set(range(0, 200, 6)))
        assert list(tree.keys()) == expected

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(min_value=-(10**6), max_value=10**6)))
    def test_property_insert_matches_sorted_set(self, keys):
        tree = RedBlackTree()
        for key in keys:
            tree.insert(key, key)
        tree.check_invariants()
        assert list(tree.keys()) == sorted(set(keys))

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=500), min_size=1),
        st.lists(st.integers(min_value=0, max_value=500)),
    )
    def test_property_delete_matches_set_difference(self, inserts, deletes):
        tree = RedBlackTree()
        for key in inserts:
            tree.insert(key, key)
        for key in deletes:
            tree.delete(key)
        tree.check_invariants()
        assert list(tree.keys()) == sorted(set(inserts) - set(deletes))

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(st.booleans(), st.integers(min_value=0, max_value=100)),
            max_size=300,
        )
    )
    def test_property_interleaved_ops(self, ops):
        """Arbitrary insert/delete interleavings preserve RB properties."""
        tree = RedBlackTree()
        shadow = {}
        for is_insert, key in ops:
            if is_insert:
                tree.insert(key, key)
                shadow[key] = key
            else:
                tree.delete(key)
                shadow.pop(key, None)
        tree.check_invariants()
        assert dict(tree.items()) == shadow
