"""Tests for the radix tree (page-cache index)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ds.radix import RADIX_SLOTS, RadixTree


class TestBasics:
    def test_empty_lookup(self):
        assert RadixTree().lookup(0) is None

    def test_insert_lookup_roundtrip(self):
        tree = RadixTree()
        assert tree.insert(5, "page5") is True
        assert tree.lookup(5) == "page5"
        assert len(tree) == 1

    def test_insert_overwrite(self):
        tree = RadixTree()
        tree.insert(5, "a")
        assert tree.insert(5, "b") is False
        assert tree.lookup(5) == "b"
        assert len(tree) == 1

    def test_large_index_grows_tree(self):
        tree = RadixTree()
        tree.insert(10**9, "far")
        assert tree.lookup(10**9) == "far"
        assert tree.lookup(0) is None

    def test_delete(self):
        tree = RadixTree()
        tree.insert(7, "x")
        assert tree.delete(7) == "x"
        assert tree.lookup(7) is None
        assert len(tree) == 0

    def test_delete_missing(self):
        tree = RadixTree()
        tree.insert(1, "x")
        assert tree.delete(99999) is None

    def test_none_value_rejected(self):
        with pytest.raises(ValueError):
            RadixTree().insert(1, None)

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            RadixTree().insert(-1, "x")

    def test_items_in_index_order(self):
        tree = RadixTree()
        for idx in [100, 3, 70, RADIX_SLOTS + 1]:
            tree.insert(idx, idx)
        assert [k for k, _ in tree.items()] == sorted([100, 3, 70, RADIX_SLOTS + 1])


class TestNodeChurn:
    """Interior nodes are slab objects; their churn must be observable."""

    def test_node_alloc_callback_fires(self):
        allocs = []
        tree = RadixTree(on_node_alloc=allocs.append)
        tree.insert(0, "x")
        assert len(allocs) >= 1

    def test_nodes_freed_when_empty(self):
        frees = []
        tree = RadixTree(on_node_free=frees.append)
        for idx in range(RADIX_SLOTS * 2):
            tree.insert(idx, idx)
        nodes_at_peak = tree.node_count
        for idx in range(RADIX_SLOTS * 2):
            tree.delete(idx)
        assert tree.node_count == 0
        assert len(frees) == nodes_at_peak + len(frees) - len(frees)  # all freed
        assert len(frees) > 0

    def test_sparse_inserts_allocate_proportional_nodes(self):
        tree = RadixTree()
        tree.insert(0, "a")
        nodes_dense = tree.node_count
        tree.insert(10**6, "b")
        assert tree.node_count > nodes_dense  # deep spine for the far index

    def test_lookup_hops_accounted(self):
        tree = RadixTree()
        tree.insert(10**6, "b")
        tree.lookups = tree.lookup_hops = 0
        tree.lookup(10**6)
        assert tree.lookups == 1
        assert tree.lookup_hops >= 2
        assert tree.mean_lookup_hops() == tree.lookup_hops


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.dictionaries(st.integers(min_value=0, max_value=10**7), st.integers()))
    def test_property_matches_dict(self, mapping):
        tree = RadixTree()
        for key, value in mapping.items():
            tree.insert(key, value + 1)  # avoid storing falsy None
        assert len(tree) == len(mapping)
        for key, value in mapping.items():
            assert tree.lookup(key) == value + 1
        assert dict(tree.items()) == {k: v + 1 for k, v in mapping.items()}

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=10**5), unique=True, min_size=1)
    )
    def test_property_delete_all_frees_all_nodes(self, keys):
        tree = RadixTree()
        for key in keys:
            tree.insert(key, key + 1)
        for key in keys:
            assert tree.delete(key) == key + 1
        assert len(tree) == 0
        assert tree.node_count == 0
