"""Small targeted tests for remaining coverage gaps across modules."""

import pytest

from repro.core.units import KB, PAGE_SIZE
from repro.metrics.chart import sparkline
from repro.vfs.filesystem import Filesystem
from repro.vfs.writeback import WritebackDaemon
from tests.fakes import FakeKernel


@pytest.fixture
def kernel():
    return FakeKernel(fast_bytes=8 * 1024 * 1024, slow_bytes=64 * 1024 * 1024)


class TestSparklineEdges:
    def test_flat_series(self):
        line = sparkline([5.0, 5.0, 5.0])
        assert len(line) == 3
        assert len(set(line)) == 1  # all the same tick

    def test_single_point(self):
        assert len(sparkline([1.0])) == 1


class TestWritebackBatching:
    def test_flush_respects_batch_cap(self, kernel):
        fs = Filesystem(kernel, page_cache_max_pages=4096)
        daemon = WritebackDaemon(fs, period_ns=10**12, batch_pages=5)
        fh = fs.create("/w")
        fs.write(fh, 0, 20 * PAGE_SIZE)
        flushed = daemon.flush(daemon.batch_pages)
        assert flushed == 5
        assert fs.dirty_page_count() == 15

    def test_flush_with_nothing_dirty(self, kernel):
        fs = Filesystem(kernel, page_cache_max_pages=64)
        daemon = WritebackDaemon(fs)
        assert daemon.flush(10) == 0


class TestDentryCachePressureInFS:
    def test_shrunk_dentries_free_their_objects(self, kernel):
        fs = Filesystem(
            kernel, page_cache_max_pages=4096, dentry_cache_entries=4
        )
        handles = [fs.create(f"/d{i}") for i in range(8)]
        # Four oldest dentries were shrunk and their slab objects freed.
        from repro.core.objtypes import KernelObjectType

        freed_dentries = [
            o for o in kernel.freed_objects
            if o.otype is KernelObjectType.DENTRY
        ]
        assert len(freed_dentries) == 4
        # The files themselves are still open and usable via handles.
        for fh in handles:
            fs.write(fh, 0, 1 * KB)


class TestBlockMQDispatchSpread:
    def test_per_cpu_attribution(self, kernel):
        from repro.vfs.blkmq import BlockMQ

        blk = BlockMQ(kernel)
        for cpu in range(kernel.num_cpus):
            blk.submit(PAGE_SIZE, write=False, sequential=True, cpu=cpu)
        assert all(n == 1 for n in blk.per_cpu_dispatch)


class TestFrameAccessAttribution:
    def test_reads_writes_counted(self, kernel):
        frames = kernel.alloc_app_pages(1)
        frame = frames[0]
        kernel.access_frame(frame, 100, write=False)
        kernel.access_frame(frame, 100, write=True)
        kernel.access_frame(frame, 100, write=True)
        assert frame.reads == 1
        assert frame.writes == 2
        assert frame.dirty


class TestRadixDeepSpine:
    def test_far_index_prune(self, kernel):
        from repro.ds.radix import RadixTree

        tree = RadixTree()
        tree.insert(2**30, "deep")
        deep_nodes = tree.node_count
        assert deep_nodes >= 5  # 6-bit fanout spine
        tree.delete(2**30)
        assert tree.node_count == 0
