"""Cross-checks between independent accounting systems.

The tracer, the allocator statistics, the topology counters, and the
metrics reports all observe the same events through different paths;
they must agree exactly.
"""

import pytest

from repro.core.trace import Tracer
from repro.experiments.runner import make_workload
from repro.metrics.footprint import footprint_snapshot
from repro.metrics.references import reference_report
from repro.platforms.twotier import build_two_tier_kernel

SCALE = 4096


@pytest.fixture(scope="module")
def traced_run():
    kernel, _ = build_two_tier_kernel("klocs", scale_factor=SCALE)
    tracer = Tracer(capacity=500_000)
    tracer.enable("alloc", "free", "knode")
    kernel.tracer = tracer
    wl = make_workload(kernel, "rocksdb", scale_factor=SCALE)
    wl.setup()
    wl.run(800)
    return kernel, tracer, wl


class TestTracerVsAllocators:
    def test_alloc_event_count_matches_allocator_stats(self, traced_run):
        kernel, tracer, _ = traced_run
        traced_allocs = sum(tracer.counts_by_name("alloc").values())
        stats_allocs = (
            kernel.slab.stats.allocs
            + kernel.kloc_alloc.stats.allocs
            + kernel.page_alloc.stats.allocs
        )
        assert traced_allocs == stats_allocs

    def test_free_event_count_matches_allocator_stats(self, traced_run):
        kernel, tracer, _ = traced_run
        traced_frees = sum(tracer.counts_by_name("free").values())
        stats_frees = (
            kernel.slab.stats.frees
            + kernel.kloc_alloc.stats.frees
            + kernel.page_alloc.stats.frees
        )
        assert traced_frees == stats_frees

    def test_knode_creates_match_manager(self, traced_run):
        kernel, tracer, _ = traced_run
        created = sum(
            1 for e in tracer.query(category="knode") if e.name == "create"
        )
        assert created == kernel.kloc_manager.knodes_created


class TestMetricsVsKernelCounters:
    def test_reference_report_totals(self, traced_run):
        kernel, _, _ = traced_run
        report = reference_report(kernel)
        assert report.total_refs == kernel.kernel_refs + kernel.app_refs
        assert sum(report.by_owner.values()) == report.total_refs

    def test_footprint_totals_match_topology(self, traced_run):
        kernel, _, _ = traced_run
        snap = footprint_snapshot(kernel.topology)
        assert snap.total_allocated == kernel.topology.total_allocated_pages()
        assert sum(snap.live.values()) == kernel.topology.live_pages()

    def test_tier_refs_sum_to_total(self, traced_run):
        kernel, _, _ = traced_run
        assert sum(kernel.refs_by_tier.values()) == (
            kernel.kernel_refs + kernel.app_refs
        )

    def test_migration_engine_matches_topology(self, traced_run):
        kernel, _, _ = traced_run
        topo_moves = sum(kernel.topology.migration_count.values())
        assert topo_moves == kernel.engine.total_moved
