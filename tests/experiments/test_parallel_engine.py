"""Parallel experiment engine + result cache: determinism and mechanics.

The engine's contract: a grid of runs dispatched to worker processes —
or replayed from the on-disk cache — produces results bit-for-bit
identical to the serial path, merged in grid order.
"""

import dataclasses
import json

import pytest

from repro.experiments.cache import (
    SIM_VERSION,
    ResultCache,
    RunSpec,
    optane_spec,
    run_from_payload,
    run_to_payload,
    two_tier_spec,
)
from repro.experiments.parallel import default_jobs, execute_spec, run_specs
from repro.experiments.runner import (
    run_optane_interference,
    run_two_tier,
)
from repro.kloc.registry import KlocRegistry

TINY = 400


def tiny_spec(policy="klocs", **kw):
    return two_tier_spec("redis", policy, ops=TINY, **kw)


class TestRunSpecKeys:
    def test_same_spec_same_key(self):
        assert tiny_spec().key() == tiny_spec().key()

    def test_any_field_perturbs_key(self):
        base = tiny_spec()
        for change in (
            {"ops": TINY + 1},
            {"seed": 7},
            {"bandwidth_ratio": 4},
            {"policy": "naive"},
            {"workload": "rocksdb"},
            {"registry": ()},
            {"readahead_enabled": False},
            {"kind": "optane"},
        ):
            assert dataclasses.replace(base, **change).key() != base.key()

    def test_registry_round_trip(self):
        registry = KlocRegistry.groups("page_cache", "journal")
        spec = tiny_spec(registry=registry)
        rebuilt = spec.build_registry()
        assert rebuilt.covered_types() == registry.covered_types()

    def test_default_registry_is_none(self):
        spec = tiny_spec()
        assert spec.registry is None
        assert spec.build_registry() is None

    def test_spec_resolves_ops_budget(self):
        spec = two_tier_spec("redis", "klocs")
        assert spec.ops > 0


class TestPayloadRoundTrip:
    def test_two_tier_run_round_trips_losslessly(self):
        run = run_two_tier("redis", "klocs", ops=TINY)
        payload = json.loads(json.dumps(run_to_payload(run)))
        back = run_from_payload(payload)
        assert back.throughput == run.throughput
        assert back.result.elapsed_ns == run.result.elapsed_ns
        assert back.result.setup_ns == run.result.setup_ns
        assert back.fast_ref_fraction == run.fast_ref_fraction
        assert back.migrations_down == run.migrations_down
        assert back.migrations_up == run.migrations_up
        assert back.slow_allocs == run.slow_allocs
        assert back.kloc_metadata_bytes == run.kloc_metadata_bytes
        assert back.footprint.allocated == run.footprint.allocated
        assert back.footprint.live == run.footprint.live
        assert back.references.by_owner == run.references.by_owner
        assert back.references.kernel_fraction() == run.references.kernel_fraction()


class TestResultCache:
    def test_store_then_load(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = tiny_spec()
        cache.store(spec, {"kind": "optane", "throughput": 1.5})
        assert cache.load(spec) == {"kind": "optane", "throughput": 1.5}

    def test_miss_on_unknown_spec(self, tmp_path):
        assert ResultCache(tmp_path).load(tiny_spec()) is None

    def test_disabled_cache_never_hits(self, tmp_path):
        cache = ResultCache(tmp_path, enabled=False)
        spec = tiny_spec()
        cache.store(spec, {"x": 1})
        assert cache.load(spec) is None
        assert not list(tmp_path.glob("*.json"))

    def test_no_cache_env_disables(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert ResultCache(tmp_path).enabled is False

    def test_cache_dir_env_controls_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
        assert ResultCache().root == tmp_path / "elsewhere"

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = tiny_spec()
        cache.store(spec, {"x": 1})
        path = next(tmp_path.glob("*.json"))
        path.write_text("{ not json")
        assert cache.load(spec) is None

    def test_version_bump_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = tiny_spec()
        cache.store(spec, {"x": 1})
        path = next(tmp_path.glob("*.json"))
        entry = json.loads(path.read_text())
        entry["sim_version"] = SIM_VERSION + "-stale"
        path.write_text(json.dumps(entry))
        assert cache.load(spec) is None

    def test_clear_removes_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store(tiny_spec(), {"x": 1})
        cache.store(tiny_spec("naive"), {"x": 2})
        assert cache.clear() == 2
        assert cache.load(tiny_spec()) is None


class TestDeterminism:
    """The ISSUE's regression gate: serial == parallel == cache hit."""

    def test_serial_parallel_and_cached_identical(self, tmp_path):
        spec = tiny_spec()
        serial = run_two_tier(
            "redis", "klocs", ops=TINY, run_seed=spec.seed
        )
        cache = ResultCache(tmp_path)
        [parallel] = run_specs([spec], jobs=2, cache=cache)
        [cached] = run_specs([spec], jobs=2, cache=cache)

        for run in (parallel, cached):
            assert run.throughput == serial.throughput
            assert run.result.elapsed_ns == serial.result.elapsed_ns
            assert run.migrations_down == serial.migrations_down
            assert run.migrations_up == serial.migrations_up
            assert run.fast_ref_fraction == serial.fast_ref_fraction
            assert run.references.by_owner == serial.references.by_owner

    def test_grid_order_preserved_under_parallelism(self, tmp_path):
        specs = [tiny_spec(p) for p in ("all_slow", "naive", "klocs")]
        results = run_specs(specs, jobs=3, cache=ResultCache(tmp_path))
        assert [r.policy for r in results] == ["all_slow", "naive", "klocs"]

    def test_duplicate_specs_computed_once(self, tmp_path):
        cache = ResultCache(tmp_path)
        a, b = run_specs([tiny_spec(), tiny_spec()], jobs=1, cache=cache)
        assert a.throughput == b.throughput
        assert len(list(tmp_path.glob("*.json"))) == 1

    def test_optane_spec_matches_direct_call(self, tmp_path):
        spec = optane_spec("redis", "klocs", ops=TINY)
        direct = run_optane_interference(
            "redis", "klocs", TINY, run_seed=spec.seed
        )
        [engine] = run_specs([spec], jobs=1, cache=ResultCache(tmp_path))
        assert engine == direct


class TestJobsControl:
    def test_repro_jobs_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert default_jobs() == 3

    def test_bad_repro_jobs_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ValueError):
            default_jobs()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            execute_spec(dataclasses.replace(tiny_spec(), kind="warp"))

    def test_sweep_log_lists_each_cell(self, tmp_path, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_SWEEP_QUIET", raising=False)
        # Pin the snapshot store to this test's tmp dir too: a snapshot
        # left by another test would turn "computed" into "restored".
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cache = ResultCache(tmp_path)
        run_specs([tiny_spec()], jobs=1, cache=cache)
        run_specs([tiny_spec()], jobs=1, cache=cache)
        err = capsys.readouterr().err
        assert "redis/klocs" in err
        assert "computed" in err
        assert "cached" in err
