"""Tests for the `python -m repro.experiments` CLI."""

import pytest

from repro.experiments.__main__ import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out and "table6" in out

    def test_unknown_experiment(self, capsys):
        assert main(["figure99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_runs_small_experiment(self, capsys):
        assert main(["fig5b", "--ops", "300"]) == 0
        out = capsys.readouterr().out
        assert "Fig 5b" in out
        assert "klocs" in out

    def test_save_flag(self, capsys, tmp_path):
        out_path = tmp_path / "r.json"
        assert main(["fig5b", "--ops", "300", "--save", str(out_path)]) == 0
        assert out_path.exists()
        from repro.analysis.results import load_results

        assert load_results(out_path)["experiment"] == "fig5b"

    def test_verdict_unavailable_is_graceful(self, capsys):
        assert main(["fig5b", "--ops", "300", "--verdict"]) == 0
        assert "no verdict checker" in capsys.readouterr().out
