"""Unit tests for the snapshot store, the cache size budget, and the
cache maintenance CLI."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments.__main__ import main as experiments_main
from repro.experiments.cache import ResultCache, two_tier_spec
from repro.kernel.kernel import Kernel
from repro.platforms.twotier import build_two_tier_kernel
from repro.snapshot import (
    SnapshotStore,
    cache_max_mb,
    enforce_size_limit,
    setup_key,
    usage,
)
from repro.snapshot.state import capture, restore


def warmed_pair():
    from repro.experiments.runner import make_workload

    kernel, _pol = build_two_tier_kernel("klocs", retired_limit=0)
    wl = make_workload(kernel, "rocksdb")
    wl.setup()
    return kernel, wl


KEY = setup_key(
    kind="two_tier",
    workload="rocksdb",
    policy="klocs",
    scale_factor=1024,
    seed=42,
)


class TestCaptureRestore:
    def test_round_trip_preserves_graph(self):
        kernel, wl = warmed_pair()
        clock_before = kernel.clock.now()
        k2, w2 = restore(capture(kernel, wl))
        assert isinstance(k2, Kernel)
        assert k2.clock.now() == clock_before
        # The restored workload must drive the restored kernel, not a
        # twin: pickling them as one graph preserves the shared edge.
        assert w2.kernel is k2
        assert k2._tiers is k2.topology.tiers

    def test_restore_rejects_garbage(self):
        assert restore(b"not a pickle") is None
        assert restore(b"") is None

    def test_restore_rejects_wrong_shape(self):
        import pickle  # simlint: ok[snapshot-path] testing the blessed path

        assert restore(pickle.dumps({"format": "1", "state": "scalar"})) is None
        assert restore(pickle.dumps(["no", "header"])) is None


class TestSetupKey:
    def test_digest_is_stable_and_filename_short(self):
        again = setup_key(
            kind="two_tier",
            workload="rocksdb",
            policy="klocs",
            scale_factor=1024,
            seed=42,
        )
        assert again == KEY
        assert KEY.filename() == f"rocksdb-klocs-{KEY.digest[:20]}.snap"

    @pytest.mark.parametrize(
        "override",
        [
            {"kind": "optane"},
            {"workload": "redis"},
            {"policy": "naive"},
            {"scale_factor": 2048},
            {"seed": 43},
            {"bandwidth_ratio": 4},
            {"fast_bytes_paper": 1 << 30},
            {"readahead_enabled": False},
            {"retired_limit": 100},
        ],
    )
    def test_every_setup_knob_moves_the_digest(self, override):
        base = dict(
            kind="two_tier",
            workload="rocksdb",
            policy="klocs",
            scale_factor=1024,
            seed=42,
        )
        base.update(override)
        assert setup_key(**base).digest != KEY.digest

    def test_ops_is_not_part_of_the_key(self):
        """The whole point: every ops point shares one warmed kernel, so
        the key function does not even accept measurement knobs."""
        import inspect

        params = inspect.signature(setup_key).parameters
        assert "ops" not in params
        assert "measure_setup" not in params


class TestSnapshotStore:
    def test_round_trip(self, tmp_path):
        store = SnapshotStore(tmp_path, enabled=True)
        kernel, wl = warmed_pair()
        store.save(KEY, kernel, wl)
        assert store.stores == 1
        loaded = store.load(KEY)
        assert loaded is not None
        k2, w2 = loaded
        assert store.hits == 1
        assert w2.kernel is k2

    def test_miss_on_empty_store(self, tmp_path):
        store = SnapshotStore(tmp_path, enabled=True)
        assert store.load(KEY) is None
        assert store.misses == 1

    def test_disabled_store_is_inert(self, tmp_path):
        store = SnapshotStore(tmp_path, enabled=False)
        kernel, wl = warmed_pair()
        store.save(KEY, kernel, wl)
        assert list(tmp_path.glob("*.snap")) == []
        assert store.load(KEY) is None

    def test_clear(self, tmp_path):
        store = SnapshotStore(tmp_path, enabled=True)
        kernel, wl = warmed_pair()
        store.save(KEY, kernel, wl)
        assert store.clear() == 1
        assert store.load(KEY) is None


def make_file(path: Path, size: int, mtime: float) -> Path:
    path.write_bytes(b"x" * size)
    os.utime(path, (mtime, mtime))
    return path


_MB = 1 << 20


class TestBudget:
    def test_cache_max_mb_parsing(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_MAX_MB", raising=False)
        assert cache_max_mb() is None
        monkeypatch.setenv("REPRO_CACHE_MAX_MB", "64")
        assert cache_max_mb() == 64
        monkeypatch.setenv("REPRO_CACHE_MAX_MB", "nope")
        with pytest.raises(ValueError):
            cache_max_mb()
        monkeypatch.setenv("REPRO_CACHE_MAX_MB", "-1")
        with pytest.raises(ValueError):
            cache_max_mb()

    def test_unbounded_touches_nothing(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_MAX_MB", raising=False)
        make_file(tmp_path / "a.json", 2 * _MB, 100)
        assert enforce_size_limit(tmp_path) == []
        assert (tmp_path / "a.json").exists()

    def test_evicts_oldest_first_across_subdirs(self, tmp_path):
        (tmp_path / "snapshots").mkdir()
        old = make_file(tmp_path / "snapshots" / "old.snap", _MB, 100)
        mid = make_file(tmp_path / "mid.json", _MB, 200)
        new = make_file(tmp_path / "new.json", _MB, 300)
        evicted = enforce_size_limit(tmp_path, max_mb=2)
        assert evicted == [old]
        assert not old.exists() and mid.exists() and new.exists()

    def test_mtime_tie_breaks_by_name(self, tmp_path):
        b = make_file(tmp_path / "b.json", _MB, 100)
        a = make_file(tmp_path / "a.json", _MB, 100)
        evicted = enforce_size_limit(tmp_path, max_mb=1)
        assert evicted == [a]
        assert b.exists()

    def test_ignores_foreign_files(self, tmp_path):
        keep = make_file(tmp_path / "notes.txt", 4 * _MB, 100)
        make_file(tmp_path / "a.json", _MB, 200)
        assert enforce_size_limit(tmp_path, max_mb=8) == []
        assert keep.exists()

    def test_usage_counts_cache_files_only(self, tmp_path):
        make_file(tmp_path / "a.json", 10, 100)
        make_file(tmp_path / "b.snap", 20, 100)
        make_file(tmp_path / "other.txt", 1000, 100)
        assert usage(tmp_path) == {"files": 2, "bytes": 30}

    def test_result_cache_store_enforces_budget(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_MAX_MB", "1")
        cache = ResultCache(tmp_path, enabled=True)
        filler = make_file(tmp_path / "snapshots.snap", 2 * _MB, 100)
        (tmp_path / "snapshots.snap").rename(tmp_path / "old.snap")
        spec = two_tier_spec("rocksdb", "klocs", ops=10)
        cache.store(spec, {"kind": "two_tier"})
        assert not (tmp_path / "old.snap").exists()
        assert cache.load(spec) is not None
        del filler


class TestMaintenanceCli:
    def run_cli(self, *args, cache_dir):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parents[2] / "src")
        env["REPRO_CACHE_DIR"] = str(cache_dir)
        return subprocess.run(
            [sys.executable, "-m", "repro.experiments", *args],
            capture_output=True,
            text=True,
            env=env,
        )

    def test_cache_info_reports_both_stores(self, tmp_path):
        (tmp_path / "snapshots").mkdir(parents=True)
        make_file(tmp_path / "res.json", 1024, 100)
        make_file(tmp_path / "snapshots" / "s.snap", 2048, 100)
        proc = self.run_cli("--cache-info", cache_dir=tmp_path)
        assert proc.returncode == 0, proc.stderr
        assert "results:       1 file(s)" in proc.stdout
        assert "snapshots:     1 file(s)" in proc.stdout
        assert "unbounded" in proc.stdout

    def test_cache_clear_empties_both_stores(self, tmp_path):
        (tmp_path / "snapshots").mkdir(parents=True)
        make_file(tmp_path / "res.json", 1024, 100)
        make_file(tmp_path / "snapshots" / "s.snap", 2048, 100)
        proc = self.run_cli("--cache-clear", cache_dir=tmp_path)
        assert proc.returncode == 0, proc.stderr
        assert "cleared: 1 result(s), 1 snapshot(s)" in proc.stdout
        assert list(tmp_path.rglob("*.json")) == []
        assert list(tmp_path.rglob("*.snap")) == []

    def test_missing_experiment_errors(self, tmp_path):
        proc = self.run_cli(cache_dir=tmp_path)
        assert proc.returncode == 2
        assert "experiment id is required" in proc.stderr

    def test_in_process_cache_info(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert experiments_main(["--cache-info"]) == 0
        out = capsys.readouterr().out
        assert "budget:    unbounded" in out
