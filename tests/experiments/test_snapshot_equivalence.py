"""Byte-identity of snapshot-restored runs vs. cold runs.

The snapshot store is a pure wall-clock optimization: restoring a
warmed kernel after ``setup()`` must put the simulation in *exactly*
the state a cold replay would have reached — same virtual clock, same
RNG stream positions, same allocator free lists, same KLOC counters.
These tests run every workload twice against an explicit store (cold →
snapshot, then restore → measure) and require sha256 equality over the
complete serialized payloads.

The result cache is disabled throughout (``REPRO_NO_CACHE=1``): the
second run must exercise the *restore* path, not be served a finished
payload from disk.

CI treats a *skip* of this module as a failure (the snap-bench job greps
pytest's skip report), so keep these tests unconditional.
"""

import hashlib
import json

import pytest

from repro.experiments.cache import run_to_payload
from repro.experiments.runner import run_optane_interference, run_two_tier
from repro.snapshot import SNAPSHOT_FORMAT, SnapshotStore, setup_key
from repro.workloads import WORKLOADS

TINY = 500


def sha(payload) -> str:
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def cold_vs_restored(monkeypatch, tmp_path, **kwargs):
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    store = SnapshotStore(tmp_path / "snapshots", enabled=True)
    cold = run_two_tier(snapshots=store, **kwargs)
    assert not cold.from_snapshot
    assert store.stores == 1
    restored = run_two_tier(snapshots=store, **kwargs)
    assert restored.from_snapshot
    assert store.hits == 1
    return run_to_payload(cold), run_to_payload(restored)


class TestTwoTierEquivalence:
    """Every workload, under the paper policy and one baseline."""

    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    def test_klocs(self, monkeypatch, tmp_path, workload):
        cold, restored = cold_vs_restored(
            monkeypatch, tmp_path, workload=workload, policy="klocs", ops=TINY
        )
        assert sha(cold) == sha(restored)

    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    def test_baseline(self, monkeypatch, tmp_path, workload):
        cold, restored = cold_vs_restored(
            monkeypatch, tmp_path, workload=workload, policy="naive", ops=TINY
        )
        assert sha(cold) == sha(restored)

    def test_measure_setup_run(self, monkeypatch, tmp_path):
        """measure_setup keeps the load phase's counters; the restored
        kernel carries them byte-for-byte."""
        cold, restored = cold_vs_restored(
            monkeypatch,
            tmp_path,
            workload="rocksdb",
            policy="klocs",
            ops=TINY,
            measure_setup=True,
        )
        assert sha(cold) == sha(restored)


class TestOptaneEquivalence:
    def test_interference_run(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        store = SnapshotStore(tmp_path / "snapshots", enabled=True)
        cold = run_optane_interference(
            "cassandra", "klocs", TINY, snapshots=store
        )
        assert store.stores == 1
        restored = run_optane_interference(
            "cassandra", "klocs", TINY, snapshots=store
        )
        assert store.hits == 1
        assert cold == restored


class TestRobustness:
    """Bad snapshots degrade to cold setup, never to a crash."""

    def _snap_path(self, store):
        (path,) = list(store.root.glob("*.snap"))
        return path

    def test_corrupted_snapshot_falls_back_cold(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        store = SnapshotStore(tmp_path / "snapshots", enabled=True)
        cold = run_two_tier("rocksdb", "klocs", ops=TINY, snapshots=store)
        self._snap_path(store).write_bytes(b"\x80\x04 this is not a snapshot")
        again = run_two_tier("rocksdb", "klocs", ops=TINY, snapshots=store)
        assert not again.from_snapshot
        assert store.misses >= 1
        assert sha(run_to_payload(cold)) == sha(run_to_payload(again))

    def test_truncated_snapshot_falls_back_cold(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        store = SnapshotStore(tmp_path / "snapshots", enabled=True)
        run_two_tier("rocksdb", "klocs", ops=TINY, snapshots=store)
        path = self._snap_path(store)
        path.write_bytes(path.read_bytes()[: 100])
        again = run_two_tier("rocksdb", "klocs", ops=TINY, snapshots=store)
        assert not again.from_snapshot

    def test_stale_format_is_a_miss(self, monkeypatch, tmp_path):
        """A format bump invalidates old blobs even at the same path."""
        import repro.snapshot.state as state

        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        store = SnapshotStore(tmp_path / "snapshots", enabled=True)
        run_two_tier("rocksdb", "klocs", ops=TINY, snapshots=store)
        monkeypatch.setattr(state, "SNAPSHOT_FORMAT", str(int(SNAPSHOT_FORMAT) + 1))
        again = run_two_tier("rocksdb", "klocs", ops=TINY, snapshots=store)
        assert not again.from_snapshot


class TestKnobs:
    def test_no_snapshot_env_disables_default_store(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_SNAPSHOT", "1")
        store = SnapshotStore()
        assert not store.enabled
        assert store.load(
            setup_key(
                kind="two_tier",
                workload="rocksdb",
                policy="klocs",
                scale_factor=1024,
                seed=42,
            )
        ) is None

    def test_no_cache_env_disables_default_store(self, monkeypatch):
        """Benches that must time real runs (REPRO_NO_CACHE=1) must not
        be warm-started silently."""
        monkeypatch.delenv("REPRO_NO_SNAPSHOT", raising=False)
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert not SnapshotStore().enabled

    def test_sanitize_mode_restores_and_audits(self, monkeypatch, tmp_path):
        """REPRO_SANITIZE=1 runs restore sanitizer-equipped snapshots
        (the mode is part of the setup key) and still pass the
        teardown audit."""
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        store = SnapshotStore(tmp_path / "snapshots", enabled=True)
        cold = run_two_tier("rocksdb", "klocs", ops=TINY, snapshots=store)
        restored = run_two_tier("rocksdb", "klocs", ops=TINY, snapshots=store)
        assert restored.from_snapshot
        assert sha(run_to_payload(cold)) == sha(run_to_payload(restored))

    def test_mode_flag_changes_setup_key(self, monkeypatch, tmp_path):
        """A snapshot taken without the sanitizer must not be served to
        a sanitized run — the mode fingerprint splits the keys."""
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        plain = setup_key(
            kind="two_tier",
            workload="rocksdb",
            policy="klocs",
            scale_factor=1024,
            seed=42,
        )
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        sanitized = setup_key(
            kind="two_tier",
            workload="rocksdb",
            policy="klocs",
            scale_factor=1024,
            seed=42,
        )
        assert plain.digest != sanitized.digest
