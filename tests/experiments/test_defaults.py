"""Tests for experiment defaults and environment switches."""

import pytest

from repro.experiments import defaults


class TestOpsFor:
    def test_known_workloads(self):
        for name in ("rocksdb", "redis", "filebench", "cassandra", "spark"):
            assert defaults.ops_for(name) >= 500

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            defaults.ops_for("postgres")

    def test_quick_mode_shrinks(self, monkeypatch):
        monkeypatch.setenv("REPRO_QUICK", "1")
        assert defaults.ops_for("rocksdb") == max(
            500, int(defaults.DEFAULT_OPS["rocksdb"] * 0.25)
        )

    def test_full_mode_grows(self, monkeypatch):
        monkeypatch.delenv("REPRO_QUICK", raising=False)
        monkeypatch.setenv("REPRO_FULL", "1")
        assert defaults.ops_for("rocksdb") == defaults.DEFAULT_OPS["rocksdb"] * 2

    def test_seed_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SEED", "7")
        assert defaults.seed() == 7

    def test_eval_workloads_exclude_spark(self):
        """§6.1: the paper's evaluation drops Spark (firewall issues);
        we mirror that — Spark appears in Fig 2 only."""
        assert "spark" not in defaults.EVAL_WORKLOADS
        assert set(defaults.SWEEP_WORKLOADS) <= set(defaults.EVAL_WORKLOADS)
