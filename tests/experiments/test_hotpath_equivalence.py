"""Bit-identity of the O(1) hot-path accounting vs. the legacy paths.

The hot-path work (flattened charge path, incremental KLOC metadata,
inlined per-CPU lookups, batched region touches, single-page allocation
shortcut) is a pure host-side optimization: every simulated cost, clock
reading, counter, and metadata figure must be *exactly* what the layered
legacy implementations produce. These tests run full measured experiments
twice — hot, then with ``REPRO_NO_HOTPATH=1`` — and require the complete
result payloads to match bit for bit.

Both flags are read at kernel/structure construction time, so toggling
the env var between runs inside one process switches implementations
(each ``run_*`` builds a fresh kernel).

cassandra is the probe workload: it mixes filesystem activity (SSTable
reads/writes through the page cache, journal commits, writeback) with
network traffic (client sockets), so every charge path — object refs,
frame refs, batched touches, alloc/free churn — runs at once.

CI treats a *skip* of this module as a failure (the op-bench job greps
pytest's skip report), so keep these tests unconditional.
"""

import pytest

from repro.experiments.cache import run_to_payload
from repro.experiments.runner import run_optane_interference, run_two_tier

TINY = 600


def _payload_both_modes(monkeypatch, **kwargs):
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    monkeypatch.delenv("REPRO_NO_HOTPATH", raising=False)
    hot = run_to_payload(run_two_tier(**kwargs))
    monkeypatch.setenv("REPRO_NO_HOTPATH", "1")
    legacy = run_to_payload(run_two_tier(**kwargs))
    return hot, legacy


class TestTwoTierEquivalence:
    def test_klocs_mixed_workload(self, monkeypatch):
        hot, legacy = _payload_both_modes(
            monkeypatch, workload="cassandra", policy="klocs", ops=TINY
        )
        assert hot == legacy

    def test_nimblepp_mixed_workload(self, monkeypatch):
        hot, legacy = _payload_both_modes(
            monkeypatch, workload="cassandra", policy="nimble++", ops=TINY
        )
        assert hot == legacy

    def test_nimble_app_only_scan(self, monkeypatch):
        hot, legacy = _payload_both_modes(
            monkeypatch, workload="cassandra", policy="nimble", ops=TINY
        )
        assert hot == legacy


class TestOptaneEquivalence:
    @pytest.mark.parametrize("policy", ["autonuma", "all_local"])
    def test_interference_run(self, monkeypatch, policy):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        monkeypatch.delenv("REPRO_NO_HOTPATH", raising=False)
        hot = run_optane_interference("cassandra", policy, TINY)
        monkeypatch.setenv("REPRO_NO_HOTPATH", "1")
        legacy = run_optane_interference("cassandra", policy, TINY)
        assert hot == legacy
