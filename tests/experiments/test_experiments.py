"""Tests for the experiment harness, run at tiny op budgets.

These validate the machinery (runners produce well-formed reports and
plausible invariants); the paper-shape assertions live in benchmarks/.
"""

import pytest

from repro.experiments import EXPERIMENTS
from repro.experiments.fig2 import run_fig2a_footprint
from repro.experiments.fig4 import run_figure4
from repro.experiments.fig5 import run_fig5b_sources, run_fig5c_objtypes
from repro.experiments.fig6 import run_figure6
from repro.experiments.percpu_ablation import run_percpu_ablation
from repro.experiments.runner import run_two_tier
from repro.experiments.table6 import run_table6_overhead

TINY = 400


class TestRegistry:
    def test_all_figures_and_tables_registered(self):
        assert set(EXPERIMENTS) == {
            "fig2a", "fig2b", "fig2c", "fig2d", "fig4", "fig5a", "fig5b",
            "fig5c", "fig6", "table6", "percpu", "prefetch",
        }

    def test_entries_have_runners(self):
        for exp in EXPERIMENTS.values():
            assert callable(exp.runner)
            assert exp.description


class TestRunner:
    def test_run_two_tier_produces_full_record(self):
        run = run_two_tier("rocksdb", "klocs", ops=TINY)
        assert run.throughput > 0
        assert 0.0 <= run.fast_ref_fraction <= 1.0
        assert run.footprint.total_allocated > 0
        assert run.references.total_refs > 0
        assert run.kloc_metadata_bytes > 0

    def test_non_kloc_policy_has_no_metadata(self):
        run = run_two_tier("rocksdb", "naive", ops=TINY)
        assert run.kloc_metadata_bytes == 0

    def test_deterministic_given_seed(self):
        a = run_two_tier("redis", "nimble", ops=TINY, run_seed=5)
        b = run_two_tier("redis", "nimble", ops=TINY, run_seed=5)
        assert a.throughput == b.throughput


class TestFig2:
    def test_footprint_report(self):
        report = run_fig2a_footprint(workloads=("rocksdb",))
        row = report.rows[0]
        assert 0.0 < row.footprint.kernel_fraction() < 1.0
        assert row.lifetimes.slab_mean_ns is not None
        assert "Fig 2a" in report.format_report()


class TestFig4:
    def test_speedup_table(self):
        report = run_figure4(
            workloads=("rocksdb",), policies=("all_slow", "naive"), ops=TINY
        )
        assert report.speedup("rocksdb", "all_slow") == pytest.approx(1.0)
        assert report.speedup("rocksdb", "naive") > 0
        assert "Fig 4" in report.format_report()


class TestFig5:
    def test_fig5b_rows(self):
        report = run_fig5b_sources(policies=("naive", "klocs"), ops=TINY)
        assert {r.policy for r in report.rows} == {"naive", "klocs"}
        assert "Fig 5b" in report.format_report()

    def test_fig5c_normalized_to_app_only(self):
        report = run_fig5c_objtypes(workloads=("rocksdb",), ops=TINY)
        assert report.speedups["rocksdb"]["none"] == pytest.approx(1.0)
        assert "Fig 5c" in report.format_report()


class TestFig6:
    def test_single_cell(self):
        report = run_figure6(
            workloads=("rocksdb",),
            policies=("klocs",),
            capacities_gb=(8,),
            ratios=(8,),
            ops=TINY,
        )
        cell = report.cell(8, 8, "klocs")
        assert cell.lo <= cell.avg <= cell.hi
        assert "Fig 6" in report.format_report()

    def test_unknown_cell_rejected(self):
        report = run_figure6(
            workloads=("rocksdb",), policies=("klocs",),
            capacities_gb=(8,), ratios=(8,), ops=TINY,
        )
        with pytest.raises(KeyError):
            report.cell(4, 2, "nimble")


class TestTable6:
    def test_overhead_under_one_percent(self):
        report = run_table6_overhead(workloads=("rocksdb",), ops=TINY)
        assert report.metadata_bytes["rocksdb"] > 0
        assert report.fraction_of_memory("rocksdb") < 0.05
        assert "Table 6" in report.format_report()


class TestPerCPU:
    def test_fast_path_reduces_rbtree_accesses(self):
        report = run_percpu_ablation(ops=TINY)
        assert report.kmap_accesses_with <= report.kmap_accesses_without
        assert 0.0 <= report.fast_path_reduction <= 1.0
        assert "54%" in report.format_report()
