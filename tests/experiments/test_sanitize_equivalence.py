"""Bit-identity of sanitized runs vs. plain runs.

``REPRO_SANITIZE=1`` is advertised as *behavior-preserving*: the
sanitizer's checks read state — free-site ledgers, counter
recomputations, teardown audits — and never advance the clock or mutate
a counter the payload is built from. These tests enforce that contract
the same way the hot-path equivalence suite does: run a full measured
experiment twice, plain then sanitized, and require the complete result
payloads to match bit for bit. Any check that perturbs the simulation
(an extra clock tick, a counter bumped by the audit itself) fails here
immediately.

The flag is read at kernel construction time, so toggling the env var
between runs inside one process switches modes (each ``run_*`` builds a
fresh kernel).

cassandra/klocs is the probe pair: it exercises every sanitizer hook at
once — slab and kloc object free paths, frame frees from page-cache
eviction and writeback, vmalloc areas, and the migration daemon's
scan-boundary counter cross-checks.

CI treats a *skip* of this module as a failure (the sanitize job greps
pytest's skip report), so keep these tests unconditional.
"""

import pytest

from repro.experiments.cache import run_to_payload
from repro.experiments.runner import run_optane_interference, run_two_tier

TINY = 600


def _payload_both_modes(monkeypatch, **kwargs):
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    plain = run_to_payload(run_two_tier(**kwargs))
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    sanitized = run_to_payload(run_two_tier(**kwargs))
    return plain, sanitized


class TestTwoTierSanitizeEquivalence:
    def test_klocs_mixed_workload(self, monkeypatch):
        plain, sanitized = _payload_both_modes(
            monkeypatch, workload="cassandra", policy="klocs", ops=TINY
        )
        assert sanitized == plain

    def test_nimblepp_mixed_workload(self, monkeypatch):
        plain, sanitized = _payload_both_modes(
            monkeypatch, workload="cassandra", policy="nimble++", ops=TINY
        )
        assert sanitized == plain


class TestOptaneSanitizeEquivalence:
    @pytest.mark.parametrize("policy", ["autonuma", "all_local"])
    def test_interference_run(self, monkeypatch, policy):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        plain = run_optane_interference("cassandra", policy, TINY)
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        sanitized = run_optane_interference("cassandra", policy, TINY)
        assert sanitized == plain
