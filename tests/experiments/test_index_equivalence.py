"""Bit-identity of indexed scanners vs. the brute-force frame walk.

The resident-frame indexes (PR-2) are a pure host-side optimization:
every policy decision, migration, and simulated cost must be *exactly*
what the legacy O(all frames) walks produced. These tests run full
measured experiments twice — indexed, then with ``REPRO_NO_FRAME_INDEX=1``
— and require the complete result payloads to match bit for bit.

cassandra is the probe workload: it mixes filesystem activity (SSTable
reads/writes through the page cache) with network traffic (client
sockets), so slab, page-cache, and app frames all churn through the
scanners at once.

CI treats a *skip* of this module as a failure (the scan-bench job greps
pytest's skip report), so keep these tests unconditional.
"""

import pytest

from repro.experiments.cache import run_to_payload
from repro.experiments.runner import run_optane_interference, run_two_tier

TINY = 600


def _payload_both_modes(monkeypatch, **kwargs):
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    monkeypatch.delenv("REPRO_NO_FRAME_INDEX", raising=False)
    indexed = run_to_payload(run_two_tier(**kwargs))
    monkeypatch.setenv("REPRO_NO_FRAME_INDEX", "1")
    brute = run_to_payload(run_two_tier(**kwargs))
    return indexed, brute


class TestTwoTierEquivalence:
    def test_klocs_mixed_workload(self, monkeypatch):
        indexed, brute = _payload_both_modes(
            monkeypatch, workload="cassandra", policy="klocs", ops=TINY
        )
        assert indexed == brute

    def test_nimblepp_mixed_workload(self, monkeypatch):
        indexed, brute = _payload_both_modes(
            monkeypatch, workload="cassandra", policy="nimble++", ops=TINY
        )
        assert indexed == brute

    def test_nimble_app_only_scan(self, monkeypatch):
        indexed, brute = _payload_both_modes(
            monkeypatch, workload="cassandra", policy="nimble", ops=TINY
        )
        assert indexed == brute


class TestOptaneEquivalence:
    @pytest.mark.parametrize("policy", ["autonuma", "all_local"])
    def test_interference_run(self, monkeypatch, policy):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        monkeypatch.delenv("REPRO_NO_FRAME_INDEX", raising=False)
        indexed = run_optane_interference("cassandra", policy, TINY)
        monkeypatch.setenv("REPRO_NO_FRAME_INDEX", "1")
        brute = run_optane_interference("cassandra", policy, TINY)
        assert indexed == brute
