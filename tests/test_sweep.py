"""Tests for the generic parameter-sweep utility."""

import csv

import pytest

from repro.analysis.sweep import SweepResult, SweepRow, run_sweep

TINY = 300


@pytest.fixture(scope="module")
def sweep():
    return run_sweep(
        workloads=["rocksdb"],
        policies=["all_slow", "klocs"],
        grid={"bandwidth_ratio": [2, 8]},
        ops=TINY,
    )


class TestRunSweep:
    def test_cartesian_row_count(self, sweep):
        assert len(sweep.rows) == 1 * 2 * 2

    def test_params_recorded(self, sweep):
        ratios = {r.params["bandwidth_ratio"] for r in sweep.rows}
        assert ratios == {2, 8}

    def test_invalid_grid_key(self):
        with pytest.raises(ValueError):
            run_sweep(["rocksdb"], ["klocs"], {"magic": [1]}, ops=TINY)

    def test_filter_and_best(self, sweep):
        klocs_rows = sweep.filter(policy="klocs")
        assert len(klocs_rows) == 2
        assert sweep.best().throughput == max(r.throughput for r in sweep.rows)

    def test_speedup_vs_baseline(self, sweep):
        for row in sweep.filter(policy="klocs"):
            ratio = sweep.speedup(row, "all_slow")
            assert ratio > 0.8  # klocs never collapses below the floor

    def test_speedup_missing_baseline(self, sweep):
        row = sweep.rows[0]
        with pytest.raises(ValueError):
            sweep.speedup(row, "naive")

    def test_bandwidth_effect_visible(self, sweep):
        """The wider differential hurts the all-slow baseline more."""
        slow = {r.params["bandwidth_ratio"]: r.throughput
                for r in sweep.filter(policy="all_slow")}
        assert slow[8] < slow[2]

    def test_csv_roundtrip(self, sweep, tmp_path):
        path = sweep.to_csv(tmp_path / "out" / "sweep.csv")
        with path.open() as fh:
            records = list(csv.DictReader(fh))
        assert len(records) == len(sweep.rows)
        assert {"workload", "policy", "throughput", "bandwidth_ratio"} <= set(
            records[0]
        )

    def test_format_report(self, sweep):
        text = sweep.format_report()
        assert "parameter sweep" in text
        assert "klocs" in text


class TestEmptySweep:
    def test_empty_result_guards(self):
        empty = SweepResult()
        assert empty.format_report() == "(empty sweep)"
        with pytest.raises(ValueError):
            empty.best()
        with pytest.raises(ValueError):
            empty.to_csv("/tmp/nope.csv")
