"""Whole-system integration tests: the public API, end to end.

Small versions of what the benchmarks do at scale, so `pytest tests/`
alone demonstrates every moving part working together.
"""

import pytest

from repro.core.units import KB
from repro.experiments.runner import make_workload, run_two_tier
from repro.kloc.api import KlocAPI
from repro.platforms.optane import build_optane_kernel
from repro.platforms.twotier import build_two_tier_kernel
from repro.workloads.interference import StreamingInterferer

SCALE = 4096  # small enough for test time, big enough for dynamics


class TestTwoTierEndToEnd:
    def test_klocs_beats_all_slow_on_rocksdb(self):
        klocs = run_two_tier("rocksdb", "klocs", ops=1500, scale_factor=SCALE)
        slow = run_two_tier("rocksdb", "all_slow", ops=1500, scale_factor=SCALE)
        assert klocs.throughput > slow.throughput

    def test_all_fast_is_the_ceiling(self):
        fast = run_two_tier("redis", "all_fast", ops=1000, scale_factor=SCALE)
        klocs = run_two_tier("redis", "klocs", ops=1000, scale_factor=SCALE)
        assert fast.throughput >= klocs.throughput * 0.95

    def test_klocs_run_produces_kloc_activity(self):
        kernel, _ = build_two_tier_kernel("klocs", scale_factor=SCALE)
        wl = make_workload(kernel, "rocksdb", scale_factor=SCALE)
        wl.setup()
        wl.run(1500)
        manager = kernel.kloc_manager
        assert manager.knodes_created > 10
        assert manager.percpu.fast_hits > 0
        assert kernel.kloc_daemon.runs > 0
        # Downgrades dominate migrations (§4.4's 88%).
        daemon = kernel.kloc_daemon
        if daemon.downgraded_pages + daemon.upgraded_pages > 50:
            assert daemon.migration_mix()["downgrade"] > 0.5
        wl.teardown()
        kernel.topology.check_invariants()


class TestTable2APIEndToEnd:
    def test_full_api_surface(self):
        kernel, _ = build_two_tier_kernel("klocs", scale_factor=SCALE)
        api = KlocAPI(kernel.kloc_manager)
        assert api.sys_enable_kloc("demo")
        api.sys_kloc_memsize("fast", 0.4)

        fh = kernel.fs.create("/api-demo")
        kernel.fs.write(fh, 0, 32 * KB)
        knode = kernel.kloc_manager.knode_for_inode(fh.inode)
        assert knode is not None
        assert sum(1 for _ in api.itr_knode_cache(knode)) >= 8
        assert sum(1 for _ in api.itr_knode_slab(knode)) >= 1
        assert api.find_cpu(knode) is not None
        assert knode in api.get_lru_knodes(limit=100)
        kernel.fs.close(fh)
        kernel.fs.unlink("/api-demo")
        assert kernel.kloc_manager.kmap.lookup(knode.knode_id) is None


class TestOptaneEndToEnd:
    def test_interference_and_recovery(self):
        kernel, policy = build_optane_kernel("klocs", scale_factor=SCALE)
        wl = make_workload(kernel, "redis", scale_factor=SCALE)
        wl.setup()
        wl.run(400)
        node0 = kernel.topology.tier("node0")
        assert node0.used_pages > 0  # everything starts local

        interferer = StreamingInterferer(kernel, "node0", streams=2)
        interferer.start()
        assert node0.contention_streams == 2
        kernel.set_task_node(1)
        wl.run(1200)
        # KLOCs moved kernel objects toward the new home socket.
        assert policy.migrated_kernel > 0
        interferer.stop()
        assert node0.contention_streams == 0
        wl.teardown()
        kernel.topology.check_invariants()

    def test_klocs_beats_stranded_baseline(self):
        def throughput(policy_name):
            kernel, _ = build_optane_kernel(policy_name, scale_factor=SCALE)
            wl = make_workload(kernel, "redis", scale_factor=SCALE)
            wl.setup()
            wl.run(300)
            interferer = StreamingInterferer(kernel, "node0", streams=3)
            interferer.start()
            kernel.set_task_node(1)
            result = wl.run(900)
            interferer.stop()
            wl.teardown()
            return result.throughput_ops_per_sec

        assert throughput("klocs") > throughput("all_remote")


class TestCrossPolicyConsistency:
    @pytest.mark.parametrize("policy", ["naive", "nimble", "nimble++", "klocs"])
    def test_no_leaks_under_any_policy(self, policy):
        kernel, _ = build_two_tier_kernel(policy, scale_factor=SCALE)
        wl = make_workload(kernel, "redis", scale_factor=SCALE)
        wl.setup()
        wl.run(400)
        wl.teardown()
        kernel.net.driver.drain_ring()
        kernel.topology.check_invariants()
        # Only the filesystem's page cache and journal should remain.
        from repro.mem.frame import PageOwner

        assert kernel.topology.live_pages_by_owner(PageOwner.APP) == 0
        assert kernel.topology.live_pages_by_owner(PageOwner.SOCKBUF) == 0
