"""Test-suite defaults for the parallel experiment engine.

Experiments now route through ``repro.experiments.parallel``, which
caches results on disk and logs one stderr line per grid cell. Tests
must not litter the working tree with ``.repro_cache/`` or noise the
pytest output, so the cache is redirected to a session-scoped temp
directory (still exercising the cache code paths) and the sweep log is
silenced. Individual tests override these via monkeypatch when they
assert on cache placement or log output.
"""

import pytest


@pytest.fixture(autouse=True)
def _engine_test_defaults(tmp_path_factory, monkeypatch):
    monkeypatch.setenv(
        "REPRO_CACHE_DIR",
        str(tmp_path_factory.getbasetemp() / "repro_cache"),
    )
    monkeypatch.setenv("REPRO_SWEEP_QUIET", "1")
