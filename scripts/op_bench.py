#!/usr/bin/env python3
"""Operation-rate benchmark: O(1) hot-path accounting vs. the legacy paths.

Where ``scan_bench.py`` isolates the periodic scanners, this bench times
the *operation loop* itself — the per-reference charge path, the per-CPU
KLOC lookups, incremental metadata accounting, and the batched region
touches — on the fig5 cassandra/klocs cell, the workload whose per-op
kernel-object churn is heaviest.

Modes are isolated in **subprocesses**: the hot-path flags are read at
import/construction time (``repro.core.hotpath.hotpath_enabled``), so a
same-process env toggle would not switch implementations. The baseline
subprocess runs with ``REPRO_NO_HOTPATH=1`` (layered charge paths, full
metadata recomputes, per-frame clock advances); the hot subprocess runs
with the flag clear. Reps are interleaved hot/legacy to decorrelate
machine noise, and the reported speedup is min-over-min (the most
repeatable wall-clock estimator on noisy hosts).

Each worker also emits the run's result payload (the exact dict the
experiment cache hashes); the bench refuses to report a speedup unless
the hot and legacy payloads are byte-identical.

Writes ``BENCH_ops.json``.

Usage::

    PYTHONPATH=src python scripts/op_bench.py            # full bench
    PYTHONPATH=src python scripts/op_bench.py --quick    # CI-sized
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The measured cell: fig5's heaviest per-op workload under the paper's
#: policy. Ops default to the real fig5 cell size (see experiments
#: defaults: cassandra = 20k ops).
WORKLOAD = "cassandra"
POLICY = "klocs"
FULL_OPS = 20_000
QUICK_OPS = 2_000
FULL_REPS = 3
QUICK_REPS = 2


def _worker(ops: int) -> int:
    """One timed run in the current process's mode; prints a JSON blob."""
    os.environ["REPRO_NO_CACHE"] = "1"  # time a real run, not a cache hit
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.experiments.cache import run_to_payload
    from repro.experiments.runner import run_two_tier

    t0 = time.perf_counter()
    run = run_two_tier(workload=WORKLOAD, policy=POLICY, ops=ops)
    elapsed = time.perf_counter() - t0
    print(
        json.dumps(
            {"elapsed_s": elapsed, "payload": run_to_payload(run)},
            sort_keys=True,
        )
    )
    return 0


def _spawn(ops: int, *, legacy: bool) -> Dict[str, object]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    if legacy:
        env["REPRO_NO_HOTPATH"] = "1"
    else:
        env.pop("REPRO_NO_HOTPATH", None)
    proc = subprocess.run(
        [sys.executable, str(Path(__file__).resolve()), "--_worker", str(ops)],
        env=env,
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"worker ({'legacy' if legacy else 'hot'}) failed:\n{proc.stderr}"
        )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "BENCH_ops.json",
        help="where to write the results JSON",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized run (fewer ops and reps)",
    )
    parser.add_argument("--ops", type=int, default=None, help="override op count")
    parser.add_argument("--reps", type=int, default=None, help="override rep count")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=0.0,
        help="exit non-zero if the speedup falls below this "
        "(0 = report only; wall-clock gates are flaky on shared CI)",
    )
    parser.add_argument("--_worker", type=int, default=None, help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args._worker is not None:
        return _worker(args._worker)

    ops = args.ops if args.ops is not None else (QUICK_OPS if args.quick else FULL_OPS)
    reps = args.reps if args.reps is not None else (
        QUICK_REPS if args.quick else FULL_REPS
    )

    # Warm the page cache for the interpreter/bytecode (cheap tiny run per
    # mode) so first-rep bias doesn't flatter either side.
    for legacy in (False, True):
        _spawn(min(500, ops), legacy=legacy)

    hot_times: List[float] = []
    legacy_times: List[float] = []
    hot_payload: Optional[dict] = None
    legacy_payload: Optional[dict] = None
    for _rep in range(reps):
        hot = _spawn(ops, legacy=False)
        leg = _spawn(ops, legacy=True)
        hot_times.append(float(hot["elapsed_s"]))
        legacy_times.append(float(leg["elapsed_s"]))
        hot_payload = hot["payload"]
        legacy_payload = leg["payload"]

    if hot_payload != legacy_payload:
        print("PAYLOAD MISMATCH — modes diverged; timings are invalid")
        for key in sorted(set(hot_payload) | set(legacy_payload)):
            h, l = hot_payload.get(key), legacy_payload.get(key)
            if h != l:
                print(f"  field {key!r}: hot={h!r} legacy={l!r}")
        return 2

    best_hot = min(hot_times)
    best_legacy = min(legacy_times)
    speedup = best_legacy / best_hot if best_hot > 0 else float("inf")

    report = {
        "bench": "op_bench",
        "baseline": "REPRO_NO_HOTPATH=1 (layered charge paths, recomputed "
        "metadata, per-frame clock advances)",
        "cell": {"workload": WORKLOAD, "policy": POLICY, "ops": ops},
        "quick": args.quick,
        "reps": reps,
        "hot_s": [round(t, 4) for t in hot_times],
        "legacy_s": [round(t, 4) for t in legacy_times],
        "best_hot_s": round(best_hot, 4),
        "best_legacy_s": round(best_legacy, 4),
        "speedup": round(speedup, 2),
        "equivalent": True,
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "system": platform.system(),
        },
    }
    args.out.write_text(json.dumps(report, indent=1) + "\n", encoding="utf-8")

    print(f"cell: {WORKLOAD}/{POLICY} ops={ops} reps={reps}")
    print(f"hot    : {['%.3f' % t for t in hot_times]}  best {best_hot:.3f}s")
    print(f"legacy : {['%.3f' % t for t in legacy_times]}  best {best_legacy:.3f}s")
    print(f"speedup: {speedup:.2f}x (payloads identical)  -> {args.out}")

    if args.min_speedup and speedup < args.min_speedup:
        print(f"speedup {speedup:.2f}x below required {args.min_speedup}x")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
