"""Developer tuning harness: compare policies on one workload quickly.

Prints, per policy, the throughput, host time, fast-tier occupancy and
reference fraction, and migration counts — the view used to calibrate
the workload models against the paper's Figure 4 shape.

Usage: python scripts/tune.py [workload] [ops] [scale]
"""

import sys
import time

from repro.core.config import two_tier_platform_spec
from repro.core.units import GB
from repro.kernel.kernel import Kernel
from repro.policies import TWO_TIER_POLICIES
from repro.workloads import WORKLOADS


def main() -> None:
    wname = sys.argv[1] if len(sys.argv) > 1 else "rocksdb"
    ops = int(sys.argv[2]) if len(sys.argv) > 2 else 20000
    scale = int(sys.argv[3]) if len(sys.argv) > 3 else 1024
    fast_bytes = 8 * GB // scale
    slow_bytes = 80 * GB // scale

    results = {}
    for pname, policy_cls in TWO_TIER_POLICIES.items():
        fast = slow_bytes if pname == "all_fast" else fast_bytes
        spec = two_tier_platform_spec(
            fast_capacity_bytes=fast, slow_capacity_bytes=slow_bytes, bandwidth_ratio=8
        )
        kernel = Kernel(spec, policy_cls(), seed=7)
        kernel.start()
        wl_cls = WORKLOADS[wname]
        workload = wl_cls(kernel, _config_for(wl_cls, kernel, scale))
        t0 = time.time()
        workload.setup()
        kernel.reset_reference_counters()
        res = workload.run(ops)
        results[pname] = res.throughput_ops_per_sec
        ft = kernel.topology.tier("fast")
        print(
            f"{pname:18s} tput={res.throughput_ops_per_sec:9.0f} "
            f"host={time.time() - t0:5.1f}s "
            f"fast={ft.used_pages}/{ft.capacity_pages} "
            f"fastref={kernel.fast_ref_fraction():.2f} "
            f"down={kernel.topology.migrations_between('fast', 'slow')} "
            f"up={kernel.topology.migrations_between('slow', 'fast')}"
        )
    base = results["all_slow"]
    print()
    for pname, tput in results.items():
        print(f"{pname:18s} {tput / base:.2f}x")


def _config_for(wl_cls, kernel, scale):
    probe = wl_cls(kernel)
    cfg = probe.config
    return type(cfg)(
        name=cfg.name,
        dataset_bytes=cfg.dataset_bytes,
        scale_factor=scale,
        num_threads=cfg.num_threads,
        value_bytes=cfg.value_bytes,
        extra=cfg.extra,
    )


if __name__ == "__main__":
    main()
