#!/usr/bin/env python3
"""Warm-start benchmark: snapshot-restored sweeps vs. cold setup replays.

``op_bench.py`` times the measurement loop; this bench times the part
snapshots eliminate — the **setup phase**. The measured job is a
fig5b-style sweep (rocksdb under every placement policy, across an ops
ladder): with snapshots disabled every cell replays the full load phase,
with snapshots enabled only the first cell per (workload, policy) pays
it and every later ops point restores the warmed kernel from the store.
The snapshot store starts empty in both modes, so the warm number is the
honest first-invocation cost — cold setups for the first ladder rung,
restores for the rest.

Modes are isolated in **subprocesses** with the result cache off
(``REPRO_NO_CACHE=1``): every cell's measurement really runs, and the
only difference between the modes is where the setup phase comes from.
Reps are interleaved cold/warm to decorrelate machine noise, and the
reported speedup is min-over-min (the most repeatable wall-clock
estimator on noisy hosts).

Each worker also emits every cell's result payload (the exact dicts the
experiment cache hashes); the bench refuses to report a speedup unless
the cold and warm payload lists are byte-identical — a restored run that
diverges from its cold twin is a correctness bug, not a slow bench.

Writes ``BENCH_snap.json``.

Usage::

    PYTHONPATH=src python scripts/snap_bench.py            # full bench
    PYTHONPATH=src python scripts/snap_bench.py --quick    # CI-sized
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The swept grid: fig5b's workload under every placement policy. The
#: ops ladder mimics an ops-sensitivity sweep — exactly the shape where
#: every rung past the first shares a warmed kernel.
WORKLOAD = "rocksdb"
POLICIES = ("naive", "nimble", "nimble++", "klocs")
FULL_OPS_LADDER = (1_000, 2_000, 4_000)
QUICK_OPS_LADDER = (500, 1_000)
FULL_REPS = 3
QUICK_REPS = 2


def _worker(mode: str, ops_ladder: List[int], snap_dir: str) -> int:
    """Run the sweep serially in one mode; print elapsed + payloads."""
    os.environ["REPRO_NO_CACHE"] = "1"  # measure real runs, not cache hits
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.experiments.cache import run_to_payload
    from repro.experiments.runner import run_two_tier
    from repro.snapshot import SnapshotStore

    # REPRO_NO_CACHE disables the *default* store, so each mode pins its
    # behavior explicitly: cold never touches disk, warm gets a private
    # store that starts empty (the spawner wipes it between reps).
    store = SnapshotStore(Path(snap_dir), enabled=(mode == "warm"))

    payloads = []
    restored = 0
    t0 = time.perf_counter()
    for ops in ops_ladder:
        for policy in POLICIES:
            run = run_two_tier(
                workload=WORKLOAD,
                policy=policy,
                ops=ops,
                snapshots=store,
            )
            restored += int(run.from_snapshot)
            payloads.append(run_to_payload(run))
    elapsed = time.perf_counter() - t0
    print(
        json.dumps(
            {"elapsed_s": elapsed, "restored": restored, "payloads": payloads},
            sort_keys=True,
        )
    )
    return 0


def _spawn(mode: str, ops_ladder: List[int], snap_dir: Path) -> Dict[str, object]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [
            sys.executable,
            str(Path(__file__).resolve()),
            "--_worker",
            mode,
            "--_ops-ladder",
            ",".join(str(o) for o in ops_ladder),
            "--_snap-dir",
            str(snap_dir),
        ],
        env=env,
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        raise RuntimeError(f"worker ({mode}) failed:\n{proc.stderr}")
    return json.loads(proc.stdout.strip().splitlines()[-1])


def _wipe(snap_dir: Path) -> None:
    for path in snap_dir.glob("*.snap"):
        path.unlink()


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "BENCH_snap.json",
        help="where to write the results JSON",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized run (shorter ops ladder, fewer reps)",
    )
    parser.add_argument("--reps", type=int, default=None, help="override rep count")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=0.0,
        help="exit non-zero if the speedup falls below this "
        "(0 = report only; wall-clock gates are flaky on shared CI)",
    )
    parser.add_argument("--_worker", default=None, help=argparse.SUPPRESS)
    parser.add_argument("--_ops-ladder", default=None, help=argparse.SUPPRESS)
    parser.add_argument("--_snap-dir", default=None, help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args._worker is not None:
        ladder = [int(o) for o in args._ops_ladder.split(",")]
        return _worker(args._worker, ladder, args._snap_dir)

    ops_ladder = list(QUICK_OPS_LADDER if args.quick else FULL_OPS_LADDER)
    reps = args.reps if args.reps is not None else (
        QUICK_REPS if args.quick else FULL_REPS
    )
    cells = len(ops_ladder) * len(POLICIES)
    restores_expected = cells - len(POLICIES)

    with tempfile.TemporaryDirectory(prefix="snap_bench_") as tmp:
        snap_dir = Path(tmp)

        # Warm the interpreter/bytecode page cache per mode so first-rep
        # bias doesn't flatter either side.
        for mode in ("cold", "warm"):
            _spawn(mode, [min(200, ops_ladder[0])], snap_dir)
            _wipe(snap_dir)

        cold_times: List[float] = []
        warm_times: List[float] = []
        cold_payloads: Optional[list] = None
        warm_payloads: Optional[list] = None
        restored = 0
        for _rep in range(reps):
            cold = _spawn("cold", ops_ladder, snap_dir)
            warm = _spawn("warm", ops_ladder, snap_dir)
            _wipe(snap_dir)  # every rep starts from an empty store
            cold_times.append(float(cold["elapsed_s"]))
            warm_times.append(float(warm["elapsed_s"]))
            cold_payloads = cold["payloads"]
            warm_payloads = warm["payloads"]
            restored = int(warm["restored"])

    if cold_payloads != warm_payloads:
        print("PAYLOAD MISMATCH — restored runs diverged; timings are invalid")
        for i, (c, w) in enumerate(zip(cold_payloads, warm_payloads)):
            if c != w:
                print(f"  cell {i}: cold and warm payloads differ")
        return 2
    if restored != restores_expected:
        print(
            f"WARM PATH DID NOT ENGAGE — {restored} restored cells, "
            f"expected {restores_expected}; timings are invalid"
        )
        return 2

    best_cold = min(cold_times)
    best_warm = min(warm_times)
    speedup = best_cold / best_warm if best_warm > 0 else float("inf")

    report = {
        "bench": "snap_bench",
        "baseline": "REPRO_NO_SNAPSHOT-equivalent (snapshot store disabled; "
        "every cell replays the full setup phase)",
        "grid": {
            "workload": WORKLOAD,
            "policies": list(POLICIES),
            "ops_ladder": ops_ladder,
            "cells": cells,
            "restored_cells": restored,
        },
        "quick": args.quick,
        "reps": reps,
        "cold_s": [round(t, 4) for t in cold_times],
        "warm_s": [round(t, 4) for t in warm_times],
        "best_cold_s": round(best_cold, 4),
        "best_warm_s": round(best_warm, 4),
        "speedup": round(speedup, 2),
        "equivalent": True,
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "system": platform.system(),
        },
    }
    args.out.write_text(json.dumps(report, indent=1) + "\n", encoding="utf-8")

    print(
        f"grid: {WORKLOAD} x {len(POLICIES)} policies x "
        f"ops={ops_ladder} ({cells} cells, {restored} restored)"
    )
    print(f"cold : {['%.3f' % t for t in cold_times]}  best {best_cold:.3f}s")
    print(f"warm : {['%.3f' % t for t in warm_times]}  best {best_warm:.3f}s")
    print(f"speedup: {speedup:.2f}x (payloads identical)  -> {args.out}")

    if args.min_speedup and speedup < args.min_speedup:
        print(f"speedup {speedup:.2f}x below required {args.min_speedup}x")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
