#!/usr/bin/env python3
"""CI smoke benchmark: one measured run, wall-clock recorded to JSON.

Runs ``run_two_tier("rocksdb", "klocs")`` once — the profile-defining
single run — with the cache bypassed, and writes host wall-clock plus
the run's headline metrics to ``BENCH_smoke.json``. CI uploads the file
per commit so the performance trajectory of the simulator hot path stays
visible; the virtual-time metrics double as a cheap determinism canary
(they must never change without a ``SIM_VERSION`` bump).

Usage: python scripts/smoke_bench.py [out.json]
"""

import json
import os
import platform
import sys
import time

# The point is to measure simulation, not replay a cached result.
os.environ.setdefault("REPRO_NO_CACHE", "1")

from repro.experiments.defaults import ops_for, seed
from repro.experiments.runner import run_two_tier


def main() -> int:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_smoke.json"
    workload, policy = "rocksdb", "klocs"
    ops = ops_for(workload)

    start = time.perf_counter()
    run = run_two_tier(workload, policy, ops=ops)
    wall_s = time.perf_counter() - start

    record = {
        "bench": "smoke_single_run",
        "workload": workload,
        "policy": policy,
        "ops": ops,
        "seed": seed(),
        "quick": bool(os.environ.get("REPRO_QUICK")),
        "wall_clock_s": round(wall_s, 3),
        "throughput_ops_per_sec": run.throughput,
        "elapsed_virtual_ns": run.result.elapsed_ns,
        "migrations_down": run.migrations_down,
        "migrations_up": run.migrations_up,
        "fast_ref_fraction": run.fast_ref_fraction,
        "python": platform.python_version(),
    }
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"{workload}/{policy} ops={ops}: {wall_s:.2f}s wall, "
          f"{run.throughput:,.0f} ops/s virtual -> {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
