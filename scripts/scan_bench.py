#!/usr/bin/env python3
"""Scan-heavy benchmark: indexed resident-frame scanners vs. the legacy
O(all frames) walk.

The workload-level benches (``smoke_bench.py``) are dominated by per-op
costs (page-cache radix walks, writeback, access charging), which hides
the scanners. This bench isolates the regime §3.3 and Fig 5 care about —
long stretches of virtual time where the periodic scanners wake over a
large resident set that mostly *doesn't* need to move:

* **numa_\\*** phases (fig5-style, Optane Memory Mode, AutoNUMA): a large
  application working set is allocated on socket 0, the scheduler moves
  the task to socket 1 (the §6.2 interference event), AutoNUMA drains
  the away set batch-by-batch, and then the system sits in steady state
  with the 4ms scanner ticking over fully-local memory. The legacy walk
  pays O(all frames) per tick forever; the indexed scanner pays
  O(away residents), which goes to zero once migration settles.
* **lru_\\*** phases (two-tier, Nimble++): a resident set several times
  the fast tier's size, mostly cold in slow memory, with a light rotating
  touch stream. The legacy walk visits every live frame per 100ms scan;
  the indexed scanner visits only fast residents (aging) plus the
  referenced journal (promotion candidates).

Both modes run in the same process: the baseline forces
``REPRO_NO_FRAME_INDEX=1`` (the pre-index brute-force walk), the indexed
mode clears it. Simulated behavior is bit-identical by construction; the
bench asserts it by fingerprinting virtual time, migrations, residency,
and scan counters after every section, and refuses to report a speedup
over diverging runs.

Writes ``BENCH_scan.json`` with per-phase wall-clock for both modes.

Usage::

    PYTHONPATH=src python scripts/scan_bench.py            # full bench
    PYTHONPATH=src python scripts/scan_bench.py --quick    # CI-sized
"""

from __future__ import annotations

import argparse
import json
import math
import os
import platform
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.mem.frame import PageFrame  # noqa: E402
from repro.platforms.optane import build_optane_kernel  # noqa: E402
from repro.platforms.twotier import build_two_tier_kernel  # noqa: E402
from repro.policies.autonuma import NUMA_SCAN_PERIOD_NS  # noqa: E402

#: Bytes per synthetic touch — small, so access-charging cost stays off
#: the critical path and the scanners dominate.
TOUCH_BYTES = 64


def _advance_ticks(
    kernel,
    period_ns: int,
    ticks: int,
    touch_frames: Optional[List[PageFrame]] = None,
    touches_per_tick: int = 0,
) -> None:
    """Advance virtual time through ``ticks`` scanner periods.

    Each tick optionally touches a deterministic rotating window of
    ``touches_per_tick`` frames first, so the scanners see a realistic
    (but identical-across-modes) reference stream.
    """
    clock = kernel.clock
    access = kernel.access_frame
    for tick in range(ticks):
        if touch_frames and touches_per_tick:
            n = len(touch_frames)
            base = tick * touches_per_tick
            for j in range(touches_per_tick):
                frame = touch_frames[(base + j) % n]
                if frame.live:
                    access(frame, TOUCH_BYTES)
        clock.advance(period_ns)


def _residency(kernel) -> Dict[str, int]:
    return {
        name: tier.used_pages for name, tier in kernel.topology.tiers.items()
    }


def _run_numa_phases(
    params: Dict[str, int], timings: Dict[str, float]
) -> Dict[str, object]:
    """Fig5-style AutoNUMA run; returns the section fingerprint."""
    pages = params["numa_pages"]
    sf = params["numa_scale_factor"]

    t0 = time.perf_counter()
    kernel, pol = build_optane_kernel(
        "autonuma", scale_factor=sf, retired_limit=0
    )
    frames = kernel.alloc_app_pages(pages)
    timings["numa_populate"] = time.perf_counter() - t0

    # Interference: the task moves to socket 1; AutoNUMA drains the away
    # set at `batch` frames per 4ms wakeup. Run enough ticks to finish.
    t0 = time.perf_counter()
    kernel.set_task_node(1)
    drain_ticks = math.ceil(pages / pol.batch) + 4
    _advance_ticks(kernel, NUMA_SCAN_PERIOD_NS, drain_ticks)
    timings["numa_interfere"] = time.perf_counter() - t0

    # Steady state: everything is local; the scanner keeps waking anyway.
    t0 = time.perf_counter()
    _advance_ticks(
        kernel,
        NUMA_SCAN_PERIOD_NS,
        params["numa_steady_ticks"],
        touch_frames=frames,
        touches_per_tick=params["touches_per_tick"],
    )
    timings["numa_steady"] = time.perf_counter() - t0

    return {
        "clock_ns": kernel.clock.now(),
        "migrated_app": pol.migrated_app,
        "migrations": kernel.topology.migrations_between("node0", "node1"),
        "residency": _residency(kernel),
        "app_refs": kernel.app_refs,
    }


def _run_lru_phases(
    params: Dict[str, int], timings: Dict[str, float]
) -> Dict[str, object]:
    """Two-tier Nimble++ run; returns the section fingerprint."""
    sf = params["lru_scale_factor"]

    t0 = time.perf_counter()
    kernel, pol = build_two_tier_kernel(
        "nimble++", scale_factor=sf, retired_limit=0
    )
    frames = kernel.alloc_app_pages(params["lru_pages"])
    # Release some fast-tier pages so free memory sits above the kswapd
    # watermark: steady state then ages cold fast pages without demoting
    # them (no pressure), which is exactly the no-op regime the legacy
    # walk pays full price for.
    fast_resident = [f for f in frames if f.tier_name == "fast"]
    kernel.free_app_pages(fast_resident[: params["lru_free_fast"]])
    slow_resident = [f for f in frames if f.live and f.tier_name == "slow"]
    timings["lru_populate"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    _advance_ticks(
        kernel,
        kernel.platform.lru.scan_period_ns,
        params["lru_steady_ticks"],
        touch_frames=slow_resident,
        touches_per_tick=params["touches_per_tick"],
    )
    timings["lru_steady"] = time.perf_counter() - t0

    lru = pol.lru
    return {
        "clock_ns": kernel.clock.now(),
        "scans": lru.scans,
        "pages_scanned": lru.pages_scanned,
        "promoted": lru.promoted,
        "demoted": lru.demoted,
        "migrations_down": kernel.topology.migrations_between("fast", "slow"),
        "migrations_up": kernel.topology.migrations_between("slow", "fast"),
        "residency": _residency(kernel),
        "app_refs": kernel.app_refs,
    }


def run_suite(
    indexed: bool, params: Dict[str, int]
) -> Tuple[Dict[str, float], Dict[str, object]]:
    """One full bench pass in one mode; returns (timings, fingerprint)."""
    if indexed:
        os.environ.pop("REPRO_NO_FRAME_INDEX", None)
    else:
        os.environ["REPRO_NO_FRAME_INDEX"] = "1"
    try:
        timings: Dict[str, float] = {}
        fingerprint = {
            "numa": _run_numa_phases(params, timings),
            "lru": _run_lru_phases(params, timings),
        }
        return timings, fingerprint
    finally:
        os.environ.pop("REPRO_NO_FRAME_INDEX", None)


FULL_PARAMS: Dict[str, int] = {
    # Optane node capacity is 128GB/sf; sf=1024 → 32768 pages per node.
    "numa_scale_factor": 1024,
    "numa_pages": 24_000,
    "numa_steady_ticks": 2_500,
    # Two-tier fast capacity is 8GB/sf; sf=256 → 8192 fast, 81920 slow.
    "lru_scale_factor": 256,
    "lru_pages": 40_000,
    "lru_free_fast": 600,
    "lru_steady_ticks": 400,
    "touches_per_tick": 32,
}

QUICK_PARAMS: Dict[str, int] = {
    "numa_scale_factor": 1024,
    "numa_pages": 6_000,
    "numa_steady_ticks": 400,
    "lru_scale_factor": 1024,
    "lru_pages": 10_000,
    "lru_free_fast": 300,
    "lru_steady_ticks": 120,
    "touches_per_tick": 32,
}

WARMUP_PARAMS: Dict[str, int] = {
    "numa_scale_factor": 1024,
    "numa_pages": 1_000,
    "numa_steady_ticks": 20,
    "lru_scale_factor": 1024,
    "lru_pages": 2_000,
    "lru_free_fast": 100,
    "lru_steady_ticks": 10,
    "touches_per_tick": 8,
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "BENCH_scan.json",
        help="where to write the results JSON",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized run (seconds, not tens of seconds)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=0.0,
        help="exit non-zero if overall speedup falls below this "
        "(0 = report only; wall-clock gates are flaky on shared CI)",
    )
    args = parser.parse_args(argv)

    params = QUICK_PARAMS if args.quick else FULL_PARAMS

    # Warm both code paths (imports, allocator caches, branch history)
    # so first-run bias doesn't flatter either mode.
    for indexed in (False, True):
        run_suite(indexed, WARMUP_PARAMS)

    base_times, base_fp = run_suite(False, params)
    idx_times, idx_fp = run_suite(True, params)

    if base_fp != idx_fp:
        print("FINGERPRINT MISMATCH — modes diverged; timings are invalid")
        print("baseline:", json.dumps(base_fp, indent=1, sort_keys=True))
        print("indexed :", json.dumps(idx_fp, indent=1, sort_keys=True))
        return 2

    phases = []
    for name in base_times:
        b, i = base_times[name], idx_times[name]
        phases.append(
            {
                "phase": name,
                "baseline_s": round(b, 4),
                "indexed_s": round(i, 4),
                "speedup": round(b / i, 2) if i > 0 else None,
            }
        )
    total_base = sum(base_times.values())
    total_idx = sum(idx_times.values())
    speedup = total_base / total_idx if total_idx > 0 else float("inf")

    report = {
        "bench": "scan_bench",
        "baseline": "REPRO_NO_FRAME_INDEX=1 (pre-index O(all frames) scanner walks)",
        "quick": args.quick,
        "params": params,
        "phases": phases,
        "total_baseline_s": round(total_base, 4),
        "total_indexed_s": round(total_idx, 4),
        "speedup": round(speedup, 2),
        "equivalent": True,
        "fingerprint": base_fp,
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "system": platform.system(),
        },
    }
    args.out.write_text(json.dumps(report, indent=1) + "\n", encoding="utf-8")

    width = max(len(p["phase"]) for p in phases)
    print(f"{'phase'.ljust(width)}  baseline_s  indexed_s  speedup")
    for p in phases:
        print(
            f"{p['phase'].ljust(width)}  {p['baseline_s']:>10.3f}  "
            f"{p['indexed_s']:>9.3f}  {p['speedup']:>6.2f}x"
        )
    print(
        f"{'TOTAL'.ljust(width)}  {total_base:>10.3f}  {total_idx:>9.3f}  "
        f"{speedup:>6.2f}x  -> {args.out}"
    )

    if args.min_speedup and speedup < args.min_speedup:
        print(f"speedup {speedup:.2f}x below required {args.min_speedup}x")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
