"""Ablation (§4.2.3): two red-black trees per knode vs one.

"We find that using a single red-black tree to record millions of kernel
objects can be prohibitively expensive; empirically, as many as ten
memory references are needed on average for tree traversal." Splitting
the knode's index into rbtree-cache and rbtree-slab shortens both trees;
this bench measures the mean search-hop reduction directly.
"""

from repro.ds.rbtree import RedBlackTree

OBJECTS = 60_000
CACHE_SHARE = 0.7  # page-backed vs slab object mix of a big file set


def _single_tree_hops():
    tree = RedBlackTree()
    for oid in range(OBJECTS):
        tree.insert(oid, oid)
    tree.searches = tree.search_hops = 0
    for oid in range(0, OBJECTS, 7):
        tree.get(oid)
    return tree.mean_search_hops()


def _split_tree_hops():
    cache, slab = RedBlackTree(), RedBlackTree()
    split = int(OBJECTS * CACHE_SHARE)
    for oid in range(split):
        cache.insert(oid, oid)
    for oid in range(split, OBJECTS):
        slab.insert(oid, oid)
    cache.searches = cache.search_hops = 0
    slab.searches = slab.search_hops = 0
    for oid in range(0, OBJECTS, 7):
        (cache if oid < split else slab).get(oid)
    total_hops = cache.search_hops + slab.search_hops
    total_searches = cache.searches + slab.searches
    return total_hops / total_searches


def test_split_tree_reduces_traversal(once):
    single = _single_tree_hops()
    split = once(_split_tree_hops)
    print(f"\nmean hops: single tree {single:.1f}, split trees {split:.1f}")
    # The paper's ~10-references pain point for a single big tree:
    assert single >= 10
    assert split < single
