"""§5's untested hypothesis: "KLOCs should provide higher performance
gains with THP".

We back the Redis heap with 2MB transparent huge pages and compare KLOCs
throughput and migration-remap economics against the 4KB-page baseline.
Expected: THP does not hurt, and the remap work per migrated byte drops
by orders of magnitude (the mechanism the hypothesis rests on); whether
it nets a speedup depends on the pollution tradeoff, which the bench
reports.
"""

from repro.experiments.defaults import SCALE_FACTOR, seed
from repro.experiments.runner import make_workload
from repro.platforms.twotier import build_two_tier_kernel

OPS = 12_000


def _run(huge: bool):
    kernel, _ = build_two_tier_kernel("klocs", scale_factor=SCALE_FACTOR, seed=seed())
    if huge:
        kernel.thp.pages_per_compound = 64  # 2MB scaled like everything else

        original = kernel.alloc_app_pages

        def huge_alloc(npages, *, cpu=0, huge=True):
            return original(npages, cpu=cpu, huge=True)

        kernel.alloc_app_pages = huge_alloc
    workload = make_workload(kernel, "redis")
    workload.setup()
    kernel.reset_reference_counters()
    result = workload.run(OPS)
    stats = {
        "throughput": result.throughput_ops_per_sec,
        "compounds": kernel.thp.compound_count(),
        "migrations": kernel.engine.total_moved,
        "migration_cost_ns": kernel.engine.total_cost_ns,
    }
    workload.teardown()
    return stats


def test_thp_hypothesis(once):
    base = _run(huge=False)
    thp = once(_run, True)
    print(
        f"\n4KB pages: tput={base['throughput']:,.0f}, "
        f"migrations={base['migrations']}, cost={base['migration_cost_ns']}ns"
    )
    print(
        f"THP:       tput={thp['throughput']:,.0f}, "
        f"compounds={thp['compounds']}, migrations={thp['migrations']}, "
        f"cost={thp['migration_cost_ns']}ns"
    )
    assert thp["compounds"] > 0
    # Finding (recorded in EXPERIMENTS.md): under our fast-capacity
    # pressure, THP backing costs ~25% throughput — huge-page pollution
    # (one hot member pins 2MB) outweighs the remap savings. The paper
    # hedged exactly this way: "this hypothesis needs to be tested in
    # future studies."
    assert thp["throughput"] > base["throughput"] * 0.6
    # The mechanism the hypothesis rests on does hold: remap cost per
    # migrated page collapses with compound migration.
    assert thp["migrations"] and base["migrations"]
    per_page_base = base["migration_cost_ns"] / base["migrations"]
    per_page_thp = thp["migration_cost_ns"] / thp["migrations"]
    assert per_page_thp < per_page_base * 0.7
