"""Figure 6 — sensitivity to fast capacity and bandwidth differential.

Expected shape:

* Speedups grow as the bandwidth differential widens (1:2 → 1:8).
* Gains shrink once fast capacity covers the working set (32GB): "As
  fast memory capacity increases, slow memory is used less often,
  reducing the performance difference of all tiering approaches."
* KLOCs' advantage over Nimble/Nimble++ holds across configurations and
  is most visible at high differentials with mid-scale capacity.
"""

import pytest

from repro.experiments.fig6 import run_figure6


@pytest.fixture(scope="module")
def fig6():
    report = run_figure6()
    print("\n" + report.format_report())
    return report


def test_fig6_bandwidth_differential(fig6, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # At the paper's 8GB capacity, widening the differential raises
    # every policy's speedup (there is more to win).
    for policy in ("nimble", "nimble++", "klocs"):
        wide = fig6.cell(8, 8, policy).avg
        narrow = fig6.cell(8, 2, policy).avg
        assert wide > narrow, policy


def test_fig6_capacity_saturation(fig6, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # 32GB fast memory holds (most of) the working set: the gap between
    # KLOCs and its closest competitor (Nimble++, which also allocates
    # kernel objects fast-first) collapses relative to the 8GB point —
    # "as fast memory capacity increases, slow memory is used less often,
    # reducing the performance difference of all tiering approaches".
    # (Nimble is excluded from this check: it pins kernel objects in slow
    # memory by construction, so extra fast capacity cannot help it.)
    for ratio in (8, 4):
        spread_8gb = (
            fig6.cell(8, ratio, "klocs").avg - fig6.cell(8, ratio, "nimble++").avg
        )
        spread_32gb = (
            fig6.cell(32, ratio, "klocs").avg - fig6.cell(32, ratio, "nimble++").avg
        )
        assert spread_32gb < spread_8gb + 0.35, ratio


def test_fig6_klocs_superior_at_headline_config(fig6, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # The paper's headline configuration: 8GB fast, 1:8 bandwidth.
    klocs = fig6.cell(8, 8, "klocs")
    assert klocs.avg > fig6.cell(8, 8, "nimble").avg
    assert klocs.avg > fig6.cell(8, 8, "nimble++").avg * 0.97
    assert klocs.lo <= klocs.avg <= klocs.hi


def test_fig6_advantage_peaks_at_midscale(fig6, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # "The speedup benefits over Nimble and Nimble++ ... peak for
    # mid-scale fast memory capacities of 8GB, especially for higher
    # bandwidth differentials": the KLOCs-over-Nimble++ advantage at
    # (8GB, 1:8) is not exceeded at 32GB.
    def advantage(cap):
        return fig6.cell(cap, 8, "klocs").avg / fig6.cell(cap, 8, "nimble++").avg

    assert advantage(8) >= advantage(32) * 0.9


def test_fig6_speedup_grows_with_capacity(fig6, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # Normalized to All-Slow, more fast capacity means more data served
    # fast: the absolute KLOC speedup is monotone-ish in capacity.
    assert fig6.cell(32, 8, "klocs").avg > fig6.cell(4, 8, "klocs").avg
