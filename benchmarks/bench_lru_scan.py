"""§3.3 — the LRU scan-rate measurement.

"We measure the time taken to scan one million pages on our Intel Xeon
platform as 2 seconds" — the structural constant that makes scan-based
kernel-object tiering too slow (kernel object lifetimes are 36-160ms).
The engine's modeled cost function must reproduce that rate, and the
lifetime/scan relationship must hold in the simulator's compressed time.
"""

from repro.core.config import LRUSpec, two_tier_platform_spec
from repro.core.units import MB, SEC
from repro.kernel.kernel import Kernel
from repro.policies import NimblePlusPlusPolicy
from repro.policies.lru_engine import LRUScanEngine


def test_lru_scan_rate(once):
    spec = two_tier_platform_spec(fast_capacity_bytes=4 * MB)
    kernel = Kernel(spec, NimblePlusPlusPolicy(), seed=1)
    # Paper-scale spec: 500K pages/sec.
    engine = LRUScanEngine(kernel, spec=LRUSpec())

    cost = once(engine.scan_cost_ns, 1_000_000)
    print(f"\nscan of 1M pages: {cost / SEC:.2f}s (paper: ~2s)")
    assert 1.8 * SEC <= cost <= 2.2 * SEC


def test_scan_latency_exceeds_kernel_lifetimes(benchmark):
    """The compressed-time configs preserve §3.3's inequality: detection
    latency (period x cold rounds) >> slab lifetimes, < app lifetimes."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    spec = two_tier_platform_spec(fast_capacity_bytes=4 * MB)
    detection_ns = spec.lru.scan_period_ns * spec.lru.cold_age_rounds
    # Simulated slab objects live well under one detection window (the
    # workloads' slab ledgers confirm; here we assert the configuration).
    assert detection_ns >= 4 * spec.kloc.migrate_period_ns
    assert detection_ns >= 8 * spec.writeback_period_ns
