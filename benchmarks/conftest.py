"""Benchmark-suite configuration.

Each bench regenerates one of the paper's tables/figures and asserts its
*shape* (strategy ordering, ratio bands, crossovers) rather than absolute
numbers — the simulator is a scaled substrate, not the authors' testbed.
Run with::

    pytest benchmarks/ --benchmark-only -s

Set REPRO_QUICK=1 for a ~4x faster pass with looser statistics.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Execute ``fn`` exactly once under pytest-benchmark timing.

    Experiment runs are long (seconds) and deterministic, so one round is
    both sufficient and necessary — repeated rounds would re-run multi-
    minute sweeps for no statistical gain.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    def _runner(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _runner
