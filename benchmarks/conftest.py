"""Benchmark-suite configuration.

Each bench regenerates one of the paper's tables/figures and asserts its
*shape* (strategy ordering, ratio bands, crossovers) rather than absolute
numbers — the simulator is a scaled substrate, not the authors' testbed.
Run with::

    pytest benchmarks/ --benchmark-only -s

Set REPRO_QUICK=1 for a ~4x faster pass with looser statistics.

Figure regenerators route through the parallel experiment engine: cells
fan out across REPRO_JOBS workers and completed runs are replayed from
``.repro_cache/``. The *shape* assertions are unaffected (cached results
are bit-identical), so warm-cache re-runs are near-instant; when the
recorded pytest-benchmark timing itself is the point, run with
``REPRO_NO_CACHE=1`` (wall-clock trajectory is otherwise tracked by
``scripts/smoke_bench.py`` in CI, which always bypasses the cache).
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Execute ``fn`` exactly once under pytest-benchmark timing.

    Experiment runs are long (seconds) and deterministic, so one round is
    both sufficient and necessary — repeated rounds would re-run multi-
    minute sweeps for no statistical gain.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    def _runner(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _runner
