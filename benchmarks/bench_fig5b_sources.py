"""Figure 5b — sources of KLOCs' improvement (RocksDB).

Expected shape: KLOCs allocates far fewer pages in slow memory than
Naive, Nimble, or Nimble++ — it identifies kernel objects of cold
application state quickly and keeps fast memory available — and its
fast-tier reference fraction is the highest of the group. Page-cache
pages dominate both the slow-allocation and migration traffic (§4.4:
79% of downgrades are page cache).
"""

from repro.experiments.fig5 import run_fig5b_sources
from repro.mem.frame import PageOwner


def test_fig5b(once):
    report = once(run_fig5b_sources)
    print("\n" + report.format_report())
    rows = {r.policy: r for r in report.rows}

    # KLOCs directly allocates hot kernel objects to fast memory, so its
    # slow-memory page-cache allocations undercut the scan-based rivals'.
    assert (
        rows["klocs"].slow_allocs["page_cache"]
        < rows["nimble"].slow_allocs["page_cache"]
    )
    # Nimble pins kernel objects in slow memory by construction: its
    # slow-side kernel allocation count is the worst of the group.
    assert rows["nimble"].slow_allocs["page_cache"] == max(
        r.slow_allocs["page_cache"] for r in report.rows
    )
    # Naive never migrates anything.
    assert rows["naive"].migrations_down == 0
    assert rows["naive"].migrations_up == 0
    # KLOCs actively migrates, dominated by downgrades (§4.4: ~88%).
    klocs = rows["klocs"]
    assert klocs.migrations_down > 0
    assert klocs.migrations_down > klocs.migrations_up
    # And it turns that into the best fast-memory locality of the group.
    assert klocs.fast_ref_fraction == max(r.fast_ref_fraction for r in report.rows)
