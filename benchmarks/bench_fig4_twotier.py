"""Figure 4 — two-tier speedups across Table 5's strategies.

Expected shape (speedups vs All Slow Mem):

* KLOCs beats Naive, Nimble, and KLOCs-nomigration on every workload,
  and beats Nimble++ everywhere except Cassandra, where the two are
  roughly equal (§7.1).
* All-Fast is the ceiling; every strategy lands between the bounds.
* RocksDB: migration matters — full KLOCs clearly exceeds
  KLOCs-nomigration (paper: 1.96x vs 1.61x over Naive).
* Redis: the Naive greedy approach is vastly outperformed (paper: 2.2x).
"""

import pytest

from repro.experiments.fig4 import run_figure4


@pytest.fixture(scope="module")
def fig4():
    report = run_figure4()
    print("\n" + report.format_report())
    return report


def _shape_checks(report, workload):
    s = report.speedups[workload]
    assert s["all_slow"] == pytest.approx(1.0)
    ceiling = s["all_fast"]
    for policy, value in s.items():
        assert value <= ceiling * 1.05, (workload, policy)
    assert s["klocs"] > s["naive"], workload
    assert s["klocs"] > s["nimble"], workload
    assert s["klocs"] >= s["klocs_nomigration"] * 0.98, workload


def test_fig4_rocksdb(fig4, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    _shape_checks(fig4, "rocksdb")
    s = fig4.speedups["rocksdb"]
    assert s["klocs"] > s["nimble++"]
    # Migration is the difference between the two KLOC bars (§7.1).
    assert fig4.ratio("rocksdb", "klocs", "klocs_nomigration") > 1.05
    # Band check: KLOCs over Naive (paper: 1.96x; simulator: compressed).
    assert 1.1 < fig4.ratio("rocksdb", "klocs", "naive") < 2.5


def test_fig4_redis(fig4, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    _shape_checks(fig4, "redis")
    s = fig4.speedups["redis"]
    assert s["klocs"] > s["nimble++"]
    # Naive suffers badly from cache pollution (paper: KLOCs 2.2x over it).
    assert 1.3 < fig4.ratio("redis", "klocs", "naive") < 3.0
    # And prior-art application-only tiering is clearly beaten
    # (paper: 2.7x; simulator compresses the magnitude, not the ordering).
    assert fig4.ratio("redis", "klocs", "nimble") > 1.15


def test_fig4_filebench(fig4, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    _shape_checks(fig4, "filebench")
    assert fig4.speedups["filebench"]["klocs"] > fig4.speedups["filebench"]["nimble++"] * 0.97


def test_fig4_cassandra(fig4, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    _shape_checks(fig4, "cassandra")
    # §7.1: "KLOCs is similar to Nimble++ for Cassandra" — the app-level
    # cache absorbs kernel I/O, so kernel placement barely matters.
    ratio = fig4.ratio("cassandra", "klocs", "nimble++")
    assert 0.85 < ratio < 1.25
    # Cassandra also benefits least from the all-fast ideal.
    gains = {
        w: fig4.speedups[w]["all_fast"] for w in fig4.speedups
    }
    assert gains["cassandra"] <= sorted(gains.values())[1] * 1.2
