"""Ablation (§4.4): inode-granularity grouping vs per-page tracking.

The paper tracks KLOCs at inode granularity ("This reduces kernel
bookkeeping cost ... all kernel objects associated with the inode do
tend to be accessed during I/O") and leaves fine-grained tracking to
future work. The measurable consequence: when a file turns cold, KLOCs
clear *all* of its fast-resident pages in one knode sweep, while
page-granularity scanning (Nimble++) needs multiple scan rounds.

This bench measures reclaim latency for a freshly cold file under both
mechanisms.
"""

from repro.core.units import MB, PAGE_SIZE
from repro.platforms.twotier import build_two_tier_kernel


FILE_BYTES = 1 * MB  # 256 pages


def _cold_file_kernel(policy):
    kernel, _ = build_two_tier_kernel(policy, scale_factor=1024)
    fh = kernel.fs.create("/victim")
    kernel.fs.write(fh, 0, FILE_BYTES)
    kernel.fs.fsync(fh)
    cache = kernel.fs.cache_mgr.cache_for(fh.inode.ino)
    kernel.fs.close(fh)
    return kernel, cache


def _fast_resident(cache):
    return sum(1 for p in cache.pages() if p.obj.frame.tier_name == "fast")


def test_inode_vs_fine_grained_throughput(once):
    """End-to-end: the shipped inode-granularity policy vs the paper's
    future-work fine-grained variant on RocksDB. The paper's position
    ("opting for an inode-driven view ... offers a simplistic
    implementation and good performance") predicts the inode-granularity
    policy is at least competitive."""
    from repro.experiments.runner import run_two_tier

    klocs = once(run_two_tier, "rocksdb", "klocs", ops=12_000)
    fine = run_two_tier("rocksdb", "klocs_fine", ops=12_000)
    ratio = klocs.throughput / fine.throughput
    print(f"\ninode-granularity vs fine-grained throughput ratio: {ratio:.3f}")
    assert ratio > 0.9  # competitive-or-better


def test_knode_sweep_vs_scan_rounds(once):
    # KLOCs: one daemon pass clears the cold knode en masse.
    kernel, cache = _cold_file_kernel("klocs")
    kernel.kloc_daemon.free_target_frac = 1.0  # treat as pressured
    before = _fast_resident(cache)
    once(kernel.kloc_daemon.run)
    after_klocs = _fast_resident(cache)

    # Nimble++: the scanner needs cold_age_rounds of scans before the
    # pages even become candidates.
    kernel2, cache2 = _cold_file_kernel("nimble++")
    lru = kernel2.policy.lru
    lru.free_watermark_frac = 1.0  # force demotion pressure
    rounds_needed = 0
    while _fast_resident(cache2) > 0 and rounds_needed < 10:
        lru.scan()
        rounds_needed += 1

    print(
        f"\nKLOCs: {before} → {after_klocs} fast pages after ONE daemon pass; "
        f"Nimble++ needed {rounds_needed} scan rounds"
    )
    assert before > 0
    assert after_klocs == 0  # single-pass en-masse downgrade
    assert rounds_needed >= kernel2.platform.lru.cold_age_rounds
