"""§4.3 — per-CPU knode fast paths (the 54% statistic).

Expected shape: with per-CPU lists enabled, a large fraction of knode
lookups never touch the kmap red-black tree; the paper measures a 54%
reduction in rbtree accesses.
"""

from repro.experiments.percpu_ablation import run_percpu_ablation


def test_percpu_fast_path(once):
    report = once(run_percpu_ablation)
    print("\n" + report.format_report())
    # Paper: 54% reduction. Band: at least 40%.
    assert report.fast_path_reduction > 0.40
    assert report.kmap_accesses_with < report.kmap_accesses_without
    assert report.access_reduction > 0.25
