"""Ablation (§4.2.2): slab-allocated knodes vs relocatable knodes.

"We use the slab allocator for knodes in order to optimize for speed of
allocation ... prioritizing knode allocation speed over amenability for
migration is more important" — because knodes are orders of magnitude
fewer than the objects they point to. This bench quantifies both halves:
the allocation-speed gap, and the knode-to-object population ratio that
justifies the trade.
"""

from repro.alloc.base import ALLOC_COSTS
from repro.experiments.runner import make_workload, run_two_tier
from repro.platforms.twotier import build_two_tier_kernel


def test_knode_allocation_tradeoff(once):
    run = once(run_two_tier, "rocksdb", "klocs", ops=4000)

    # Slab-speed allocation is the fast end of the allocator families.
    assert ALLOC_COSTS["slab"] < ALLOC_COSTS["kloc"] < ALLOC_COSTS["vmalloc"]

    # Re-derive the population ratio on a fresh kernel.
    kernel, _ = build_two_tier_kernel("klocs", scale_factor=1024)
    wl = make_workload(kernel, "rocksdb")
    wl.setup()
    wl.run(4000)
    manager = kernel.kloc_manager
    knodes = manager.knodes_created
    tracked_objects = manager._tracked_objects + manager.knodes_deleted  # noqa: SLF001
    objects_ever = manager._tracked_objects  # live lower bound  # noqa: SLF001
    print(f"\nknodes created: {knodes}, live tracked objects: {objects_ever}")
    # Orders of magnitude more objects than knodes (paper's justification
    # for non-migratable slab knodes).
    assert objects_ever > 5 * knodes or knodes < 5000
    assert run.throughput > 0
