"""§7.3 — KLOC-aware I/O prefetching.

Expected shape: with KLOCs, readahead helps (paper: RocksDB x1.26),
because prefetched kernel objects are identified quickly and cold
prefetches are reclaimed; the KLOC gain from prefetching is at least as
large as the Naive gain, where prefetching amplifies pollution.
"""

from repro.experiments.prefetch import run_prefetch_study


def test_prefetch(once):
    report = once(run_prefetch_study)
    print("\n" + report.format_report())
    klocs_gain = report.ratio("rocksdb", "klocs")
    naive_gain = report.ratio("rocksdb", "naive")
    assert klocs_gain > 1.0
    assert klocs_gain > naive_gain * 0.95
    assert klocs_gain < 2.0  # sanity: the paper's effect is 1.26x
