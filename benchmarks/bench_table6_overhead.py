"""Table 6 — KLOC metadata memory overhead.

Expected shape: every workload's overhead is well under 1% of memory;
RocksDB (millions of tracked objects) has the largest absolute overhead
and Cassandra (app-cache-absorbed I/O) the smallest; rb-tree pointers
dominate the bytes. Paper-scale equivalents land in the tens-of-MB range
the paper reports (Filebench 44MB, RocksDB 101MB, Redis 83MB,
Cassandra 12MB, Spark 43MB).
"""

from repro.experiments.table6 import run_table6_overhead


def test_table6(once):
    report = once(run_table6_overhead)
    print("\n" + report.format_report())
    for workload in report.metadata_bytes:
        assert report.fraction_of_memory(workload) < 0.02, workload
        # Tens-of-MB paper-equivalent magnitudes (generous band).
        assert 1.0 < report.paper_equivalent_mb(workload) < 300.0, workload
    # RocksDB tracks the most objects (Table 6's 101MB maximum), and the
    # app-cache-absorbed workloads (Cassandra's 12MB is the paper's
    # minimum) sit at the light end.
    values = sorted(report.metadata_bytes.values())
    assert report.metadata_bytes["rocksdb"] == values[-1]
    assert report.metadata_bytes["cassandra"] <= values[1]
