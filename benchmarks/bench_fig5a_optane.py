"""Figure 5a — Optane Memory Mode under interference.

Expected shape (speedups vs the all-remote worst case):

* The all-local ideal is the ceiling (paper: 1.6x).
* KLOCs lands close to the ideal and clearly above vanilla AutoNUMA
  (paper: ~1.5x over AutoNUMA) and above Nimble (paper: ~1.4x), because
  only KLOCs migrates the kernel objects stranded on the contended
  socket.
"""

import pytest

from repro.experiments.fig5 import run_fig5a_optane


def test_fig5a(once):
    report = once(run_fig5a_optane)
    print("\n" + report.format_report())
    for workload, s in report.speedups.items():
        assert s["all_remote"] == pytest.approx(1.0)
        assert s["autonuma"] > 1.0, workload
        assert s["klocs"] > s["autonuma"], workload
        assert s["klocs"] >= s["nimble"], workload
        # KLOCs approaches (or reaches, with the demux win) the ideal.
        assert s["klocs"] > 0.8 * s["all_local"], workload
        assert s["autonuma"] < s["all_local"], workload
