"""Figure 5c — contribution of kernel object types to KLOC performance.

Expected shape: starting from app-only tiering (kernel objects pinned in
fast memory), adding page-cache coverage helps the filesystem-heavy
workload most; Redis needs the socket-buffer/slab groups; full coverage
is where each workload's best configuration lives (§7.3: "a truly robust
KLOC abstraction must include as many kernel object types as possible").
"""

from repro.experiments.fig5 import run_fig5c_objtypes


def test_fig5c(once):
    report = once(run_fig5c_objtypes)
    print("\n" + report.format_report())
    rocks = report.speedups["rocksdb"]
    redis = report.speedups["redis"]

    # RocksDB: page-cache coverage is the big step (Fig 2a: page cache
    # dominates its allocations).
    assert rocks["page_cache"] > rocks["none"] * 1.03
    # Redis: the network-side groups contribute measurably.
    assert redis["block_io"] > redis["none"] * 1.05
    assert redis["sockbuf"] >= redis["journal"] * 0.97
    # Full coverage never collapses below app-only for either workload.
    assert rocks["block_io"] > 0.97
    assert redis["block_io"] > 0.97
