"""Figure 2 — motivation characterization benches.

Paper claims reproduced here:
* 2a: kernel objects are a major share of every workload's footprint.
* 2b: the kernel share persists when inputs shrink from 40GB to 10GB.
* 2c: reference split bands — Filebench ~86% in-kernel, RocksDB ~54%,
  Redis ~38%, Cassandra the least kernel-bound.
* 2d: lifetime ordering — slab objects << page-cache pages << app pages,
  separated by orders of magnitude (paper: 36ms / 160ms / tens of min).
"""

from repro.experiments.fig2 import (
    run_fig2a_footprint,
    run_fig2b_scaling,
    run_fig2d_lifetimes,
)


def test_fig2a(once):
    report = once(run_fig2a_footprint)
    print("\n" + report.format_report())
    by_name = {r.workload: r for r in report.rows}
    assert set(by_name) == {"rocksdb", "redis", "filebench", "cassandra", "spark"}
    for row in report.rows:
        # Kernel objects are plentiful for every I/O-intensive workload.
        assert row.footprint.kernel_fraction() > 0.25, row.workload
    # Page cache dominates RocksDB's kernel allocations (§3.1).
    rocks = by_name["rocksdb"].footprint.breakdown()
    assert rocks["page_cache"] == max(
        v for k, v in rocks.items() if k != "app"
    )
    # Redis needs a mix that includes socket buffers (§3.1).
    assert by_name["redis"].footprint.breakdown()["sockbuf"] > 0.02


def test_fig2b(once):
    report = once(run_fig2b_scaling)
    print("\n" + report.format_report())
    for workload, fracs in report.scaling.items():
        # "Kernel objects continue to use a significant fraction of the
        # total pages" at the small input size too.
        assert fracs["small"] > 0.2, workload
        assert abs(fracs["small"] - fracs["large"]) < 0.3, workload


def test_fig2c(once):
    report = once(run_fig2a_footprint)
    print("\n" + report.format_report())
    frac = {
        r.workload: r.references.kernel_fraction() for r in report.rows
    }
    assert frac["filebench"] > 0.75  # paper: 86% of time in the OS
    assert 0.35 < frac["rocksdb"] < 0.70  # paper band: 54%
    assert 0.25 < frac["redis"] < 0.55  # paper band: 38%
    assert frac["cassandra"] < frac["redis"]  # the app cache absorbs I/O
    assert frac["filebench"] > frac["rocksdb"] > frac["cassandra"]


def test_fig2d(once):
    report = once(run_fig2d_lifetimes)
    print("\n" + report.format_report())
    for row in report.rows:
        life = row.lifetimes
        assert life.ordering_holds(), row.workload
        # Orders of magnitude apart, as in the paper's log-scale figure.
        assert life.app_mean_ns > 5 * life.slab_mean_ns, row.workload
        assert life.page_cache_mean_ns > life.slab_mean_ns, row.workload
